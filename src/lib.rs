//! # hpac-offload — umbrella crate
//!
//! Re-exports the whole HPAC-Offload reproduction stack:
//!
//! * [`gpu_sim`] — the GPU execution-model simulator substrate,
//! * [`core`] — the HPAC-Offload programming model and runtime (TAF, iACT,
//!   perforation, hierarchical decision-making),
//! * [`apps`] — the seven evaluated HPC proxy applications,
//! * [`harness`] — the design-space-exploration harness and figure
//!   generators,
//! * [`tuner`] — the quality-constrained autotuner: Pareto frontiers,
//!   adaptive search, and the sharded persistent tuning cache,
//! * [`service`] — the concurrent tuning front end: typed
//!   request/response API, request coalescing, warm starts from
//!   neighboring bounds, engine admission,
//! * [`obs`] — structured tracing and metrics (spans, counters, per-worker
//!   ring buffers, JSONL / Chrome-trace sinks, `MetricsSnapshot`), enabled
//!   via `HPAC_TRACE=<path>[:jsonl|chrome]`.
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `examples/autotune.rs` for the tuner.

pub use gpu_sim;
pub use hpac_apps as apps;
pub use hpac_core as core;
pub use hpac_harness as harness;
pub use hpac_obs as obs;
pub use hpac_service as service;
pub use hpac_tuner as tuner;
