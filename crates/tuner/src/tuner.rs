//! The tuner front end: cache lookup, adaptive search, plan selection.

use crate::cache::{device_fingerprint, TuningCache};
use crate::grid::Grid;
use crate::plan::{QualityBound, TunedPlan};
use crate::search::{search_grid, Evaluator, SearchStrategy};
use gpu_sim::DeviceSpec;
use hpac_apps::common::Benchmark;
use hpac_harness::runner::select_baseline;
use hpac_harness::space::{self, Scale};

/// The quality-constrained autotuner.
///
/// `tune` answers "fastest configuration for this benchmark on this device
/// with at most X% error", spending a small, bounded fraction of the full
/// sweep's evaluation budget, and remembers answers across processes when a
/// [`TuningCache`] is attached.
#[derive(Debug)]
pub struct Tuner {
    /// How each technique grid is walked.
    pub strategy: SearchStrategy,
    /// Grid resolution to search. `Scale::Full` (the default) searches the
    /// paper's native Table 2 axes; `Scale::Quick` searches the pruned CI
    /// grids.
    pub scale: Scale,
    /// Evaluation budget as a fraction of the full design-space size
    /// (default 0.1 — an order of magnitude under `Scale::Full`).
    pub budget_fraction: f64,
    /// Optional persistent cache.
    pub cache: Option<TuningCache>,
}

impl Default for Tuner {
    fn default() -> Self {
        Tuner {
            strategy: SearchStrategy::default(),
            scale: Scale::Full,
            budget_fraction: 0.1,
            cache: None,
        }
    }
}

impl Tuner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a persistent cache directory.
    pub fn with_cache(mut self, cache: TuningCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Override the search strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the searched grid resolution.
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// The per-benchmark evaluation budget on a device.
    pub fn budget(&self, bench: &dyn Benchmark, device: &DeviceSpec) -> usize {
        let full = space::full_space_size(bench, device);
        ((full as f64 * self.budget_fraction) as usize).max(1)
    }

    /// Tune `bench` on `device` under `bound`. Served from the cache when a
    /// valid entry exists; otherwise searches, then stores the result.
    pub fn tune(
        &self,
        bench: &dyn Benchmark,
        device: &DeviceSpec,
        bound: QualityBound,
    ) -> TunedPlan {
        let _tune = hpac_obs::span_named(
            hpac_obs::SpanId::TunerTune,
            bench.name(),
            (bound.max_error_pct * 100.0) as u64,
        );
        hpac_obs::inc(hpac_obs::CounterId::TunerRequests);
        let fingerprint = device_fingerprint(device);
        if let Some(cache) = &self.cache {
            if let Some(plan) =
                cache.load(bench.name(), device.name, bound.max_error_pct, fingerprint)
            {
                hpac_obs::inc(hpac_obs::CounterId::TunerCacheHits);
                return plan;
            }
            hpac_obs::inc(hpac_obs::CounterId::TunerCacheMisses);
        }

        let baseline = select_baseline(bench, device);
        let full_space = space::full_space_size(bench, device);
        let budget = ((full_space as f64 * self.budget_fraction) as usize).max(1);
        let mut ev = Evaluator::new(bench, device, &baseline, budget);
        // Deterministic per-(benchmark, device) seed so repeated cold tunes
        // retrace the same search.
        let seed = crate::cache::fnv1a(bench.name().bytes().chain(device.name.bytes()));
        let grids = Grid::grids_for(bench, device, self.scale);
        for (i, grid) in grids.iter().enumerate() {
            let _grid = hpac_obs::span(
                hpac_obs::SpanId::TunerSearchGrid,
                i as u64,
                grid.size() as u64,
            );
            search_grid(
                grid,
                &mut ev,
                &self.strategy,
                bound.max_error_pct,
                seed.wrapping_add(i as u64),
            );
        }

        // A feasible point that is not actually faster than the accurate
        // baseline is worse than not approximating at all.
        let winner = ev
            .frontier
            .best_under(bound.max_error_pct)
            .filter(|best| best.speedup > 1.0);
        let plan = match winner {
            Some(best) => {
                let chosen = ev
                    .lookup(&best.config)
                    .expect("frontier points come from evaluated configs");
                TunedPlan {
                    benchmark: bench.name().to_string(),
                    device: device.name.to_string(),
                    bound_pct: bound.max_error_pct,
                    region: Some(chosen.region),
                    lp: chosen.lp,
                    technique: best.technique.clone(),
                    config: best.config.clone(),
                    predicted_speedup: best.speedup,
                    measured_error_pct: best.error_pct,
                    baseline_lp: baseline.lp,
                    evaluations: ev.evaluations,
                    full_space,
                    from_cache: false,
                    frontier: ev.frontier.clone(),
                }
            }
            // Nothing feasible: fall back to the accurate baseline rather
            // than violating the caller's bound.
            None => TunedPlan {
                benchmark: bench.name().to_string(),
                device: device.name.to_string(),
                bound_pct: bound.max_error_pct,
                region: None,
                lp: baseline.lp,
                technique: "accurate".to_string(),
                config: "accurate".to_string(),
                predicted_speedup: 1.0,
                measured_error_pct: 0.0,
                baseline_lp: baseline.lp,
                evaluations: ev.evaluations,
                full_space,
                from_cache: false,
                frontier: ev.frontier.clone(),
            },
        };

        if let Some(cache) = &self.cache {
            if let Err(e) = cache.store(&plan, fingerprint) {
                hpac_obs::log_warn(&format!("tuning cache write failed: {e}"));
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_apps::blackscholes::Blackscholes;

    // Default-size Blackscholes: large enough that approximation genuinely
    // beats the baseline (the tiny test sizes have no feasible speedup, so
    // the tuner would — correctly — return the accurate fallback).
    fn tune_bs() -> Blackscholes {
        Blackscholes::default()
    }

    fn quick_tuner() -> Tuner {
        // Quick scale keeps unit tests fast; budget stays proportional to
        // the full space so the <10% claim is still exercised.
        Tuner::new().with_scale(Scale::Quick)
    }

    #[test]
    fn tune_respects_bound_and_budget() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let plan = quick_tuner().tune(&bench, &spec, QualityBound::percent(5.0));
        assert!(plan.respects_bound(), "error {}", plan.measured_error_pct);
        assert!(plan.predicted_speedup >= 1.0);
        assert!(
            plan.budget_fraction_used() < 0.1,
            "evaluated {} of {}",
            plan.evaluations,
            plan.full_space
        );
        assert!(!plan.from_cache);
        assert!(!plan.frontier.is_empty());
    }

    #[test]
    fn tighter_bound_never_faster() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let tuner = quick_tuner();
        let loose = tuner.tune(&bench, &spec, QualityBound::percent(10.0));
        let tight = tuner.tune(&bench, &spec, QualityBound::percent(0.5));
        assert!(tight.measured_error_pct <= 0.5);
        assert!(tight.predicted_speedup <= loose.predicted_speedup + 1e-9);
    }

    #[test]
    fn impossible_bound_falls_back_to_accurate() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let plan = quick_tuner().tune(&bench, &spec, QualityBound::percent(0.0));
        // A zero bound may still be met by exact memoization; if nothing
        // met it the plan must be the accurate fallback, never a violation.
        if plan.region.is_none() {
            assert_eq!(plan.technique, "accurate");
            assert_eq!(plan.predicted_speedup, 1.0);
        }
        assert!(plan.respects_bound());
    }

    #[test]
    fn cache_serves_second_request() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let cache = TuningCache::new(std::env::temp_dir().join("hpac_tuner_cache_tunetest"));
        let _ = cache.clear();
        let tuner = quick_tuner().with_cache(cache.clone());
        let cold = tuner.tune(&bench, &spec, QualityBound::percent(5.0));
        assert!(!cold.from_cache);
        let warm = tuner.tune(&bench, &spec, QualityBound::percent(5.0));
        assert!(warm.from_cache);
        assert_eq!(warm.config, cold.config);
        assert_eq!(warm.predicted_speedup, cold.predicted_speedup);
        assert_eq!(warm.frontier.len(), cold.frontier.len());
        let _ = cache.clear();
    }

    #[test]
    fn device_change_invalidates_cache() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let cache = TuningCache::new(std::env::temp_dir().join("hpac_tuner_cache_devchange"));
        let _ = cache.clear();
        let tuner = quick_tuner().with_cache(cache.clone());
        tuner.tune(&bench, &spec, QualityBound::percent(5.0));
        // Same name, recalibrated device: the fingerprint changes, so the
        // cached entry must not be served.
        let mut faster = spec;
        faster.costs.global_txn_cycles /= 2.0;
        let replan = tuner.tune(&bench, &faster, QualityBound::percent(5.0));
        assert!(!replan.from_cache);
        let _ = cache.clear();
    }

    #[test]
    fn plan_reexecutes_through_apps_layer() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let plan = quick_tuner().tune(&bench, &spec, QualityBound::percent(5.0));
        let report = plan.execute(&bench, &spec).unwrap();
        assert!((report.speedup - plan.predicted_speedup).abs() < 1e-6);
        assert!((report.error_pct - plan.measured_error_pct).abs() < 1e-6);
    }
}
