//! The tuner core: adaptive search and plan selection.
//!
//! [`Tuner`] holds the search policy (strategy, grid scale, budget) and
//! exposes one entry point, [`Tuner::search_plan`], which answers "fastest
//! configuration for this benchmark on this device with at most X% error" —
//! optionally warm-started from seed configurations (typically a cached
//! neighbor bound's Pareto frontier). Caching, request coalescing, and
//! provenance live a layer up, in `hpac-service`; the legacy one-call
//! [`Tuner::tune`] that bundled cache handling with the search survives as a
//! deprecated shim.

use crate::cache::{device_fingerprint, TuningCache};
use crate::grid::Grid;
use crate::plan::{QualityBound, TunedPlan};
use crate::search::{search_grid, Evaluator, SearchStrategy};
use gpu_sim::DeviceSpec;
use hpac_apps::common::Benchmark;
use hpac_harness::runner::{select_baseline, Baseline};
use hpac_harness::space::{self, Scale, SweepConfig};

/// The quality-constrained autotuner.
#[derive(Debug)]
pub struct Tuner {
    /// How each technique grid is walked.
    pub strategy: SearchStrategy,
    /// Grid resolution to search. `Scale::Full` (the default) searches the
    /// paper's native Table 2 axes; `Scale::Quick` searches the pruned CI
    /// grids.
    pub scale: Scale,
    /// Evaluation budget as a fraction of the full design-space size
    /// (default 0.1 — an order of magnitude under `Scale::Full`).
    pub budget_fraction: f64,
    /// Optional persistent cache, consulted only by the deprecated
    /// [`Tuner::tune`] shim. The service layer owns the cache instead.
    pub cache: Option<TuningCache>,
}

impl Default for Tuner {
    fn default() -> Self {
        Tuner {
            strategy: SearchStrategy::default(),
            scale: Scale::Full,
            budget_fraction: 0.1,
            cache: None,
        }
    }
}

impl Tuner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a persistent cache directory (used by the deprecated
    /// [`Tuner::tune`] shim).
    pub fn with_cache(mut self, cache: TuningCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Override the search strategy.
    pub fn with_strategy(mut self, strategy: SearchStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Override the searched grid resolution.
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// The per-benchmark evaluation budget on a device.
    pub fn budget(&self, bench: &dyn Benchmark, device: &DeviceSpec) -> usize {
        let full = space::full_space_size(bench, device);
        ((full as f64 * self.budget_fraction) as usize).max(1)
    }

    /// Search for the fastest plan under `bound`, never consulting or
    /// writing a cache.
    ///
    /// `seeds` are concrete configurations evaluated *before* any grid walk
    /// — typically the re-executable Pareto frontier of a neighboring
    /// cached bound on the same (benchmark, device). If the seeds already
    /// contain a feasible point genuinely faster than the accurate
    /// baseline, that winner is returned immediately: a warm start spends
    /// only `seeds.len()` evaluations instead of a full search. Otherwise
    /// the full grid search proceeds with the same evaluator, so seed
    /// evaluations still count against (and never exceed) the one budget a
    /// cold search gets.
    ///
    /// With empty `seeds`, the search is cold and deterministic: repeated
    /// calls with the same inputs retrace the same walk and return
    /// identical plans.
    pub fn search_plan(
        &self,
        bench: &dyn Benchmark,
        device: &DeviceSpec,
        bound: QualityBound,
        seeds: &[SweepConfig],
    ) -> TunedPlan {
        // One sweep-scoped evaluation memo for the whole search: baseline
        // candidates and every evaluated configuration share accurate-lane
        // computations that don't depend on approximation parameters.
        let _memo_scope = hpac_apps::common::install_eval_memo();
        let baseline = select_baseline(bench, device);
        let full_space = space::full_space_size(bench, device);
        let budget = ((full_space as f64 * self.budget_fraction) as usize).max(1);
        let mut ev = Evaluator::new(bench, device, &baseline, budget);

        if !seeds.is_empty() {
            ev.eval_batch(seeds);
            if let Some(plan) = self.winning_plan(bench, device, bound, &baseline, &ev, full_space)
            {
                return plan;
            }
            // No seed beats the baseline under the bound: fall through to
            // the full search, reusing the evaluator (its memo table makes
            // re-visited seed configs free, and its spent budget keeps the
            // total at or under a cold search's).
        }

        // Deterministic per-(benchmark, device) seed so repeated cold tunes
        // retrace the same search.
        let seed = crate::cache::fnv1a(bench.name().bytes().chain(device.name.bytes()));
        let grids = Grid::grids_for(bench, device, self.scale);
        for (i, grid) in grids.iter().enumerate() {
            let _grid = hpac_obs::span(
                hpac_obs::SpanId::TunerSearchGrid,
                i as u64,
                grid.size() as u64,
            );
            search_grid(
                grid,
                &mut ev,
                &self.strategy,
                bound.max_error_pct,
                seed.wrapping_add(i as u64),
            );
        }

        self.winning_plan(bench, device, bound, &baseline, &ev, full_space)
            .unwrap_or_else(|| {
                // Nothing feasible: fall back to the accurate baseline
                // rather than violating the caller's bound.
                TunedPlan {
                    benchmark: bench.name().to_string(),
                    device: device.name.to_string(),
                    bound_pct: bound.max_error_pct,
                    region: None,
                    lp: baseline.lp,
                    technique: "accurate".to_string(),
                    config: "accurate".to_string(),
                    predicted_speedup: 1.0,
                    measured_error_pct: 0.0,
                    baseline_lp: baseline.lp,
                    evaluations: ev.evaluations,
                    full_space,
                    from_cache: false,
                    frontier: ev.frontier.clone(),
                }
            })
    }

    /// The plan for the evaluator's current best feasible point, if one
    /// exists. A feasible point that is not actually faster than the
    /// accurate baseline is worse than not approximating at all, so it
    /// never wins.
    fn winning_plan(
        &self,
        bench: &dyn Benchmark,
        device: &DeviceSpec,
        bound: QualityBound,
        baseline: &Baseline,
        ev: &Evaluator,
        full_space: usize,
    ) -> Option<TunedPlan> {
        let best = ev
            .frontier
            .best_under(bound.max_error_pct)
            .filter(|best| best.speedup > 1.0)?;
        let chosen = ev
            .lookup(&best.config)
            .expect("frontier points come from evaluated configs");
        Some(TunedPlan {
            benchmark: bench.name().to_string(),
            device: device.name.to_string(),
            bound_pct: bound.max_error_pct,
            region: Some(chosen.region),
            lp: chosen.lp,
            technique: best.technique.clone(),
            config: best.config.clone(),
            predicted_speedup: best.speedup,
            measured_error_pct: best.error_pct,
            baseline_lp: baseline.lp,
            evaluations: ev.evaluations,
            full_space,
            from_cache: false,
            frontier: ev.frontier.clone(),
        })
    }

    /// Tune `bench` on `device` under `bound`. Served from the attached
    /// cache when a valid entry exists; otherwise searches cold, then
    /// stores the result.
    #[deprecated(
        since = "0.3.0",
        note = "build a `hpac_service::TuneRequest` and submit it to a \
                `hpac_service::TuningService` (coalescing, warm starts, \
                provenance), or call `Tuner::search_plan` directly"
    )]
    pub fn tune(
        &self,
        bench: &dyn Benchmark,
        device: &DeviceSpec,
        bound: QualityBound,
    ) -> TunedPlan {
        let _tune = hpac_obs::span_named(
            hpac_obs::SpanId::TunerTune,
            bench.name(),
            (bound.max_error_pct * 100.0) as u64,
        );
        hpac_obs::inc(hpac_obs::CounterId::TunerRequests);
        let fingerprint = device_fingerprint(device);
        if let Some(cache) = &self.cache {
            if let Some(plan) =
                cache.load(bench.name(), device.name, bound.max_error_pct, fingerprint)
            {
                hpac_obs::inc(hpac_obs::CounterId::TunerCacheHits);
                return plan;
            }
            hpac_obs::inc(hpac_obs::CounterId::TunerCacheMisses);
        }

        let plan = self.search_plan(bench, device, bound, &[]);

        if let Some(cache) = &self.cache {
            if let Err(e) = cache.store(&plan, fingerprint) {
                hpac_obs::log_warn(&format!("tuning cache write failed: {e}"));
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the shim's behavior is still under test

    use super::*;
    use hpac_apps::blackscholes::Blackscholes;

    // Default-size Blackscholes: large enough that approximation genuinely
    // beats the baseline (the tiny test sizes have no feasible speedup, so
    // the tuner would — correctly — return the accurate fallback).
    fn tune_bs() -> Blackscholes {
        Blackscholes::default()
    }

    fn quick_tuner() -> Tuner {
        // Quick scale keeps unit tests fast; budget stays proportional to
        // the full space so the <10% claim is still exercised.
        Tuner::new().with_scale(Scale::Quick)
    }

    #[test]
    fn tune_respects_bound_and_budget() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let plan = quick_tuner().tune(&bench, &spec, QualityBound::percent(5.0));
        assert!(plan.respects_bound(), "error {}", plan.measured_error_pct);
        assert!(plan.predicted_speedup >= 1.0);
        assert!(
            plan.budget_fraction_used() < 0.1,
            "evaluated {} of {}",
            plan.evaluations,
            plan.full_space
        );
        assert!(!plan.from_cache);
        assert!(!plan.frontier.is_empty());
    }

    #[test]
    fn tighter_bound_never_faster() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let tuner = quick_tuner();
        let loose = tuner.tune(&bench, &spec, QualityBound::percent(10.0));
        let tight = tuner.tune(&bench, &spec, QualityBound::percent(0.5));
        assert!(tight.measured_error_pct <= 0.5);
        assert!(tight.predicted_speedup <= loose.predicted_speedup + 1e-9);
    }

    #[test]
    fn impossible_bound_falls_back_to_accurate() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let plan = quick_tuner().tune(&bench, &spec, QualityBound::percent(0.0));
        // A zero bound may still be met by exact memoization; if nothing
        // met it the plan must be the accurate fallback, never a violation.
        if plan.region.is_none() {
            assert_eq!(plan.technique, "accurate");
            assert_eq!(plan.predicted_speedup, 1.0);
        }
        assert!(plan.respects_bound());
    }

    #[test]
    fn shim_matches_search_plan_bit_for_bit() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let tuner = quick_tuner();
        let via_shim = tuner.tune(&bench, &spec, QualityBound::percent(5.0));
        let direct = tuner.search_plan(&bench, &spec, QualityBound::percent(5.0), &[]);
        assert_eq!(via_shim.config, direct.config);
        assert_eq!(via_shim.predicted_speedup, direct.predicted_speedup);
        assert_eq!(via_shim.measured_error_pct, direct.measured_error_pct);
        assert_eq!(via_shim.evaluations, direct.evaluations);
        assert_eq!(via_shim.frontier.len(), direct.frontier.len());
    }

    #[test]
    fn warm_seeds_from_own_frontier_shortcut_the_search() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let tuner = quick_tuner();
        let bound = QualityBound::percent(5.0);
        let cold = tuner.search_plan(&bench, &spec, bound, &[]);
        assert!(cold.region.is_some(), "test needs a feasible winner");
        let seeds: Vec<_> = cold
            .frontier
            .points()
            .iter()
            .filter_map(|p| p.to_config())
            .collect();
        assert!(!seeds.is_empty());
        let warm = tuner.search_plan(&bench, &spec, bound, &seeds);
        assert_eq!(warm.config, cold.config, "same winner, warm or cold");
        assert!(
            warm.evaluations <= seeds.len(),
            "warm start evaluated {} > {} seeds",
            warm.evaluations,
            seeds.len()
        );
        assert!(warm.evaluations <= cold.evaluations);
        assert!(warm.respects_bound());
    }

    #[test]
    fn cache_serves_second_request() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let cache = TuningCache::new(std::env::temp_dir().join("hpac_tuner_cache_tunetest"));
        let _ = cache.clear();
        let tuner = quick_tuner().with_cache(cache.clone());
        let cold = tuner.tune(&bench, &spec, QualityBound::percent(5.0));
        assert!(!cold.from_cache);
        let warm = tuner.tune(&bench, &spec, QualityBound::percent(5.0));
        assert!(warm.from_cache);
        assert_eq!(warm.config, cold.config);
        assert_eq!(warm.predicted_speedup, cold.predicted_speedup);
        assert_eq!(warm.frontier.len(), cold.frontier.len());
        let _ = cache.clear();
    }

    #[test]
    fn device_change_invalidates_cache() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let cache = TuningCache::new(std::env::temp_dir().join("hpac_tuner_cache_devchange"));
        let _ = cache.clear();
        let tuner = quick_tuner().with_cache(cache.clone());
        tuner.tune(&bench, &spec, QualityBound::percent(5.0));
        // Same name, recalibrated device: the fingerprint changes, so the
        // cached entry must not be served.
        let mut faster = spec;
        faster.costs.global_txn_cycles /= 2.0;
        let replan = tuner.tune(&bench, &faster, QualityBound::percent(5.0));
        assert!(!replan.from_cache);
        let _ = cache.clear();
    }

    #[test]
    fn plan_reexecutes_through_apps_layer() {
        let bench = tune_bs();
        let spec = DeviceSpec::v100();
        let plan = quick_tuner().tune(&bench, &spec, QualityBound::percent(5.0));
        let report = plan.execute(&bench, &spec).unwrap();
        assert!((report.speedup - plan.predicted_speedup).abs() < 1e-6);
        assert!((report.error_pct - plan.measured_error_pct).abs() < 1e-6);
    }
}
