//! # hpac-tuner — quality-constrained autotuning over the HPAC stack
//!
//! The paper's harness answers "what does the speedup/error cloud look
//! like?" by exhaustive sweep — 57k+ configurations (Table 2). This crate
//! answers the production question instead: *"give me the fastest
//! configuration with at most X% error on this device, quickly, and
//! remember it."*
//!
//! ```ignore
//! let tuner = Tuner::new().with_cache(TuningCache::new(TuningCache::default_dir()));
//! let plan = tuner.tune(&bench, &DeviceSpec::v100(), QualityBound::percent(5.0));
//! let report = plan.execute(&bench, &DeviceSpec::v100())?;
//! ```
//!
//! * [`pareto`] — the incremental Pareto frontier over (speedup, error)
//!   with dominance pruning: the whole tradeoff curve, not one point;
//! * [`grid`] — indexable per-technique grids over the harness's exposed
//!   Table 2 axes;
//! * [`search`] — adaptive strategies (coordinate descent, successive
//!   halving over grid resolution, random baseline) that evaluate orders
//!   of magnitude fewer configurations than `Scale::Full`, in parallel;
//! * [`plan`] — [`QualityBound`] in, re-executable [`TunedPlan`] out;
//! * [`cache`] — the persistent JSON tuning cache keyed by (benchmark,
//!   device, bound), invalidated by device-spec fingerprint;
//! * [`json`] — the hand-rolled JSON tree behind the cache (the schema is
//!   flat and fully owned here, like the harness's CSV).

pub mod cache;
pub mod grid;
pub mod json;
pub mod pareto;
pub mod plan;
pub mod search;
pub mod tuner;

pub use cache::{device_fingerprint, TuningCache};
pub use grid::Grid;
pub use pareto::{ParetoFrontier, ParetoPoint};
pub use plan::{ExecutionReport, QualityBound, TunedPlan};
pub use search::SearchStrategy;
pub use tuner::Tuner;
