//! # hpac-tuner — quality-constrained autotuning over the HPAC stack
//!
//! The paper's harness answers "what does the speedup/error cloud look
//! like?" by exhaustive sweep — 57k+ configurations (Table 2). This crate
//! answers the production question instead: *"give me the fastest
//! configuration with at most X% error on this device, quickly, and
//! remember it."*
//!
//! ```ignore
//! let tuner = Tuner::new();
//! let plan = tuner.search_plan(&bench, &DeviceSpec::v100(), QualityBound::percent(5.0), &[]);
//! let report = plan.execute(&bench, &DeviceSpec::v100())?;
//! ```
//!
//! Most callers should not drive the tuner directly: `hpac-service` wraps
//! [`Tuner::search_plan`] behind a typed request/response API with a
//! concurrent sharded cache, request coalescing, and warm starts. The old
//! one-call [`Tuner::tune`] survives as a deprecated shim.
//!
//! * [`pareto`] — the incremental Pareto frontier over (speedup, error)
//!   with dominance pruning: the whole tradeoff curve, not one point;
//! * [`grid`] — indexable per-technique grids over the harness's exposed
//!   Table 2 axes;
//! * [`search`] — adaptive strategies (coordinate descent, successive
//!   halving over grid resolution, random baseline) that evaluate orders
//!   of magnitude fewer configurations than `Scale::Full`, in parallel;
//! * [`plan`] — [`QualityBound`] in, re-executable [`TunedPlan`] out;
//! * [`cache`] — the sharded, lock-striped, atomic-write-replace JSON
//!   tuning cache keyed by (benchmark, device, bound), invalidated by
//!   device-spec fingerprint, safe for concurrent readers and writers;
//! * [`json`] — the hand-rolled JSON tree behind the cache (the schema is
//!   flat and fully owned here, like the harness's CSV).

pub mod cache;
pub mod grid;
pub mod json;
pub mod pareto;
pub mod plan;
pub mod search;
pub mod tuner;

pub use cache::{device_fingerprint, TuningCache};
pub use grid::Grid;
pub use pareto::{ParetoFrontier, ParetoPoint};
pub use plan::{ExecutionReport, QualityBound, TunedPlan};
pub use search::SearchStrategy;
pub use tuner::Tuner;
