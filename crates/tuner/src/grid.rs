//! Indexable per-technique grids over the harness's Table 2 axes.
//!
//! The sweep machinery in `hpac_harness::space` materializes the full
//! Cartesian product. Adaptive search instead needs *random access*: "the
//! configuration at index (2, 0, 5, 1, 3)" and "how long is axis 2". This
//! module wraps the exposed axis vectors ([`hpac_harness::space::taf_axes`]
//! et al.) behind that interface. Perforation splits into two grids because
//! its space is a union, not a product: rate patterns (small/large × m ×
//! items-per-thread) and bounds patterns (ini/fini × fraction, always at
//! items-per-thread 1).

use gpu_sim::DeviceSpec;
use hpac_apps::common::{Benchmark, LaunchParams};
use hpac_core::params::PerfoKind;
use hpac_core::region::ApproxRegion;
use hpac_harness::space::{self, IactAxes, PerfoAxes, Scale, SweepConfig, TafAxes};

enum GridKind {
    Taf(TafAxes),
    Iact(IactAxes),
    PerfoRate(PerfoAxes),
    PerfoBounds(PerfoAxes),
}

/// One indexable technique grid for a benchmark on a device.
pub struct Grid {
    kind: GridKind,
    axis_lens: Vec<usize>,
    block_size: u32,
}

impl Grid {
    /// All technique grids for a benchmark on a device (grids with an empty
    /// axis are dropped).
    pub fn grids_for(bench: &dyn Benchmark, device: &DeviceSpec, scale: Scale) -> Vec<Grid> {
        let block_size = space::block_size_for(bench);
        let taf = space::taf_axes(bench, device, scale);
        let iact = space::iact_axes(bench, device, scale);
        let perfo = space::perfo_axes(bench, device, scale);
        let mut grids = vec![
            Grid::new(
                vec![
                    taf.hsize.len(),
                    taf.psize.len(),
                    taf.threshold.len(),
                    taf.levels.len(),
                    taf.items_per_thread.len(),
                ],
                GridKind::Taf(taf),
                block_size,
            ),
            Grid::new(
                vec![
                    iact.tables_per_warp.len(),
                    iact.tsize.len(),
                    iact.threshold.len(),
                    iact.levels.len(),
                    iact.items_per_thread.len(),
                ],
                GridKind::Iact(iact),
                block_size,
            ),
            Grid::new(
                vec![2, perfo.skip_m.len(), perfo.items_per_thread.len()],
                GridKind::PerfoRate(perfo.clone()),
                block_size,
            ),
            Grid::new(
                vec![2, perfo.fractions.len()],
                GridKind::PerfoBounds(perfo),
                block_size,
            ),
        ];
        grids.retain(|g| g.size() > 0);
        grids
    }

    fn new(axis_lens: Vec<usize>, kind: GridKind, block_size: u32) -> Grid {
        Grid {
            kind,
            axis_lens,
            block_size,
        }
    }

    /// Technique label for reporting ("TAF", "iACT", "Perfo").
    pub fn technique(&self) -> &'static str {
        match self.kind {
            GridKind::Taf(_) => "TAF",
            GridKind::Iact(_) => "iACT",
            GridKind::PerfoRate(_) | GridKind::PerfoBounds(_) => "Perfo",
        }
    }

    pub fn axis_count(&self) -> usize {
        self.axis_lens.len()
    }

    pub fn axis_len(&self, axis: usize) -> usize {
        self.axis_lens[axis]
    }

    /// Number of configurations in this grid's product.
    pub fn size(&self) -> usize {
        self.axis_lens.iter().product()
    }

    /// Materialize the configuration at an index vector (one index per
    /// axis). Panics on out-of-range indices — callers own clamping.
    pub fn build(&self, idx: &[usize]) -> SweepConfig {
        assert_eq!(idx.len(), self.axis_count(), "index arity mismatch");
        let bs = self.block_size;
        match &self.kind {
            GridKind::Taf(a) => {
                let (h, p, t) = (a.hsize[idx[0]], a.psize[idx[1]], a.threshold[idx[2]]);
                let lvl = a.levels[idx[3]];
                let ipt = a.items_per_thread[idx[4]];
                SweepConfig {
                    region: ApproxRegion::memo_out(h, p, t).level(lvl),
                    lp: LaunchParams::new(ipt, bs),
                    label: format!("h={h} p={p} thr={t} lvl={lvl} ipt={ipt}"),
                }
            }
            GridKind::Iact(a) => {
                let tpw = a.tables_per_warp[idx[0]];
                let (ts, t) = (a.tsize[idx[1]], a.threshold[idx[2]]);
                let lvl = a.levels[idx[3]];
                let ipt = a.items_per_thread[idx[4]];
                SweepConfig {
                    region: ApproxRegion::memo_in(ts, t).tables_per_warp(tpw).level(lvl),
                    lp: LaunchParams::new(ipt, bs),
                    label: format!("ts={ts} thr={t} tpw={tpw} lvl={lvl} ipt={ipt}"),
                }
            }
            GridKind::PerfoRate(a) => {
                let m = a.skip_m[idx[1]];
                let kind = if idx[0] == 0 {
                    PerfoKind::Small { m }
                } else {
                    PerfoKind::Large { m }
                };
                let ipt = a.items_per_thread[idx[2]];
                SweepConfig {
                    region: ApproxRegion::perfo(kind),
                    lp: LaunchParams::new(ipt, bs),
                    label: format!("{} ipt={ipt}", space::perfo_label(kind)),
                }
            }
            GridKind::PerfoBounds(a) => {
                let fraction = a.fractions[idx[1]];
                let kind = if idx[0] == 0 {
                    PerfoKind::Ini { fraction }
                } else {
                    PerfoKind::Fini { fraction }
                };
                SweepConfig {
                    region: ApproxRegion::perfo(kind),
                    lp: LaunchParams::new(1, bs),
                    label: format!("{} ipt=1", space::perfo_label(kind)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_apps::blackscholes::Blackscholes;
    use std::collections::HashSet;

    #[test]
    fn grid_sizes_cover_the_sweep_plan() {
        let bench = Blackscholes::default();
        for device in DeviceSpec::evaluation_platforms() {
            for scale in [Scale::Quick, Scale::Full] {
                let grids = Grid::grids_for(&bench, &device, scale);
                let total: usize = grids.iter().map(|g| g.size()).sum();
                assert_eq!(total, space::plan(&bench, &device, scale).len());
            }
        }
    }

    #[test]
    fn built_configs_match_sweep_labels() {
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        let planned: HashSet<String> = space::plan(&bench, &device, Scale::Quick)
            .into_iter()
            .map(|c| c.label)
            .collect();
        for grid in Grid::grids_for(&bench, &device, Scale::Quick) {
            // Exhaustively enumerate the grid through its index interface.
            let mut idx = vec![0usize; grid.axis_count()];
            loop {
                let cfg = grid.build(&idx);
                assert!(
                    planned.contains(&cfg.label),
                    "grid built a config the sweep never plans: {}",
                    cfg.label
                );
                cfg.region.validate().expect("grid configs validate");
                // Odometer increment.
                let mut axis = idx.len();
                loop {
                    if axis == 0 {
                        break;
                    }
                    axis -= 1;
                    idx[axis] += 1;
                    if idx[axis] < grid.axis_len(axis) {
                        break;
                    }
                    idx[axis] = 0;
                }
                if idx.iter().all(|&i| i == 0) {
                    break;
                }
            }
        }
    }

    #[test]
    fn techniques_present() {
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        let grids = Grid::grids_for(&bench, &device, Scale::Quick);
        let names: Vec<&str> = grids.iter().map(|g| g.technique()).collect();
        assert!(names.contains(&"TAF"));
        assert!(names.contains(&"iACT"));
        assert_eq!(names.iter().filter(|n| **n == "Perfo").count(), 2);
    }
}
