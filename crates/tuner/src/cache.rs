//! The persistent tuning cache: a sharded, lock-striped store safe for
//! concurrent readers and writers.
//!
//! A production tuner is asked the same question many times: "fastest
//! configuration for benchmark B on device D under bound X". The answer
//! only changes when the device changes, so each answer — the chosen plan
//! *and* the whole Pareto frontier behind it — is serialized to one JSON
//! file keyed by (benchmark, device, bound). A stored entry carries a
//! fingerprint of the device spec it was tuned against; loading with a
//! different fingerprint invalidates (deletes) the entry instead of serving
//! a stale plan.
//!
//! # Concurrency
//!
//! The store is built for many simultaneous tuning requests:
//!
//! * **Sharding** — entries hash (by benchmark, device) into
//!   [`N_SHARDS`] subdirectories, so directory scans for one key's
//!   neighbors ([`TuningCache::neighbors`]) touch one small shard, not the
//!   whole cache.
//! * **Lock striping** — in-process writers to the same key serialize on
//!   one of [`N_STRIPES`] process-wide stripe locks indexed by the key
//!   hash; writers to different keys proceed in parallel.
//! * **Atomic write-replace** — [`TuningCache::store`] writes the entry to
//!   a uniquely-named temp file in the same directory and `rename`s it
//!   over the final path. Rename is atomic on POSIX, so a reader opening
//!   the final path always sees a *complete* entry (old or new), never a
//!   torn write — and a process killed mid-store leaves only `.tmp` debris
//!   that no reader ever opens.

use crate::json::Json;
use crate::pareto::{ParetoFrontier, ParetoPoint};
use crate::plan::TunedPlan;
use gpu_sim::DeviceSpec;
use hpac_apps::common::LaunchParams;
use hpac_core::params::{PerfoKind, Replacement};
use hpac_core::region::{ApproxRegion, Technique};
use hpac_core::HierarchyLevel;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Format version; bump to invalidate every cached entry on schema change.
/// v2: sharded layout, frontier points carry their region + launch shape.
const CACHE_VERSION: f64 = 2.0;

/// Shard subdirectories under the cache root.
pub const N_SHARDS: u64 = 16;

/// Process-wide stripe locks serializing same-key writers.
const N_STRIPES: usize = 16;

#[allow(clippy::declare_interior_mutable_const)] // repeat-initializer only
const STRIPE_INIT: Mutex<()> = Mutex::new(());
static STRIPES: [Mutex<()>; N_STRIPES] = [STRIPE_INIT; N_STRIPES];

/// Uniquifier for temp file names within the process (the pid distinguishes
/// processes).
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// FNV-1a over a byte stream — the crate's one hash, shared by the device
/// fingerprint, the shard/stripe indices, and the tuner's deterministic
/// search seeds.
pub(crate) fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01B3);
    }
    h
}

/// Stable fingerprint of everything about a device that affects tuning
/// results. Cached entries from a differently-specced device never load.
pub fn device_fingerprint(spec: &DeviceSpec) -> u64 {
    let c = &spec.costs;
    let canonical = format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{:e}|{:e}|{:e}|{:e}|{:e}|{:e}|{:e}|{:e}|{:e}|{:e}|{:e}|{:e}",
        spec.name,
        spec.vendor,
        spec.sm_count,
        spec.warp_size,
        spec.max_threads_per_block,
        spec.max_warps_per_sm,
        spec.max_blocks_per_sm,
        spec.shared_mem_per_block,
        spec.shared_mem_per_sm,
        spec.global_mem_bytes,
        c.flop_cycles,
        c.sfu_cycles,
        c.shared_cycles,
        c.global_txn_cycles,
        c.global_latency_cycles,
        c.barrier_cycles,
        c.atomic_cycles,
        c.block_overhead_cycles,
        c.clock_ghz,
        c.xfer_bandwidth_gbs,
        c.xfer_latency_us,
        c.kernel_launch_us,
    );
    fnv1a(canonical.bytes())
}

fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// A sharded directory of cached tuning results, one JSON file per
/// (benchmark, device, bound) key, grouped into [`N_SHARDS`] subdirectories
/// by (benchmark, device) hash.
#[derive(Debug, Clone)]
pub struct TuningCache {
    dir: PathBuf,
}

impl TuningCache {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TuningCache { dir: dir.into() }
    }

    /// The cache directory: the `HPAC_TUNER_CACHE` environment variable if
    /// set, else `target/tuner-cache`.
    ///
    /// The default lives under `target/` (already the home of generated
    /// artifacts like `target/figures`), which means `cargo clean` wipes
    /// it; point `HPAC_TUNER_CACHE` at a durable directory to keep tuning
    /// results across clean builds. Validation follows the stack-wide
    /// [`hpac_core::env::strict_var`] contract: empty means unset, a
    /// non-unicode value aborts.
    pub fn default_dir() -> PathBuf {
        hpac_core::env::strict_var("HPAC_TUNER_CACHE", hpac_core::env::parse_dir)
            .unwrap_or_else(|| PathBuf::from("target/tuner-cache"))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Shard/stripe hash of a (benchmark, device) key. Bound-independent on
    /// purpose: every bound for one (benchmark, device) lands in the same
    /// shard, so neighbor enumeration is a single small directory scan.
    fn key_hash(benchmark: &str, device: &str) -> u64 {
        fnv1a(benchmark.bytes().chain("|".bytes()).chain(device.bytes()))
    }

    fn shard_dir(&self, benchmark: &str, device: &str) -> PathBuf {
        self.dir.join(format!(
            "{:02x}",
            Self::key_hash(benchmark, device) % N_SHARDS
        ))
    }

    fn stripe(benchmark: &str, device: &str) -> MutexGuard<'static, ()> {
        let idx = (Self::key_hash(benchmark, device) as usize) % N_STRIPES;
        STRIPES[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn entry_name(benchmark: &str, device: &str, bound_pct: f64) -> String {
        // Bound in basis points keeps the file name integral and unique for
        // any bound expressed to 0.01%.
        let bound_bp = (bound_pct * 100.0).round() as i64;
        format!(
            "{}__{}__{}bp.json",
            sanitize(benchmark),
            sanitize(device),
            bound_bp
        )
    }

    fn key_path(&self, benchmark: &str, device: &str, bound_pct: f64) -> PathBuf {
        self.shard_dir(benchmark, device)
            .join(Self::entry_name(benchmark, device, bound_pct))
    }

    /// Load the cached plan for a key, verifying the device fingerprint.
    /// A missing entry returns `None`; a stale or unreadable entry is
    /// deleted and also returns `None`.
    ///
    /// Reads never take a stripe lock: the file at the final path is always
    /// a complete entry (writers only `rename` onto it), and an open file
    /// handle keeps reading its inode even if a writer replaces the path
    /// mid-read. Only the invalidation *delete* serializes on the stripe,
    /// so it cannot race a concurrent write-replace and delete a fresh
    /// entry.
    pub fn load(
        &self,
        benchmark: &str,
        device: &str,
        bound_pct: f64,
        fingerprint: u64,
    ) -> Option<TunedPlan> {
        let path = self.key_path(benchmark, device, bound_pct);
        let text = std::fs::read_to_string(&path).ok()?;
        match Json::parse(&text)
            .ok()
            .and_then(|v| plan_from_json(&v, fingerprint))
        {
            Some(mut plan) => {
                plan.from_cache = true;
                Some(plan)
            }
            None => {
                // Stale fingerprint, version bump, or corrupt entry.
                let _g = Self::stripe(benchmark, device);
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Persist a plan under its (benchmark, device, bound) key, atomically:
    /// the entry is written to a uniquely-named `.tmp` file in the shard
    /// directory and renamed over the final path under the key's stripe
    /// lock. A crash mid-write leaves only temp debris; the final path
    /// never holds a partial entry.
    pub fn store(&self, plan: &TunedPlan, fingerprint: u64) -> io::Result<PathBuf> {
        let shard = self.shard_dir(&plan.benchmark, &plan.device);
        std::fs::create_dir_all(&shard)?;
        let path = self.key_path(&plan.benchmark, &plan.device, plan.bound_pct);
        let tmp = shard.join(format!(
            "{}.{}.{}.tmp",
            Self::entry_name(&plan.benchmark, &plan.device, plan.bound_pct),
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&tmp, plan_to_json(plan, fingerprint).render())?;
        {
            let _g = Self::stripe(&plan.benchmark, &plan.device);
            std::fs::rename(&tmp, &path)?;
        }
        Ok(path)
    }

    /// Every valid cached plan for (benchmark, device) — any bound — in
    /// ascending bound order. This is the warm-start source: a new bound's
    /// search seeds from the re-executable Pareto frontiers of its
    /// neighbors instead of searching cold. Entries that fail the
    /// fingerprint or version check are skipped (and deleted, as in
    /// [`TuningCache::load`]); `.tmp` debris is ignored.
    pub fn neighbors(&self, benchmark: &str, device: &str, fingerprint: u64) -> Vec<TunedPlan> {
        let shard = self.shard_dir(benchmark, device);
        let prefix = format!("{}__{}__", sanitize(benchmark), sanitize(device));
        let mut plans: Vec<TunedPlan> = Vec::new();
        let Ok(entries) = std::fs::read_dir(&shard) else {
            return plans;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if !name.starts_with(&prefix) || !name.ends_with(".json") {
                continue;
            }
            let path = entry.path();
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            match Json::parse(&text)
                .ok()
                .and_then(|v| plan_from_json(&v, fingerprint))
            {
                // Sanitization can alias names ("a b" and "a_b"); the
                // entry's own strings are authoritative.
                Some(mut plan) if plan.benchmark == benchmark && plan.device == device => {
                    plan.from_cache = true;
                    plans.push(plan);
                }
                Some(_) => {}
                None => {
                    let _g = Self::stripe(benchmark, device);
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        plans.sort_by(|a, b| a.bound_pct.total_cmp(&b.bound_pct));
        plans
    }

    /// Remove every cached entry.
    pub fn clear(&self) -> io::Result<()> {
        if self.dir.exists() {
            std::fs::remove_dir_all(&self.dir)?;
        }
        Ok(())
    }
}

fn level_str(level: HierarchyLevel) -> &'static str {
    match level {
        HierarchyLevel::Thread => "thread",
        HierarchyLevel::Warp => "warp",
        HierarchyLevel::Block => "block",
    }
}

fn level_from_str(s: &str) -> Option<HierarchyLevel> {
    match s {
        "thread" => Some(HierarchyLevel::Thread),
        "warp" => Some(HierarchyLevel::Warp),
        "block" => Some(HierarchyLevel::Block),
        _ => None,
    }
}

/// Serialize a region to JSON. Public (crate-wide) so tests can check the
/// round trip without a cache directory.
pub(crate) fn region_to_json(region: &ApproxRegion) -> Json {
    let mut fields = vec![("level".to_string(), Json::str(level_str(region.level)))];
    match &region.technique {
        Technique::Taf(p) => {
            fields.push(("technique".into(), Json::str("TAF")));
            fields.push(("hsize".into(), Json::num(p.hsize as f64)));
            fields.push(("psize".into(), Json::num(p.psize as f64)));
            fields.push(("threshold".into(), Json::num(p.threshold)));
        }
        Technique::Iact(p) => {
            fields.push(("technique".into(), Json::str("iACT")));
            fields.push(("tsize".into(), Json::num(p.tsize as f64)));
            fields.push(("threshold".into(), Json::num(p.threshold)));
            fields.push((
                "tables_per_warp".into(),
                Json::num(p.tables_per_warp as f64),
            ));
            fields.push((
                "replacement".into(),
                Json::str(match p.replacement {
                    Replacement::RoundRobin => "round_robin",
                    Replacement::Clock => "clock",
                }),
            ));
        }
        Technique::Perfo(p) => {
            fields.push(("technique".into(), Json::str("Perfo")));
            let (kind, value) = match p.kind {
                PerfoKind::Small { m } => ("small", m as f64),
                PerfoKind::Large { m } => ("large", m as f64),
                PerfoKind::Ini { fraction } => ("ini", fraction),
                PerfoKind::Fini { fraction } => ("fini", fraction),
            };
            fields.push(("kind".into(), Json::str(kind)));
            fields.push(("rate".into(), Json::num(value)));
            fields.push(("herded".into(), Json::Bool(p.herded)));
        }
    }
    Json::Obj(fields)
}

pub(crate) fn region_from_json(v: &Json) -> Option<ApproxRegion> {
    let level = level_from_str(v.get("level")?.as_str()?)?;
    let region = match v.get("technique")?.as_str()? {
        "TAF" => ApproxRegion::memo_out(
            v.get("hsize")?.as_usize()?,
            v.get("psize")?.as_usize()?,
            v.get("threshold")?.as_f64()?,
        ),
        "iACT" => {
            let replacement = match v.get("replacement")?.as_str()? {
                "round_robin" => Replacement::RoundRobin,
                "clock" => Replacement::Clock,
                _ => return None,
            };
            ApproxRegion::memo_in(v.get("tsize")?.as_usize()?, v.get("threshold")?.as_f64()?)
                .tables_per_warp(v.get("tables_per_warp")?.as_f64()? as u32)
                .replacement(replacement)
        }
        "Perfo" => {
            let rate = v.get("rate")?.as_f64()?;
            let kind = match v.get("kind")?.as_str()? {
                "small" => PerfoKind::Small { m: rate as u32 },
                "large" => PerfoKind::Large { m: rate as u32 },
                "ini" => PerfoKind::Ini { fraction: rate },
                "fini" => PerfoKind::Fini { fraction: rate },
                _ => return None,
            };
            ApproxRegion::perfo(kind).herded(v.get("herded")?.as_bool()?)
        }
        _ => return None,
    };
    Some(region.level(level))
}

fn lp_to_json(lp: &LaunchParams) -> Json {
    Json::Obj(vec![
        (
            "items_per_thread".into(),
            Json::num(lp.items_per_thread as f64),
        ),
        ("block_size".into(), Json::num(lp.block_size as f64)),
    ])
}

fn lp_from_json(v: &Json) -> Option<LaunchParams> {
    Some(LaunchParams::new(
        v.get("items_per_thread")?.as_usize()?,
        v.get("block_size")?.as_f64()? as u32,
    ))
}

fn frontier_to_json(frontier: &ParetoFrontier) -> Json {
    Json::Arr(
        frontier
            .points()
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("speedup".into(), Json::num(p.speedup)),
                    ("error_pct".into(), Json::num(p.error_pct)),
                    ("technique".into(), Json::str(p.technique.clone())),
                    ("config".into(), Json::str(p.config.clone())),
                    (
                        "items_per_thread".into(),
                        Json::num(p.items_per_thread as f64),
                    ),
                    (
                        "region".into(),
                        p.region.as_ref().map_or(Json::Null, region_to_json),
                    ),
                    ("lp".into(), p.lp.as_ref().map_or(Json::Null, lp_to_json)),
                ])
            })
            .collect(),
    )
}

fn frontier_from_json(v: &Json) -> Option<ParetoFrontier> {
    let mut frontier = ParetoFrontier::new();
    for item in v.as_arr()? {
        let region = match item.get("region")? {
            Json::Null => None,
            r => Some(region_from_json(r)?),
        };
        let lp = match item.get("lp")? {
            Json::Null => None,
            l => Some(lp_from_json(l)?),
        };
        frontier.insert(ParetoPoint {
            speedup: item.get("speedup")?.as_f64()?,
            error_pct: item.get("error_pct")?.as_f64()?,
            technique: item.get("technique")?.as_str()?.to_string(),
            config: item.get("config")?.as_str()?.to_string(),
            items_per_thread: item.get("items_per_thread")?.as_usize()?,
            region,
            lp,
        });
    }
    Some(frontier)
}

fn plan_to_json(plan: &TunedPlan, fingerprint: u64) -> Json {
    Json::Obj(vec![
        ("version".into(), Json::num(CACHE_VERSION)),
        // u64 splits into two 32-bit halves to stay within f64's exact
        // integer range.
        (
            "fingerprint_hi".into(),
            Json::num((fingerprint >> 32) as f64),
        ),
        (
            "fingerprint_lo".into(),
            Json::num((fingerprint & 0xFFFF_FFFF) as f64),
        ),
        ("benchmark".into(), Json::str(plan.benchmark.clone())),
        ("device".into(), Json::str(plan.device.clone())),
        ("bound_pct".into(), Json::num(plan.bound_pct)),
        (
            "region".into(),
            plan.region.as_ref().map_or(Json::Null, region_to_json),
        ),
        ("lp".into(), lp_to_json(&plan.lp)),
        ("technique".into(), Json::str(plan.technique.clone())),
        ("config".into(), Json::str(plan.config.clone())),
        (
            "predicted_speedup".into(),
            Json::num(plan.predicted_speedup),
        ),
        (
            "measured_error_pct".into(),
            Json::num(plan.measured_error_pct),
        ),
        ("baseline_lp".into(), lp_to_json(&plan.baseline_lp)),
        ("evaluations".into(), Json::num(plan.evaluations as f64)),
        ("full_space".into(), Json::num(plan.full_space as f64)),
        ("frontier".into(), frontier_to_json(&plan.frontier)),
    ])
}

fn plan_from_json(v: &Json, expected_fingerprint: u64) -> Option<TunedPlan> {
    if v.get("version")?.as_f64()? != CACHE_VERSION {
        return None;
    }
    let hi = v.get("fingerprint_hi")?.as_f64()? as u64;
    let lo = v.get("fingerprint_lo")?.as_f64()? as u64;
    if (hi << 32) | lo != expected_fingerprint {
        return None;
    }
    let region = match v.get("region")? {
        Json::Null => None,
        r => Some(region_from_json(r)?),
    };
    Some(TunedPlan {
        benchmark: v.get("benchmark")?.as_str()?.to_string(),
        device: v.get("device")?.as_str()?.to_string(),
        bound_pct: v.get("bound_pct")?.as_f64()?,
        region,
        lp: lp_from_json(v.get("lp")?)?,
        technique: v.get("technique")?.as_str()?.to_string(),
        config: v.get("config")?.as_str()?.to_string(),
        predicted_speedup: v.get("predicted_speedup")?.as_f64()?,
        measured_error_pct: v.get("measured_error_pct")?.as_f64()?,
        baseline_lp: lp_from_json(v.get("baseline_lp")?)?,
        evaluations: v.get("evaluations")?.as_usize()?,
        full_space: v.get("full_space")?.as_usize()?,
        from_cache: false,
        frontier: frontier_from_json(v.get("frontier")?)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> TunedPlan {
        sample_plan_at(5.0)
    }

    fn sample_plan_at(bound_pct: f64) -> TunedPlan {
        let taf_region = ApproxRegion::memo_out(2, 32, 0.9).level(HierarchyLevel::Warp);
        let mut frontier = ParetoFrontier::new();
        frontier.insert(ParetoPoint {
            speedup: 1.4,
            error_pct: 0.5,
            technique: "TAF".into(),
            config: "h=2 p=32 thr=0.9 lvl=warp ipt=16".into(),
            items_per_thread: 16,
            region: Some(taf_region),
            lp: Some(LaunchParams::new(16, 256)),
        });
        frontier.insert(ParetoPoint {
            speedup: 2.1,
            error_pct: 4.0,
            technique: "Perfo".into(),
            config: "large:8 ipt=16".into(),
            items_per_thread: 16,
            region: Some(ApproxRegion::perfo(PerfoKind::Large { m: 8 })),
            lp: Some(LaunchParams::new(16, 256)),
        });
        TunedPlan {
            benchmark: "Blackscholes".into(),
            device: "V100".into(),
            bound_pct,
            region: Some(taf_region),
            lp: LaunchParams::new(16, 256),
            technique: "TAF".into(),
            config: "h=2 p=32 thr=0.9 lvl=warp ipt=16".into(),
            predicted_speedup: 2.1,
            measured_error_pct: 4.0,
            baseline_lp: LaunchParams::new(8, 256),
            evaluations: 123,
            full_space: 7854,
            from_cache: false,
            frontier,
        }
    }

    fn temp_cache(tag: &str) -> TuningCache {
        TuningCache::new(std::env::temp_dir().join(format!("hpac_tuner_cache_{tag}")))
    }

    #[test]
    fn store_load_roundtrip() {
        let cache = temp_cache("roundtrip");
        let _ = cache.clear();
        let plan = sample_plan();
        cache.store(&plan, 42).unwrap();
        let loaded = cache.load("Blackscholes", "V100", 5.0, 42).unwrap();
        assert!(loaded.from_cache);
        assert_eq!(loaded.config, plan.config);
        assert_eq!(loaded.region, plan.region);
        assert_eq!(loaded.lp, plan.lp);
        assert_eq!(loaded.evaluations, plan.evaluations);
        assert_eq!(loaded.frontier.len(), plan.frontier.len());
        assert_eq!(loaded.predicted_speedup, plan.predicted_speedup);
        cache.clear().unwrap();
    }

    #[test]
    fn frontier_points_roundtrip_reexecutable() {
        let cache = temp_cache("reexec");
        let _ = cache.clear();
        let plan = sample_plan();
        cache.store(&plan, 42).unwrap();
        let loaded = cache.load("Blackscholes", "V100", 5.0, 42).unwrap();
        for (orig, back) in plan.frontier.points().iter().zip(loaded.frontier.points()) {
            assert_eq!(orig.region, back.region);
            assert_eq!(orig.lp, back.lp);
            let cfg = back.to_config().expect("search points carry configs");
            assert_eq!(cfg.label, back.config);
            assert_eq!(Some(cfg.region), back.region);
        }
        cache.clear().unwrap();
    }

    #[test]
    fn entries_land_in_shard_subdirectories() {
        let cache = temp_cache("shards");
        let _ = cache.clear();
        let path = cache.store(&sample_plan(), 42).unwrap();
        let shard = path.parent().unwrap();
        assert_eq!(shard.parent().unwrap(), cache.dir());
        let shard_name = shard.file_name().unwrap().to_str().unwrap();
        assert_eq!(shard_name.len(), 2, "two-hex-digit shard dir: {shard_name}");
        assert!(u64::from_str_radix(shard_name, 16).unwrap() < N_SHARDS);
        cache.clear().unwrap();
    }

    #[test]
    fn store_leaves_no_tmp_files_on_success() {
        let cache = temp_cache("tmpclean");
        let _ = cache.clear();
        let path = cache.store(&sample_plan(), 42).unwrap();
        let shard = path.parent().unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(shard)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "tmp debris after clean store");
        cache.clear().unwrap();
    }

    #[test]
    fn fingerprint_mismatch_invalidates() {
        let cache = temp_cache("fingerprint");
        let _ = cache.clear();
        let plan = sample_plan();
        let path = cache.store(&plan, 42).unwrap();
        assert!(cache.load("Blackscholes", "V100", 5.0, 43).is_none());
        assert!(!path.exists(), "stale entry must be deleted");
        cache.clear().unwrap();
    }

    #[test]
    fn corrupt_entry_invalidates() {
        let cache = temp_cache("corrupt");
        let _ = cache.clear();
        let plan = sample_plan();
        let path = cache.store(&plan, 42).unwrap();
        std::fs::write(&path, "{not json").unwrap();
        assert!(cache.load("Blackscholes", "V100", 5.0, 42).is_none());
        assert!(!path.exists());
        cache.clear().unwrap();
    }

    #[test]
    fn missing_entry_is_none() {
        let cache = temp_cache("missing");
        let _ = cache.clear();
        assert!(cache.load("Nope", "V100", 5.0, 42).is_none());
    }

    #[test]
    fn keys_distinguish_bounds_and_devices() {
        let cache = temp_cache("keys");
        let _ = cache.clear();
        let plan = sample_plan();
        cache.store(&plan, 42).unwrap();
        assert!(cache.load("Blackscholes", "V100", 1.0, 42).is_none());
        assert!(cache.load("Blackscholes", "MI250X", 5.0, 42).is_none());
        assert!(cache.load("Blackscholes", "V100", 5.0, 42).is_some());
        cache.clear().unwrap();
    }

    #[test]
    fn neighbors_lists_all_bounds_sorted() {
        let cache = temp_cache("neighbors");
        let _ = cache.clear();
        for bound in [8.0, 2.0, 5.0] {
            cache.store(&sample_plan_at(bound), 42).unwrap();
        }
        // A different benchmark in (likely) another shard must not appear.
        let mut other = sample_plan_at(5.0);
        other.benchmark = "KMeans".into();
        cache.store(&other, 42).unwrap();

        let ns = cache.neighbors("Blackscholes", "V100", 42);
        assert_eq!(
            ns.iter().map(|p| p.bound_pct).collect::<Vec<_>>(),
            vec![2.0, 5.0, 8.0]
        );
        assert!(ns.iter().all(|p| p.from_cache));
        assert!(ns.iter().all(|p| p.benchmark == "Blackscholes"));
        // Wrong fingerprint: nothing survives (and entries are purged).
        assert!(cache.neighbors("Blackscholes", "V100", 43).is_empty());
        assert!(cache.neighbors("Blackscholes", "V100", 42).is_empty());
        cache.clear().unwrap();
    }

    #[test]
    fn concurrent_store_load_never_sees_partial_entries() {
        // Writers replace the same key while readers hammer load(): with
        // atomic write-replace every load must return a complete entry or
        // None — a parse failure would delete the entry, so a full round
        // of None-free loads after the writers join is the strongest
        // signal nothing was ever torn.
        let cache = temp_cache("concurrent");
        let _ = cache.clear();
        cache.store(&sample_plan(), 42).unwrap();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = cache.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        c.store(&sample_plan(), 42).unwrap();
                    }
                });
            }
            for _ in 0..4 {
                let c = cache.clone();
                s.spawn(move || {
                    for _ in 0..200 {
                        let plan = c
                            .load("Blackscholes", "V100", 5.0, 42)
                            .expect("entry must never be torn or missing");
                        assert_eq!(plan.frontier.len(), 2);
                    }
                });
            }
        });
        cache.clear().unwrap();
    }

    #[test]
    fn region_json_roundtrips_all_techniques() {
        let regions = [
            ApproxRegion::memo_out(3, 5, 1.5).level(HierarchyLevel::Block),
            ApproxRegion::memo_in(4, 0.5)
                .tables_per_warp(16)
                .level(HierarchyLevel::Warp),
            ApproxRegion::memo_in(2, 0.1).replacement(Replacement::Clock),
            ApproxRegion::perfo(PerfoKind::Small { m: 8 }),
            ApproxRegion::perfo(PerfoKind::Large { m: 4 }).herded(false),
            ApproxRegion::perfo(PerfoKind::Ini { fraction: 0.3 }),
            ApproxRegion::perfo(PerfoKind::Fini { fraction: 0.7 }),
        ];
        for region in regions {
            let json = region_to_json(&region);
            let back = region_from_json(&Json::parse(&json.render()).unwrap()).unwrap();
            assert_eq!(back, region);
        }
    }

    #[test]
    fn device_fingerprints_differ_and_are_stable() {
        let v100 = DeviceSpec::v100();
        let mi = DeviceSpec::mi250x();
        assert_eq!(device_fingerprint(&v100), device_fingerprint(&v100));
        assert_ne!(device_fingerprint(&v100), device_fingerprint(&mi));
        let mut tweaked = v100;
        tweaked.sm_count += 1;
        assert_ne!(device_fingerprint(&v100), device_fingerprint(&tweaked));
        let mut recalibrated = v100;
        recalibrated.costs.global_txn_cycles *= 1.01;
        assert_ne!(device_fingerprint(&v100), device_fingerprint(&recalibrated));
    }
}
