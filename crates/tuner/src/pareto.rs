//! Incremental Pareto frontier over (speedup, QoI error).
//!
//! The offline harness inspects full speedup/error clouds (Fig 6's
//! "highest speedup where error < 10%" query runs over every executed
//! configuration). An online tuner cannot keep clouds around; it keeps only
//! the non-dominated boundary — every point that is fastest for *some*
//! error budget — and answers any quality bound from that curve.

/// One non-dominated configuration on the speedup/error tradeoff curve.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Speedup over the accurate baseline.
    pub speedup: f64,
    /// QoI error in percent (MAPE × 100 or MCR × 100).
    pub error_pct: f64,
    /// "TAF", "iACT", or "Perfo".
    pub technique: String,
    /// Human-readable parameter description (`SweepConfig::label`).
    pub config: String,
    pub items_per_thread: usize,
    /// The fully parameterized region behind this point, when known.
    /// Frontier points recorded by the search always carry it; it is what
    /// makes a cached frontier *re-executable* — a warm-started search
    /// re-evaluates neighboring bounds' points as concrete configurations
    /// instead of searching cold.
    pub region: Option<hpac_core::region::ApproxRegion>,
    /// Launch shape for [`ParetoPoint::region`], when known.
    pub lp: Option<hpac_apps::common::LaunchParams>,
}

impl ParetoPoint {
    /// The concrete sweep configuration behind this point, when the point
    /// carries one (points from schema-v1 caches do not).
    pub fn to_config(&self) -> Option<hpac_harness::space::SweepConfig> {
        Some(hpac_harness::space::SweepConfig {
            region: self.region?,
            lp: self.lp?,
            label: self.config.clone(),
        })
    }
}

impl ParetoPoint {
    /// Strict Pareto dominance: at least as good on both objectives and
    /// strictly better on at least one.
    pub fn dominates(&self, other: &ParetoPoint) -> bool {
        self.speedup >= other.speedup
            && self.error_pct <= other.error_pct
            && (self.speedup > other.speedup || self.error_pct < other.error_pct)
    }

    fn same_coords(&self, other: &ParetoPoint) -> bool {
        self.speedup == other.speedup && self.error_pct == other.error_pct
    }
}

/// The frontier: a set of mutually non-dominated points, kept sorted by
/// error (ascending — and therefore speedup ascending too).
#[derive(Debug, Clone, Default)]
pub struct ParetoFrontier {
    points: Vec<ParetoPoint>,
}

impl ParetoFrontier {
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a candidate. Returns `true` if the frontier changed; a
    /// candidate dominated by (or coordinate-equal to) an existing point is
    /// a no-op, and points with non-finite or non-positive coordinates are
    /// rejected outright.
    pub fn insert(&mut self, candidate: ParetoPoint) -> bool {
        if !candidate.speedup.is_finite()
            || !candidate.error_pct.is_finite()
            || candidate.speedup <= 0.0
            || candidate.error_pct < 0.0
        {
            hpac_obs::inc(hpac_obs::CounterId::ParetoRejects);
            return false;
        }
        if self
            .points
            .iter()
            .any(|p| p.dominates(&candidate) || p.same_coords(&candidate))
        {
            hpac_obs::inc(hpac_obs::CounterId::ParetoRejects);
            return false;
        }
        let before = self.points.len();
        self.points.retain(|p| !candidate.dominates(p));
        if hpac_obs::enabled() {
            hpac_obs::add(
                hpac_obs::CounterId::ParetoPrunes,
                (before - self.points.len()) as u64,
            );
            hpac_obs::inc(hpac_obs::CounterId::ParetoInserts);
        }
        let at = self
            .points
            .partition_point(|p| p.error_pct < candidate.error_pct);
        self.points.insert(at, candidate);
        true
    }

    /// The fastest point with error at or below `max_error_pct` — the
    /// tuner's answer to "give me the fastest configuration with ≤ X% error".
    pub fn best_under(&self, max_error_pct: f64) -> Option<&ParetoPoint> {
        // Sorted by error ascending ⇒ speedup ascending: the last feasible
        // point is the fastest feasible one.
        self.points
            .iter()
            .rev()
            .find(|p| p.error_pct <= max_error_pct)
    }

    /// Speedup of the frontier's exact point (error of exactly zero), if
    /// one exists. Since error cannot go below zero, this point dominates
    /// *any* strictly slower candidate whatever that candidate's error
    /// turns out to be — the domination proof behind frontier-aware early
    /// abort. Sorted by error ascending, so only the first point can
    /// qualify.
    pub fn zero_error_speedup(&self) -> Option<f64> {
        self.points
            .first()
            .filter(|p| p.error_pct == 0.0)
            .map(|p| p.speedup)
    }

    /// Points in ascending error order.
    pub fn points(&self) -> &[ParetoPoint] {
        &self.points
    }

    pub fn len(&self) -> usize {
        self.points.len()
    }

    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(speedup: f64, error_pct: f64) -> ParetoPoint {
        ParetoPoint {
            speedup,
            error_pct,
            technique: "TAF".into(),
            config: format!("s={speedup} e={error_pct}"),
            items_per_thread: 8,
            region: None,
            lp: None,
        }
    }

    #[test]
    fn insert_keeps_non_dominated() {
        let mut f = ParetoFrontier::new();
        assert!(f.insert(pt(1.2, 1.0)));
        assert!(f.insert(pt(2.0, 5.0)));
        assert!(f.insert(pt(1.5, 2.0)));
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn dominated_insert_is_noop() {
        let mut f = ParetoFrontier::new();
        assert!(f.insert(pt(2.0, 1.0)));
        assert!(!f.insert(pt(1.5, 2.0)), "slower and less accurate");
        assert!(!f.insert(pt(2.0, 1.0)), "exact duplicate");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn dominating_insert_prunes() {
        let mut f = ParetoFrontier::new();
        f.insert(pt(1.2, 2.0));
        f.insert(pt(1.5, 4.0));
        assert!(f.insert(pt(2.0, 1.0)), "dominates both");
        assert_eq!(f.len(), 1);
        assert_eq!(f.points()[0].speedup, 2.0);
    }

    #[test]
    fn non_finite_and_non_positive_rejected() {
        let mut f = ParetoFrontier::new();
        assert!(!f.insert(pt(f64::INFINITY, 1.0)));
        assert!(!f.insert(pt(1.0, f64::INFINITY)));
        assert!(!f.insert(pt(0.0, 1.0)));
        assert!(!f.insert(pt(1.0, -0.5)));
        assert!(f.is_empty());
    }

    #[test]
    fn best_under_picks_fastest_feasible() {
        let mut f = ParetoFrontier::new();
        f.insert(pt(1.2, 0.5));
        f.insert(pt(1.8, 3.0));
        f.insert(pt(3.0, 9.0));
        assert_eq!(f.best_under(5.0).unwrap().speedup, 1.8);
        assert_eq!(f.best_under(20.0).unwrap().speedup, 3.0);
        assert_eq!(f.best_under(1.0).unwrap().speedup, 1.2);
        assert!(f.best_under(0.1).is_none());
    }

    #[test]
    fn zero_error_speedup_requires_exact_point() {
        let mut f = ParetoFrontier::new();
        assert_eq!(f.zero_error_speedup(), None);
        f.insert(pt(1.8, 3.0));
        assert_eq!(f.zero_error_speedup(), None);
        f.insert(pt(1.4, 0.0));
        assert_eq!(f.zero_error_speedup(), Some(1.4));
        // A faster exact point replaces the slower one.
        f.insert(pt(1.6, 0.0));
        assert_eq!(f.zero_error_speedup(), Some(1.6));
    }

    #[test]
    fn frontier_sorted_by_error() {
        let mut f = ParetoFrontier::new();
        f.insert(pt(3.0, 9.0));
        f.insert(pt(1.2, 0.5));
        f.insert(pt(1.8, 3.0));
        let errs: Vec<f64> = f.points().iter().map(|p| p.error_pct).collect();
        assert_eq!(errs, vec![0.5, 3.0, 9.0]);
    }
}
