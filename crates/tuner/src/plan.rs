//! Tuning requests and results: the quality bound and the executable plan.

use crate::pareto::ParetoFrontier;
use gpu_sim::DeviceSpec;
use hpac_apps::common::{Benchmark, LaunchParams};
use hpac_core::exec::ExecOptions;
use hpac_core::region::{ApproxRegion, RegionError};

/// The caller's quality constraint: maximum acceptable QoI error, in
/// percent (MAPE × 100 or MCR × 100, matching the harness database).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityBound {
    pub max_error_pct: f64,
}

impl QualityBound {
    /// `QualityBound::percent(5.0)` = "at most 5% error".
    pub fn percent(max_error_pct: f64) -> Self {
        assert!(
            max_error_pct.is_finite() && max_error_pct >= 0.0,
            "quality bound must be a finite non-negative percentage"
        );
        QualityBound { max_error_pct }
    }
}

/// The tuner's answer: a configuration choice that can be re-executed, plus
/// the evidence behind it.
#[derive(Debug, Clone)]
pub struct TunedPlan {
    pub benchmark: String,
    pub device: String,
    pub bound_pct: f64,
    /// The chosen approximated region, or `None` when no approximate
    /// configuration met the bound (run accurately).
    pub region: Option<ApproxRegion>,
    /// Launch shape for the chosen configuration.
    pub lp: LaunchParams,
    /// "TAF", "iACT", "Perfo", or "accurate".
    pub technique: String,
    /// Human-readable parameter description of the choice.
    pub config: String,
    /// Speedup the search measured for this configuration.
    pub predicted_speedup: f64,
    /// QoI error the search measured for this configuration, in percent.
    pub measured_error_pct: f64,
    /// Best non-approximated launch shape (the speedup denominator).
    pub baseline_lp: LaunchParams,
    /// Fresh configuration executions the search spent.
    pub evaluations: usize,
    /// Size of the full Table 2 space for this benchmark/device — the
    /// denominator for the evaluation-budget claim.
    pub full_space: usize,
    /// Whether this plan was served from the persistent cache.
    pub from_cache: bool,
    /// The full (speedup, error) tradeoff curve the search uncovered.
    pub frontier: ParetoFrontier,
}

/// Outcome of re-executing a plan through the apps layer.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    pub speedup: f64,
    pub error_pct: f64,
    pub end_to_end_seconds: f64,
}

impl TunedPlan {
    /// Fraction of the full design space the search evaluated.
    pub fn budget_fraction_used(&self) -> f64 {
        if self.full_space == 0 {
            0.0
        } else {
            self.evaluations as f64 / self.full_space as f64
        }
    }

    /// Whether the plan's measured error respects its bound.
    pub fn respects_bound(&self) -> bool {
        self.measured_error_pct <= self.bound_pct
    }

    /// Re-execute the plan through the apps layer: accurate baseline at the
    /// stored baseline launch shape, then the chosen configuration, and
    /// report fresh speedup and error. `bench` must be the application the
    /// plan was tuned for.
    pub fn execute(
        &self,
        bench: &dyn Benchmark,
        spec: &DeviceSpec,
    ) -> Result<ExecutionReport, RegionError> {
        self.execute_opts(bench, spec, &ExecOptions::default())
    }

    /// [`TunedPlan::execute`] with explicit execution options: both the
    /// baseline and the chosen configuration run through the staged
    /// pipeline on the selected executor — under
    /// [`Executor::ParallelBlocks`](hpac_core::exec::Executor) each
    /// launch fans its blocks out on the shared persistent
    /// [`engine`](hpac_core::exec::engine) worker pool.
    pub fn execute_opts(
        &self,
        bench: &dyn Benchmark,
        spec: &DeviceSpec,
        opts: &ExecOptions,
    ) -> Result<ExecutionReport, RegionError> {
        assert_eq!(
            bench.name(),
            self.benchmark,
            "plan was tuned for a different benchmark"
        );
        let kernel_only = bench.kernel_only_timing();
        let baseline = bench.run_opts(spec, None, &self.baseline_lp, opts)?;
        let chosen = bench.run_opts(spec, self.region.as_ref(), &self.lp, opts)?;
        let error_pct = chosen.qoi.error_vs(&baseline.qoi) * 100.0;
        let speedup =
            baseline.timing_basis_seconds(kernel_only) / chosen.timing_basis_seconds(kernel_only);
        Ok(ExecutionReport {
            speedup,
            error_pct,
            end_to_end_seconds: chosen.end_to_end_seconds(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_apps::blackscholes::Blackscholes;

    fn accurate_plan(bench: &Blackscholes) -> TunedPlan {
        TunedPlan {
            benchmark: bench.name().to_string(),
            device: "V100".into(),
            bound_pct: 5.0,
            region: None,
            lp: LaunchParams::new(8, 256),
            technique: "accurate".into(),
            config: "accurate".into(),
            predicted_speedup: 1.0,
            measured_error_pct: 0.0,
            baseline_lp: LaunchParams::new(8, 256),
            evaluations: 0,
            full_space: 100,
            from_cache: false,
            frontier: ParetoFrontier::new(),
        }
    }

    #[test]
    fn accurate_plan_executes_at_unity() {
        let bench = Blackscholes {
            n_options: 2048,
            ..Blackscholes::default()
        };
        let spec = DeviceSpec::v100();
        let report = accurate_plan(&bench).execute(&bench, &spec).unwrap();
        assert!((report.speedup - 1.0).abs() < 1e-9);
        assert!(report.error_pct.abs() < 1e-12);
        assert!(report.end_to_end_seconds > 0.0);
    }

    #[test]
    fn approx_plan_executes_with_speedup() {
        let bench = Blackscholes {
            n_options: 2048,
            ..Blackscholes::default()
        };
        let spec = DeviceSpec::v100();
        let mut plan = accurate_plan(&bench);
        plan.region = Some(ApproxRegion::memo_out(2, 64, 5.0));
        plan.lp = LaunchParams::new(16, 256);
        let report = plan.execute(&bench, &spec).unwrap();
        assert!(report.speedup > 1.0, "speedup {}", report.speedup);
        assert!(report.error_pct.is_finite());
    }

    #[test]
    #[should_panic(expected = "different benchmark")]
    fn execute_rejects_wrong_benchmark() {
        let bench = Blackscholes::default();
        let mut plan = accurate_plan(&bench);
        plan.benchmark = "LULESH".into();
        let _ = plan.execute(&bench, &DeviceSpec::v100());
    }

    #[test]
    fn budget_fraction_and_bound_helpers() {
        let bench = Blackscholes::default();
        let mut plan = accurate_plan(&bench);
        plan.evaluations = 10;
        plan.full_space = 200;
        assert!((plan.budget_fraction_used() - 0.05).abs() < 1e-12);
        assert!(plan.respects_bound());
        plan.measured_error_pct = 7.5;
        assert!(!plan.respects_bound());
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn bound_rejects_negative() {
        let _ = QualityBound::percent(-1.0);
    }
}
