//! Minimal JSON tree, writer, and parser for the tuning cache.
//!
//! Hand-rolled for the same reason the harness database hand-rolls its CSV:
//! the schema is flat, fully owned here, and the container builds offline —
//! a serde dependency buys nothing.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Parse failure: byte offset and message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64()
            .filter(|v| *v >= 0.0 && v.fract() == 0.0)
            .map(|v| v as usize)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization. Non-finite numbers render as `null` (JSON has
    /// no representation for them; the cache never stores any).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest round-tripping form.
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content"));
        }
        Ok(v)
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("malformed \\u escape"))?;
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through untouched.
                    let s = &self.bytes[self.pos..];
                    let ch_len = match s[0] {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("K-Means")),
            ("speedup".into(), Json::num(1.4375)),
            ("cache".into(), Json::Bool(true)),
            ("missing".into(), Json::Null),
            (
                "points".into(),
                Json::Arr(vec![Json::num(1.0), Json::num(2.5)]),
            ),
        ]);
        let text = v.render();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::str("quote \" slash \\ newline \n tab \t control \u{1}");
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn unicode_passes_through() {
        let v = Json::str("grüße 💡 λ");
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn f64_roundtrips_exactly() {
        for x in [0.1, 1.0 / 3.0, 1e-300, 6.02e23, -0.0, 57288.0] {
            let text = Json::num(x).render();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn non_finite_renders_null() {
        assert_eq!(Json::num(f64::INFINITY).render(), "null");
        assert_eq!(Json::num(f64::NAN).render(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] , \"b\" : null } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b"), Some(&Json::Null));
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\":3,\"s\":\"x\",\"b\":false}").unwrap();
        assert_eq!(v.get("n").unwrap().as_usize(), Some(3));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("nope"), None);
        assert_eq!(Json::num(1.5).as_usize(), None);
        assert_eq!(Json::num(-1.0).as_usize(), None);
    }
}
