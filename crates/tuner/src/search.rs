//! Adaptive search strategies over the technique grids.
//!
//! `Scale::Full` sweeps evaluate every point of the Table 2 product (the
//! paper ran 57k+ configurations). The strategies here walk the same grids
//! while evaluating orders of magnitude fewer points:
//!
//! * [`SearchStrategy::Random`] — uniform sampling; the baseline every
//!   adaptive method must beat.
//! * [`SearchStrategy::CoordinateDescent`] — axis-wise hill climbing from
//!   the grid midpoint with random restarts. The paper's axes are
//!   individually monotone-ish (thresholds trade error for speed, psize
//!   trades error for speed), which is exactly when coordinate descent
//!   shines.
//! * [`SearchStrategy::SuccessiveHalving`] — halving over *grid
//!   resolution*: a coarse lattice is sampled, survivors seed a finer
//!   lattice around themselves, and the stride halves each rung until the
//!   native grid resolution is reached.
//!
//! Every evaluated point feeds the shared [`ParetoFrontier`], so the tuner
//! keeps the whole tradeoff curve, not just the bound-feasible winner.

use crate::grid::Grid;
use crate::pareto::{ParetoFrontier, ParetoPoint};
use gpu_sim::DeviceSpec;
use hpac_apps::common::{Benchmark, LaunchParams};
use hpac_core::exec::{engine, ExecOptions};
use hpac_core::region::ApproxRegion;
use hpac_harness::runner::{self, Baseline, ConfigOutcome};
use hpac_harness::space::SweepConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// How the tuner walks a technique grid.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchStrategy {
    /// Uniform random sampling of `samples` configurations per grid.
    Random { samples: usize },
    /// Axis-wise hill climbing: `restarts` starting points, each swept
    /// axis-by-axis until a full sweep makes no move (at most `max_sweeps`).
    CoordinateDescent { max_sweeps: usize, restarts: usize },
    /// Coarse-to-fine lattice refinement: `population` random points on a
    /// coarse lattice; each rung keeps the better half and halves the
    /// lattice stride, for at most `rungs` rungs.
    SuccessiveHalving { population: usize, rungs: usize },
}

impl Default for SearchStrategy {
    fn default() -> Self {
        SearchStrategy::CoordinateDescent {
            max_sweeps: 4,
            restarts: 2,
        }
    }
}

/// One evaluated configuration, kept so a frontier point can be turned back
/// into an executable plan.
#[derive(Debug, Clone)]
pub struct Evaluated {
    pub region: ApproxRegion,
    pub lp: LaunchParams,
    pub technique: &'static str,
    pub speedup: f64,
    pub error_pct: f64,
}

/// Budgeted, memoizing configuration evaluator shared by all grids of one
/// tuning request.
pub struct Evaluator<'a> {
    bench: &'a dyn Benchmark,
    spec: &'a DeviceSpec,
    baseline: &'a Baseline,
    budget: usize,
    /// Fresh (non-memoized) configuration executions so far.
    pub evaluations: usize,
    pub frontier: ParetoFrontier,
    /// Configurations abandoned by the frontier-aware cost ceiling: their
    /// modeled-cost lower bound already proved them slower than the
    /// frontier's zero-error point, which dominates them at any error.
    pub aborted: Vec<SweepConfig>,
    /// label → outcome; `None` records a configuration rejected at launch
    /// or abandoned by the cost ceiling.
    seen: HashMap<String, Option<Evaluated>>,
    /// canonical execution key → label of the evaluated representative
    /// ([`runner::canonical_key`]); equal-key configurations reuse its
    /// outcome instead of re-executing.
    canon_seen: HashMap<Vec<u64>, String>,
}

impl<'a> Evaluator<'a> {
    pub fn new(
        bench: &'a dyn Benchmark,
        spec: &'a DeviceSpec,
        baseline: &'a Baseline,
        budget: usize,
    ) -> Self {
        Evaluator {
            bench,
            spec,
            baseline,
            budget,
            evaluations: 0,
            frontier: ParetoFrontier::new(),
            aborted: Vec::new(),
            seen: HashMap::new(),
            canon_seen: HashMap::new(),
        }
    }

    /// Evaluations left before the budget is exhausted.
    pub fn remaining(&self) -> usize {
        self.budget.saturating_sub(self.evaluations)
    }

    /// Outcome of a previously evaluated configuration.
    pub fn lookup(&self, label: &str) -> Option<&Evaluated> {
        self.seen.get(label).and_then(|o| o.as_ref())
    }

    /// Evaluate a batch, running fresh configurations in parallel on the
    /// shared [`engine`] (nested kernel fan-outs run inline on each config
    /// task's worker). Returns one outcome per input configuration
    /// (memoized results included); fresh work beyond the remaining budget
    /// is skipped and reported as `None`.
    pub fn eval_batch(&mut self, configs: &[SweepConfig]) -> Vec<Option<Evaluated>> {
        let mut fresh: Vec<&SweepConfig> = Vec::new();
        // (duplicate config, label of its canonical representative).
        let mut dups: Vec<(&SweepConfig, String)> = Vec::new();
        for cfg in configs {
            if self.seen.contains_key(&cfg.label)
                || fresh.iter().any(|f| f.label == cfg.label)
                || dups.iter().any(|(d, _)| d.label == cfg.label)
            {
                continue;
            }
            let key = runner::canonical_key(self.bench, self.spec, cfg);
            if let Some(rep) = key.as_ref().and_then(|k| self.canon_seen.get(k)) {
                dups.push((cfg, rep.clone()));
                continue;
            }
            if fresh.len() >= self.remaining() {
                continue;
            }
            if let Some(key) = key {
                self.canon_seen.insert(key, cfg.label.clone());
            }
            fresh.push(cfg);
        }
        // Frontier-aware early abort: a zero-error frontier point at
        // speedup S₀ dominates anything slower than baseline/S₀ seconds,
        // so the walk may abandon a config once its modeled-cost lower
        // bound crosses that ceiling.
        let opts = ExecOptions {
            abort_above_seconds: self
                .frontier
                .zero_error_speedup()
                .map(|s0| self.baseline.seconds / s0),
            ..ExecOptions::default()
        };
        let (bench, spec, baseline) = (self.bench, self.spec, self.baseline);
        let outcomes: Vec<ConfigOutcome> =
            engine().run(fresh.len(), engine().default_width(), |i| {
                runner::run_config_bounded(bench, spec, baseline, fresh[i], &opts)
            });
        self.evaluations += fresh.len();
        if hpac_obs::enabled() {
            hpac_obs::add(hpac_obs::CounterId::TunerEvals, fresh.len() as u64);
            hpac_obs::add(
                hpac_obs::CounterId::TunerEvalsSkipped,
                (configs.len() - fresh.len()) as u64,
            );
        }
        for (cfg, outcome) in fresh.iter().zip(outcomes) {
            let outcome = match outcome {
                ConfigOutcome::Done(row) => Some(Evaluated {
                    region: cfg.region,
                    lp: cfg.lp,
                    technique: cfg.region.technique_name(),
                    speedup: row.speedup,
                    error_pct: row.error_pct,
                }),
                ConfigOutcome::Aborted(_) => {
                    self.aborted.push((*cfg).clone());
                    None
                }
                ConfigOutcome::Rejected(..) => None,
            };
            if let Some(ev) = &outcome {
                self.frontier.insert(ParetoPoint {
                    speedup: ev.speedup,
                    error_pct: ev.error_pct,
                    technique: ev.technique.to_string(),
                    config: cfg.label.clone(),
                    items_per_thread: ev.lp.items_per_thread,
                    region: Some(ev.region),
                    lp: Some(ev.lp),
                });
            }
            self.seen.insert(cfg.label.clone(), outcome);
        }
        for (cfg, rep_label) in dups {
            hpac_obs::inc(hpac_obs::CounterId::ConfigsDeduped);
            let synth = self
                .seen
                .get(&rep_label)
                .cloned()
                .flatten()
                .map(|rep| Evaluated {
                    region: cfg.region,
                    lp: cfg.lp,
                    technique: cfg.region.technique_name(),
                    speedup: rep.speedup,
                    error_pct: rep.error_pct,
                });
            // The representative already holds the frontier point for these
            // coordinates; inserting the duplicate would be a no-op.
            self.seen.insert(cfg.label.clone(), synth);
        }
        // One trajectory sample per batch: how far the search has come and
        // how selective the frontier is at this point.
        hpac_obs::mark(
            hpac_obs::Mark::SearchPoint,
            self.evaluations as u64,
            self.frontier.len() as u64,
        );
        configs
            .iter()
            .map(|cfg| self.seen.get(&cfg.label).cloned().flatten())
            .collect()
    }
}

/// Candidate ordering under a quality bound: feasible beats infeasible,
/// then faster, then more accurate.
fn better(a: &Evaluated, b: &Evaluated, bound_pct: f64) -> bool {
    let (fa, fb) = (a.error_pct <= bound_pct, b.error_pct <= bound_pct);
    if fa != fb {
        return fa;
    }
    if fa {
        a.speedup > b.speedup || (a.speedup == b.speedup && a.error_pct < b.error_pct)
    } else {
        a.error_pct < b.error_pct || (a.error_pct == b.error_pct && a.speedup > b.speedup)
    }
}

fn random_index(grid: &Grid, rng: &mut StdRng) -> Vec<usize> {
    (0..grid.axis_count())
        .map(|a| rng.gen_range(0..grid.axis_len(a)))
        .collect()
}

/// Walk one grid with the given strategy, feeding the evaluator's frontier.
pub fn search_grid(
    grid: &Grid,
    ev: &mut Evaluator<'_>,
    strategy: &SearchStrategy,
    bound_pct: f64,
    seed: u64,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    match *strategy {
        SearchStrategy::Random { samples } => {
            let configs: Vec<SweepConfig> = (0..samples.min(grid.size()))
                .map(|_| grid.build(&random_index(grid, &mut rng)))
                .collect();
            ev.eval_batch(&configs);
        }
        SearchStrategy::CoordinateDescent {
            max_sweeps,
            restarts,
        } => {
            for restart in 0..restarts.max(1) {
                if ev.remaining() == 0 {
                    return;
                }
                let start = if restart == 0 {
                    (0..grid.axis_count())
                        .map(|a| grid.axis_len(a) / 2)
                        .collect()
                } else {
                    random_index(grid, &mut rng)
                };
                coordinate_descent(grid, ev, bound_pct, start, max_sweeps);
            }
        }
        SearchStrategy::SuccessiveHalving { population, rungs } => {
            successive_halving(grid, ev, bound_pct, population, rungs, &mut rng);
        }
    }
}

fn coordinate_descent(
    grid: &Grid,
    ev: &mut Evaluator<'_>,
    bound_pct: f64,
    mut idx: Vec<usize>,
    max_sweeps: usize,
) {
    for _sweep in 0..max_sweeps {
        let mut moved = false;
        for axis in 0..grid.axis_count() {
            if ev.remaining() == 0 {
                return;
            }
            let candidates: Vec<SweepConfig> = (0..grid.axis_len(axis))
                .map(|v| {
                    let mut c = idx.clone();
                    c[axis] = v;
                    grid.build(&c)
                })
                .collect();
            let outcomes = ev.eval_batch(&candidates);
            let best = outcomes
                .iter()
                .enumerate()
                .filter_map(|(v, o)| o.as_ref().map(|e| (v, e)))
                .reduce(|acc, cur| {
                    if better(cur.1, acc.1, bound_pct) {
                        cur
                    } else {
                        acc
                    }
                });
            if let Some((v, _)) = best {
                if v != idx[axis] {
                    idx[axis] = v;
                    moved = true;
                }
            }
        }
        if !moved {
            break;
        }
    }
}

fn successive_halving(
    grid: &Grid,
    ev: &mut Evaluator<'_>,
    bound_pct: f64,
    population: usize,
    rungs: usize,
    rng: &mut StdRng,
) {
    // Initial lattice stride: a quarter of each axis (≥ 1).
    let mut strides: Vec<usize> = (0..grid.axis_count())
        .map(|a| (grid.axis_len(a) / 4).max(1))
        .collect();
    let snap = |idx: &mut [usize], strides: &[usize], grid: &Grid| {
        for (a, v) in idx.iter_mut().enumerate() {
            *v = (*v / strides[a]) * strides[a];
            *v = (*v).min(grid.axis_len(a) - 1);
        }
    };
    let mut pool: Vec<Vec<usize>> = (0..population.max(2))
        .map(|_| {
            let mut idx = random_index(grid, rng);
            snap(&mut idx, &strides, grid);
            idx
        })
        .collect();
    let mut keep = population.max(2);
    for _rung in 0..rungs.max(1) {
        if ev.remaining() == 0 || pool.is_empty() {
            return;
        }
        pool.sort();
        pool.dedup();
        let configs: Vec<SweepConfig> = pool.iter().map(|idx| grid.build(idx)).collect();
        let outcomes = ev.eval_batch(&configs);
        let mut ranked: Vec<(usize, &Evaluated)> = outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|e| (i, e)))
            .collect();
        ranked.sort_by(|a, b| {
            if better(a.1, b.1, bound_pct) {
                std::cmp::Ordering::Less
            } else if better(b.1, a.1, bound_pct) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        keep = (keep / 2).max(1);
        let survivors: Vec<Vec<usize>> = ranked
            .iter()
            .take(keep)
            .map(|(i, _)| pool[*i].clone())
            .collect();
        // Refine: halve the stride and surround each survivor with its
        // single-axis neighbors on the finer lattice.
        let mut next = survivors.clone();
        for s in strides.iter_mut() {
            *s = (*s / 2).max(1);
        }
        for idx in &survivors {
            for axis in 0..grid.axis_count() {
                for dir in [-1isize, 1] {
                    let v = idx[axis] as isize + dir * strides[axis] as isize;
                    if v >= 0 && (v as usize) < grid.axis_len(axis) {
                        let mut n = idx.clone();
                        n[axis] = v as usize;
                        next.push(n);
                    }
                }
            }
        }
        pool = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_apps::blackscholes::Blackscholes;
    use hpac_harness::runner::select_baseline;
    use hpac_harness::space::Scale;

    fn tiny_bs() -> Blackscholes {
        Blackscholes {
            n_options: 2048,
            distinct: 16,
            run_len: 16,
            seed: 1,
        }
    }

    fn run_strategy_on(
        bench: &dyn Benchmark,
        strategy: SearchStrategy,
        budget: usize,
    ) -> (usize, ParetoFrontier) {
        let spec = DeviceSpec::v100();
        let baseline = select_baseline(bench, &spec);
        let mut ev = Evaluator::new(bench, &spec, &baseline, budget);
        for (i, grid) in Grid::grids_for(bench, &spec, Scale::Quick)
            .iter()
            .enumerate()
        {
            search_grid(grid, &mut ev, &strategy, 5.0, 42 + i as u64);
        }
        (ev.evaluations, ev.frontier)
    }

    #[test]
    fn random_respects_budget_and_finds_points() {
        let (evals, frontier) =
            run_strategy_on(&tiny_bs(), SearchStrategy::Random { samples: 30 }, 50);
        assert!(evals <= 50, "budget violated: {evals}");
        assert!(!frontier.is_empty());
    }

    #[test]
    fn coordinate_descent_finds_feasible_speedup() {
        // Default-size Blackscholes: a >1x point under 5% error exists (the
        // quick sweep tops out near 2x at 0% error).
        let (evals, frontier) =
            run_strategy_on(&Blackscholes::default(), SearchStrategy::default(), 400);
        assert!(evals <= 400);
        let best = frontier.best_under(5.0).expect("feasible point exists");
        assert!(best.error_pct <= 5.0);
        assert!(best.speedup > 1.0, "speedup {}", best.speedup);
    }

    #[test]
    fn successive_halving_runs_within_budget() {
        let (evals, frontier) = run_strategy_on(
            &tiny_bs(),
            SearchStrategy::SuccessiveHalving {
                population: 8,
                rungs: 3,
            },
            200,
        );
        assert!(evals <= 200);
        assert!(!frontier.is_empty());
    }

    #[test]
    fn evaluator_memoizes_repeated_configs() {
        let bench = tiny_bs();
        let spec = DeviceSpec::v100();
        let baseline = select_baseline(&bench, &spec);
        let mut ev = Evaluator::new(&bench, &spec, &baseline, 100);
        let grid = &Grid::grids_for(&bench, &spec, Scale::Quick)[0];
        let cfg = grid.build(&vec![0; grid.axis_count()]);
        ev.eval_batch(std::slice::from_ref(&cfg));
        assert_eq!(ev.evaluations, 1);
        let again = ev.eval_batch(std::slice::from_ref(&cfg));
        assert_eq!(ev.evaluations, 1, "memoized eval must not re-run");
        assert!(again[0].is_some());
        assert!(ev.lookup(&cfg.label).is_some());
    }

    #[test]
    fn better_prefers_feasible_then_fast() {
        let mk = |speedup, error_pct| Evaluated {
            region: ApproxRegion::memo_out(1, 2, 0.5),
            lp: LaunchParams::new(8, 256),
            technique: "TAF",
            speedup,
            error_pct,
        };
        assert!(better(&mk(1.1, 2.0), &mk(9.0, 50.0), 5.0));
        assert!(better(&mk(2.0, 2.0), &mk(1.5, 1.0), 5.0));
        assert!(better(&mk(1.0, 10.0), &mk(2.0, 30.0), 5.0));
    }
}
