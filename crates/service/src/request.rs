//! The typed request/response vocabulary of the tuning service.
//!
//! A [`TuneRequest`] names *what* the caller wants tuned — benchmark,
//! device, quality bound — plus the two knobs the service honors per
//! request: the evaluation budget and the warm-start policy. A
//! [`TuneResponse`] carries the plan back together with its provenance:
//! where the answer came from ([`Source`]), how many fresh evaluations it
//! cost, and how long the caller waited.

use gpu_sim::DeviceSpec;
use hpac_apps::common::Benchmark;
use hpac_tuner::{QualityBound, TunedPlan};

/// Whether a search may seed itself from cached neighboring bounds on the
/// same (benchmark, device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmStart {
    /// Seed from neighbors when the service has a cache (the default).
    #[default]
    Auto,
    /// Always search cold. Guarantees the deterministic cold-search result,
    /// bit-identical to `Tuner::search_plan(.., &[])`.
    Never,
}

/// A tuning request: benchmark + device + quality bound, with optional
/// per-request overrides. Built with [`TuneRequest::new`] and the chained
/// setters; submitted to a `TuningService`.
///
/// ```ignore
/// let req = TuneRequest::new(&bench, &device, QualityBound::percent(5.0))
///     .budget_fraction(0.05)
///     .warm_start(WarmStart::Never);
/// let resp = service.submit(req);
/// ```
#[derive(Clone, Copy)]
pub struct TuneRequest<'a> {
    bench: &'a dyn Benchmark,
    device: &'a DeviceSpec,
    bound: QualityBound,
    budget_fraction: Option<f64>,
    warm_start: WarmStart,
}

impl<'a> TuneRequest<'a> {
    pub fn new(bench: &'a dyn Benchmark, device: &'a DeviceSpec, bound: QualityBound) -> Self {
        TuneRequest {
            bench,
            device,
            bound,
            budget_fraction: None,
            warm_start: WarmStart::default(),
        }
    }

    /// Override the service tuner's evaluation budget (as a fraction of the
    /// full design-space size) for this request only.
    pub fn budget_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction.is_finite() && fraction > 0.0,
            "budget fraction must be a finite positive number"
        );
        self.budget_fraction = Some(fraction);
        self
    }

    /// Set the warm-start policy for this request.
    pub fn warm_start(mut self, policy: WarmStart) -> Self {
        self.warm_start = policy;
        self
    }

    pub fn bench(&self) -> &'a dyn Benchmark {
        self.bench
    }

    pub fn device(&self) -> &'a DeviceSpec {
        self.device
    }

    pub fn bound(&self) -> QualityBound {
        self.bound
    }

    pub fn budget_fraction_override(&self) -> Option<f64> {
        self.budget_fraction
    }

    pub fn warm_start_policy(&self) -> WarmStart {
        self.warm_start
    }
}

impl std::fmt::Debug for TuneRequest<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuneRequest")
            .field("bench", &self.bench.name())
            .field("device", &self.device.name)
            .field("bound_pct", &self.bound.max_error_pct)
            .field("budget_fraction", &self.budget_fraction)
            .field("warm_start", &self.warm_start)
            .finish()
    }
}

/// Where a response's plan came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// Served from the persistent cache; zero evaluations spent.
    CacheHit,
    /// An identical request was already in flight; this one waited for the
    /// leader's plan instead of searching again.
    Coalesced,
    /// This request ran the search. `warm_seeds` is the number of cached
    /// neighbor configurations evaluated ahead of the grid walk (0 = cold).
    Searched { warm_seeds: usize },
}

impl Source {
    pub fn is_cache_hit(&self) -> bool {
        matches!(self, Source::CacheHit)
    }

    pub fn is_coalesced(&self) -> bool {
        matches!(self, Source::Coalesced)
    }

    pub fn is_searched(&self) -> bool {
        matches!(self, Source::Searched { .. })
    }

    /// True for any answer that avoided a fresh full search.
    pub fn is_warm(&self) -> bool {
        match self {
            Source::CacheHit | Source::Coalesced => true,
            Source::Searched { warm_seeds } => *warm_seeds > 0,
        }
    }
}

/// The service's answer: the plan plus its provenance.
#[derive(Debug, Clone)]
pub struct TuneResponse {
    /// The tuned, re-executable plan.
    pub plan: TunedPlan,
    /// Where the plan came from.
    pub source: Source,
    /// Fresh simulator evaluations this request caused (0 for cache hits
    /// and coalesced waiters).
    pub evals_spent: usize,
    /// Wall-clock nanoseconds the caller spent inside `submit`.
    pub wall_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_apps::blackscholes::Blackscholes;

    #[test]
    fn builder_defaults_and_overrides() {
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        let req = TuneRequest::new(&bench, &device, QualityBound::percent(5.0));
        assert_eq!(req.warm_start_policy(), WarmStart::Auto);
        assert!(req.budget_fraction_override().is_none());
        let req = req.budget_fraction(0.05).warm_start(WarmStart::Never);
        assert_eq!(req.budget_fraction_override(), Some(0.05));
        assert_eq!(req.warm_start_policy(), WarmStart::Never);
        assert_eq!(req.bound().max_error_pct, 5.0);
        assert_eq!(req.bench().name(), "Blackscholes");
        let dbg = format!("{req:?}");
        assert!(dbg.contains("Blackscholes") && dbg.contains("V100"));
    }

    #[test]
    #[should_panic(expected = "budget fraction")]
    fn budget_fraction_rejects_zero() {
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        let _ = TuneRequest::new(&bench, &device, QualityBound::percent(5.0)).budget_fraction(0.0);
    }

    #[test]
    fn source_predicates() {
        assert!(Source::CacheHit.is_cache_hit() && Source::CacheHit.is_warm());
        assert!(Source::Coalesced.is_coalesced() && Source::Coalesced.is_warm());
        assert!(Source::Searched { warm_seeds: 0 }.is_searched());
        assert!(!Source::Searched { warm_seeds: 0 }.is_warm());
        assert!(Source::Searched { warm_seeds: 3 }.is_warm());
    }
}
