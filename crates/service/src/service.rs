//! The concurrent tuning front end.
//!
//! [`TuningService`] is the one door to the tuner for programs that issue
//! many tuning requests — possibly at once, possibly identical. Each
//! [`submit`](TuningService::submit) resolves through three layers, cheapest
//! first:
//!
//! 1. **Cache** — a valid entry in the sharded [`TuningCache`] answers
//!    immediately ([`Source::CacheHit`], zero evaluations).
//! 2. **Coalescing** — if an identical request (same benchmark, device
//!    fingerprint, and bound) is already searching, this one waits for the
//!    leader's plan instead of searching again ([`Source::Coalesced`]).
//!    With a cache attached, N concurrent identical requests run *exactly
//!    one* search: the leader stores the entry before retiring its
//!    in-flight slot, and a would-be second leader re-checks the cache
//!    right after claiming the slot, so it finds the entry instead of
//!    searching.
//! 3. **Search** — the leader runs [`Tuner::search_plan`], optionally
//!    warm-started from the re-executable Pareto frontiers of cached
//!    *neighboring bounds* on the same (benchmark, device)
//!    ([`Source::Searched`]).
//!
//! Batches go through [`submit_batch`](TuningService::submit_batch), which
//! admits requests into the process-wide
//! [`ExecEngine`](hpac_core::exec::ExecEngine) worker pool —
//! `HPAC_SERVICE_QUEUE` caps how many are in flight at once.

use crate::request::{Source, TuneRequest, TuneResponse, WarmStart};
use hpac_core::exec::engine;
use hpac_harness::space::SweepConfig;
use hpac_tuner::{device_fingerprint, TunedPlan, Tuner, TuningCache};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Identity of a coalescable request: same benchmark, same device (by
/// fingerprint, not just name), same bound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Key {
    benchmark: String,
    device: String,
    fingerprint: u64,
    bound_bp: i64,
}

impl Key {
    fn new(req: &TuneRequest, fingerprint: u64) -> Self {
        Key {
            benchmark: req.bench().name().to_string(),
            device: req.device().name.to_string(),
            fingerprint,
            bound_bp: (req.bound().max_error_pct * 100.0).round() as i64,
        }
    }
}

/// What waiters on an in-flight search eventually observe.
#[derive(Debug)]
enum WaitState {
    Pending,
    Done(Box<TunedPlan>),
    /// The leader died without publishing (panicked); waiters retry.
    Abandoned,
}

#[derive(Debug)]
struct InFlight {
    state: Mutex<WaitState>,
    cv: Condvar,
}

impl InFlight {
    fn new() -> Self {
        InFlight {
            state: Mutex::new(WaitState::Pending),
            cv: Condvar::new(),
        }
    }

    /// Block until the leader publishes; `None` means it was abandoned.
    fn wait(&self) -> Option<TunedPlan> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*state {
                WaitState::Pending => {
                    state = self.cv.wait(state).unwrap_or_else(|e| e.into_inner());
                }
                WaitState::Done(plan) => return Some((**plan).clone()),
                WaitState::Abandoned => return None,
            }
        }
    }

    fn publish(&self, outcome: WaitState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = outcome;
        self.cv.notify_all();
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    searches: AtomicU64,
    warm_starts: AtomicU64,
}

/// A point-in-time snapshot of the service's request accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests submitted.
    pub requests: u64,
    /// Requests answered from the persistent cache.
    pub cache_hits: u64,
    /// Requests that waited on an identical in-flight search.
    pub coalesced: u64,
    /// Searches actually run (cold or warm-started).
    pub searches: u64,
    /// Searches that evaluated at least one cached neighbor seed.
    pub warm_starts: u64,
}

/// The concurrent tuning front end. Cheap to share: all methods take
/// `&self`, and the service is `Sync` — one instance serves every thread.
#[derive(Debug)]
pub struct TuningService {
    tuner: Tuner,
    cache: Option<TuningCache>,
    batch_width: Option<usize>,
    inflight: Mutex<HashMap<Key, Arc<InFlight>>>,
    stats: StatsInner,
}

impl Default for TuningService {
    fn default() -> Self {
        Self::new()
    }
}

impl TuningService {
    /// A service with the default tuner policy and no persistent cache.
    /// Without a cache, coalescing still works for *overlapping* requests,
    /// but completed answers are not remembered.
    pub fn new() -> Self {
        TuningService {
            tuner: Tuner::new(),
            cache: None,
            batch_width: env_service_queue(),
            inflight: Mutex::new(HashMap::new()),
            stats: StatsInner::default(),
        }
    }

    /// Attach a persistent sharded cache (answers survive the process, and
    /// concurrent identical requests are guaranteed exactly one search).
    pub fn with_cache(mut self, cache: TuningCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Replace the tuner policy (strategy, scale, default budget). Any
    /// cache attached to the tuner itself is ignored — the service owns
    /// caching.
    pub fn with_tuner(mut self, mut tuner: Tuner) -> Self {
        tuner.cache = None;
        self.tuner = tuner;
        self
    }

    /// Cap how many batch requests are admitted to the engine at once,
    /// overriding `HPAC_SERVICE_QUEUE`.
    pub fn with_batch_width(mut self, width: usize) -> Self {
        assert!(width > 0, "batch width must be positive");
        self.batch_width = Some(width);
        self
    }

    pub fn cache(&self) -> Option<&TuningCache> {
        self.cache.as_ref()
    }

    /// The width [`submit_batch`](TuningService::submit_batch) admits at:
    /// the builder override, else `HPAC_SERVICE_QUEUE`, else the engine
    /// default.
    pub fn batch_width(&self) -> usize {
        self.batch_width.unwrap_or_else(|| engine().default_width())
    }

    /// Request accounting so far.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.stats.requests.load(Ordering::Relaxed),
            cache_hits: self.stats.cache_hits.load(Ordering::Relaxed),
            coalesced: self.stats.coalesced.load(Ordering::Relaxed),
            searches: self.stats.searches.load(Ordering::Relaxed),
            warm_starts: self.stats.warm_starts.load(Ordering::Relaxed),
        }
    }

    /// Resolve one request: cache, then coalesce, then search.
    pub fn submit(&self, req: TuneRequest) -> TuneResponse {
        let t0 = Instant::now();
        let fingerprint = device_fingerprint(req.device());
        let key = Key::new(&req, fingerprint);
        let _span = hpac_obs::span_named(
            hpac_obs::SpanId::ServiceRequest,
            &key.benchmark,
            key.bound_bp as u64,
        );
        hpac_obs::inc(hpac_obs::CounterId::ServiceRequests);
        hpac_obs::inc(hpac_obs::CounterId::TunerRequests);
        self.stats.requests.fetch_add(1, Ordering::Relaxed);

        let inflight = loop {
            if let Some(plan) = self.cache_lookup(&key) {
                return self.respond(plan, Source::CacheHit, 0, t0);
            }
            match self.claim_or_join(&key) {
                // We are the leader; go search.
                None => break self.claimed(&key),
                Some(existing) => {
                    if let Some(plan) = existing.wait() {
                        hpac_obs::inc(hpac_obs::CounterId::ServiceCoalesced);
                        self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                        return self.respond(plan, Source::Coalesced, 0, t0);
                    }
                    // Leader abandoned (panicked): start over.
                }
            }
        };

        // Second-leader guard: between our cache miss and our claim, a
        // previous leader may have published and retired. It stores to the
        // cache *before* retiring, so re-checking the cache here is enough
        // to guarantee exactly one search per key when a cache is attached.
        if let Some(plan) = self.cache_lookup(&key) {
            self.retire(&key, &inflight, WaitState::Done(Box::new(plan.clone())));
            return self.respond(plan, Source::CacheHit, 0, t0);
        }
        if self.cache.is_some() {
            hpac_obs::inc(hpac_obs::CounterId::TunerCacheMisses);
        }

        // Leader path. The guard retires the in-flight slot as Abandoned if
        // the search panics, so waiters never deadlock.
        let guard = RetireGuard {
            svc: self,
            key: &key,
            inflight: &inflight,
            done: false,
        };
        let seeds = match req.warm_start_policy() {
            WarmStart::Auto => self.gather_seeds(&key, req.bound().max_error_pct),
            WarmStart::Never => Vec::new(),
        };
        let tuner = self.request_tuner(&req);
        let plan = tuner.search_plan(req.bench(), req.device(), req.bound(), &seeds);
        self.stats.searches.fetch_add(1, Ordering::Relaxed);
        if !seeds.is_empty() {
            hpac_obs::inc(hpac_obs::CounterId::ServiceWarmStarts);
            self.stats.warm_starts.fetch_add(1, Ordering::Relaxed);
        }

        // Store BEFORE retiring the in-flight slot (see the second-leader
        // guard above — this ordering is what makes "exactly one search"
        // airtight).
        if let Some(cache) = &self.cache {
            if let Err(e) = cache.store(&plan, fingerprint) {
                hpac_obs::log_warn(&format!("tuning cache write failed: {e}"));
            }
        }
        guard.retire(WaitState::Done(Box::new(plan.clone())));
        self.respond(
            plan,
            Source::Searched {
                warm_seeds: seeds.len(),
            },
            0,
            t0,
        )
    }

    /// Resolve a batch of requests concurrently through the engine's worker
    /// pool, at most [`batch_width`](TuningService::batch_width) in flight
    /// at once. Responses come back in request order.
    pub fn submit_batch(&self, reqs: &[TuneRequest]) -> Vec<TuneResponse> {
        let width = self.batch_width().max(1);
        engine().run(reqs.len(), width, |i| self.submit(reqs[i]))
    }

    fn cache_lookup(&self, key: &Key) -> Option<TunedPlan> {
        let plan = self.cache.as_ref()?.load(
            &key.benchmark,
            &key.device,
            key.bound_bp as f64 / 100.0,
            key.fingerprint,
        )?;
        hpac_obs::inc(hpac_obs::CounterId::TunerCacheHits);
        self.stats.cache_hits.fetch_add(1, Ordering::Relaxed);
        Some(plan)
    }

    /// Claim the key's in-flight slot (returning `None` = we lead) or join
    /// an existing one.
    fn claim_or_join(&self, key: &Key) -> Option<Arc<InFlight>> {
        let mut map = self.inflight.lock().unwrap_or_else(|e| e.into_inner());
        match map.get(key) {
            Some(existing) => Some(existing.clone()),
            None => {
                map.insert(key.clone(), Arc::new(InFlight::new()));
                None
            }
        }
    }

    fn claimed(&self, key: &Key) -> Arc<InFlight> {
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(key)
            .expect("leader's in-flight slot exists until it retires")
            .clone()
    }

    /// Publish an outcome to waiters and remove the in-flight slot.
    fn retire(&self, key: &Key, inflight: &Arc<InFlight>, outcome: WaitState) {
        inflight.publish(outcome);
        self.inflight
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(key);
    }

    /// Warm-start seeds: every re-executable frontier point of every cached
    /// bound for this (benchmark, device), nearest bound first, deduplicated
    /// by configuration label.
    fn gather_seeds(&self, key: &Key, bound_pct: f64) -> Vec<SweepConfig> {
        let Some(cache) = &self.cache else {
            return Vec::new();
        };
        let mut neighbors = cache.neighbors(&key.benchmark, &key.device, key.fingerprint);
        neighbors.sort_by(|a, b| {
            (a.bound_pct - bound_pct)
                .abs()
                .total_cmp(&(b.bound_pct - bound_pct).abs())
        });
        let mut seen = std::collections::HashSet::new();
        let mut seeds = Vec::new();
        for plan in &neighbors {
            for point in plan.frontier.points() {
                let Some(cfg) = point.to_config() else {
                    continue;
                };
                if seen.insert(cfg.label.clone()) {
                    seeds.push(cfg);
                }
            }
        }
        seeds
    }

    /// The per-request tuner: the service policy with any per-request
    /// budget override, never cache-bearing (the service owns the cache).
    fn request_tuner(&self, req: &TuneRequest) -> Tuner {
        Tuner {
            strategy: self.tuner.strategy.clone(),
            scale: self.tuner.scale,
            budget_fraction: req
                .budget_fraction_override()
                .unwrap_or(self.tuner.budget_fraction),
            cache: None,
        }
    }

    fn respond(&self, plan: TunedPlan, source: Source, evals: usize, t0: Instant) -> TuneResponse {
        let evals_spent = match source {
            Source::Searched { .. } => plan.evaluations,
            _ => evals,
        };
        TuneResponse {
            plan,
            source,
            evals_spent,
            wall_ns: t0.elapsed().as_nanos() as u64,
        }
    }
}

/// Retires the leader's in-flight slot exactly once — as `Abandoned` if the
/// search unwinds, so waiters wake up and retry instead of deadlocking.
struct RetireGuard<'a> {
    svc: &'a TuningService,
    key: &'a Key,
    inflight: &'a Arc<InFlight>,
    done: bool,
}

impl RetireGuard<'_> {
    fn retire(mut self, outcome: WaitState) {
        self.done = true;
        self.svc.retire(self.key, self.inflight, outcome);
    }
}

impl Drop for RetireGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.svc
                .retire(self.key, self.inflight, WaitState::Abandoned);
        }
    }
}

/// `HPAC_SERVICE_QUEUE`: how many batch requests the service admits to the
/// engine at once. Unset or `0` = the engine default width; anything else
/// must parse as a positive integer or the process aborts (the stack-wide
/// strict env contract).
fn env_service_queue() -> Option<usize> {
    hpac_core::env::strict_var("HPAC_SERVICE_QUEUE", |raw| {
        if raw.is_empty() {
            return Ok(None);
        }
        match raw.parse::<usize>() {
            Ok(0) => Ok(None),
            Ok(n) => Ok(Some(n)),
            Err(e) => Err(format!("expected a non-negative integer: {e}")),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;
    use hpac_apps::blackscholes::Blackscholes;
    use hpac_harness::space::Scale;
    use hpac_tuner::QualityBound;

    fn quick_service() -> TuningService {
        TuningService::new().with_tuner(Tuner::new().with_scale(Scale::Quick))
    }

    fn temp_cache(tag: &str) -> TuningCache {
        let cache = TuningCache::new(std::env::temp_dir().join(format!("hpac_service_{tag}")));
        let _ = cache.clear();
        cache
    }

    #[test]
    fn search_then_cache_hit() {
        let cache = temp_cache("hit");
        let svc = quick_service().with_cache(cache.clone());
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        let bound = QualityBound::percent(5.0);

        let first = svc.submit(TuneRequest::new(&bench, &device, bound));
        assert_eq!(first.source, Source::Searched { warm_seeds: 0 });
        assert!(first.evals_spent > 0);

        let second = svc.submit(TuneRequest::new(&bench, &device, bound));
        assert_eq!(second.source, Source::CacheHit);
        assert_eq!(second.evals_spent, 0);
        assert_eq!(second.plan.config, first.plan.config);
        assert!(second.plan.from_cache);

        let stats = svc.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.searches, 1);
        assert_eq!(stats.cache_hits, 1);
        let _ = cache.clear();
    }

    #[test]
    fn uncached_service_still_answers() {
        let svc = quick_service();
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        let resp = svc.submit(TuneRequest::new(
            &bench,
            &device,
            QualityBound::percent(5.0),
        ));
        assert!(resp.source.is_searched());
        assert!(resp.plan.respects_bound());
    }

    #[test]
    fn warm_start_from_neighboring_bound() {
        let cache = temp_cache("warm");
        let svc = quick_service().with_cache(cache.clone());
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();

        let cold = svc.submit(TuneRequest::new(
            &bench,
            &device,
            QualityBound::percent(10.0),
        ));
        assert_eq!(cold.source, Source::Searched { warm_seeds: 0 });

        // A different bound on the same (benchmark, device): seeded from
        // the cached neighbor's frontier.
        let warm = svc.submit(TuneRequest::new(
            &bench,
            &device,
            QualityBound::percent(5.0),
        ));
        match warm.source {
            Source::Searched { warm_seeds } => assert!(warm_seeds > 0),
            other => panic!("expected a warm search, got {other:?}"),
        }
        assert!(warm.plan.respects_bound());
        assert_eq!(svc.stats().warm_starts, 1);
        let _ = cache.clear();
    }

    #[test]
    fn warm_start_never_forces_cold_search() {
        let cache = temp_cache("cold_policy");
        let svc = quick_service().with_cache(cache.clone());
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        svc.submit(TuneRequest::new(
            &bench,
            &device,
            QualityBound::percent(10.0),
        ));
        let resp = svc.submit(
            TuneRequest::new(&bench, &device, QualityBound::percent(5.0))
                .warm_start(WarmStart::Never),
        );
        assert_eq!(resp.source, Source::Searched { warm_seeds: 0 });
        let _ = cache.clear();
    }

    #[test]
    fn batch_answers_in_request_order() {
        let cache = temp_cache("batch");
        let svc = quick_service().with_cache(cache.clone());
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        let bounds = [5.0, 8.0, 5.0, 8.0, 5.0];
        let reqs: Vec<TuneRequest> = bounds
            .iter()
            .map(|b| TuneRequest::new(&bench, &device, QualityBound::percent(*b)))
            .collect();
        let resps = svc.submit_batch(&reqs);
        assert_eq!(resps.len(), bounds.len());
        for (resp, bound) in resps.iter().zip(bounds) {
            assert_eq!(resp.plan.bound_pct, bound);
            assert!(resp.plan.respects_bound());
        }
        // 5 requests over 2 distinct keys: exactly 2 searches ran; the
        // duplicates were coalesced or served from cache.
        let stats = svc.stats();
        assert_eq!(stats.requests, 5);
        assert_eq!(stats.searches, 2);
        assert_eq!(stats.cache_hits + stats.coalesced, 3);
        let _ = cache.clear();
    }

    #[test]
    fn per_request_budget_override_caps_evals() {
        let svc = quick_service();
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        let bound = QualityBound::percent(5.0);
        let tiny = svc.submit(
            TuneRequest::new(&bench, &device, bound)
                .budget_fraction(0.001)
                .warm_start(WarmStart::Never),
        );
        let full =
            svc.submit(TuneRequest::new(&bench, &device, bound).warm_start(WarmStart::Never));
        assert!(tiny.evals_spent <= full.evals_spent);
        assert!(tiny.evals_spent <= (tiny.plan.full_space as f64 * 0.001).max(1.0) as usize);
    }

    #[test]
    fn batch_width_override_wins() {
        let svc = quick_service().with_batch_width(3);
        assert_eq!(svc.batch_width(), 3);
    }
}
