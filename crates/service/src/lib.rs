//! # hpac-service — tuning as a service
//!
//! The production front end over `hpac-tuner`: many callers, many threads,
//! one process-wide answer per question. Where `hpac-tuner` answers a
//! single "fastest configuration under X% error" query, this crate serves
//! *streams* of such queries cheaply:
//!
//! * a typed request/response API — [`TuneRequest`] in (benchmark, device,
//!   [`QualityBound`](hpac_tuner::QualityBound), budget, warm-start
//!   policy), [`TuneResponse`] out (plan + provenance: [`Source`],
//!   evaluations spent, wall time);
//! * a sharded, lock-striped persistent cache
//!   ([`TuningCache`](hpac_tuner::TuningCache)) safe for concurrent
//!   readers and writers across processes;
//! * request coalescing — concurrent identical requests run exactly one
//!   search, and every waiter gets the same plan;
//! * warm starts — a new bound seeds its search from the cached Pareto
//!   frontiers of neighboring bounds on the same (benchmark, device);
//! * engine admission — batches run on the process-wide
//!   [`ExecEngine`](hpac_core::exec::ExecEngine) pool, throttled by
//!   `HPAC_SERVICE_QUEUE`.
//!
//! ```ignore
//! let svc = TuningService::new()
//!     .with_cache(TuningCache::new(TuningCache::default_dir()));
//! let resp = svc.submit(TuneRequest::new(&bench, &device, QualityBound::percent(5.0)));
//! println!("{:?} via {:?} in {} ns", resp.plan.config, resp.source, resp.wall_ns);
//! let report = resp.plan.execute(&bench, &device)?;
//! ```

pub mod request;
pub mod service;

pub use request::{Source, TuneRequest, TuneResponse, WarmStart};
pub use service::{ServiceStats, TuningService};
