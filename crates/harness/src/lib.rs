//! # hpac-harness — the HPAC-Offload execution harness
//!
//! "The HPAC execution harness exhaustively explores the space of
//! user-provided approximation techniques and parameters. [...] After
//! executing the approximated program, the harness calculates and saves
//! runtime information and error to a database." (§2.3)
//!
//! * [`space`] — the paper's Table 2 parameter grids (full) and pruned
//!   quick variants, per benchmark and device;
//! * [`runner`] — baseline selection and the parallel sweep executor
//!   (configurations fan out as tasks on the shared
//!   [`hpac_core::exec::engine`] worker pool; kernel launches nested
//!   inside a config task run inline via the engine's depth guard);
//! * [`db`] — the results table with CSV persistence;
//! * [`analyze`] — best-speedup-under-error-cap queries, the paper's
//!   error-decile overplot reduction, and linear fits (Fig 12c's R²);
//! * [`figures`] — one data-generation entry point per paper table/figure.

pub mod analyze;
pub mod db;
pub mod figures;
pub mod runner;
pub mod space;

pub use db::{ResultsDb, Row};
pub use runner::{run_sweep, select_baseline, SweepOutcome};
pub use space::{IactAxes, PerfoAxes, Scale, SweepConfig, TafAxes};
