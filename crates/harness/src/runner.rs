//! Sweep execution: baseline selection and the parallel configuration sweep.
//!
//! Speedup follows the paper's definition: the baseline is the
//! *non-approximated* application at its best launch configuration, and
//! every approximated configuration is compared against that one number.
//! Blackscholes uses kernel-only timing (§4.1); everything else uses
//! end-to-end modeled time including transfers.

use crate::db::Row;
use crate::space::{self, Scale, SweepConfig};
use gpu_sim::DeviceSpec;
use hpac_apps::common::{AppResult, Benchmark, LaunchParams};
use hpac_core::exec::{engine, ExecOptions};

/// The chosen baseline: launch shape, result, and its timing-basis seconds.
#[derive(Debug, Clone)]
pub struct Baseline {
    pub lp: LaunchParams,
    pub result: AppResult,
    pub seconds: f64,
}

/// Pick the best non-approximated launch over the benchmark's baseline
/// items-per-thread candidates.
pub fn select_baseline(bench: &dyn Benchmark, spec: &DeviceSpec) -> Baseline {
    select_baseline_opts(bench, spec, &ExecOptions::default())
}

/// [`select_baseline`] under explicit execution options.
pub fn select_baseline_opts(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    opts: &ExecOptions,
) -> Baseline {
    let kernel_only = bench.kernel_only_timing();
    let block = space::block_size_for(bench);
    let candidates = space::baseline_ipts(bench);
    let _span = hpac_obs::span_named(
        hpac_obs::SpanId::BaselineSelect,
        bench.name(),
        candidates.len() as u64,
    );
    candidates
        .into_iter()
        .map(|ipt| {
            let lp = LaunchParams::new(ipt, block);
            let result = bench
                .run_opts(spec, None, &lp, opts)
                .expect("accurate baseline must run");
            let seconds = result.timing_basis_seconds(kernel_only);
            Baseline {
                lp,
                result,
                seconds,
            }
        })
        .min_by(|a, b| a.seconds.total_cmp(&b.seconds))
        .expect("at least one baseline candidate")
}

/// A sweep's outcome: result rows plus configurations that were rejected at
/// launch (e.g. AC state exceeding shared memory) with their reasons.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    pub rows: Vec<Row>,
    pub rejected: Vec<(String, String)>,
    pub baseline: Baseline,
}

/// Execute one configuration against a prepared baseline.
pub fn run_config(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    baseline: &Baseline,
    cfg: &SweepConfig,
) -> Result<Row, (String, String)> {
    run_config_opts(bench, spec, baseline, cfg, &ExecOptions::default())
}

/// [`run_config`] under explicit execution options (executor knob).
pub fn run_config_opts(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    baseline: &Baseline,
    cfg: &SweepConfig,
    opts: &ExecOptions,
) -> Result<Row, (String, String)> {
    let kernel_only = bench.kernel_only_timing();
    let eval_from = hpac_obs::enabled().then(hpac_obs::now_ns);
    let _span = hpac_obs::span_named(
        hpac_obs::SpanId::ConfigEval,
        bench.name(),
        cfg.lp.items_per_thread as u64,
    );
    let outcome = bench.run_opts(spec, Some(&cfg.region), &cfg.lp, opts);
    if let Some(t0) = eval_from {
        hpac_obs::add(
            hpac_obs::CounterId::ConfigEvalNs,
            hpac_obs::now_ns().saturating_sub(t0),
        );
        hpac_obs::inc(if outcome.is_ok() {
            hpac_obs::CounterId::ConfigsEvaluated
        } else {
            hpac_obs::CounterId::ConfigsRejected
        });
    }
    match outcome {
        Ok(res) => {
            let err = res.qoi.error_vs(&baseline.result.qoi);
            let seconds = res.timing_basis_seconds(kernel_only);
            Ok(Row {
                benchmark: bench.name().to_string(),
                device: spec.name.to_string(),
                technique: cfg.region.technique_name().to_string(),
                config: cfg.label.clone(),
                items_per_thread: cfg.lp.items_per_thread,
                speedup: baseline.seconds / seconds,
                error_pct: err * 100.0,
                approx_fraction: res.stats.approx_fraction(),
                divergent_fraction: res.stats.divergence_fraction(),
                kernel_seconds: res.kernel_seconds,
                end_to_end_seconds: res.end_to_end_seconds(),
                iterations: res.iterations,
            })
        }
        Err(e) => Err((cfg.label.clone(), e.to_string())),
    }
}

/// Run a benchmark's full sweep plan on one device, in parallel across
/// configurations.
///
/// Configurations are submitted to the shared [`engine`] as one task each.
/// Kernel launches *inside* a configuration go through the same engine, so
/// no pinning is needed: the engine's depth guard runs nested block
/// fan-outs inline on the config task's worker, and the host is never
/// oversubscribed. For intra-kernel parallelism measurements use
/// [`run_sweep_serial`], which keeps the configurations serial so the
/// block executor is the only parallelism in play.
pub fn run_sweep(bench: &dyn Benchmark, spec: &DeviceSpec, scale: Scale) -> SweepOutcome {
    let opts = ExecOptions::default();
    let baseline = select_baseline_opts(bench, spec, &opts);
    let plan = space::plan(bench, spec, scale);
    let _sweep = hpac_obs::span_named(hpac_obs::SpanId::SweepApp, bench.name(), plan.len() as u64);
    let results: Vec<Result<Row, (String, String)>> =
        engine().run(plan.len(), engine().default_width(), |i| {
            run_config_opts(bench, spec, &baseline, &plan[i], &opts)
        });

    let mut rows = Vec::with_capacity(results.len());
    let mut rejected = Vec::new();
    for r in results {
        match r {
            Ok(row) => rows.push(row),
            Err(rej) => rejected.push(rej),
        }
    }
    SweepOutcome {
        rows,
        rejected,
        baseline,
    }
}

/// Run a benchmark's full sweep plan on one device with each configuration
/// executed *serially*, under explicit execution options. This is the
/// harness entry for intra-kernel parallelism
/// ([`hpac_core::exec::Executor::ParallelBlocks`]): the configurations run
/// one at a time and each kernel launch fans its blocks out instead —
/// `sweepbench` uses it to compare the two executors on equal footing.
pub fn run_sweep_serial(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    scale: Scale,
    opts: &ExecOptions,
) -> SweepOutcome {
    let baseline = select_baseline_opts(bench, spec, opts);
    let plan = space::plan(bench, spec, scale);
    let _sweep = hpac_obs::span_named(hpac_obs::SpanId::SweepApp, bench.name(), plan.len() as u64);
    let mut rows = Vec::with_capacity(plan.len());
    let mut rejected = Vec::new();
    for cfg in &plan {
        match run_config_opts(bench, spec, &baseline, cfg, opts) {
            Ok(row) => rows.push(row),
            Err(rej) => rejected.push(rej),
        }
    }
    SweepOutcome {
        rows,
        rejected,
        baseline,
    }
}

/// Run specific configurations (used by figure generators with bespoke
/// grids, e.g. Fig 8c's extended items-per-thread axis).
pub fn run_configs(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    configs: &[SweepConfig],
) -> SweepOutcome {
    // Config-parallel like `run_sweep`: one engine task per configuration,
    // nested kernel fan-outs inlined by the engine's depth guard.
    let opts = ExecOptions::default();
    let baseline = select_baseline_opts(bench, spec, &opts);
    let _sweep = hpac_obs::span_named(
        hpac_obs::SpanId::SweepApp,
        bench.name(),
        configs.len() as u64,
    );
    let results: Vec<Result<Row, (String, String)>> =
        engine().run(configs.len(), engine().default_width(), |i| {
            run_config_opts(bench, spec, &baseline, &configs[i], &opts)
        });
    let mut rows = Vec::new();
    let mut rejected = Vec::new();
    for r in results {
        match r {
            Ok(row) => rows.push(row),
            Err(rej) => rejected.push(rej),
        }
    }
    SweepOutcome {
        rows,
        rejected,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_apps::blackscholes::Blackscholes;
    use hpac_apps::common::LaunchParams;
    use hpac_core::region::ApproxRegion;

    fn tiny_bs() -> Blackscholes {
        Blackscholes {
            n_options: 2048,
            distinct: 16,
            run_len: 16,
            seed: 1,
        }
    }

    #[test]
    fn baseline_is_accurate_and_timed() {
        let bench = tiny_bs();
        let spec = DeviceSpec::v100();
        let b = select_baseline(&bench, &spec);
        assert!(b.seconds > 0.0);
        assert_eq!(b.result.stats.approx_fraction(), 0.0);
    }

    #[test]
    fn run_config_computes_speedup_and_error() {
        let bench = tiny_bs();
        let spec = DeviceSpec::v100();
        let baseline = select_baseline(&bench, &spec);
        let cfg = SweepConfig {
            region: ApproxRegion::memo_out(2, 32, 0.9),
            lp: LaunchParams::new(16, 256),
            label: "test".into(),
        };
        let row = run_config(&bench, &spec, &baseline, &cfg).unwrap();
        assert!(row.speedup > 0.0);
        assert!(row.error_pct >= 0.0);
        assert_eq!(row.technique, "TAF");
        assert_eq!(row.device, "V100");
    }

    #[test]
    fn rejected_configs_are_reported() {
        let bench = tiny_bs();
        let spec = DeviceSpec::v100();
        let baseline = select_baseline(&bench, &spec);
        // 512-entry private tables cannot fit shared memory.
        let cfg = SweepConfig {
            region: ApproxRegion::memo_in(512, 0.5),
            lp: LaunchParams::new(8, 1024),
            label: "oversized".into(),
        };
        let err = run_config(&bench, &spec, &baseline, &cfg).unwrap_err();
        assert_eq!(err.0, "oversized");
        assert!(err.1.contains("shared memory"), "reason: {}", err.1);
    }
}
