//! Sweep execution: baseline selection and the parallel configuration sweep.
//!
//! Speedup follows the paper's definition: the baseline is the
//! *non-approximated* application at its best launch configuration, and
//! every approximated configuration is compared against that one number.
//! Blackscholes uses kernel-only timing (§4.1); everything else uses
//! end-to-end modeled time including transfers.

use crate::db::Row;
use crate::space::{self, Scale, SweepConfig};
use gpu_sim::DeviceSpec;
use hpac_apps::common::{install_eval_memo, AppResult, Benchmark, LaunchParams, QoI};
use hpac_core::exec::{engine, ExecOptions};
use hpac_core::region::RegionError;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

const QUALITY_CACHE_SHARDS: usize = 8;

/// Output-fingerprint quality cache: error scores keyed by a 128-bit
/// fingerprint of the approximate run's QoI bit patterns. Many grid points
/// produce bit-identical outputs (exact-threshold memoization, herded
/// convergence to the same assignment); their error metric is computed once
/// per baseline and served from here afterwards. Owned by the [`Baseline`],
/// so the (fingerprint → error) mapping is per-baseline by construction.
#[derive(Debug)]
pub struct QualityCache {
    shards: Vec<Mutex<HashMap<(u64, u64), f64>>>,
}

impl Default for QualityCache {
    fn default() -> Self {
        Self::new()
    }
}

impl QualityCache {
    pub fn new() -> Self {
        QualityCache {
            shards: (0..QUALITY_CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// The cached error for `fp`, or `compute`'s result (which is then
    /// cached). Returns `(error, was_hit)`. The lock is not held across
    /// `compute`; a racing duplicate computes the same value twice.
    pub fn get_or(&self, fp: (u64, u64), compute: impl FnOnce() -> f64) -> (f64, bool) {
        let shard = (fp.0 as usize) % QUALITY_CACHE_SHARDS;
        if let Some(&v) = self.shards[shard].lock().unwrap().get(&fp) {
            return (v, true);
        }
        let v = compute();
        self.shards[shard].lock().unwrap().insert(fp, v);
        (v, false)
    }
}

/// 128-bit fingerprint of a QoI's exact bit patterns: two word-wise fnv1a
/// accumulators with distinct offset bases over the kind tag, length, and
/// every value's bits. Equal outputs always collide; unequal outputs
/// colliding on both accumulators is vanishingly unlikely.
fn qoi_fingerprint(q: &QoI) -> (u64, u64) {
    const PRIME: u64 = 0x100_0000_01b3;
    let mut h1 = 0xcbf2_9ce4_8422_2325u64;
    let mut h2 = 0x9e37_79b9_7f4a_7c15u64;
    let mut feed = |w: u64| {
        h1 = (h1 ^ w).wrapping_mul(PRIME);
        h2 = (h2 ^ w).wrapping_mul(PRIME);
    };
    match q {
        QoI::Values(v) => {
            feed(1);
            feed(v.len() as u64);
            v.iter().for_each(|x| feed(x.to_bits()));
        }
        QoI::Labels(l) => {
            feed(2);
            feed(l.len() as u64);
            l.iter().for_each(|&x| feed(x as u64));
        }
    }
    (h1, h2)
}

/// The chosen baseline: launch shape, result, its timing-basis seconds, and
/// the quality cache scoring approximate outputs against it.
#[derive(Debug, Clone)]
pub struct Baseline {
    pub lp: LaunchParams,
    pub result: AppResult,
    pub seconds: f64,
    pub quality: Arc<QualityCache>,
}

/// Pick the best non-approximated launch over the benchmark's baseline
/// items-per-thread candidates.
pub fn select_baseline(bench: &dyn Benchmark, spec: &DeviceSpec) -> Baseline {
    select_baseline_opts(bench, spec, &ExecOptions::default())
}

/// [`select_baseline`] under explicit execution options.
pub fn select_baseline_opts(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    opts: &ExecOptions,
) -> Baseline {
    let kernel_only = bench.kernel_only_timing();
    let block = space::block_size_for(bench);
    let candidates = space::baseline_ipts(bench);
    let _span = hpac_obs::span_named(
        hpac_obs::SpanId::BaselineSelect,
        bench.name(),
        candidates.len() as u64,
    );
    let (lp, result, seconds) = candidates
        .into_iter()
        .map(|ipt| {
            let lp = LaunchParams::new(ipt, block);
            let result = bench
                .run_opts(spec, None, &lp, opts)
                .expect("accurate baseline must run");
            let seconds = result.timing_basis_seconds(kernel_only);
            (lp, result, seconds)
        })
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("at least one baseline candidate");
    let quality = Arc::new(QualityCache::new());
    // Pre-seed the baseline's own output at zero error: any approximate
    // configuration that reproduces the accurate output bit-for-bit scores
    // 0.0 without an error-metric pass.
    quality.get_or(qoi_fingerprint(&result.qoi), || 0.0);
    Baseline {
        lp,
        result,
        seconds,
        quality,
    }
}

/// A sweep's outcome: result rows plus configurations that were rejected at
/// launch (e.g. AC state exceeding shared memory) with their reasons.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    pub rows: Vec<Row>,
    pub rejected: Vec<(String, String)>,
    pub baseline: Baseline,
}

/// Outcome of one bounded configuration evaluation
/// ([`run_config_bounded`]). `Aborted` is distinct from `Rejected`: a
/// rejected configuration cannot launch at all (a modeling constraint), an
/// aborted one was cut off mid-walk because its modeled cost lower bound
/// already exceeded [`ExecOptions::abort_above_seconds`] — it is provably
/// dominated, not infeasible.
#[derive(Debug, Clone)]
pub enum ConfigOutcome {
    Done(Row),
    /// (label, reason) — the configuration could not launch.
    Rejected(String, String),
    /// The configuration hit the cost ceiling; label of the abandoned run.
    Aborted(String),
}

/// Execute one configuration against a prepared baseline.
pub fn run_config(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    baseline: &Baseline,
    cfg: &SweepConfig,
) -> Result<Row, (String, String)> {
    run_config_opts(bench, spec, baseline, cfg, &ExecOptions::default())
}

/// [`run_config`] under explicit execution options (executor knob).
///
/// A cost-ceiling abort surfaces as a rejection here; sweep entry points
/// never set a ceiling, so they never see one. Ceiling-aware callers (the
/// tuner) use [`run_config_bounded`] and match on
/// [`ConfigOutcome::Aborted`].
pub fn run_config_opts(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    baseline: &Baseline,
    cfg: &SweepConfig,
    opts: &ExecOptions,
) -> Result<Row, (String, String)> {
    match run_config_bounded(bench, spec, baseline, cfg, opts) {
        ConfigOutcome::Done(row) => Ok(row),
        ConfigOutcome::Rejected(label, reason) => Err((label, reason)),
        ConfigOutcome::Aborted(label) => {
            Err((label, "aborted: modeled cost exceeds ceiling".to_string()))
        }
    }
}

/// [`run_config_opts`] with aborts reported as their own outcome.
pub fn run_config_bounded(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    baseline: &Baseline,
    cfg: &SweepConfig,
    opts: &ExecOptions,
) -> ConfigOutcome {
    let kernel_only = bench.kernel_only_timing();
    let eval_from = hpac_obs::enabled().then(hpac_obs::now_ns);
    let _span = hpac_obs::span_named(
        hpac_obs::SpanId::ConfigEval,
        bench.name(),
        cfg.lp.items_per_thread as u64,
    );
    // The abort ceiling compares against modeled seconds accumulated since
    // this config's evaluation began (each config runs synchronously on one
    // worker thread, so the thread-local meter is per-config).
    gpu_sim::reset_modeled_seconds();
    let outcome = bench.run_opts(spec, Some(&cfg.region), &cfg.lp, opts);
    let aborted = matches!(outcome, Err(RegionError::CostCeiling(_)));
    if let Some(t0) = eval_from {
        hpac_obs::add(
            hpac_obs::CounterId::ConfigEvalNs,
            hpac_obs::now_ns().saturating_sub(t0),
        );
        hpac_obs::inc(if outcome.is_ok() {
            hpac_obs::CounterId::ConfigsEvaluated
        } else if aborted {
            hpac_obs::CounterId::EarlyAborts
        } else {
            hpac_obs::CounterId::ConfigsRejected
        });
    }
    match outcome {
        Ok(res) => {
            let (err, quality_hit) = baseline.quality.get_or(qoi_fingerprint(&res.qoi), || {
                res.qoi.error_vs(&baseline.result.qoi)
            });
            if quality_hit {
                hpac_obs::inc(hpac_obs::CounterId::QualityCacheHits);
            }
            let seconds = res.timing_basis_seconds(kernel_only);
            ConfigOutcome::Done(Row {
                benchmark: bench.name().to_string(),
                device: spec.name.to_string(),
                technique: cfg.region.technique_name().to_string(),
                config: cfg.label.clone(),
                items_per_thread: cfg.lp.items_per_thread,
                speedup: baseline.seconds / seconds,
                error_pct: err * 100.0,
                approx_fraction: res.stats.approx_fraction(),
                divergent_fraction: res.stats.divergence_fraction(),
                kernel_seconds: res.kernel_seconds,
                end_to_end_seconds: res.end_to_end_seconds(),
                iterations: res.iterations,
            })
        }
        Err(RegionError::CostCeiling(_)) => ConfigOutcome::Aborted(cfg.label.clone()),
        Err(e) => ConfigOutcome::Rejected(cfg.label.clone(), e.to_string()),
    }
}

/// The canonical-execution key of a configuration: region fingerprint plus
/// the benchmark's launch class for the configuration's launch shape. Two
/// configurations with equal keys perform bit-identical executions, so one
/// evaluation serves both. `None` when the benchmark opts out of launch
/// classification.
pub fn canonical_key(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    cfg: &SweepConfig,
) -> Option<Vec<u64>> {
    bench.launch_class(spec, &cfg.lp).map(|class| {
        let mut key = cfg.region.fingerprint_words();
        key.push(class);
        key
    })
}

/// For each plan entry, the index of its canonical representative: the
/// first earlier entry with the same effective execution (identical region
/// fingerprint *and* identical launch class per
/// [`Benchmark::launch_class`]). Entries whose benchmark opts out of launch
/// classification (`None`) are always their own representative.
fn canonical_reps(bench: &dyn Benchmark, spec: &DeviceSpec, plan: &[SweepConfig]) -> Vec<usize> {
    let mut reps: Vec<usize> = (0..plan.len()).collect();
    let mut seen: HashMap<Vec<u64>, usize> = HashMap::new();
    for (i, cfg) in plan.iter().enumerate() {
        if let Some(key) = canonical_key(bench, spec, cfg) {
            match seen.entry(key) {
                Entry::Occupied(e) => reps[i] = *e.get(),
                Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
    }
    reps
}

/// Evaluate a plan with canonical-duplicate elision: only representatives
/// run (via `eval`); duplicates clone their representative's result under
/// their own label and items-per-thread. `run_fresh` maps representative
/// plan indices to results — sequentially or via the engine, the caller's
/// choice.
fn run_deduped(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    plan: &[SweepConfig],
    run_fresh: impl FnOnce(&[usize]) -> Vec<Result<Row, (String, String)>>,
) -> Vec<Result<Row, (String, String)>> {
    let reps = canonical_reps(bench, spec, plan);
    let fresh: Vec<usize> = (0..plan.len()).filter(|&i| reps[i] == i).collect();
    let fresh_results = run_fresh(&fresh);
    let mut by_index: Vec<Option<Result<Row, (String, String)>>> = vec![None; plan.len()];
    for (slot, &i) in fresh.iter().enumerate() {
        by_index[i] = Some(fresh_results[slot].clone());
    }
    for i in 0..plan.len() {
        if reps[i] != i {
            hpac_obs::inc(hpac_obs::CounterId::ConfigsDeduped);
            let rep = by_index[reps[i]].clone().expect("representative evaluated");
            by_index[i] = Some(match rep {
                Ok(mut row) => {
                    row.config = plan[i].label.clone();
                    row.items_per_thread = plan[i].lp.items_per_thread;
                    Ok(row)
                }
                Err((_, reason)) => Err((plan[i].label.clone(), reason)),
            });
        }
    }
    by_index
        .into_iter()
        .map(|r| r.expect("all filled"))
        .collect()
}

/// Run a benchmark's full sweep plan on one device, in parallel across
/// configurations.
///
/// Configurations are submitted to the shared [`engine`] as one task each.
/// Kernel launches *inside* a configuration go through the same engine, so
/// no pinning is needed: the engine's depth guard runs nested block
/// fan-outs inline on the config task's worker, and the host is never
/// oversubscribed. For intra-kernel parallelism measurements use
/// [`run_sweep_serial`], which keeps the configurations serial so the
/// block executor is the only parallelism in play.
pub fn run_sweep(bench: &dyn Benchmark, spec: &DeviceSpec, scale: Scale) -> SweepOutcome {
    let opts = ExecOptions::default();
    let _scope = install_eval_memo();
    let baseline = select_baseline_opts(bench, spec, &opts);
    let plan = space::plan(bench, spec, scale);
    let _sweep = hpac_obs::span_named(hpac_obs::SpanId::SweepApp, bench.name(), plan.len() as u64);
    let results = run_deduped(bench, spec, &plan, |fresh| {
        engine().run(fresh.len(), engine().default_width(), |slot| {
            run_config_opts(bench, spec, &baseline, &plan[fresh[slot]], &opts)
        })
    });

    let mut rows = Vec::with_capacity(results.len());
    let mut rejected = Vec::new();
    for r in results {
        match r {
            Ok(row) => rows.push(row),
            Err(rej) => rejected.push(rej),
        }
    }
    SweepOutcome {
        rows,
        rejected,
        baseline,
    }
}

/// Run a benchmark's full sweep plan on one device with each configuration
/// executed *serially*, under explicit execution options. This is the
/// harness entry for intra-kernel parallelism
/// ([`hpac_core::exec::Executor::ParallelBlocks`]): the configurations run
/// one at a time and each kernel launch fans its blocks out instead —
/// `sweepbench` uses it to compare the two executors on equal footing.
pub fn run_sweep_serial(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    scale: Scale,
    opts: &ExecOptions,
) -> SweepOutcome {
    let _scope = install_eval_memo();
    let baseline = select_baseline_opts(bench, spec, opts);
    let plan = space::plan(bench, spec, scale);
    let _sweep = hpac_obs::span_named(hpac_obs::SpanId::SweepApp, bench.name(), plan.len() as u64);
    let results = run_deduped(bench, spec, &plan, |fresh| {
        fresh
            .iter()
            .map(|&i| run_config_opts(bench, spec, &baseline, &plan[i], opts))
            .collect()
    });
    let mut rows = Vec::with_capacity(plan.len());
    let mut rejected = Vec::new();
    for r in results {
        match r {
            Ok(row) => rows.push(row),
            Err(rej) => rejected.push(rej),
        }
    }
    SweepOutcome {
        rows,
        rejected,
        baseline,
    }
}

/// Run specific configurations (used by figure generators with bespoke
/// grids, e.g. Fig 8c's extended items-per-thread axis).
pub fn run_configs(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    configs: &[SweepConfig],
) -> SweepOutcome {
    // Config-parallel like `run_sweep`: one engine task per configuration,
    // nested kernel fan-outs inlined by the engine's depth guard.
    let opts = ExecOptions::default();
    let _scope = install_eval_memo();
    let baseline = select_baseline_opts(bench, spec, &opts);
    let _sweep = hpac_obs::span_named(
        hpac_obs::SpanId::SweepApp,
        bench.name(),
        configs.len() as u64,
    );
    let results = run_deduped(bench, spec, configs, |fresh| {
        engine().run(fresh.len(), engine().default_width(), |slot| {
            run_config_opts(bench, spec, &baseline, &configs[fresh[slot]], &opts)
        })
    });
    let mut rows = Vec::new();
    let mut rejected = Vec::new();
    for r in results {
        match r {
            Ok(row) => rows.push(row),
            Err(rej) => rejected.push(rej),
        }
    }
    SweepOutcome {
        rows,
        rejected,
        baseline,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_apps::blackscholes::Blackscholes;
    use hpac_apps::common::LaunchParams;
    use hpac_core::region::ApproxRegion;

    fn tiny_bs() -> Blackscholes {
        Blackscholes {
            n_options: 2048,
            distinct: 16,
            run_len: 16,
            seed: 1,
        }
    }

    #[test]
    fn baseline_is_accurate_and_timed() {
        let bench = tiny_bs();
        let spec = DeviceSpec::v100();
        let b = select_baseline(&bench, &spec);
        assert!(b.seconds > 0.0);
        assert_eq!(b.result.stats.approx_fraction(), 0.0);
    }

    #[test]
    fn run_config_computes_speedup_and_error() {
        let bench = tiny_bs();
        let spec = DeviceSpec::v100();
        let baseline = select_baseline(&bench, &spec);
        let cfg = SweepConfig {
            region: ApproxRegion::memo_out(2, 32, 0.9),
            lp: LaunchParams::new(16, 256),
            label: "test".into(),
        };
        let row = run_config(&bench, &spec, &baseline, &cfg).unwrap();
        assert!(row.speedup > 0.0);
        assert!(row.error_pct >= 0.0);
        assert_eq!(row.technique, "TAF");
        assert_eq!(row.device, "V100");
    }

    #[test]
    fn rejected_configs_are_reported() {
        let bench = tiny_bs();
        let spec = DeviceSpec::v100();
        let baseline = select_baseline(&bench, &spec);
        // 512-entry private tables cannot fit shared memory.
        let cfg = SweepConfig {
            region: ApproxRegion::memo_in(512, 0.5),
            lp: LaunchParams::new(8, 1024),
            label: "oversized".into(),
        };
        let err = run_config(&bench, &spec, &baseline, &cfg).unwrap_err();
        assert_eq!(err.0, "oversized");
        assert!(err.1.contains("shared memory"), "reason: {}", err.1);
    }
}
