//! Analysis over harness results: the paper's headline queries.

use crate::db::Row;

/// Best (highest-speedup) row with error below `cap_pct` percent — the
/// query behind Fig 6 ("Highest speedup where error is less than 10%").
pub fn best_under_error<'a>(rows: &[&'a Row], cap_pct: f64) -> Option<&'a Row> {
    rows.iter()
        .filter(|r| r.error_pct < cap_pct && r.error_pct.is_finite())
        .max_by(|a, b| a.speedup.total_cmp(&b.speedup))
        .copied()
}

/// The paper's overplot reduction (§4): "we divide the error range for each
/// benchmark into ten equally-sized intervals. For each interval, we show
/// the fastest and slowest 10% of configurations." Returns, per interval,
/// the retained rows.
pub fn decile_bins<'a>(rows: &[&'a Row], n_bins: usize) -> Vec<Vec<&'a Row>> {
    let finite: Vec<&Row> = rows
        .iter()
        .filter(|r| r.error_pct.is_finite())
        .copied()
        .collect();
    if finite.is_empty() {
        return vec![Vec::new(); n_bins];
    }
    let lo = finite
        .iter()
        .map(|r| r.error_pct)
        .fold(f64::INFINITY, f64::min);
    let hi = finite
        .iter()
        .map(|r| r.error_pct)
        .fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / n_bins as f64).max(f64::MIN_POSITIVE);

    let mut bins: Vec<Vec<&Row>> = vec![Vec::new(); n_bins];
    for r in finite {
        let b = (((r.error_pct - lo) / width) as usize).min(n_bins - 1);
        bins[b].push(r);
    }
    for bin in &mut bins {
        bin.sort_by(|a, b| a.speedup.total_cmp(&b.speedup));
        let keep = (bin.len().div_ceil(10)).max(1.min(bin.len()));
        if bin.len() > 2 * keep {
            let slowest: Vec<&Row> = bin[..keep].to_vec();
            let fastest: Vec<&Row> = bin[bin.len() - keep..].to_vec();
            *bin = slowest.into_iter().chain(fastest).collect();
        }
    }
    bins
}

/// Least-squares linear fit `y ≈ slope·x + intercept`, with R² — Fig 12c's
/// convergence-speedup vs time-speedup correlation.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.is_empty() {
        return (0.0, 0.0, 0.0);
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return (0.0, my, if syy == 0.0 { 1.0 } else { 0.0 });
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r2 = (sxy * sxy) / (sxx * syy);
    (slope, intercept, r2)
}

/// Geometric mean of the speedups (the paper's "geomean speedup 1.42×").
pub fn geomean_speedup(rows: &[&Row]) -> f64 {
    hpac_core::metrics::geomean(&rows.iter().map(|r| r.speedup).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(speedup: f64, error_pct: f64) -> Row {
        Row {
            benchmark: "X".into(),
            device: "V100".into(),
            technique: "TAF".into(),
            config: String::new(),
            items_per_thread: 8,
            speedup,
            error_pct,
            approx_fraction: 0.0,
            divergent_fraction: 0.0,
            kernel_seconds: 0.0,
            end_to_end_seconds: 0.0,
            iterations: None,
        }
    }

    #[test]
    fn best_under_error_respects_cap() {
        let rows = [row(3.0, 15.0), row(2.0, 5.0), row(1.5, 1.0)];
        let refs: Vec<&Row> = rows.iter().collect();
        let best = best_under_error(&refs, 10.0).unwrap();
        assert_eq!(best.speedup, 2.0);
    }

    #[test]
    fn best_under_error_ignores_infinite() {
        let rows = [row(9.0, f64::INFINITY), row(1.2, 2.0)];
        let refs: Vec<&Row> = rows.iter().collect();
        assert_eq!(best_under_error(&refs, 10.0).unwrap().speedup, 1.2);
    }

    #[test]
    fn best_under_error_none_when_all_bad() {
        let rows = [row(9.0, 99.0)];
        let refs: Vec<&Row> = rows.iter().collect();
        assert!(best_under_error(&refs, 10.0).is_none());
    }

    #[test]
    fn decile_bins_cover_range() {
        let rows: Vec<Row> = (0..100)
            .map(|i| row(1.0 + i as f64 / 100.0, i as f64))
            .collect();
        let refs: Vec<&Row> = rows.iter().collect();
        let bins = decile_bins(&refs, 10);
        assert_eq!(bins.len(), 10);
        let total: usize = bins.iter().map(|b| b.len()).sum();
        assert!(
            total >= 20,
            "must keep fastest+slowest per bin, kept {total}"
        );
        assert!(total < 100, "must discard the middle, kept {total}");
    }

    #[test]
    fn perfect_line_has_r2_one() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 1.0).collect();
        let (slope, intercept, r2) = linear_fit(&xs, &ys);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 1.0).abs() < 1e-12);
        assert!((r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_data_has_lower_r2() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 3.0, 1.0, 4.0];
        let (_, _, r2) = linear_fit(&xs, &ys);
        assert!(r2 < 0.9);
        assert!(r2 > 0.0);
    }

    #[test]
    fn geomean_speedup_of_ones_is_one() {
        let rows = [row(1.0, 0.0), row(1.0, 0.0)];
        let refs: Vec<&Row> = rows.iter().collect();
        assert!((geomean_speedup(&refs) - 1.0).abs() < 1e-12);
    }
}
