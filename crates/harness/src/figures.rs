//! Per-figure/table data generation: every table and figure of the paper's
//! evaluation has one entry point here that regenerates its data series.
//!
//! Each function returns one or more [`FigureData`] tables that the
//! `hpac-bench` binaries print and persist to CSV. Absolute numbers come
//! from the simulator's cycle model, so the quantities to compare against
//! the paper are the *shapes*: orderings between techniques, crossover
//! locations, and error magnitudes (see EXPERIMENTS.md).

use crate::analyze;
use crate::db::ResultsDb;
use crate::runner::{self, SweepOutcome};
use crate::space::{self, Scale, SweepConfig};
use gpu_sim::memory;
use gpu_sim::DeviceSpec;
use hpac_apps::common::{Benchmark, LaunchParams, QoI};
use hpac_apps::{blackscholes::Blackscholes, kmeans::KMeans, lavamd::LavaMd};
use hpac_core::region::ApproxRegion;
use hpac_core::HierarchyLevel;
use std::path::Path;

/// One printable/saveable data table.
#[derive(Debug, Clone)]
pub struct FigureData {
    pub id: String,
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl FigureData {
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        FigureData {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),

            rows: Vec::new(),
        }
    }

    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = format!("== {} — {} ==\n", self.id, self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Save as CSV under `dir/<id>.csv`.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut s = self.headers.join(",");
        s.push('\n');
        for row in &self.rows {
            s.push_str(&row.join(","));
            s.push('\n');
        }
        std::fs::write(dir.join(format!("{}.csv", self.id)), s)
    }
}

fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e4 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Figure 3: percent of device global memory needed for per-thread
/// memoization tables vs thread count (5-entry tables, 36-byte entries).
pub fn fig03() -> FigureData {
    let spec = DeviceSpec::v100();
    let mut fig = FigureData::new(
        "fig03",
        "Per-thread memoization tables vs V100 global memory",
        &["threads_pow2", "threads", "table_bytes", "pct_of_16GB"],
    );
    for p in 14..=27u32 {
        let threads = 1u128 << p;
        let fit = memory::per_thread_state_fit(&spec, threads, 5 * 36);
        fig.push_row(vec![
            format!("2^{p}"),
            threads.to_string(),
            fit.required_bytes.to_string(),
            f(fit.fraction * 100.0),
        ]);
    }
    fig
}

/// Run the full Table 2 sweep for a set of benchmarks on both devices,
/// returning the populated database (the substrate for Figs 6-12).
pub fn full_sweep(benches: &[&dyn Benchmark], scale: Scale) -> (ResultsDb, Vec<(String, String)>) {
    let mut db = ResultsDb::new();
    let mut rejected = Vec::new();
    for spec in DeviceSpec::evaluation_platforms() {
        for bench in benches {
            let outcome = runner::run_sweep(*bench, &spec, scale);
            db.extend(outcome.rows);
            rejected.extend(outcome.rejected);
        }
    }
    (db, rejected)
}

/// Figure 6: highest speedup with error < 10% per benchmark, technique, and
/// platform, plus the headline aggregates (max speedup, geomean).
pub fn fig06(db: &ResultsDb) -> Vec<FigureData> {
    let mut best = FigureData::new(
        "fig06_best",
        "Highest speedup with error < 10% (per benchmark/technique/platform)",
        &[
            "device",
            "benchmark",
            "technique",
            "speedup",
            "error_pct",
            "config",
        ],
    );
    let mut devices: Vec<String> = db.rows.iter().map(|r| r.device.clone()).collect();
    devices.sort();
    devices.dedup();
    let mut benchmarks: Vec<String> = db.rows.iter().map(|r| r.benchmark.clone()).collect();
    benchmarks.sort();
    benchmarks.dedup();

    let mut headline_best: Vec<f64> = Vec::new();
    for device in &devices {
        for bench in &benchmarks {
            for tech in ["Perfo", "TAF", "iACT"] {
                let rows = db.select(bench, device, tech);
                match analyze::best_under_error(&rows, 10.0) {
                    Some(r) => {
                        headline_best.push(r.speedup);
                        best.push_row(vec![
                            device.clone(),
                            bench.clone(),
                            tech.to_string(),
                            f(r.speedup),
                            f(r.error_pct),
                            r.config.clone(),
                        ]);
                    }
                    None => best.push_row(vec![
                        device.clone(),
                        bench.clone(),
                        tech.to_string(),
                        "-".into(),
                        ">10".into(),
                        "(no config under 10% error)".into(),
                    ]),
                }
            }
        }
    }

    let mut headline = FigureData::new(
        "headline",
        "Paper §1/§6 headline aggregates",
        &["metric", "value"],
    );
    let max = headline_best.iter().cloned().fold(0.0, f64::max);
    headline.push_row(vec!["max speedup (err<10%)".into(), f(max)]);
    headline.push_row(vec![
        "geomean of best speedups (err<10%)".into(),
        f(hpac_core::metrics::geomean(&headline_best)),
    ]);

    vec![best, headline]
}

/// Speedup-vs-error cloud for one benchmark/device/technique, decile-binned
/// as the paper does to reduce overplotting (used by Figs 7-12 panels).
pub fn cloud(
    db: &ResultsDb,
    benchmark: &str,
    device: &str,
    technique: &str,
    id: &str,
) -> FigureData {
    let mut fig = FigureData::new(
        id,
        &format!("{benchmark} {technique} on {device}: speedup vs error"),
        &[
            "error_pct",
            "speedup",
            "approx_fraction",
            "divergent_fraction",
            "config",
        ],
    );
    let rows = db.select(benchmark, device, technique);
    for bin in analyze::decile_bins(&rows, 10) {
        for r in bin {
            fig.push_row(vec![
                f(r.error_pct),
                f(r.speedup),
                f(r.approx_fraction),
                f(r.divergent_fraction),
                r.config.clone(),
            ]);
        }
    }
    fig
}

/// Figure 7: LULESH perforation/TAF/iACT clouds on both platforms.
pub fn fig07(db: &ResultsDb) -> Vec<FigureData> {
    let mut out = Vec::new();
    for (device, tag) in [("V100", "nvidia"), ("MI250X", "amd")] {
        for (tech, t) in [("Perfo", "perfo"), ("TAF", "taf"), ("iACT", "iact")] {
            out.push(cloud(
                db,
                "LULESH",
                device,
                tech,
                &format!("fig07_{t}_{tag}"),
            ));
        }
    }
    out
}

/// Figure 8a/8b: Binomial Options TAF and iACT clouds on NVIDIA.
pub fn fig08ab(db: &ResultsDb) -> Vec<FigureData> {
    vec![
        cloud(db, "Binomial Options", "V100", "TAF", "fig08a_taf_nvidia"),
        cloud(db, "Binomial Options", "V100", "iACT", "fig08b_iact_nvidia"),
    ]
}

/// Figure 8c: parallelism vs approximation — speedup and percent
/// approximated vs items per thread (options per block), both platforms.
pub fn fig08c(bench: &dyn Benchmark, scale: Scale) -> FigureData {
    let mut fig = FigureData::new(
        "fig08c_parallelism",
        "Binomial Options: speedup vs items per thread (TAF, block level)",
        &["device", "items_per_thread", "speedup", "pct_approximated"],
    );
    for spec in DeviceSpec::evaluation_platforms() {
        let configs: Vec<SweepConfig> = space::fig8c_items_per_thread(scale)
            .into_iter()
            .map(|ipt| SweepConfig {
                region: ApproxRegion::memo_out(1, 64, 5.0).level(HierarchyLevel::Block),
                lp: LaunchParams::new(ipt, 128),
                label: format!("ipt={ipt}"),
            })
            .collect();
        let outcome = runner::run_configs(bench, &spec, &configs);
        let mut rows = outcome.rows;
        rows.sort_by_key(|r| r.items_per_thread);
        for r in rows {
            fig.push_row(vec![
                r.device.clone(),
                r.items_per_thread.to_string(),
                f(r.speedup),
                f(r.approx_fraction * 100.0),
            ]);
        }
    }
    fig
}

/// Figure 9: Leukocyte TAF/iACT clouds (NVIDIA) and MiniFE TAF, plus the
/// iACT-inapplicability demonstration for MiniFE.
pub fn fig09(db: &ResultsDb, minife_iact_rejection: &str) -> Vec<FigureData> {
    let mut out = vec![
        cloud(db, "Leukocyte", "V100", "TAF", "fig09a_taf_nvidia"),
        cloud(db, "Leukocyte", "V100", "iACT", "fig09b_iact_nvidia"),
        cloud(db, "MiniFE", "V100", "TAF", "fig09c_minife_taf_nvidia"),
    ];
    let mut note = FigureData::new(
        "fig09_minife_iact",
        "MiniFE: iACT applicability",
        &["outcome"],
    );
    note.push_row(vec![minife_iact_rejection.to_string()]);
    out.push(note);
    out
}

/// Figure 10a/10b: Blackscholes TAF and iACT clouds on AMD.
pub fn fig10ab(db: &ResultsDb) -> Vec<FigureData> {
    vec![
        cloud(db, "Blackscholes", "MI250X", "TAF", "fig10a_taf_amd"),
        cloud(db, "Blackscholes", "MI250X", "iACT", "fig10b_iact_amd"),
    ]
}

/// Figure 10c: distribution of output prices vs the exact prices, for TAF
/// with history 5, prediction 512, across RSD thresholds.
pub fn fig10c(cfg: &Blackscholes, scale: Scale) -> FigureData {
    let spec = DeviceSpec::mi250x();
    let lp = LaunchParams::new(64, 256);
    let exact = cfg
        .run(&spec, None, &lp)
        .expect("accurate blackscholes run");
    let QoI::Values(exact_prices) = &exact.qoi else {
        unreachable!()
    };

    let mut fig = FigureData::new(
        "fig10c_distributions",
        "Blackscholes output price distribution vs TAF RSD threshold (h=5, p=512)",
        &[
            "threshold",
            "mape_pct",
            "approx_pct",
            "p5",
            "p25",
            "median",
            "p75",
            "p95",
        ],
    );
    let mut push_dist = |label: String, prices: &[f64], mape_pct: f64, approx_pct: f64| {
        let mut sorted = prices.to_vec();
        sorted.sort_by(f64::total_cmp);
        let q = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
        fig.push_row(vec![
            label,
            f(mape_pct),
            f(approx_pct),
            f(q(0.05)),
            f(q(0.25)),
            f(q(0.50)),
            f(q(0.75)),
            f(q(0.95)),
        ]);
    };
    push_dist("exact".into(), exact_prices, 0.0, 0.0);

    let thresholds: Vec<f64> = match scale {
        Scale::Full => vec![0.3, 0.6, 0.9, 1.2, 1.5, 3.0, 5.0, 20.0],
        Scale::Quick => vec![0.3, 1.5, 3.0, 20.0],
    };
    for t in thresholds {
        let region = ApproxRegion::memo_out(5, 512, t);
        let res = cfg
            .run(&spec, Some(&region), &lp)
            .expect("approximated blackscholes run");
        let err = res.qoi.error_vs(&exact.qoi);
        let QoI::Values(prices) = &res.qoi else {
            unreachable!()
        };
        push_dist(
            format!("T={t}"),
            prices,
            err * 100.0,
            res.stats.approx_fraction() * 100.0,
        );
    }
    fig
}

/// Figure 11a/11b: LavaMD TAF and iACT clouds on AMD.
pub fn fig11ab(db: &ResultsDb) -> Vec<FigureData> {
    vec![
        cloud(db, "LavaMD", "MI250X", "TAF", "fig11a_taf_amd"),
        cloud(db, "LavaMD", "MI250X", "iACT", "fig11b_iact_amd"),
    ]
}

/// Figure 11c: paired thread-level vs warp-level speedups per RSD threshold
/// (LavaMD TAF on AMD) — the hierarchical-decision ablation.
pub fn fig11c(cfg: &LavaMd, scale: Scale) -> FigureData {
    let spec = DeviceSpec::mi250x();
    let mut fig = FigureData::new(
        "fig11c_hierarchy",
        "LavaMD TAF on AMD: thread- vs warp-level decision speedup",
        &[
            "threshold",
            "hsize",
            "psize",
            "ipt",
            "thread_speedup",
            "warp_speedup",
        ],
    );
    let thresholds: Vec<f64> = match scale {
        Scale::Full => vec![0.6, 0.9, 1.2, 1.5, 3.0, 5.0],
        Scale::Quick => vec![0.9, 1.5, 3.0, 5.0],
    };
    let (hsizes, psizes, ipts): (Vec<usize>, Vec<usize>, Vec<usize>) = match scale {
        Scale::Full => (vec![2, 5], vec![8, 64], vec![32, 128]),
        Scale::Quick => (vec![2], vec![32], vec![64]),
    };
    let baseline = runner::select_baseline(cfg, &spec);
    for &t in &thresholds {
        for &h in &hsizes {
            for &p in &psizes {
                for &ipt in &ipts {
                    let mk = |lvl: HierarchyLevel| SweepConfig {
                        region: ApproxRegion::memo_out(h, p, t).level(lvl),
                        lp: LaunchParams::new(ipt, 256),
                        label: String::new(),
                    };
                    let tr = runner::run_config(cfg, &spec, &baseline, &mk(HierarchyLevel::Thread));
                    let wr = runner::run_config(cfg, &spec, &baseline, &mk(HierarchyLevel::Warp));
                    if let (Ok(tr), Ok(wr)) = (tr, wr) {
                        fig.push_row(vec![
                            f(t),
                            h.to_string(),
                            p.to_string(),
                            ipt.to_string(),
                            f(tr.speedup),
                            f(wr.speedup),
                        ]);
                    }
                }
            }
        }
    }
    fig
}

/// Figure 12a/12b: K-Means TAF and iACT clouds on AMD (MCR metric).
pub fn fig12ab(db: &ResultsDb) -> Vec<FigureData> {
    vec![
        cloud(db, "K-Means", "MI250X", "TAF", "fig12a_taf_amd"),
        cloud(db, "K-Means", "MI250X", "iACT", "fig12b_iact_amd"),
    ]
}

/// Figure 12c: time speedup vs convergence speedup with the linear-fit R².
pub fn fig12c(cfg: &KMeans, outcome: &SweepOutcome) -> (FigureData, f64) {
    let _ = cfg;
    let base_iters = outcome
        .baseline
        .result
        .iterations
        .expect("K-Means reports iterations") as f64;
    let mut fig = FigureData::new(
        "fig12c_convergence",
        "K-Means: time speedup vs convergence speedup (TAF on AMD)",
        &["convergence_speedup", "time_speedup", "config"],
    );
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for r in outcome.rows.iter().filter(|r| r.technique == "TAF") {
        if let Some(iters) = r.iterations {
            let conv = base_iters / iters as f64;
            xs.push(conv);
            ys.push(r.speedup);
            fig.push_row(vec![f(conv), f(r.speedup), r.config.clone()]);
        }
    }
    let (_, _, r2) = analyze::linear_fit(&xs, &ys);
    let mut note = format!("R2={r2:.3}");
    note.push_str(&format!(" over {} TAF configs", xs.len()));
    fig.title = format!("{} [{}]", fig.title, note);
    (fig, r2)
}

/// Table 1: the benchmark suite.
pub fn table1(benches: &[&dyn Benchmark]) -> FigureData {
    let mut fig = FigureData::new(
        "table1",
        "Benchmarks used to evaluate hpac-offload",
        &[
            "benchmark",
            "error_metric",
            "timing_basis",
            "decision_scope",
        ],
    );
    for b in benches {
        fig.push_row(vec![
            b.name().to_string(),
            b.error_metric().to_string(),
            if b.kernel_only_timing() {
                "kernel-only".into()
            } else {
                "end-to-end".into()
            },
            if b.block_level_only() {
                "block".into()
            } else {
                "thread/warp".into()
            },
        ]);
    }
    fig
}

/// Table 2: the design-space parameter grids actually swept.
pub fn table2(scale: Scale) -> FigureData {
    let mut fig = FigureData::new(
        "table2",
        "Design-space parameters (Table 2)",
        &["technique", "parameter", "values"],
    );
    let (h, p, t) = match scale {
        Scale::Full => ("1,2,3,4,5", "2,4,8,...,512", "0.3,0.6,...,1.5,3,5,20"),
        Scale::Quick => ("1,3,5", "4,32,512", "0.3,0.9,1.5,3,20"),
    };
    fig.push_row(vec!["TAF".into(), "hSize".into(), h.into()]);
    fig.push_row(vec!["TAF".into(), "pSize".into(), p.into()]);
    fig.push_row(vec!["TAF".into(), "threshold".into(), t.into()]);
    let (tpw, ts, it) = match scale {
        Scale::Full => ("1,2,16,32,64(AMD)", "1,2,4,8", "0.1,0.3,...,0.9,3,5,20"),
        Scale::Quick => ("1,16,32,64(AMD)", "2,8", "0.1,0.5,0.9,5"),
    };
    fig.push_row(vec!["iACT".into(), "tPerWarp".into(), tpw.into()]);
    fig.push_row(vec!["iACT".into(), "tSize".into(), ts.into()]);
    fig.push_row(vec!["iACT".into(), "threshold".into(), it.into()]);
    let (skips, pcts) = match scale {
        Scale::Full => ("2,4,8,16,32,64", "10,20,...,90"),
        Scale::Quick => ("2,8,64", "10,50,90"),
    };
    fig.push_row(vec![
        "Perfo".into(),
        "skip (small,large)".into(),
        skips.into(),
    ]);
    fig.push_row(vec![
        "Perfo".into(),
        "skipPercent (ini,fini)".into(),
        pcts.into(),
    ]);
    let ipt = match scale {
        Scale::Full => "8,16,32,...,512",
        Scale::Quick => "8,64,512",
    };
    fig.push_row(vec!["Memo".into(), "items per thread".into(), ipt.into()]);
    fig.push_row(vec![
        "Memo".into(),
        "hierarchy".into(),
        "thread, warp (block where required)".into(),
    ]);
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig03_shows_capacity_wall() {
        let fig = fig03();
        assert_eq!(fig.rows.len(), 14);
        // The last row (2^27 threads) must exceed 100%.
        let last_pct: f64 = fig.rows.last().unwrap()[3].parse().unwrap();
        assert!(last_pct > 100.0);
        // The first row must be well under 1%.
        let first_pct: f64 = fig.rows[0][3].parse().unwrap();
        assert!(first_pct < 1.0);
    }

    #[test]
    fn render_aligns_columns() {
        let fig = fig03();
        let text = fig.render();
        assert!(text.contains("fig03"));
        assert!(text.lines().count() > 14);
    }

    #[test]
    fn table2_lists_all_techniques() {
        let t = table2(Scale::Full);
        let techs: Vec<&String> = t.rows.iter().map(|r| &r[0]).collect();
        assert!(techs.iter().any(|s| s.as_str() == "TAF"));
        assert!(techs.iter().any(|s| s.as_str() == "iACT"));
        assert!(techs.iter().any(|s| s.as_str() == "Perfo"));
    }

    #[test]
    fn table1_covers_all_benchmarks() {
        let benches = hpac_apps::all_benchmarks();
        let refs: Vec<&dyn Benchmark> = benches.iter().map(|b| b.as_ref()).collect();
        let t = table1(&refs);
        assert_eq!(t.rows.len(), 7);
        // K-Means uses MCR, everything else MAPE.
        let kmeans = t.rows.iter().find(|r| r[0] == "K-Means").unwrap();
        assert_eq!(kmeans[1], "MCR");
    }

    #[test]
    fn csv_save_works() {
        let fig = fig03();
        let dir = std::env::temp_dir().join("hpac_figs_test");
        fig.save_csv(&dir).unwrap();
        let content = std::fs::read_to_string(dir.join("fig03.csv")).unwrap();
        assert!(content.starts_with("threads_pow2"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
