//! The design-space parameter grids of the paper's Table 2.
//!
//! `Scale::Full` reproduces Table 2 exactly (the paper explored 57,288
//! configurations across benchmarks and platforms — budget hours, not
//! minutes). `Scale::Quick` subsamples every axis so a full sweep over all
//! benchmarks and both devices finishes on a laptop; the pruned grids keep
//! the extreme and middle values of each axis so the clouds retain their
//! shape.

use gpu_sim::{DeviceSpec, Vendor};
use hpac_apps::common::{Benchmark, LaunchParams};
use hpac_core::params::PerfoKind;
use hpac_core::region::ApproxRegion;
use hpac_core::HierarchyLevel;

/// Sweep resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Pruned grids for CI/laptop runs.
    Quick,
    /// The paper's Table 2 grids.
    Full,
}

/// One point of the design space: a fully parameterized region plus launch
/// shape.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub region: ApproxRegion,
    pub lp: LaunchParams,
    /// Human-readable parameter description for the results database.
    pub label: String,
}

/// The TAF grid, one vector per axis. Exposed (via [`taf_axes`]) so
/// adaptive tuners can search along individual axes instead of sweeping the
/// full Cartesian product.
#[derive(Debug, Clone)]
pub struct TafAxes {
    pub hsize: Vec<usize>,
    pub psize: Vec<usize>,
    pub threshold: Vec<f64>,
    pub levels: Vec<HierarchyLevel>,
    pub items_per_thread: Vec<usize>,
}

/// The iACT grid, one vector per axis (already filtered to tables-per-warp
/// values the device supports).
#[derive(Debug, Clone)]
pub struct IactAxes {
    pub tables_per_warp: Vec<u32>,
    pub tsize: Vec<usize>,
    pub threshold: Vec<f64>,
    pub levels: Vec<HierarchyLevel>,
    pub items_per_thread: Vec<usize>,
}

/// The perforation grids: the rate axes (small/large) and the bounds axes
/// (ini/fini, always items-per-thread 1).
#[derive(Debug, Clone)]
pub struct PerfoAxes {
    pub skip_m: Vec<u32>,
    pub fractions: Vec<f64>,
    pub items_per_thread: Vec<usize>,
}

/// TAF axes for a benchmark on a device.
pub fn taf_axes(bench: &dyn Benchmark, _device: &DeviceSpec, scale: Scale) -> TafAxes {
    let (hsize, psize, threshold) = taf_grid(scale);
    TafAxes {
        hsize,
        psize,
        threshold,
        levels: hierarchy_levels(bench),
        items_per_thread: items_per_thread(scale, false),
    }
}

/// iACT axes for a benchmark on a device.
pub fn iact_axes(bench: &dyn Benchmark, device: &DeviceSpec, scale: Scale) -> IactAxes {
    let (tperwarp, tsize, threshold) = iact_grid(scale, device);
    IactAxes {
        tables_per_warp: tperwarp
            .into_iter()
            .filter(|&t| t <= device.warp_size)
            .collect(),
        tsize,
        threshold,
        levels: hierarchy_levels(bench),
        items_per_thread: items_per_thread(scale, false),
    }
}

/// Perforation axes for a benchmark on a device.
pub fn perfo_axes(_bench: &dyn Benchmark, _device: &DeviceSpec, scale: Scale) -> PerfoAxes {
    let (skip_m, fractions) = perfo_rates(scale);
    PerfoAxes {
        skip_m,
        fractions,
        items_per_thread: items_per_thread(scale, true),
    }
}

fn taf_grid(scale: Scale) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    match scale {
        Scale::Full => (
            vec![1, 2, 3, 4, 5],
            vec![2, 4, 8, 16, 32, 64, 128, 256, 512],
            vec![0.3, 0.6, 0.9, 1.2, 1.5, 3.0, 5.0, 20.0],
        ),
        Scale::Quick => (
            vec![1, 3, 5],
            vec![4, 32, 512],
            vec![0.3, 0.9, 1.5, 3.0, 20.0],
        ),
    }
}

fn iact_grid(scale: Scale, device: &DeviceSpec) -> (Vec<u32>, Vec<usize>, Vec<f64>) {
    // "Only the AMD platform uses 64 tables per warp" (Table 2): 64 tables
    // per warp requires a 64-lane wavefront.
    let mut tperwarp = match scale {
        Scale::Full => vec![1, 2, 16, 32],
        Scale::Quick => vec![1, 16, 32],
    };
    if device.vendor == Vendor::Amd {
        tperwarp.push(64);
    }
    let (tsize, thresh) = match scale {
        Scale::Full => (
            vec![1, 2, 4, 8],
            vec![0.1, 0.3, 0.5, 0.7, 0.9, 3.0, 5.0, 20.0],
        ),
        Scale::Quick => (vec![2, 8], vec![0.1, 0.5, 0.9, 5.0]),
    };
    (tperwarp, tsize, thresh)
}

fn perfo_rates(scale: Scale) -> (Vec<u32>, Vec<f64>) {
    match scale {
        Scale::Full => (
            vec![2, 4, 8, 16, 32, 64],
            (1..=9).map(|p| p as f64 / 10.0).collect(),
        ),
        Scale::Quick => (vec![2, 8, 64], vec![0.1, 0.5, 0.9]),
    }
}

/// Items-per-thread axis (Table 2's "Items per Thread 8,16,...,512"; for
/// perforation the axis starts at 1).
pub fn items_per_thread(scale: Scale, include_one: bool) -> Vec<usize> {
    let mut v = match scale {
        Scale::Full => vec![8, 16, 32, 64, 128, 256, 512],
        Scale::Quick => vec![8, 64, 512],
    };
    if include_one {
        v.insert(0, 1);
    }
    v
}

/// The extended options-per-block axis of Fig 8c.
pub fn fig8c_items_per_thread(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![1, 4, 16, 64, 256, 1024, 2048, 4096, 8192, 16384],
        Scale::Quick => vec![1, 16, 64, 256, 1024, 4096, 16384],
    }
}

fn hierarchy_levels(bench: &dyn Benchmark) -> Vec<HierarchyLevel> {
    if bench.block_level_only() {
        vec![HierarchyLevel::Block]
    } else {
        vec![HierarchyLevel::Thread, HierarchyLevel::Warp]
    }
}

pub fn block_size_for(bench: &dyn Benchmark) -> u32 {
    // "We use the one value of num_threads that yields the best performance
    // in the non-approximated benchmark" (§4, footnote 4). LULESH and
    // LavaMD use small blocks so the items-per-thread axis stays
    // meaningful at proxy problem sizes.
    match bench.name() {
        "Binomial Options" => 128,
        "LULESH" => 64,
        _ => 256,
    }
}

/// TAF configurations for a benchmark on a device.
pub fn taf_configs(bench: &dyn Benchmark, device: &DeviceSpec, scale: Scale) -> Vec<SweepConfig> {
    let axes = taf_axes(bench, device, scale);
    let bs = block_size_for(bench);
    let mut out = Vec::new();
    for &h in &axes.hsize {
        for &p in &axes.psize {
            for &t in &axes.threshold {
                for &lvl in &axes.levels {
                    for &ipt in &axes.items_per_thread {
                        out.push(SweepConfig {
                            region: ApproxRegion::memo_out(h, p, t).level(lvl),
                            lp: LaunchParams::new(ipt, bs),
                            label: format!("h={h} p={p} thr={t} lvl={lvl} ipt={ipt}"),
                        });
                    }
                }
            }
        }
    }
    out
}

/// iACT configurations for a benchmark on a device.
pub fn iact_configs(bench: &dyn Benchmark, device: &DeviceSpec, scale: Scale) -> Vec<SweepConfig> {
    let axes = iact_axes(bench, device, scale);
    let bs = block_size_for(bench);
    let mut out = Vec::new();
    for &tpw in &axes.tables_per_warp {
        for &ts in &axes.tsize {
            for &t in &axes.threshold {
                for &lvl in &axes.levels {
                    for &ipt in &axes.items_per_thread {
                        out.push(SweepConfig {
                            region: ApproxRegion::memo_in(ts, t).tables_per_warp(tpw).level(lvl),
                            lp: LaunchParams::new(ipt, bs),
                            label: format!("ts={ts} thr={t} tpw={tpw} lvl={lvl} ipt={ipt}"),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Perforation configurations (herded small/large + ini/fini bounds).
pub fn perfo_configs(bench: &dyn Benchmark, device: &DeviceSpec, scale: Scale) -> Vec<SweepConfig> {
    let axes = perfo_axes(bench, device, scale);
    let bs = block_size_for(bench);
    let mut out = Vec::new();
    for &m in &axes.skip_m {
        for kind in [PerfoKind::Small { m }, PerfoKind::Large { m }] {
            for &ipt in &axes.items_per_thread {
                let region = ApproxRegion::perfo(kind);
                out.push(SweepConfig {
                    region,
                    lp: LaunchParams::new(ipt, bs),
                    label: format!("{} ipt={ipt}", perfo_label(kind)),
                });
            }
        }
    }
    for &f in &axes.fractions {
        for kind in [
            PerfoKind::Ini { fraction: f },
            PerfoKind::Fini { fraction: f },
        ] {
            let region = ApproxRegion::perfo(kind);
            out.push(SweepConfig {
                region,
                lp: LaunchParams::new(1, bs),
                label: format!("{} ipt=1", perfo_label(kind)),
            });
        }
    }
    out
}

pub fn perfo_label(kind: PerfoKind) -> String {
    match kind {
        PerfoKind::Small { m } => format!("small:{m}"),
        PerfoKind::Large { m } => format!("large:{m}"),
        PerfoKind::Ini { fraction } => format!("ini:{:.0}%", fraction * 100.0),
        PerfoKind::Fini { fraction } => format!("fini:{:.0}%", fraction * 100.0),
    }
}

/// The full sweep plan for one benchmark on one device (Table 2's Cartesian
/// product, per technique).
pub fn plan(bench: &dyn Benchmark, device: &DeviceSpec, scale: Scale) -> Vec<SweepConfig> {
    let mut all = taf_configs(bench, device, scale);
    all.extend(iact_configs(bench, device, scale));
    all.extend(perfo_configs(bench, device, scale));
    all
}

/// Size of the full (paper Table 2) design space for one benchmark on one
/// device — the denominator for an adaptive tuner's evaluation budget.
/// Computed arithmetically from the axis lengths; materializing the full
/// plan just to count it would allocate 10k+ labeled configs.
pub fn full_space_size(bench: &dyn Benchmark, device: &DeviceSpec) -> usize {
    let taf = taf_axes(bench, device, Scale::Full);
    let iact = iact_axes(bench, device, Scale::Full);
    let perfo = perfo_axes(bench, device, Scale::Full);
    taf.hsize.len()
        * taf.psize.len()
        * taf.threshold.len()
        * taf.levels.len()
        * taf.items_per_thread.len()
        + iact.tables_per_warp.len()
            * iact.tsize.len()
            * iact.threshold.len()
            * iact.levels.len()
            * iact.items_per_thread.len()
        + perfo.skip_m.len() * 2 * perfo.items_per_thread.len()
        + perfo.fractions.len() * 2
}

/// Items-per-thread candidates used to pick the non-approximated baseline.
pub fn baseline_ipts(bench: &dyn Benchmark) -> Vec<usize> {
    if bench.block_level_only() {
        vec![1, 4, 16]
    } else {
        vec![1, 8, 32]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_apps::binomial::BinomialOptions;
    use hpac_apps::blackscholes::Blackscholes;

    #[test]
    fn quick_grids_are_small() {
        let bench = Blackscholes::default();
        let v100 = DeviceSpec::v100();
        let plan = plan(&bench, &v100, Scale::Quick);
        assert!(plan.len() < 700, "quick plan too big: {}", plan.len());
        assert!(plan.len() > 100);
    }

    #[test]
    fn full_taf_grid_matches_table2() {
        let bench = Blackscholes::default();
        let v100 = DeviceSpec::v100();
        let taf = taf_configs(&bench, &v100, Scale::Full);
        // 5 hsize * 9 psize * 8 thresh * 2 levels * 7 ipt
        assert_eq!(taf.len(), 5 * 9 * 8 * 2 * 7);
    }

    #[test]
    fn amd_gets_64_tables_per_warp() {
        let bench = Blackscholes::default();
        let amd = DeviceSpec::mi250x();
        let v100 = DeviceSpec::v100();
        let has64 = |cfgs: &[SweepConfig]| cfgs.iter().any(|c| c.label.contains("tpw=64"));
        assert!(has64(&iact_configs(&bench, &amd, Scale::Full)));
        assert!(!has64(&iact_configs(&bench, &v100, Scale::Full)));
    }

    #[test]
    fn block_only_benchmarks_use_block_level() {
        let bench = BinomialOptions::default();
        let v100 = DeviceSpec::v100();
        for c in taf_configs(&bench, &v100, Scale::Quick) {
            assert_eq!(c.region.level, HierarchyLevel::Block);
        }
    }

    #[test]
    fn all_planned_regions_validate() {
        let bench = Blackscholes::default();
        for device in DeviceSpec::evaluation_platforms() {
            for c in plan(&bench, &device, Scale::Quick) {
                c.region.validate().unwrap_or_else(|e| {
                    panic!("invalid planned config {}: {e}", c.label);
                });
            }
        }
    }

    #[test]
    fn axes_products_match_config_counts() {
        let bench = Blackscholes::default();
        for device in DeviceSpec::evaluation_platforms() {
            for scale in [Scale::Quick, Scale::Full] {
                let taf = taf_axes(&bench, &device, scale);
                assert_eq!(
                    taf_configs(&bench, &device, scale).len(),
                    taf.hsize.len()
                        * taf.psize.len()
                        * taf.threshold.len()
                        * taf.levels.len()
                        * taf.items_per_thread.len()
                );
                let iact = iact_axes(&bench, &device, scale);
                assert_eq!(
                    iact_configs(&bench, &device, scale).len(),
                    iact.tables_per_warp.len()
                        * iact.tsize.len()
                        * iact.threshold.len()
                        * iact.levels.len()
                        * iact.items_per_thread.len()
                );
                let perfo = perfo_axes(&bench, &device, scale);
                assert_eq!(
                    perfo_configs(&bench, &device, scale).len(),
                    perfo.skip_m.len() * 2 * perfo.items_per_thread.len()
                        + perfo.fractions.len() * 2
                );
            }
        }
    }

    #[test]
    fn iact_axes_respect_warp_size() {
        let bench = Blackscholes::default();
        let v100 = DeviceSpec::v100();
        let axes = iact_axes(&bench, &v100, Scale::Full);
        assert!(axes.tables_per_warp.iter().all(|&t| t <= v100.warp_size));
    }

    #[test]
    fn full_space_size_matches_plan() {
        // The arithmetic count must track the materialized plan on both
        // devices and for block-level-only benchmarks.
        let benches: [Box<dyn Benchmark>; 2] = [
            Box::new(Blackscholes::default()),
            Box::new(BinomialOptions::default()),
        ];
        for bench in &benches {
            for device in DeviceSpec::evaluation_platforms() {
                assert_eq!(
                    full_space_size(bench.as_ref(), &device),
                    plan(bench.as_ref(), &device, Scale::Full).len(),
                    "{} on {}",
                    bench.name(),
                    device.name
                );
            }
        }
        assert!(full_space_size(benches[0].as_ref(), &DeviceSpec::v100()) > 5_000);
    }

    #[test]
    fn perfo_includes_ipt_one() {
        let bench = Blackscholes::default();
        let v100 = DeviceSpec::v100();
        let cfgs = perfo_configs(&bench, &v100, Scale::Quick);
        assert!(cfgs.iter().any(|c| c.lp.items_per_thread == 1));
    }
}
