//! The harness results database: one row per executed configuration, with
//! CSV persistence (hand-rolled — the schema is flat and fully owned here).

use std::fmt::Write as _;
use std::io::{self, BufRead, Write};
use std::path::Path;

/// One executed configuration's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub benchmark: String,
    pub device: String,
    /// "TAF", "iACT", "Perfo", or "accurate" for the baseline row.
    pub technique: String,
    /// Human-readable parameter description (`space::SweepConfig::label`).
    pub config: String,
    pub items_per_thread: usize,
    /// Speedup over the benchmark's baseline (1.0 for the baseline itself).
    pub speedup: f64,
    /// QoI error in percent (MAPE × 100 or MCR × 100).
    pub error_pct: f64,
    /// Fraction of region executions approximated (incl. perforated).
    pub approx_fraction: f64,
    /// Fraction of warp steps that serialized both paths.
    pub divergent_fraction: f64,
    pub kernel_seconds: f64,
    pub end_to_end_seconds: f64,
    /// Solver iterations, when the benchmark reports them (K-Means).
    pub iterations: Option<usize>,
}

impl Row {
    /// CSV header matching [`Row::to_csv`].
    pub const CSV_HEADER: &'static str = "benchmark,device,technique,config,items_per_thread,\
speedup,error_pct,approx_fraction,divergent_fraction,kernel_seconds,end_to_end_seconds,iterations";

    pub fn to_csv(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{},{},{},\"{}\",{},{},{},{},{},{},{},{}",
            self.benchmark,
            self.device,
            self.technique,
            self.config,
            self.items_per_thread,
            self.speedup,
            self.error_pct,
            self.approx_fraction,
            self.divergent_fraction,
            self.kernel_seconds,
            self.end_to_end_seconds,
            self.iterations.map_or(String::new(), |i| i.to_string()),
        );
        s
    }

    pub fn from_csv(line: &str) -> Option<Row> {
        // The only quoted field is `config`; split around it. A trailing
        // comma produces a final empty field (iterations = None).
        let mut fields: Vec<String> = Vec::new();
        let mut rest = line;
        loop {
            if let Some(stripped) = rest.strip_prefix('"') {
                let end = stripped.find('"')?;
                fields.push(stripped[..end].to_string());
                match stripped[end + 1..].strip_prefix(',') {
                    Some(r) => rest = r,
                    None => break,
                }
            } else {
                match rest.find(',') {
                    Some(c) => {
                        fields.push(rest[..c].to_string());
                        rest = &rest[c + 1..];
                    }
                    None => {
                        fields.push(rest.to_string());
                        break;
                    }
                }
            }
        }
        if fields.len() != 12 {
            return None;
        }
        Some(Row {
            benchmark: fields[0].clone(),
            device: fields[1].clone(),
            technique: fields[2].clone(),
            config: fields[3].clone(),
            items_per_thread: fields[4].parse().ok()?,
            speedup: fields[5].parse().ok()?,
            error_pct: fields[6].parse().ok()?,
            approx_fraction: fields[7].parse().ok()?,
            divergent_fraction: fields[8].parse().ok()?,
            kernel_seconds: fields[9].parse().ok()?,
            end_to_end_seconds: fields[10].parse().ok()?,
            iterations: if fields[11].is_empty() {
                None
            } else {
                fields[11].parse().ok()
            },
        })
    }
}

/// A collection of result rows with query and persistence helpers.
#[derive(Debug, Clone, Default)]
pub struct ResultsDb {
    pub rows: Vec<Row>,
}

impl ResultsDb {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, row: Row) {
        self.rows.push(row);
    }

    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) {
        self.rows.extend(rows);
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows for one benchmark/device/technique.
    pub fn select(&self, benchmark: &str, device: &str, technique: &str) -> Vec<&Row> {
        self.rows
            .iter()
            .filter(|r| r.benchmark == benchmark && r.device == device && r.technique == technique)
            .collect()
    }

    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        writeln!(w, "{}", Row::CSV_HEADER)?;
        for r in &self.rows {
            writeln!(w, "{}", r.to_csv())?;
        }
        Ok(())
    }

    pub fn save(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let f = std::fs::File::create(path)?;
        self.write_csv(io::BufWriter::new(f))
    }

    pub fn load(path: &Path) -> io::Result<Self> {
        let f = std::fs::File::open(path)?;
        let mut rows = Vec::new();
        for (i, line) in io::BufReader::new(f).lines().enumerate() {
            let line = line?;
            if i == 0 || line.trim().is_empty() {
                continue;
            }
            if let Some(row) = Row::from_csv(&line) {
                rows.push(row);
            }
        }
        Ok(ResultsDb { rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Row {
        Row {
            benchmark: "LULESH".into(),
            device: "V100".into(),
            technique: "TAF".into(),
            config: "h=5 p=32 thr=0.9, lvl=warp".into(),
            items_per_thread: 64,
            speedup: 1.42,
            error_pct: 0.67,
            approx_fraction: 0.8,
            divergent_fraction: 0.01,
            kernel_seconds: 1e-3,
            end_to_end_seconds: 2e-3,
            iterations: None,
        }
    }

    #[test]
    fn csv_roundtrip() {
        let r = sample();
        let parsed = Row::from_csv(&r.to_csv()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn csv_roundtrip_with_iterations() {
        let mut r = sample();
        r.iterations = Some(17);
        let parsed = Row::from_csv(&r.to_csv()).unwrap();
        assert_eq!(parsed.iterations, Some(17));
    }

    #[test]
    fn csv_config_commas_survive() {
        let mut r = sample();
        r.config = "a=1,b=2,c=3".into();
        let parsed = Row::from_csv(&r.to_csv()).unwrap();
        assert_eq!(parsed.config, "a=1,b=2,c=3");
    }

    #[test]
    fn select_filters() {
        let mut db = ResultsDb::new();
        db.push(sample());
        let mut other = sample();
        other.technique = "iACT".into();
        db.push(other);
        assert_eq!(db.select("LULESH", "V100", "TAF").len(), 1);
        assert_eq!(db.select("LULESH", "V100", "iACT").len(), 1);
        assert_eq!(db.select("LULESH", "MI250X", "TAF").len(), 0);
    }

    #[test]
    fn file_roundtrip() {
        let mut db = ResultsDb::new();
        db.push(sample());
        let path = std::env::temp_dir().join("hpac_test_db.csv");
        db.save(&path).unwrap();
        let loaded = ResultsDb::load(&path).unwrap();
        assert_eq!(loaded.rows, db.rows);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        assert!(Row::from_csv("not,enough,fields").is_none());
    }
}
