//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so instead of the real
//! `rand` this shim implements exactly the API surface the applications
//! use: `StdRng::seed_from_u64` plus `Rng::gen_range` over half-open
//! numeric ranges. The generator is SplitMix64 — deterministic across
//! platforms and plenty for seeded benchmark input generation (it is not,
//! and does not need to be, cryptographic).

use std::ops::Range;

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Raw generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range needs a non-empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range needs a non-empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is ~span/2^64 — irrelevant for input generation.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8);

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample<R: RngCore>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "gen_range needs a non-empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange for Range<i32> {
    type Output = i32;
    fn sample<R: RngCore>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "gen_range needs a non-empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + (rng.next_u64() % span) as i64) as i32
    }
}

pub mod rngs {
    /// Deterministic SplitMix64 generator behind the `StdRng` name the
    /// applications import.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(40.0..60.0);
            assert!((40.0..60.0).contains(&v));
        }
    }

    #[test]
    fn f64_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(7);
        let vals: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
        assert!(vals.iter().any(|&v| v < 0.1));
        assert!(vals.iter().any(|&v| v > 0.9));
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
