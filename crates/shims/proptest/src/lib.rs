//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the
//! [`proptest!`] macro over functions whose arguments are drawn from
//! strategies, `prop_assert!`/`prop_assert_eq!`, numeric range strategies,
//! tuples of strategies, `any::<bool>()`, and `prop::collection::vec`.
//!
//! Unlike real proptest there is no shrinking: each test runs
//! [`NUM_CASES`] deterministic cases (seeded from the test name) and
//! panics with the case number on the first failure, which is enough to
//! reproduce — the stream is a pure function of the test name.

use std::marker::PhantomData;
use std::ops::Range;

/// Cases generated per property test.
pub const NUM_CASES: u32 = 64;

/// Failure raised by `prop_assert!`-family macros inside a test case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Deterministic per-test generator (SplitMix64 seeded from the test name).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name gives a stable per-test seed.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. Real proptest separates strategies from value trees
/// (for shrinking); without shrinking a strategy is just a generator.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range.
        let mag = rng.unit_f64() * 1e6;
        if rng.next_u64() & 1 == 1 {
            mag
        } else {
            -mag
        }
    }
}

/// Strategy produced by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors of `elem` with length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{any, Arbitrary, Strategy, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Mirror of real proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    }};
}

/// The `proptest! { ... }` block: each contained `fn name(arg in strategy,
/// ...) { body }` becomes a test running [`NUM_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::from_name(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            $crate::NUM_CASES,
                            e
                        );
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(n in 5usize..50, x in -3.0f64.. -1.0) {
            prop_assert!((5..50).contains(&n));
            prop_assert!((-3.0..-1.0).contains(&x), "x out of range: {x}");
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u32..10, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn tuples_generate(pair in (0.0f64..1.0, 1u32..4)) {
            let (a, b) = pair;
            prop_assert!((0.0..1.0).contains(&a));
            prop_assert!((1..4).contains(&b));
        }

        #[test]
        fn any_bool_varies(v in prop::collection::vec(any::<bool>(), 40..60)) {
            prop_assert!(v.iter().any(|&b| b) && v.iter().any(|&b| !b));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
