//! The persistent worker pool: spawn-once workers, scoped batch
//! submission, deterministic join order.
//!
//! One [`WorkerPool`] lives for the whole process ([`global`]). Workers are
//! spawned lazily the first time a batch needs them and are never torn
//! down; between batches they block on an empty channel and cost nothing.
//! A batch is a set of `n` independent tasks over indices `0..n`:
//!
//! * tasks are claimed one index at a time from a shared atomic cursor, so
//!   load balances across workers regardless of per-task cost;
//! * the submitting thread participates in its own batch, so a pool with
//!   zero spawned workers (a 1-core host) degrades to plain inline
//!   execution with no handoff at all;
//! * results land in per-index slots and are returned in index order —
//!   scheduling can never reorder observable output ("deterministic join
//!   order");
//! * a panicking task does not tear down a worker: the payload is caught,
//!   the rest of the batch completes (other tasks may borrow the same
//!   environment), and the panic resumes on the submitting thread;
//! * submission from *inside* a pool task runs inline on the owning
//!   thread — the depth guard that lets config-level fan-outs nest
//!   block-level fan-outs without oversubscribing the host.
//!
//! Tasks may borrow the caller's stack (`run` is scoped): safety rests on
//! `run` not returning until every task of the batch has finished, and on
//! no worker invoking the task closure after that point — see the safety
//! notes on [`Batch`].

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::ThreadId;

/// Upper bound on spawned workers, a guard against absurd width requests
/// (e.g. `HPAC_THREADS=100000`); widths beyond it still work, capped.
pub const MAX_WORKERS: usize = 512;

thread_local! {
    /// Whether this thread is currently executing a pool task (worker or
    /// participating submitter) — the nested-submission depth guard.
    static IN_TASK: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Is the current thread inside a pool task? Nested [`WorkerPool::run`]
/// calls check this and execute inline.
pub fn in_task() -> bool {
    IN_TASK.with(|f| f.get())
}

/// The process-wide pool.
pub fn global() -> &'static WorkerPool {
    static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
    GLOBAL.get_or_init(WorkerPool::new)
}

/// The type-erased task runner a batch shares with the workers. It lives on
/// the submitting thread's stack; the raw pointer in [`Batch`] erases its
/// lifetime, a promise kept by [`WorkerPool::run`] blocking until the batch
/// completes.
type TaskFn<'a> = dyn Fn(usize) + Sync + 'a;

/// One submitted batch: the claim cursor, completion latch, and the first
/// caught panic.
///
/// # Safety
///
/// `run_item` borrows the submitting thread's stack frame. The invariants
/// that make sharing it with detached workers sound:
///
/// 1. exactly `n` claims of the cursor observe an index `< n`, and each
///    bumps `done` exactly once after the task returns or panics;
/// 2. [`WorkerPool::run`] blocks until `done == n`, so the frame outlives
///    every task invocation;
/// 3. once `done == n`, every later cursor claim observes `>= n` (the
///    cursor is monotone), so no worker touches `run_item` again — workers
///    that drain their queue afterwards only read the `Arc`-owned header.
struct Batch {
    n: usize,
    cursor: AtomicUsize,
    run_item: *const TaskFn<'static>,
    done: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

// SAFETY: `run_item` points at a `Sync` closure that outlives every
// invocation (invariants 1–3 above); all other fields are themselves
// thread-safe.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    /// Claim and execute tasks until the batch is drained. Runs on workers
    /// and on the submitting thread alike.
    fn work(&self) {
        let prev = IN_TASK.with(|f| f.replace(true));
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            // SAFETY: `i < n`, so the submitting frame is still alive (see
            // the struct-level invariants).
            let run = || unsafe { (*self.run_item)(i) };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(run)) {
                let mut slot = self.panic.lock().unwrap();
                slot.get_or_insert(payload);
            }
            let mut done = self.done.lock().unwrap();
            *done += 1;
            if *done == self.n {
                self.all_done.notify_all();
            }
        }
        IN_TASK.with(|f| f.set(prev));
    }

    /// Block until every task has finished.
    fn wait(&self) {
        let mut done = self.done.lock().unwrap();
        while *done < self.n {
            done = self.all_done.wait(done).unwrap();
        }
    }
}

struct Worker {
    sender: Sender<Arc<Batch>>,
    thread_id: ThreadId,
    /// Best-effort "currently working a batch" flag, so dispatch can route
    /// new batches to idle workers first instead of queueing every batch
    /// on the lowest-index workers.
    busy: Arc<AtomicBool>,
}

/// A persistent, growable worker pool. See the module docs.
pub struct WorkerPool {
    workers: Mutex<Vec<Worker>>,
    /// Workers ever spawned — stable over the pool's lifetime; a respawn
    /// bug would show up as this counter exceeding the worker list.
    spawned: AtomicUsize,
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerPool {
    pub fn new() -> Self {
        WorkerPool {
            workers: Mutex::new(Vec::new()),
            spawned: AtomicUsize::new(0),
        }
    }

    /// Total workers ever spawned (== current workers; workers never die).
    pub fn spawned_workers(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Workers currently executing a batch — the queue-pressure signal a
    /// submitter sees at dispatch time. Racy by nature (flags flip as
    /// batches finish); callers use it for observability, not scheduling.
    pub fn busy_workers(&self) -> usize {
        self.workers
            .lock()
            .unwrap()
            .iter()
            .filter(|w| w.busy.load(Ordering::Relaxed))
            .count()
    }

    /// Thread ids of the live workers, in worker-index order. The list only
    /// ever grows, and existing entries never change — the "no respawn"
    /// observable.
    pub fn worker_thread_ids(&self) -> Vec<ThreadId> {
        self.workers
            .lock()
            .unwrap()
            .iter()
            .map(|w| w.thread_id)
            .collect()
    }

    /// Run `n` independent tasks with at most `width` threads working on
    /// them (including the calling thread) and return the results in index
    /// order.
    ///
    /// `width <= 1`, empty batches, and calls from inside a pool task all
    /// execute inline on the caller, in index order.
    pub fn run<R, F>(&self, n: usize, width: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let width = width.min(n).min(MAX_WORKERS + 1);
        if n == 0 || width <= 1 || in_task() {
            return (0..n).map(f).collect();
        }

        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        {
            let run_item = |i: usize| {
                let r = f(i);
                *slots[i].lock().unwrap() = Some(r);
            };
            let erased: *const TaskFn<'_> = &run_item;
            // SAFETY: lifetime erasure only; the pointee outlives every
            // dereference (see the `Batch` invariants).
            let erased: *const TaskFn<'static> = unsafe { std::mem::transmute(erased) };
            let batch = Arc::new(Batch {
                n,
                cursor: AtomicUsize::new(0),
                run_item: erased,
                done: Mutex::new(0),
                all_done: Condvar::new(),
                panic: Mutex::new(None),
            });

            self.dispatch(&batch, width - 1);
            batch.work();
            batch.wait();

            let payload = batch.panic.lock().unwrap().take();
            if let Some(payload) = payload {
                resume_unwind(payload);
            }
        }
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("pool task finished without storing a result")
            })
            .collect()
    }

    /// Hand `batch` to `helpers` workers — idle ones first, so concurrent
    /// batches spread over the pool instead of queueing behind each other —
    /// spawning workers that do not exist yet.
    fn dispatch(&self, batch: &Arc<Batch>, helpers: usize) {
        let mut workers = self.workers.lock().unwrap();
        while workers.len() < helpers.min(MAX_WORKERS) {
            let id = workers.len();
            let (tx, rx) = channel::<Arc<Batch>>();
            let busy = Arc::new(AtomicBool::new(false));
            let worker_busy = Arc::clone(&busy);
            let handle = std::thread::Builder::new()
                .name(format!("hpac-pool-{id}"))
                .spawn(move || {
                    while let Ok(batch) = rx.recv() {
                        worker_busy.store(true, Ordering::Relaxed);
                        batch.work();
                        worker_busy.store(false, Ordering::Relaxed);
                    }
                })
                .expect("spawn pool worker");
            workers.push(Worker {
                sender: tx,
                thread_id: handle.thread().id(),
                busy,
            });
            self.spawned.fetch_add(1, Ordering::Relaxed);
        }
        let (idle, occupied): (Vec<&Worker>, Vec<&Worker>) = workers
            .iter()
            .partition(|w| !w.busy.load(Ordering::Relaxed));
        for w in idle.into_iter().chain(occupied).take(helpers) {
            // Workers never drop their receiver, so send cannot fail. A
            // busy worker that receives the batch drains it from its queue
            // later; if the batch finished by then, its claim loop exits
            // immediately.
            w.sender.send(Arc::clone(batch)).expect("pool worker gone");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn results_in_index_order() {
        let pool = WorkerPool::new();
        let out = pool.run(1000, 4, |i| i * 3);
        assert_eq!(out.len(), 1000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
    }

    #[test]
    fn width_one_is_inline() {
        let pool = WorkerPool::new();
        let out = pool.run(100, 1, |i| i);
        assert_eq!(out.len(), 100);
        assert_eq!(pool.spawned_workers(), 0);
    }

    #[test]
    fn workers_are_reused_not_respawned() {
        let pool = WorkerPool::new();
        let observed = Mutex::new(HashSet::new());
        for _ in 0..50 {
            let _ = pool.run(64, 4, |i| {
                observed.lock().unwrap().insert(std::thread::current().id());
                i
            });
        }
        // 3 helpers + the caller, never more, across 50 batches.
        assert!(pool.spawned_workers() <= 3);
        let ids = pool.worker_thread_ids();
        let caller = std::thread::current().id();
        for t in observed.lock().unwrap().iter() {
            assert!(
                *t == caller || ids.contains(t),
                "task ran on a thread outside the pool"
            );
        }
    }

    #[test]
    fn tasks_can_borrow_environment() {
        let pool = WorkerPool::new();
        let data: Vec<u64> = (0..10_000).collect();
        let out = pool.run(data.len(), 3, |i| data[i] + 1);
        assert_eq!(out[9_999], 10_000);
    }

    #[test]
    fn panic_propagates_after_batch_completes() {
        let pool = WorkerPool::new();
        let completed = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(32, 4, |i| {
                if i == 7 {
                    panic!("boom");
                }
                completed.fetch_add(1, Ordering::Relaxed);
            })
        }));
        assert!(r.is_err());
        // Every non-panicking task still ran (the environment they borrow
        // must stay alive until they do).
        assert_eq!(completed.load(Ordering::Relaxed), 31);
        // The pool survives the panic.
        let ok = pool.run(8, 4, |i| i);
        assert_eq!(ok, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn nested_run_is_inline() {
        let pool = global();
        let out = pool.run(4, 4, |o| {
            // From inside a task the guard must be up...
            assert!(in_task());
            // ...so a nested submission runs inline, on this same thread.
            let me = std::thread::current().id();
            let inner = global().run(16, 4, move |i| {
                assert_eq!(std::thread::current().id(), me);
                i * 2
            });
            o + inner.iter().sum::<usize>()
        });
        for (o, v) in out.iter().enumerate() {
            assert_eq!(*v, o + 240);
        }
    }

    #[test]
    fn concurrent_batches_do_not_interfere() {
        let pool = global();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|k| {
                    s.spawn(move || {
                        let out = pool.run(500, 3, move |i| i as u64 + k);
                        out.iter().enumerate().all(|(i, v)| *v == i as u64 + k)
                    })
                })
                .collect();
            for h in handles {
                assert!(h.join().unwrap());
            }
        });
    }
}
