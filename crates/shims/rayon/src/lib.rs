//! The workspace's persistent worker pool (named for the `rayon` crate it
//! once shimmed).
//!
//! Earlier revisions exposed a rayon-compatible
//! `par_iter().map(..).collect()` surface implemented on fresh
//! `std::thread::scope` threads per call. Every caller has since migrated
//! to the `ExecEngine` (`hpac_core::exec::engine`), which fronts the
//! [`pool`] module here, so the compatibility layer is gone: this crate is
//! now exactly the reusable pool abstraction — spawn-once workers, scoped
//! batch submission, deterministic join order, and the nested-submission
//! depth guard. See [`pool`] for the full contract.
//!
//! The motivation is the HPAC-Offload argument itself: approximation (or
//! any per-launch win) only pays if the runtime does not tax every
//! invocation. Spawning threads per kernel launch taxed exactly the
//! many-small-kernel applications the paper accelerates; the pool pays the
//! spawn cost once per process.

pub mod pool;
