//! Offline stand-in for `rayon`.
//!
//! Implements the slice parallelism the workspace uses — `par_iter()`
//! followed by `map(..)` and an order-preserving `collect()` — on top of
//! `std::thread::scope`. Work is split into one contiguous chunk per
//! available core; each sweep configuration is orders of magnitude more
//! expensive than the spawn overhead, so chunked scoped threads recover
//! essentially all of rayon's benefit here without a work-stealing pool.

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Entry point: `items.par_iter()` on slices and `Vec`s (via deref).
pub trait IntoParallelRefIterator<'a> {
    type Item: Sync + 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// Borrowed parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; `collect` executes it.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        let n = self.items.len();
        let threads = std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            .min(n.max(1));
        let f = &self.f;
        if threads <= 1 {
            return self.items.iter().map(f).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut parts: Vec<Vec<R>> = Vec::with_capacity(threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = self
                .items
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            for h in handles {
                parts.push(h.join().expect("rayon-shim worker panicked"));
            }
        });
        parts.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order() {
        let items: Vec<usize> = (0..10_000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), items.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, i * 2);
        }
    }

    #[test]
    fn works_on_slices_and_results() {
        let items = [1i64, -2, 3];
        let r: Vec<Result<i64, String>> = items
            .par_iter()
            .map(|&x| if x > 0 { Ok(x) } else { Err("neg".to_string()) })
            .collect();
        assert_eq!(r, vec![Ok(1), Err("neg".to_string()), Ok(3)]);
    }

    #[test]
    fn empty_input_is_fine() {
        let items: Vec<u8> = Vec::new();
        let out: Vec<u8> = items.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_in_parallel_threads() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let items: Vec<usize> = (0..256).collect();
        let _out: Vec<()> = items
            .par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_micros(100));
            })
            .collect();
        let n = ids.lock().unwrap().len();
        // With >1 core available the chunks must land on >1 thread.
        if std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
            > 1
        {
            assert!(n > 1, "expected multiple worker threads, saw {n}");
        }
    }
}
