//! Offline stand-in for `criterion`.
//!
//! Implements the harness API the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `Bencher::iter` — with plain wall-clock timing and a
//! mean-per-iteration report. No statistics, warm-up scheduling, or HTML
//! output; good enough to watch for order-of-magnitude regressions.

use std::time::Instant;

/// Drives one benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Top-level benchmark context.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            _parent: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(id, self.default_sample_size, f);
        self
    }
}

/// A named group of related benchmark functions.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, mut f: F) {
    let mut b = Bencher {
        iters,
        elapsed_ns: 0,
    };
    f(&mut b);
    let mean_ns = b.elapsed_ns as f64 / b.iters.max(1) as f64;
    println!("{label:<40} {:>12.1} ns/iter ({} iters)", mean_ns, b.iters);
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("counter", |b| b.iter(|| count += 1));
        // One warm-up + default_sample_size timed iterations.
        assert_eq!(count, 11);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("counter", |b| b.iter(|| count += 1));
        g.finish();
        assert_eq!(count, 4);
    }
}
