//! LavaMD — particle potentials and forces across neighbouring 3D boxes
//! (Rodinia).
//!
//! Space is a periodic grid of boxes, each holding `par_per_box` particles.
//! For every particle, the contribution of each of its 27 neighbour boxes
//! (self included) is computed by summing a screened pair interaction over
//! the neighbour's particles. The paper approximates "the force calculation
//! for neighboring boxes": the region here is one `(particle, neighbour
//! box)` contribution, whose outputs `(v, fx, fy, fz)` accumulate into the
//! particle's totals.
//!
//! Items are ordered neighbour-major so a thread's grid-stride stream walks
//! spatially sorted particles — the locality that makes relaxed TAF
//! effective (Fig 11a) — while iACT must pay a euclidean-distance search
//! that rivals the body itself (Fig 11b shows it always slowing down).
//!
//! QoI: each particle's final potential, force, and drifted position.

use crate::common::{
    current_eval_memo, eval_key, grid_stride_launch_class, AppResult, Benchmark, ComputeMemo,
    LaunchParams, QoI, RunAccumulator,
};
use gpu_sim::transfer::Direction;
use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, LaunchConfig};
use hpac_core::exec::{approx_parallel_for_opts, ExecOptions, RegionBody};
use hpac_core::region::{ApproxRegion, RegionError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outputs per region execution: potential + 3 force components.
pub const OUT_DIMS: usize = 4;
/// Neighbour boxes per particle (3×3×3 cube, periodic).
pub const NEIGHBORS: usize = 27;

/// Configuration for the LavaMD benchmark.
#[derive(Debug, Clone, Copy)]
pub struct LavaMd {
    /// Boxes per dimension (total boxes = boxes_per_dim³).
    pub boxes_per_dim: usize,
    /// Particles in each box.
    pub par_per_box: usize,
    /// Interaction screening parameter (Rodinia's alpha).
    pub alpha: f64,
    pub seed: u64,
}

impl Default for LavaMd {
    fn default() -> Self {
        LavaMd {
            boxes_per_dim: 6,
            par_per_box: 64,
            alpha: 0.5,
            seed: 0x1ABA,
        }
    }
}

impl LavaMd {
    pub fn n_boxes(&self) -> usize {
        self.boxes_per_dim.pow(3)
    }

    pub fn n_particles(&self) -> usize {
        self.n_boxes() * self.par_per_box
    }

    /// Items = (neighbour index, particle) pairs, neighbour-major.
    pub fn n_items(&self) -> usize {
        self.n_particles() * NEIGHBORS
    }

    /// Generate particle positions (box-sorted, so index order is spatial
    /// order) and charges. Positions are in box-local [0,1) coordinates
    /// offset by the box origin.
    pub fn generate(&self) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let n = self.n_particles();
        let mut pos = Vec::with_capacity(3 * n);
        let mut charge = Vec::with_capacity(n);
        let b = self.boxes_per_dim;
        for bz in 0..b {
            for by in 0..b {
                for bx in 0..b {
                    for _ in 0..self.par_per_box {
                        pos.push(bx as f64 + rng.gen_range(0.0..1.0));
                        pos.push(by as f64 + rng.gen_range(0.0..1.0));
                        pos.push(bz as f64 + rng.gen_range(0.0..1.0));
                        charge.push(rng.gen_range(0.1..1.0));
                    }
                }
            }
        }
        (pos, charge)
    }

    fn box_of(&self, particle: usize) -> usize {
        particle / self.par_per_box
    }

    /// Index of the `nb`-th neighbour (0..27) of `box_id`, periodic.
    fn neighbor_box(&self, box_id: usize, nb: usize) -> usize {
        let b = self.boxes_per_dim;
        let (bx, by, bz) = (box_id % b, (box_id / b) % b, box_id / (b * b));
        let (dx, dy, dz) = (nb % 3, (nb / 3) % 3, nb / 9);
        let nx = (bx + dx + b - 1) % b;
        let ny = (by + dy + b - 1) % b;
        let nz = (bz + dz + b - 1) % b;
        (nz * b + ny) * b + nx
    }
}

/// The approximated region: one particle's interaction with one neighbour
/// box (the Rodinia kernel's inner loop over that box's particles).
struct ForceBody<'a> {
    cfg: &'a LavaMd,
    pos: &'a [f64],
    charge: &'a [f64],
    /// `n_items × OUT_DIMS` per-(particle, neighbour) contributions.
    contrib: &'a mut [f64],
    /// Sweep-scoped identity interning: the force sum reads *all* of the
    /// neighbour box's particles, not just the declared 5-dim input row, so
    /// row-classing would be unsound — but the contribution is pure in the
    /// item index over the fixed dataset, so caching by item is exact.
    memo: Option<std::sync::Arc<ComputeMemo>>,
}

impl ForceBody<'_> {
    /// Decompose a neighbour-major item index.
    fn decode(&self, item: usize) -> (usize, usize) {
        let n = self.cfg.n_particles();
        (item / n, item % n) // (neighbour index, particle)
    }
}

impl RegionBody for ForceBody<'_> {
    fn in_dim(&self) -> usize {
        // Box-local position (3), charge, neighbour offset id, scaled.
        5
    }

    fn out_dim(&self) -> usize {
        OUT_DIMS
    }

    fn inputs(&self, item: usize, buf: &mut [f64]) {
        let (nb, p) = self.decode(item);
        let bx = self.cfg.box_of(p);
        let b = self.cfg.boxes_per_dim as f64;
        buf[0] = self.pos[3 * p] % 1.0;
        buf[1] = self.pos[3 * p + 1] % 1.0;
        buf[2] = self.pos[3 * p + 2] % 1.0;
        buf[3] = self.charge[p];
        buf[4] = nb as f64 / NEIGHBORS as f64 + bx as f64 / (b * b * b);
    }

    fn compute(&self, item: usize, out: &mut [f64]) {
        match &self.memo {
            Some(memo) => memo.get_or(item, out, |out| self.force_contribution(item, out)),
            None => self.force_contribution(item, out),
        }
    }

    fn store(&mut self, item: usize, out: &[f64]) {
        self.contrib[item * OUT_DIMS..(item + 1) * OUT_DIMS].copy_from_slice(out);
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        // Per neighbour particle: ~12 FP ops + one exp; neighbour particle
        // data is staged in shared memory (as Rodinia does).
        let ppb = self.cfg.par_per_box as f64;
        CostProfile::new()
            .flops(12.0 * ppb)
            .sfu(ppb)
            .shared_ops(4.0 * ppb)
            .global_read(lanes, 32, AccessPattern::Coalesced)
            .global_write(lanes, (OUT_DIMS * 8) as u32, AccessPattern::Coalesced)
    }
}

impl ForceBody<'_> {
    fn force_contribution(&self, item: usize, out: &mut [f64]) {
        let (nb, i) = self.decode(item);
        let nbox = self.cfg.neighbor_box(self.cfg.box_of(i), nb);
        let a2 = 2.0 * self.cfg.alpha * self.cfg.alpha;
        let (xi, yi, zi) = (self.pos[3 * i], self.pos[3 * i + 1], self.pos[3 * i + 2]);
        let qi = self.charge[i];
        let span = self.cfg.boxes_per_dim as f64;

        let (mut v, mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0, 0.0);
        let start = nbox * self.cfg.par_per_box;
        for j in start..start + self.cfg.par_per_box {
            if j == i {
                continue;
            }
            // Minimum-image displacement (periodic boxes).
            let mut dx = xi - self.pos[3 * j];
            let mut dy = yi - self.pos[3 * j + 1];
            let mut dz = zi - self.pos[3 * j + 2];
            dx -= (dx / span).round() * span;
            dy -= (dy / span).round() * span;
            dz -= (dz / span).round() * span;
            let r2 = dx * dx + dy * dy + dz * dz;
            let u2 = a2 * r2;
            let vij = (-u2).exp();
            let fs = 2.0 * vij * qi * self.charge[j];
            v += qi * self.charge[j] * vij;
            fx += fs * dx;
            fy += fs * dy;
            fz += fs * dz;
        }
        out[0] = v;
        out[1] = fx;
        out[2] = fy;
        out[3] = fz;
    }
}

impl Benchmark for LavaMd {
    fn name(&self) -> &'static str {
        "LavaMD"
    }

    fn launch_class(&self, _spec: &DeviceSpec, lp: &LaunchParams) -> Option<u64> {
        // Single grid-stride kernel over (particle, neighbour) items.
        Some(grid_stride_launch_class(self.n_items(), lp))
    }

    fn run_opts(
        &self,
        spec: &DeviceSpec,
        region: Option<&ApproxRegion>,
        lp: &LaunchParams,
        opts: &ExecOptions,
    ) -> Result<AppResult, RegionError> {
        let (pos, charge) = self.generate();
        let n = self.n_particles();
        let mut contrib = vec![0.0; self.n_items() * OUT_DIMS];

        let mut acc = RunAccumulator::new();
        acc.transfer(spec, (n * 4 * 8) as u64, Direction::HostToDevice);

        let launch =
            LaunchConfig::for_items_per_thread(self.n_items(), lp.block_size, lp.items_per_thread);
        let memo = current_eval_memo().map(|store| {
            let key = eval_key(
                "LavaMD",
                &[
                    self.boxes_per_dim as u64,
                    self.par_per_box as u64,
                    self.alpha.to_bits(),
                    self.seed,
                ],
            );
            store.get_or_build(&key, || ComputeMemo::identity(self.n_items(), OUT_DIMS))
        });
        let mut body = ForceBody {
            cfg: self,
            pos: &pos,
            charge: &charge,
            contrib: &mut contrib,
            memo,
        };
        let rec = approx_parallel_for_opts(spec, &launch, region, &mut body, opts)?;
        acc.kernel(&rec);

        // Accurate reduction of the 27 neighbour contributions per particle,
        // then one explicit drift step. QoI: the particle's potential and
        // drifted location — force errors enter through the drift. (Raw
        // force components average near zero by symmetry, which makes
        // relative error on them ill-conditioned; the paper's MAPE axis for
        // LavaMD tops out at 2%, consistent with a location-based QoI.)
        let mut qoi = Vec::with_capacity(n * 4);
        let dt = 0.05;
        // Locations are reported relative to the far domain corner so the
        // relative-error metric is not ill-conditioned near the origin
        // (coordinates are arbitrary-origin quantities).
        let span = self.boxes_per_dim as f64;
        for p in 0..n {
            let (mut v, mut fx, mut fy, mut fz) = (0.0, 0.0, 0.0, 0.0);
            for nb in 0..NEIGHBORS {
                let item = nb * n + p;
                v += contrib[item * OUT_DIMS];
                fx += contrib[item * OUT_DIMS + 1];
                fy += contrib[item * OUT_DIMS + 2];
                fz += contrib[item * OUT_DIMS + 3];
            }
            qoi.push(v);
            qoi.push(span + pos[3 * p] + dt * fx);
            qoi.push(span + pos[3 * p + 1] + dt * fy);
            qoi.push(span + pos[3 * p + 2] + dt * fz);
        }
        // Rodinia copies back the per-particle potential and force vector.
        acc.transfer(spec, (n * 4 * 8) as u64, Direction::DeviceToHost);

        Ok(acc.finish(QoI::Values(qoi), None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn small() -> LavaMd {
        LavaMd {
            boxes_per_dim: 3,
            par_per_box: 16,
            alpha: 0.5,
            seed: 5,
        }
    }

    #[test]
    fn geometry_counts() {
        let cfg = small();
        assert_eq!(cfg.n_boxes(), 27);
        assert_eq!(cfg.n_particles(), 27 * 16);
        assert_eq!(cfg.n_items(), 27 * 16 * 27);
    }

    #[test]
    fn neighbor_boxes_are_periodic_and_complete() {
        let cfg = small();
        for box_id in 0..cfg.n_boxes() {
            let mut seen: Vec<usize> = (0..NEIGHBORS)
                .map(|nb| cfg.neighbor_box(box_id, nb))
                .collect();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), NEIGHBORS, "box {box_id} neighbours collide");
            // Self must be among them (offset (1,1,1) -> nb = 13).
            assert_eq!(cfg.neighbor_box(box_id, 13), box_id);
        }
    }

    #[test]
    fn accurate_forces_are_finite_and_nonzero() {
        let cfg = small();
        let r = cfg.run(&spec(), None, &LaunchParams::new(8, 128)).unwrap();
        let QoI::Values(q) = &r.qoi else { panic!() };
        assert_eq!(q.len(), cfg.n_particles() * 4);
        assert!(q.iter().all(|x| x.is_finite()));
        // Potentials (every 4th entry starting at 0) must be positive.
        assert!(q.iter().step_by(4).all(|&v| v > 0.0));
    }

    #[test]
    fn potential_decays_with_alpha() {
        // Stronger screening -> smaller total potential.
        let weak = LavaMd {
            alpha: 0.2,
            ..small()
        };
        let strong = LavaMd {
            alpha: 2.0,
            ..small()
        };
        let lp = LaunchParams::new(8, 128);
        let vw: f64 = match weak.run(&spec(), None, &lp).unwrap().qoi {
            QoI::Values(q) => q.iter().step_by(4).sum(),
            _ => unreachable!(),
        };
        let vs: f64 = match strong.run(&spec(), None, &lp).unwrap().qoi {
            QoI::Values(q) => q.iter().step_by(4).sum(),
            _ => unreachable!(),
        };
        assert!(vw > vs);
    }

    #[test]
    fn taf_zero_threshold_is_exact() {
        let cfg = small();
        let lp = LaunchParams::new(16, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_out(2, 8, 0.0);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        assert!(approx.qoi.error_vs(&accurate.qoi) < 1e-12);
    }

    #[test]
    fn taf_speedup_with_bounded_error() {
        let cfg = small();
        let lp = LaunchParams::new(32, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_out(2, 32, 1.5);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        assert!(approx.stats.approx_lanes > 0);
        assert!(
            approx.kernel_seconds < accurate.kernel_seconds,
            "TAF must shed work here"
        );
    }

    #[test]
    fn iact_pays_more_than_it_saves() {
        // Fig 11b: iACT's table search rivals the body -> no speedup.
        let cfg = small();
        let lp = LaunchParams::new(32, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_in(4, 0.3).tables_per_warp(32);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        assert!(
            approx.kernel_seconds > 0.9 * accurate.kernel_seconds,
            "iACT should not be a clear win: {} vs {}",
            approx.kernel_seconds,
            accurate.kernel_seconds
        );
    }
}
