//! LULESH — Livermore unstructured Lagrangian explicit shock hydrodynamics
//! proxy, modelling a Sedov blast on a 3D hexahedral mesh.
//!
//! This is a compact staggered-grid explicit hydro code with the structure
//! the paper's evaluation needs: a point energy deposit at the origin drives
//! a pressure wave outward through element-centred thermodynamics (energy,
//! pressure, artificial viscosity) and node-centred kinematics (forces,
//! velocities, positions). The paper approximates the two most expensive
//! kernels, `CalcHourglassControlForElems` and
//! `CalcFBHourglassForceForElems`; both are per-element regions here:
//!
//! * **hourglass control** — derives each element's hourglass damping
//!   coefficient from its volume and sound speed;
//! * **FB hourglass force** — turns the antisymmetric (hourglass-mode)
//!   part of the element's nodal velocities into a damping force.
//!
//! All other kernels (stress force, node gather + integration, EOS update)
//! run accurately every step, as in the paper.
//!
//! QoI: the final origin energy (Table 1).

use crate::common::{AppResult, Benchmark, LaunchParams, QoI, RunAccumulator};
use gpu_sim::transfer::Direction;
use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, LaunchConfig};
use hpac_core::exec::batch;
use hpac_core::exec::{BlockField, ExecOptions, RegionBody, StoreVisibility};
use hpac_core::region::{ApproxRegion, RegionError};

/// Configuration for the LULESH proxy.
#[derive(Debug, Clone, Copy)]
pub struct Lulesh {
    /// Elements per dimension (elements = edge³, nodes = (edge+1)³).
    pub edge: usize,
    /// Explicit timesteps.
    pub steps: usize,
    /// Initial origin energy (the Sedov deposit).
    pub e0: f64,
    /// Hourglass damping coefficient.
    pub hgcoef: f64,
    /// Fixed timestep.
    pub dt: f64,
}

impl Default for Lulesh {
    fn default() -> Self {
        Lulesh {
            edge: 28,
            steps: 12,
            e0: 1.0,
            hgcoef: 3.0,
            dt: 4.0e-5,
        }
    }
}

/// Mesh connectivity and mutable simulation state.
///
/// Written fields live in [`BlockField`]s so the five per-timestep kernels
/// can run as one engine batch ([`batch::run_batch`]): bodies then share
/// the mesh immutably and commit stores through `store_shared`, with the
/// engine's phase barriers providing the kernel-to-kernel happens-before.
/// Vector-valued fields are flattened `[x, y, z]` rows — see [`get3`] /
/// [`set3`].
pub struct Mesh {
    pub edge: usize,
    pub n_elems: usize,
    pub n_nodes: usize,
    /// Node ids of each element's 8 corners (x-fastest corner order).
    pub corners: Vec<[usize; 8]>,
    /// For each node, (element, corner) pairs that touch it.
    pub node_elems: Vec<Vec<(usize, usize)>>,
    // Node-centred state.
    pub pos: BlockField,
    pub vel: BlockField,
    pub force: BlockField,
    pub mass: Vec<f64>,
    // Element-centred state.
    pub energy: BlockField,
    pub pressure: BlockField,
    pub visc: BlockField,
    pub volume: BlockField,
    pub vol0: Vec<f64>,
    /// Volume change of the last EOS update (feeds the next viscosity calc).
    pub delv: BlockField,
    // Per-element force contributions (stress + hourglass).
    pub stress_f: BlockField,
    pub hg_f: BlockField,
    // Hourglass control coefficients (output of the first approx kernel).
    pub hg_coef: BlockField,
}

/// Read row `i` of a flattened `[f64; 3]` field.
pub fn get3(f: &BlockField, i: usize) -> [f64; 3] {
    [f.get(3 * i), f.get(3 * i + 1), f.get(3 * i + 2)]
}

/// Write row `i` of a flattened `[f64; 3]` field.
pub fn set3(f: &BlockField, i: usize, v: [f64; 3]) {
    f.set(3 * i, v[0]);
    f.set(3 * i + 1, v[1]);
    f.set(3 * i + 2, v[2]);
}

/// Corner offsets in x-fastest order.
const CORNER_OFFS: [[usize; 3]; 8] = [
    [0, 0, 0],
    [1, 0, 0],
    [0, 1, 0],
    [1, 1, 0],
    [0, 0, 1],
    [1, 0, 1],
    [0, 1, 1],
    [1, 1, 1],
];

/// Stress force sign for corner `c` in direction `d` (outward push).
fn stress_sign(c: usize, d: usize) -> f64 {
    if CORNER_OFFS[c][d] == 1 {
        1.0
    } else {
        -1.0
    }
}

/// Hourglass-mode sign for corner `c` (checkerboard pattern).
fn hg_sign(c: usize) -> f64 {
    let o = CORNER_OFFS[c];
    if (o[0] + o[1] + o[2]).is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

impl Mesh {
    pub fn new(cfg: &Lulesh) -> Self {
        let edge = cfg.edge;
        let nn = edge + 1;
        let n_elems = edge * edge * edge;
        let n_nodes = nn * nn * nn;
        let h = 1.0 / edge as f64;

        let node_id = |x: usize, y: usize, z: usize| (z * nn + y) * nn + x;
        let mut corners = Vec::with_capacity(n_elems);
        for z in 0..edge {
            for y in 0..edge {
                for x in 0..edge {
                    let mut c = [0usize; 8];
                    for (k, off) in CORNER_OFFS.iter().enumerate() {
                        c[k] = node_id(x + off[0], y + off[1], z + off[2]);
                    }
                    corners.push(c);
                }
            }
        }
        let mut node_elems = vec![Vec::new(); n_nodes];
        for (e, cs) in corners.iter().enumerate() {
            for (k, &n) in cs.iter().enumerate() {
                node_elems[n].push((e, k));
            }
        }

        let mut pos = Vec::with_capacity(3 * n_nodes);
        for z in 0..nn {
            for y in 0..nn {
                for x in 0..nn {
                    pos.extend_from_slice(&[x as f64 * h, y as f64 * h, z as f64 * h]);
                }
            }
        }

        let vol0 = vec![h * h * h; n_elems];
        let mut mass = vec![0.0; n_nodes];
        for cs in &corners {
            for &n in cs {
                mass[n] += h * h * h / 8.0;
            }
        }

        let mut energy = vec![0.0; n_elems];
        energy[0] = cfg.e0; // Sedov deposit at the origin element.

        Mesh {
            edge,
            n_elems,
            n_nodes,
            corners,
            node_elems,
            pos: BlockField::from_vec(pos),
            vel: BlockField::from_vec(vec![0.0; 3 * n_nodes]),
            force: BlockField::from_vec(vec![0.0; 3 * n_nodes]),
            mass,
            energy: BlockField::from_vec(energy),
            pressure: BlockField::from_vec(vec![0.0; n_elems]),
            visc: BlockField::from_vec(vec![0.0; n_elems]),
            volume: BlockField::from_vec(vol0.clone()),
            vol0,
            delv: BlockField::from_vec(vec![0.0; n_elems]),
            stress_f: BlockField::from_vec(vec![0.0; 3 * n_elems]),
            hg_f: BlockField::from_vec(vec![0.0; 3 * n_elems]),
            hg_coef: BlockField::from_vec(vec![0.0; 3 * n_elems]),
        }
    }

    /// Element volume from the current node positions (parallelepiped
    /// spanned by the three corner edges — exact for our initially
    /// rectilinear mesh and a good proxy under small deformation).
    pub fn elem_volume(&self, e: usize) -> f64 {
        let c = &self.corners[e];
        let p0 = get3(&self.pos, c[0]);
        let a = sub(get3(&self.pos, c[1]), p0);
        let b = sub(get3(&self.pos, c[2]), p0);
        let d = sub(get3(&self.pos, c[4]), p0);
        (a[0] * (b[1] * d[2] - b[2] * d[1]) - a[1] * (b[0] * d[2] - b[2] * d[0])
            + a[2] * (b[0] * d[1] - b[1] * d[0]))
            .abs()
    }

    /// Mean corner velocity of an element, per direction.
    fn mean_corner_vel(&self, e: usize) -> [f64; 3] {
        let mut m = [0.0; 3];
        for &n in &self.corners[e] {
            let v = get3(&self.vel, n);
            for (d, md) in m.iter_mut().enumerate() {
                *md += v[d];
            }
        }
        for v in &mut m {
            *v /= 8.0;
        }
        m
    }

    /// Hourglass-mode velocity amplitude of an element, per direction.
    fn hg_mode_vel(&self, e: usize) -> [f64; 3] {
        let mut m = [0.0; 3];
        for (k, &n) in self.corners[e].iter().enumerate() {
            let s = hg_sign(k);
            let v = get3(&self.vel, n);
            for (d, md) in m.iter_mut().enumerate() {
                *md += s * v[d];
            }
        }
        for v in &mut m {
            *v /= 8.0;
        }
        m
    }
}

fn sub(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [a[0] - b[0], a[1] - b[1], a[2] - b[2]]
}

/// Approximated kernel 1: `CalcHourglassControlForElems` — per-element
/// hourglass damping coefficient and the artificial viscosity `q` that
/// gates shock energy exchange. (Real LULESH computes `q` in the
/// monotonic-Q kernels; folding it into the hourglass-control region keeps
/// the proxy at two approximated element kernels, as the paper evaluates,
/// while making their outputs load-bearing for the blast QoI.)
struct HgControlBody<'a> {
    mesh: &'a Mesh,
    hgcoef: f64,
    dt: f64,
}

impl RegionBody for HgControlBody<'_> {
    fn in_dim(&self) -> usize {
        4
    }

    fn out_dim(&self) -> usize {
        3
    }

    fn inputs(&self, e: usize, buf: &mut [f64]) {
        buf[0] = self.mesh.volume.get(e) / self.mesh.vol0[e];
        buf[1] = self.mesh.energy.get(e);
        buf[2] = self.mesh.pressure.get(e);
        buf[3] = self.mesh.delv.get(e) / self.mesh.vol0[e];
    }

    fn compute(&self, e: usize, out: &mut [f64]) {
        let m = &self.mesh;
        let vol = m.volume.get(e);
        let dens = m.vol0[e] / vol.max(1e-12);
        // Sound speed from the ideal-gas EOS; the coefficient scales with
        // rho * c * characteristic area (standard Flanagan-Belytschko).
        let ss = ((m.pressure.get(e) + 1e-12) / dens.max(1e-12))
            .sqrt()
            .max(1e-6);
        let length = vol.cbrt();
        let coef = self.hgcoef * dens * ss * length * length;
        // Artificial viscosity: quadratic in the compression velocity
        // u_c = (|ΔV|/V) · (l/Δt), the standard von Neumann–Richtmyer form.
        let delv = m.delv.get(e);
        let q = if delv < 0.0 {
            let strain_rate = -delv / vol.max(1e-12);
            let u_c = strain_rate * length / self.dt;
            2.0 * dens * u_c * u_c
        } else {
            0.0
        };
        out[0] = coef;
        out[1] = q;
        out[2] = ss;
    }

    fn store(&mut self, e: usize, out: &[f64]) {
        self.store_shared(e, out);
    }

    fn store_visibility(&self) -> StoreVisibility {
        StoreVisibility::BlockPrivate
    }

    fn store_shared(&self, e: usize, out: &[f64]) {
        set3(&self.mesh.hg_coef, e, [out[0], out[0], out[0]]);
        self.mesh.visc.set(e, out[1]);
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        // Volume gradients + coefficient math; reads element state plus the
        // 8 corner coordinates (partially scattered). In real LULESH this
        // kernel computes 8x3 volume derivatives (~300 FP ops).
        CostProfile::new()
            .flops(300.0)
            .sfu(2.0)
            .global_read(
                lanes,
                8 * 3 * 8,
                AccessPattern::Strided { stride_bytes: 96 },
            )
            .global_read(lanes, 24, AccessPattern::Coalesced)
            .global_write(lanes, 24, AccessPattern::Coalesced)
    }
}

/// Approximated kernel 2: `CalcFBHourglassForceForElems` — the
/// Flanagan-Belytschko antihourglass force from nodal velocities.
struct HgForceBody<'a> {
    mesh: &'a Mesh,
}

impl RegionBody for HgForceBody<'_> {
    fn in_dim(&self) -> usize {
        4
    }

    fn out_dim(&self) -> usize {
        3
    }

    fn inputs(&self, e: usize, buf: &mut [f64]) {
        let hv = self.mesh.hg_mode_vel(e);
        buf[0] = self.mesh.hg_coef.get(3 * e);
        buf[1] = hv[0];
        buf[2] = hv[1];
        buf[3] = hv[2];
    }

    fn compute(&self, e: usize, out: &mut [f64]) {
        let coef = get3(&self.mesh.hg_coef, e);
        let hv = self.mesh.hg_mode_vel(e);
        let mv = self.mesh.mean_corner_vel(e);
        // Damping force opposing the hourglass mode plus the linear bulk
        // viscosity drag on local motion (standard staggered-hydro pairing;
        // this is what makes the kernel's output load-bearing for the QoI).
        out[0] = -coef[0] * (hv[0] + 0.25 * mv[0]);
        out[1] = -coef[1] * (hv[1] + 0.25 * mv[1]);
        out[2] = -coef[2] * (hv[2] + 0.25 * mv[2]);
    }

    fn store(&mut self, e: usize, out: &[f64]) {
        self.store_shared(e, out);
    }

    fn store_visibility(&self) -> StoreVisibility {
        StoreVisibility::BlockPrivate
    }

    fn store_shared(&self, e: usize, out: &[f64]) {
        set3(&self.mesh.hg_f, e, [out[0], out[1], out[2]]);
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        // Reads 8 corner velocities (scattered) + coefficients; the real
        // FB kernel is the most FLOP-heavy in LULESH (8 nodes x 4 gamma
        // vectors x 3 directions of dot products).
        CostProfile::new()
            .flops(500.0)
            .global_read(
                lanes,
                8 * 3 * 8,
                AccessPattern::Strided { stride_bytes: 96 },
            )
            .global_read(lanes, 24, AccessPattern::Coalesced)
            .global_write(lanes, 24, AccessPattern::Coalesced)
    }
}

/// Accurate per-element stress force (σ = -p - q, pushing corners outward).
struct StressBody<'a> {
    mesh: &'a Mesh,
    area: f64,
}

impl RegionBody for StressBody<'_> {
    fn out_dim(&self) -> usize {
        3
    }

    fn compute(&self, e: usize, out: &mut [f64]) {
        let m = &self.mesh;
        let sig = m.pressure.get(e) + m.visc.get(e);
        let f = sig * self.area;
        out[0] = f;
        out[1] = f;
        out[2] = f;
    }

    fn store(&mut self, e: usize, out: &[f64]) {
        self.store_shared(e, out);
    }

    fn store_visibility(&self) -> StoreVisibility {
        StoreVisibility::BlockPrivate
    }

    fn store_shared(&self, e: usize, out: &[f64]) {
        set3(&self.mesh.stress_f, e, [out[0], out[1], out[2]]);
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new()
            .flops(40.0)
            .global_read(lanes, 32, AccessPattern::Coalesced)
            .global_write(lanes, 24, AccessPattern::Coalesced)
    }
}

/// Accurate node kernel: gather element forces, integrate kinematics.
struct NodeBody<'a> {
    mesh: &'a Mesh,
    dt: f64,
}

impl RegionBody for NodeBody<'_> {
    fn out_dim(&self) -> usize {
        3
    }

    fn compute(&self, n: usize, out: &mut [f64]) {
        let m = &self.mesh;
        let mut f = [0.0; 3];
        for &(e, corner) in &m.node_elems[n] {
            let sf = get3(&m.stress_f, e);
            let hf = get3(&m.hg_f, e);
            for (d, fd) in f.iter_mut().enumerate() {
                // Stress pushes corners outward; the hourglass/viscous
                // damping force applies uniformly to the element's corners
                // (a checkerboard application would cancel between adjacent
                // elements on smooth fields and decouple the kernel from
                // the QoI).
                *fd += sf[d] * stress_sign(corner, d) + hf[d];
            }
        }
        out.copy_from_slice(&f);
    }

    fn store(&mut self, n: usize, out: &[f64]) {
        self.store_shared(n, out);
    }

    fn store_visibility(&self) -> StoreVisibility {
        StoreVisibility::BlockPrivate
    }

    fn store_shared(&self, n: usize, out: &[f64]) {
        let m = self.mesh;
        set3(&m.force, n, [out[0], out[1], out[2]]);
        let inv_m = 1.0 / m.mass[n];
        for (d, &o) in out.iter().enumerate() {
            let a = o * inv_m;
            let v = m.vel.get(3 * n + d) + a * self.dt;
            m.vel.set(3 * n + d, v);
            m.pos.set(3 * n + d, m.pos.get(3 * n + d) + v * self.dt);
        }
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new()
            .flops(8.0 * 8.0 + 12.0)
            .global_read(lanes, 8 * 24, AccessPattern::Strided { stride_bytes: 96 })
            .global_write(lanes, 72, AccessPattern::Coalesced)
    }
}

/// Accurate element EOS/volume update.
struct EosBody<'a> {
    mesh: &'a Mesh,
}

impl RegionBody for EosBody<'_> {
    fn out_dim(&self) -> usize {
        4
    }

    fn compute(&self, e: usize, out: &mut [f64]) {
        let m = &self.mesh;
        let vnew = m.elem_volume(e);
        let delv = vnew - m.volume.get(e);
        // Compression work dE = -(p + q) dV with the (approximated) q from
        // the hourglass-control kernel; with the ideal-gas pressure
        // p = (γ-1) e / V below, free expansion is adiabatic (e ∝ V^{1-γ})
        // and energy stays positive.
        let work = -(m.pressure.get(e) + m.visc.get(e)) * delv;
        let e_new = (m.energy.get(e) + work).max(0.0);
        let p_new = (2.0 / 3.0) * e_new / vnew.max(1e-12);
        out[0] = vnew;
        out[1] = e_new;
        out[2] = p_new;
        out[3] = delv;
    }

    fn store(&mut self, e: usize, out: &[f64]) {
        self.store_shared(e, out);
    }

    fn store_visibility(&self) -> StoreVisibility {
        StoreVisibility::BlockPrivate
    }

    fn store_shared(&self, e: usize, out: &[f64]) {
        let m = self.mesh;
        m.volume.set(e, out[0]);
        m.energy.set(e, out[1]);
        m.pressure.set(e, out[2]);
        m.delv.set(e, out[3]);
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new()
            .flops(60.0)
            .sfu(1.0)
            .global_read(lanes, 8 * 24, AccessPattern::Strided { stride_bytes: 96 })
            .global_write(lanes, 32, AccessPattern::Coalesced)
    }
}

impl Benchmark for Lulesh {
    fn name(&self) -> &'static str {
        "LULESH"
    }

    fn run_opts(
        &self,
        spec: &DeviceSpec,
        region: Option<&ApproxRegion>,
        lp: &LaunchParams,
        opts: &ExecOptions,
    ) -> Result<AppResult, RegionError> {
        let mesh = Mesh::new(self);
        let n_elems = mesh.n_elems;
        let n_nodes = mesh.n_nodes;
        let area = (1.0 / self.edge as f64).powi(2);

        let mut acc = RunAccumulator::new();
        acc.transfer(
            spec,
            (n_nodes * 10 * 8 + n_elems * 6 * 8) as u64,
            Direction::HostToDevice,
        );

        let elem_launch =
            LaunchConfig::for_items_per_thread(n_elems, lp.block_size, lp.items_per_thread);
        let node_launch = LaunchConfig::one_item_per_thread(n_nodes, lp.block_size);
        let elem_acc_launch = LaunchConfig::one_item_per_thread(n_elems, lp.block_size);

        // All five kernels of a timestep go down as ONE engine submission
        // ([`batch::run_batch`]); the engine's phase barriers serialize the
        // kernels (2 reads hg_coef from 1, 3 reads visc from 1, 4 reads
        // stress_f/hg_f from 3/2, 5 reads pos from 4) while blocks within
        // each kernel still fan out, so workers never park and respawn
        // between the five launches.
        let hg_control = HgControlBody {
            mesh: &mesh,
            hgcoef: self.hgcoef,
            dt: self.dt,
        };
        let hg_force = HgForceBody { mesh: &mesh };
        let stress = StressBody { mesh: &mesh, area };
        let node = NodeBody {
            mesh: &mesh,
            dt: self.dt,
        };
        let eos = EosBody { mesh: &mesh };
        for _ in 0..self.steps {
            let kernels = [
                // 1. Hourglass control + artificial viscosity (approximated).
                batch::prepare(spec, &elem_launch, region, &hg_control, opts)?,
                // 2. FB hourglass force (approximated).
                batch::prepare(spec, &elem_launch, region, &hg_force, opts)?,
                // 3. Stress force (accurate).
                batch::prepare(spec, &elem_acc_launch, None, &stress, opts)?,
                // 4. Node gather + integration (accurate).
                batch::prepare(spec, &node_launch, None, &node, opts)?,
                // 5. EOS / volume update (accurate).
                batch::prepare(spec, &elem_acc_launch, None, &eos, opts)?,
            ];
            for rec in batch::run_batch(spec, &kernels, opts)? {
                acc.kernel(&rec);
            }
        }

        acc.transfer(spec, (n_elems * 8) as u64, Direction::DeviceToHost);
        // QoI: final origin energy.
        let qoi = QoI::Values(vec![mesh.energy.get(0)]);
        Ok(acc.finish(qoi, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_core::params::PerfoKind;

    fn spec() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn small() -> Lulesh {
        Lulesh {
            edge: 8,
            steps: 16,
            dt: 1.0e-4,
            ..Lulesh::default()
        }
    }

    #[test]
    fn mesh_connectivity_is_consistent() {
        let mesh = Mesh::new(&small());
        assert_eq!(mesh.n_elems, 512);
        assert_eq!(mesh.n_nodes, 729);
        // Interior nodes touch 8 elements, corner nodes 1.
        let counts: Vec<usize> = mesh.node_elems.iter().map(|v| v.len()).collect();
        assert_eq!(counts.iter().max(), Some(&8));
        assert_eq!(counts.iter().min(), Some(&1));
        // Total (element, corner) incidences = 8 per element.
        let total: usize = counts.iter().sum();
        assert_eq!(total, mesh.n_elems * 8);
    }

    #[test]
    fn initial_volumes_match_h_cubed() {
        let cfg = small();
        let mesh = Mesh::new(&cfg);
        let h3 = (1.0 / cfg.edge as f64).powi(3);
        for e in [0, 100, 511] {
            assert!((mesh.elem_volume(e) - h3).abs() < 1e-12);
        }
    }

    #[test]
    fn node_mass_conserves_total() {
        let mesh = Mesh::new(&small());
        let total: f64 = mesh.mass.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "unit cube mass {total}");
    }

    #[test]
    fn sedov_energy_spreads_from_origin() {
        let cfg = small();
        let r = cfg.run(&spec(), None, &LaunchParams::new(8, 128)).unwrap();
        let QoI::Values(q) = &r.qoi else { panic!() };
        let origin_energy = q[0];
        assert!(origin_energy.is_finite());
        assert!(
            origin_energy < cfg.e0,
            "blast must shed energy from the origin: {origin_energy}"
        );
        assert!(origin_energy > 0.0);
    }

    #[test]
    fn simulation_is_deterministic() {
        let cfg = small();
        let a = cfg.run(&spec(), None, &LaunchParams::new(8, 128)).unwrap();
        let b = cfg.run(&spec(), None, &LaunchParams::new(8, 128)).unwrap();
        assert_eq!(a.qoi, b.qoi);
    }

    #[test]
    fn batched_step_agrees_across_executors() {
        // The five batched kernels must give bit-identical records and QoI
        // under every executor: the phase barriers are the only ordering
        // the step's dependency chain needs.
        use hpac_core::exec::Executor;
        let cfg = small();
        let lp = LaunchParams::new(8, 128);
        let region = ApproxRegion::memo_out(2, 8, 0.5);
        let runs: Vec<_> = [
            Executor::Sequential,
            Executor::ParallelBlocks,
            Executor::Auto,
        ]
        .into_iter()
        .map(|executor| {
            let opts = ExecOptions {
                executor,
                threads: Some(4),
                ..ExecOptions::default()
            };
            cfg.run_opts(&spec(), Some(&region), &lp, &opts).unwrap()
        })
        .collect();
        for r in &runs[1..] {
            assert_eq!(r.qoi, runs[0].qoi);
            assert_eq!(r.kernel_seconds.to_bits(), runs[0].kernel_seconds.to_bits());
        }
    }

    #[test]
    fn taf_zero_threshold_is_exact() {
        let cfg = small();
        let lp = LaunchParams::new(8, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_out(2, 8, 0.0);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        assert!(approx.qoi.error_vs(&accurate.qoi) < 1e-9);
    }

    #[test]
    fn taf_bounded_error_and_sheds_work() {
        let cfg = small();
        let lp = LaunchParams::new(32, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_out(2, 32, 0.9);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        let err = approx.qoi.error_vs(&accurate.qoi);
        assert!(err < 0.25, "origin-energy error {err}");
        assert!(approx.stats.approx_lanes > 0);
    }

    #[test]
    fn perforation_speedup_with_modest_error() {
        let cfg = small();
        let lp = LaunchParams::new(32, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::perfo(PerfoKind::Small { m: 4 });
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        let err = approx.qoi.error_vs(&accurate.qoi);
        assert!(err < 0.5, "perfo error {err}");
        assert!(approx.kernel_seconds < accurate.kernel_seconds);
    }

    #[test]
    fn fini_perforation_less_error_than_ini() {
        // Paper: "fini perforation induces less error than ini, indicating
        // that the first iterations contribute more to the output".
        // For perforated *kernels* this maps to dropping trailing elements
        // (far from the blast) vs leading elements (the origin region).
        let cfg = small();
        let lp = LaunchParams::new(8, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let ini = ApproxRegion::perfo(PerfoKind::Ini { fraction: 0.3 });
        let fini = ApproxRegion::perfo(PerfoKind::Fini { fraction: 0.3 });
        let e_ini = cfg
            .run(&spec(), Some(&ini), &lp)
            .unwrap()
            .qoi
            .error_vs(&accurate.qoi);
        let e_fini = cfg
            .run(&spec(), Some(&fini), &lp)
            .unwrap()
            .qoi
            .error_vs(&accurate.qoi);
        assert!(
            e_fini <= e_ini + 1e-12,
            "fini ({e_fini}) should not exceed ini ({e_ini})"
        );
    }
}
