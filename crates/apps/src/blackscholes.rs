//! Blackscholes — analytic European option pricing (PARSEC).
//!
//! The paper approximates "the entire price calculation of an option" and
//! reports **kernel-only** timing because 99% of end-to-end time is memory
//! allocation and host<->device transfer (§4.1). The PARSEC input replicates
//! a small base portfolio many times, giving the dataset heavy redundancy;
//! the generator here reproduces that structure with `distinct` base options
//! arranged in runs of `run_len` consecutive copies, tiled over the
//! portfolio. Whether a given launch's grid stride aligns with that period
//! determines how stable each thread's output stream is — the source of the
//! paper's "unintuitive" TAF threshold behaviour (Fig 10c).

use crate::common::{
    current_eval_memo, eval_key, grid_stride_launch_class, AppResult, Benchmark, ComputeMemo,
    LaunchParams, QoI, RunAccumulator,
};
use gpu_sim::transfer::Direction;
use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, LaunchConfig};
use hpac_core::exec::{approx_parallel_for_opts, ExecOptions, RegionBody};
use hpac_core::region::{ApproxRegion, RegionError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of per-option parameters: spot, strike, rate, volatility, expiry.
pub const OPTION_DIMS: usize = 5;

/// Configuration for the Blackscholes benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Blackscholes {
    /// Portfolio size (number of options priced).
    pub n_options: usize,
    /// Distinct base options (PARSEC's replicated input file).
    pub distinct: usize,
    /// Consecutive copies of each base option per run.
    pub run_len: usize,
    pub seed: u64,
}

impl Default for Blackscholes {
    fn default() -> Self {
        Blackscholes {
            n_options: 131_072,
            distinct: 64,
            run_len: 64,
            seed: 0x5CCB,
        }
    }
}

impl Blackscholes {
    /// Generate the portfolio: `OPTION_DIMS` scalars per option, row-major.
    pub fn generate(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let base: Vec<[f64; OPTION_DIMS]> = (0..self.distinct)
            .map(|_| {
                // Near-the-money portfolio (PARSEC's input stays in this
                // regime): prices are bounded away from zero so MAPE stays
                // meaningful.
                [
                    rng.gen_range(40.0..60.0), // spot
                    rng.gen_range(36.0..66.0), // strike
                    rng.gen_range(0.01..0.05), // risk-free rate
                    rng.gen_range(0.15..0.60), // volatility
                    rng.gen_range(0.25..2.00), // years to expiry
                ]
            })
            .collect();
        let period = self.distinct * self.run_len;
        let mut data = Vec::with_capacity(self.n_options * OPTION_DIMS);
        for i in 0..self.n_options {
            let b = (i % period) / self.run_len;
            data.extend_from_slice(&base[b]);
        }
        data
    }
}

/// Abramowitz–Stegun 7.1.26 error-function approximation (what the PARSEC
/// kernel's CNDF polynomial corresponds to).
fn erf_approx(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Cumulative normal distribution function.
pub fn cndf(d: f64) -> f64 {
    0.5 * (1.0 + erf_approx(d / std::f64::consts::SQRT_2))
}

/// Closed-form Black–Scholes European call price.
pub fn price_call(spot: f64, strike: f64, rate: f64, vol: f64, t: f64) -> f64 {
    let sqrt_t = t.sqrt();
    let d1 = ((spot / strike).ln() + (rate + 0.5 * vol * vol) * t) / (vol * sqrt_t);
    let d2 = d1 - vol * sqrt_t;
    spot * cndf(d1) - strike * (-rate * t).exp() * cndf(d2)
}

/// The approximated region: one option's full price calculation.
///
/// Interning economics here are scope-dependent. *Per-run* interning lost
/// (PR 6 reverted it): the closed-form price is a handful of
/// special-function calls, cheaper than paying the row-classing hash every
/// run. Under a sweep-scoped [`EvalMemo`](crate::common::EvalMemo) the
/// classing runs once and its `distinct` cached prices serve every config
/// of the sweep, which measures faster — so the memo is used only when a
/// sweep scope is active, and a plain standalone run still prices inline.
struct BsBody<'a> {
    options: &'a [f64],
    prices: Vec<f64>,
    memo: Option<std::sync::Arc<ComputeMemo>>,
}

impl RegionBody for BsBody<'_> {
    fn in_dim(&self) -> usize {
        OPTION_DIMS
    }

    fn out_dim(&self) -> usize {
        1
    }

    fn inputs(&self, i: usize, buf: &mut [f64]) {
        buf.copy_from_slice(&self.options[i * OPTION_DIMS..(i + 1) * OPTION_DIMS]);
    }

    fn compute(&self, i: usize, out: &mut [f64]) {
        let price = |out: &mut [f64]| {
            let o = &self.options[i * OPTION_DIMS..(i + 1) * OPTION_DIMS];
            out[0] = price_call(o[0], o[1], o[2], o[3], o[4]);
        };
        match &self.memo {
            Some(memo) => memo.get_or(i, out, price),
            None => price(out),
        }
    }

    fn store(&mut self, i: usize, out: &[f64]) {
        self.prices[i] = out[0];
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        // ~30 FP ops plus ln/exp/sqrt and two CNDF evaluations (exp-heavy).
        CostProfile::new()
            .flops(30.0)
            .sfu(6.0)
            .global_read(lanes, (OPTION_DIMS * 8) as u32, AccessPattern::Coalesced)
            .global_write(lanes, 8, AccessPattern::Coalesced)
    }
}

impl Benchmark for Blackscholes {
    fn name(&self) -> &'static str {
        "Blackscholes"
    }

    fn kernel_only_timing(&self) -> bool {
        true
    }

    fn launch_class(&self, _spec: &DeviceSpec, lp: &LaunchParams) -> Option<u64> {
        // Single grid-stride kernel; host and transfer costs are
        // launch-independent.
        Some(grid_stride_launch_class(self.n_options, lp))
    }

    fn run_opts(
        &self,
        spec: &DeviceSpec,
        region: Option<&ApproxRegion>,
        lp: &LaunchParams,
        opts: &ExecOptions,
    ) -> Result<AppResult, RegionError> {
        let options = self.generate();
        // The portfolio is a pure function of these parameters, so they key
        // the sweep-scoped memo exactly.
        let memo = current_eval_memo().map(|store| {
            let key = eval_key(
                "Blackscholes",
                &[
                    self.n_options as u64,
                    self.distinct as u64,
                    self.run_len as u64,
                    self.seed,
                ],
            );
            store.get_or_build(&key, || ComputeMemo::from_rows(&options, OPTION_DIMS, 1))
        });
        let mut body = BsBody {
            options: &options,
            prices: vec![0.0; self.n_options],
            memo,
        };
        let launch =
            LaunchConfig::for_items_per_thread(self.n_options, lp.block_size, lp.items_per_thread);

        let mut acc = RunAccumulator::new();
        // The 99%-of-runtime host side: allocation plus the HtoD/DtoH copies.
        let in_bytes = (self.n_options * OPTION_DIMS * 8) as u64;
        let out_bytes = (self.n_options * 8) as u64;
        acc.host((in_bytes + out_bytes) as f64 / 2.0e9); // allocation ~2 GB/s
        acc.transfer(spec, in_bytes, Direction::HostToDevice);
        acc.transfer(spec, out_bytes, Direction::DeviceToHost);

        let rec = approx_parallel_for_opts(spec, &launch, region, &mut body, opts)?;
        acc.kernel(&rec);

        Ok(acc.finish(QoI::Values(body.prices), None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_core::HierarchyLevel;

    fn spec() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn small() -> Blackscholes {
        Blackscholes {
            n_options: 4096,
            distinct: 16,
            run_len: 16,
            seed: 7,
        }
    }

    #[test]
    fn cndf_matches_known_values() {
        assert!((cndf(0.0) - 0.5).abs() < 1e-7);
        assert!((cndf(1.96) - 0.975).abs() < 1e-3);
        assert!((cndf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn price_monotone_in_spot() {
        let p1 = price_call(50.0, 50.0, 0.02, 0.3, 1.0);
        let p2 = price_call(60.0, 50.0, 0.02, 0.3, 1.0);
        assert!(p2 > p1);
        assert!(p1 > 0.0);
    }

    #[test]
    fn deep_itm_call_near_intrinsic() {
        let p = price_call(100.0, 10.0, 0.02, 0.2, 0.5);
        let intrinsic = 100.0 - 10.0 * (-0.02f64 * 0.5).exp();
        assert!((p - intrinsic).abs() / intrinsic < 1e-3);
    }

    #[test]
    fn generator_is_deterministic_and_periodic() {
        let cfg = small();
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        let period = cfg.distinct * cfg.run_len;
        for d in 0..OPTION_DIMS {
            assert_eq!(a[d], a[period * OPTION_DIMS + d]);
        }
        // Runs: consecutive options within a run are identical.
        assert_eq!(a[..OPTION_DIMS], a[OPTION_DIMS..2 * OPTION_DIMS]);
    }

    #[test]
    fn accurate_run_prices_everything() {
        let cfg = small();
        let r = cfg.run(&spec(), None, &LaunchParams::new(1, 128)).unwrap();
        match &r.qoi {
            QoI::Values(p) => {
                assert_eq!(p.len(), cfg.n_options);
                assert!(p.iter().all(|&x| x.is_finite() && x >= 0.0));
            }
            _ => panic!(),
        }
        assert_eq!(r.stats.approx_fraction(), 0.0);
    }

    #[test]
    fn kernel_is_tiny_fraction_of_end_to_end() {
        // The 99%-transfer claim the paper makes for this benchmark.
        let r = small()
            .run(&spec(), None, &LaunchParams::new(1, 128))
            .unwrap();
        assert!(r.kernel_seconds < 0.05 * r.end_to_end_seconds());
    }

    #[test]
    fn taf_on_aligned_stride_is_fast_and_exact() {
        // items/thread 16 with 4096 options -> 256 threads; the data period
        // is 256 options -> every thread sees one constant option.
        let cfg = small();
        let accurate = cfg.run(&spec(), None, &LaunchParams::new(16, 128)).unwrap();
        let region = ApproxRegion::memo_out(1, 8, 0.3);
        let approx = cfg
            .run(&spec(), Some(&region), &LaunchParams::new(16, 128))
            .unwrap();
        let err = approx.qoi.error_vs(&accurate.qoi);
        assert!(err < 1e-9, "aligned stride must be exact, err = {err}");
        assert!(approx.stats.approx_fraction() > 0.5);
        assert!(approx.kernel_seconds < accurate.kernel_seconds);
    }

    #[test]
    fn taf_zero_threshold_zero_error() {
        let cfg = small();
        let accurate = cfg.run(&spec(), None, &LaunchParams::new(8, 128)).unwrap();
        let region = ApproxRegion::memo_out(3, 8, 0.0);
        let approx = cfg
            .run(&spec(), Some(&region), &LaunchParams::new(8, 128))
            .unwrap();
        assert!(approx.qoi.error_vs(&accurate.qoi) < 1e-12);
    }

    #[test]
    fn iact_slows_down_but_low_error() {
        // Paper Fig 10b: iACT reduces error but costs more than the body.
        let cfg = small();
        let accurate = cfg.run(&spec(), None, &LaunchParams::new(8, 128)).unwrap();
        let region = ApproxRegion::memo_in(8, 0.1)
            .tables_per_warp(32)
            .level(HierarchyLevel::Thread);
        let approx = cfg
            .run(&spec(), Some(&region), &LaunchParams::new(8, 128))
            .unwrap();
        let err = approx.qoi.error_vs(&accurate.qoi);
        assert!(err < 0.05, "iACT threshold 0.1 error = {err}");
        assert!(
            approx.kernel_seconds > 0.8 * accurate.kernel_seconds,
            "iACT should not be much faster here"
        );
    }

    #[test]
    fn amd_runs_too() {
        let cfg = small();
        let r = cfg
            .run(&DeviceSpec::mi250x(), None, &LaunchParams::new(8, 256))
            .unwrap();
        assert_eq!(r.qoi.len(), cfg.n_options);
    }
}
