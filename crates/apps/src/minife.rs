//! MiniFE — conjugate-gradient proxy for unstructured implicit finite
//! element codes (Mantevo).
//!
//! Assembles a 27-point stencil operator on a 3D hex grid in CSR form and
//! runs CG on it. The paper approximates the sparse matrix-vector product;
//! the locally introduced errors "propagate through subsequent iterations,
//! causing high error rates (between 593% and 3.43 × 10²²%)" (Fig 9c) —
//! CG's short recurrences amplify any SpMV perturbation, which is exactly
//! what this implementation reproduces.
//!
//! iACT is **not applicable**: CSR rows have varying numbers of nonzeros,
//! and "hpac-offload only supports computations with uniform input sizes
//! for all threads" — the region reports that incompatibility and launches
//! with `memo(in:...)` fail.
//!
//! QoI: the final residual norm of the solver.

use crate::common::{
    charge_uniform_kernel, AppResult, Benchmark, LaunchParams, QoI, RunAccumulator,
};
use gpu_sim::transfer::Direction;
use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, LaunchConfig};
use hpac_core::exec::{approx_parallel_for_opts, ExecOptions, RegionBody};
use hpac_core::region::{ApproxRegion, RegionError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the MiniFE benchmark.
#[derive(Debug, Clone, Copy)]
pub struct MiniFe {
    /// Grid points per dimension (rows = nx³).
    pub nx: usize,
    /// CG iteration budget.
    pub max_iters: usize,
    /// Convergence tolerance on the residual norm.
    pub tol: f64,
    pub seed: u64,
}

impl Default for MiniFe {
    fn default() -> Self {
        MiniFe {
            nx: 14,
            max_iters: 50,
            tol: 1e-8,
            seed: 0xF3,
        }
    }
}

/// A CSR sparse matrix.
#[derive(Debug, Clone)]
pub struct Csr {
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<usize>,
    pub values: Vec<f64>,
    pub n: usize,
}

impl Csr {
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row nonzero count (varies at boundaries — the non-uniformity that
    /// rules out iACT).
    pub fn row_len(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }
}

impl MiniFe {
    pub fn n_rows(&self) -> usize {
        self.nx * self.nx * self.nx
    }

    /// Assemble the 27-point stencil operator: diagonal 26, neighbours -1
    /// (an SPD discrete diffusion operator, MiniFE's default problem).
    pub fn assemble(&self) -> Csr {
        let nx = self.nx as i64;
        let n = self.n_rows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for z in 0..nx {
            for y in 0..nx {
                for x in 0..nx {
                    for dz in -1..=1 {
                        for dy in -1..=1 {
                            for dx in -1..=1 {
                                let (xx, yy, zz) = (x + dx, y + dy, z + dz);
                                if xx < 0 || yy < 0 || zz < 0 || xx >= nx || yy >= nx || zz >= nx {
                                    continue;
                                }
                                let col = ((zz * nx + yy) * nx + xx) as usize;
                                col_idx.push(col);
                                values.push(if dx == 0 && dy == 0 && dz == 0 {
                                    26.0
                                } else {
                                    -1.0
                                });
                            }
                        }
                    }
                    row_ptr.push(col_idx.len());
                }
            }
        }
        Csr {
            row_ptr,
            col_idx,
            values,
            n,
        }
    }

    /// Seeded right-hand side.
    pub fn rhs(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        (0..self.n_rows())
            .map(|_| rng.gen_range(0.0..1.0))
            .collect()
    }
}

/// The approximated region: one CSR row's dot product (`q_i = A_i · p`).
struct SpmvBody<'a> {
    matrix: &'a Csr,
    p: &'a [f64],
    q: &'a mut [f64],
    avg_nnz: f64,
}

impl RegionBody for SpmvBody<'_> {
    fn out_dim(&self) -> usize {
        1
    }

    fn compute(&self, row: usize, out: &mut [f64]) {
        let lo = self.matrix.row_ptr[row];
        let hi = self.matrix.row_ptr[row + 1];
        let mut sum = 0.0;
        for k in lo..hi {
            sum += self.matrix.values[k] * self.p[self.matrix.col_idx[k]];
        }
        out[0] = sum;
    }

    fn store(&mut self, row: usize, out: &[f64]) {
        self.q[row] = out[0];
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        // Gathered x-vector reads are the classic SpMV bottleneck.
        CostProfile::new()
            .flops(2.0 * self.avg_nnz)
            .global_read(
                lanes,
                (self.avg_nnz * 12.0) as u32,
                AccessPattern::Strided { stride_bytes: 64 },
            )
            .global_write(lanes, 8, AccessPattern::Coalesced)
    }

    fn iact_incompatibility(&self) -> Option<String> {
        Some("CSR rows have varying input sizes across threads".into())
    }
}

impl Benchmark for MiniFe {
    fn name(&self) -> &'static str {
        "MiniFE"
    }

    fn run_opts(
        &self,
        spec: &DeviceSpec,
        region: Option<&ApproxRegion>,
        lp: &LaunchParams,
        opts: &ExecOptions,
    ) -> Result<AppResult, RegionError> {
        let a = self.assemble();
        let b = self.rhs();
        let n = a.n;
        let avg_nnz = a.nnz() as f64 / n as f64;

        let mut acc = RunAccumulator::new();
        acc.transfer(
            spec,
            (a.nnz() * 12 + n * 8 * 4) as u64,
            Direction::HostToDevice,
        );

        // CG state.
        let mut x = vec![0.0; n];
        let mut r: Vec<f64> = b.clone();
        let mut p: Vec<f64> = b.clone();
        let mut q = vec![0.0; n];
        let mut rho: f64 = r.iter().map(|v| v * v).sum();

        let launch = LaunchConfig::for_items_per_thread(n, lp.block_size, lp.items_per_thread);
        let blas_cost = CostProfile::new()
            .flops(2.0)
            .global_read(spec.warp_size, 16, AccessPattern::Coalesced)
            .global_write(spec.warp_size, 8, AccessPattern::Coalesced);
        let blas_launch = LaunchConfig::one_item_per_thread(n, lp.block_size);

        for _ in 0..self.max_iters {
            // q = A p — the approximated SpMV.
            let mut body = SpmvBody {
                matrix: &a,
                p: &p,
                q: &mut q,
                avg_nnz,
            };
            let rec = approx_parallel_for_opts(spec, &launch, region, &mut body, opts)?;
            acc.kernel(&rec);

            // Dot products and vector updates (accurate kernels).
            for _ in 0..3 {
                let rec = charge_uniform_kernel(spec, &blas_launch, &blas_cost)?;
                acc.kernel_seconds += rec.timing.seconds;
            }

            let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
            if pq == 0.0 || !pq.is_finite() {
                break;
            }
            let alpha = rho / pq;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * q[i];
            }
            let rho_new: f64 = r.iter().map(|v| v * v).sum();
            let res = rho_new.sqrt();
            if !res.is_finite() || res < self.tol {
                break;
            }
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
        }

        // The paper's QoI is the *true* final residual of the produced
        // solution: ||b - A x||.
        let mut true_r = 0.0;
        for (i, &bi) in b.iter().enumerate().take(n) {
            let lo = a.row_ptr[i];
            let hi = a.row_ptr[i + 1];
            let mut ax = 0.0;
            for k in lo..hi {
                ax += a.values[k] * x[a.col_idx[k]];
            }
            let d = bi - ax;
            true_r += d * d;
        }
        let qoi = QoI::Values(vec![true_r.sqrt()]);
        acc.transfer(spec, (n * 8) as u64, Direction::DeviceToHost);
        Ok(acc.finish(qoi, None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn small() -> MiniFe {
        MiniFe {
            nx: 8,
            max_iters: 60,
            tol: 1e-9,
            seed: 2,
        }
    }

    #[test]
    fn stencil_has_27_point_interior() {
        let cfg = small();
        let a = cfg.assemble();
        assert_eq!(a.n, 512);
        // Interior row: full 27 entries; corner row: 8 entries.
        let interior = (3 * 8 + 3) * 8 + 3; // (3,3,3)
        assert_eq!(a.row_len(interior), 27);
        assert_eq!(a.row_len(0), 8);
    }

    #[test]
    fn matrix_is_symmetric() {
        let a = small().assemble();
        // Spot-check symmetry via dense probes.
        for i in [0usize, 100, 300, 511] {
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                let j = a.col_idx[k];
                let v_ij = a.values[k];
                let v_ji = (a.row_ptr[j]..a.row_ptr[j + 1])
                    .find(|&kk| a.col_idx[kk] == i)
                    .map(|kk| a.values[kk])
                    .expect("symmetric pattern");
                assert_eq!(v_ij, v_ji);
            }
        }
    }

    #[test]
    fn accurate_cg_converges() {
        let cfg = small();
        let r = cfg.run(&spec(), None, &LaunchParams::new(8, 128)).unwrap();
        let QoI::Values(res) = &r.qoi else { panic!() };
        assert!(res[0] < 1e-6, "residual {}", res[0]);
    }

    #[test]
    fn taf_zero_threshold_matches_accurate() {
        let cfg = small();
        let lp = LaunchParams::new(8, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_out(2, 8, 0.0);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        assert!(approx.qoi.error_vs(&accurate.qoi) < 1e-9);
    }

    #[test]
    fn taf_destroys_convergence() {
        // Fig 9c: approximating SpMV wrecks CG — errors in the hundreds of
        // percent at minimum.
        let cfg = small();
        let lp = LaunchParams::new(16, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_out(2, 32, 1.5);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        let err = approx.qoi.error_vs(&accurate.qoi);
        assert!(
            err > 5.0,
            "SpMV corruption must blow up the residual, err = {err}"
        );
    }

    #[test]
    fn iact_is_rejected() {
        let cfg = small();
        let region = ApproxRegion::memo_in(4, 0.5);
        let err = cfg
            .run(&spec(), Some(&region), &LaunchParams::new(8, 128))
            .unwrap_err();
        match err {
            RegionError::Invalid(msg) => assert!(msg.contains("varying input sizes")),
            other => panic!("expected Invalid, got {other:?}"),
        }
    }
}
