//! Shared application plumbing: results, QoI comparison, launch parameters,
//! compute interning, and the [`Benchmark`] trait the harness drives.

use gpu_sim::transfer::{self, Direction};
use gpu_sim::{CostProfile, DeviceSpec, KernelExec, KernelRecord, KernelStats, LaunchConfig};
use hpac_core::exec::ExecOptions;
use hpac_core::metrics;
use hpac_core::region::{ApproxRegion, RegionError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Launch-shape parameters swept by the paper's design-space exploration
/// (the `num_teams`-derived "Items per Thread" and the block size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchParams {
    /// Approximate loop items per thread (1 = maximum parallelism).
    pub items_per_thread: usize,
    /// Threads per block.
    pub block_size: u32,
}

impl Default for LaunchParams {
    fn default() -> Self {
        LaunchParams {
            items_per_thread: 32,
            block_size: 256,
        }
    }
}

impl LaunchParams {
    pub fn new(items_per_thread: usize, block_size: u32) -> Self {
        LaunchParams {
            items_per_thread,
            block_size,
        }
    }
}

/// A benchmark's quantity of interest.
#[derive(Debug, Clone, PartialEq)]
pub enum QoI {
    /// Continuous outputs, compared with MAPE (paper eq. 1).
    Values(Vec<f64>),
    /// Discrete labels, compared with the misclassification rate (eq. 2).
    Labels(Vec<u32>),
}

impl QoI {
    /// Error of `self` (the approximate run) against `accurate`, as a
    /// fraction (MAPE or MCR depending on the QoI kind). Non-finite values
    /// anywhere yield `f64::INFINITY` (a destroyed QoI is infinitely wrong).
    pub fn error_vs(&self, accurate: &QoI) -> f64 {
        match (accurate, self) {
            (QoI::Values(a), QoI::Values(p)) => {
                if p.iter().chain(a.iter()).any(|v| !v.is_finite()) {
                    return f64::INFINITY;
                }
                metrics::mape(a, p)
            }
            (QoI::Labels(a), QoI::Labels(p)) => metrics::mcr(a, p),
            _ => panic!("comparing mismatched QoI kinds"),
        }
    }

    pub fn len(&self) -> usize {
        match self {
            QoI::Values(v) => v.len(),
            QoI::Labels(l) => l.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result of one application run (accurate or approximated).
#[derive(Debug, Clone)]
pub struct AppResult {
    pub qoi: QoI,
    /// Modeled GPU kernel time, all launches summed.
    pub kernel_seconds: f64,
    /// Modeled host<->device transfer time.
    pub transfer_seconds: f64,
    /// Modeled host-side time (allocation, setup, reductions).
    pub host_seconds: f64,
    /// Execution statistics merged over all launches.
    pub stats: KernelStats,
    /// Solver iterations executed, for convergence-driven apps (K-Means).
    pub iterations: Option<usize>,
}

impl AppResult {
    /// End-to-end modeled runtime (the paper's default speedup basis).
    pub fn end_to_end_seconds(&self) -> f64 {
        self.kernel_seconds + self.transfer_seconds + self.host_seconds
    }

    /// The timing basis used for speedups: kernel-only when the benchmark
    /// requests it (Blackscholes), end-to-end otherwise.
    pub fn timing_basis_seconds(&self, kernel_only: bool) -> f64 {
        if kernel_only {
            self.kernel_seconds
        } else {
            self.end_to_end_seconds()
        }
    }
}

/// Accumulates kernel records and transfer/host time across an
/// application's launches.
#[derive(Debug, Clone, Default)]
pub struct RunAccumulator {
    pub kernel_seconds: f64,
    pub transfer_seconds: f64,
    pub host_seconds: f64,
    pub stats: KernelStats,
}

impl RunAccumulator {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn kernel(&mut self, rec: &KernelRecord) {
        self.kernel_seconds += rec.timing.seconds;
        self.stats.merge(&rec.stats);
    }

    pub fn transfer(&mut self, spec: &DeviceSpec, bytes: u64, _dir: Direction) {
        self.transfer_seconds += transfer::transfer_seconds(spec, bytes);
    }

    pub fn host(&mut self, seconds: f64) {
        self.host_seconds += seconds;
    }

    pub fn finish(self, qoi: QoI, iterations: Option<usize>) -> AppResult {
        AppResult {
            qoi,
            kernel_seconds: self.kernel_seconds,
            transfer_seconds: self.transfer_seconds,
            host_seconds: self.host_seconds,
            stats: self.stats,
            iterations,
        }
    }
}

/// Interning cache for pure per-item compute over datasets with duplicated
/// rows (the portfolio generators tile `distinct` base rows `run_len`
/// times).
///
/// Rows are classed by their exact input bit patterns at construction; each
/// class's output is produced at most once and replayed for every later
/// item of the class. Because the region bodies' `compute` is pure in the
/// input row, replaying the cached output is bit-identical to recomputing
/// it — the simulator still *charges* every accurate execution through the
/// body's cost profile, so modeled timing and statistics are untouched;
/// only host wall-clock drops. Outputs live in relaxed atomics (bit
/// patterns) behind an acquire/release filled flag, so parallel block
/// workers can fill and read classes concurrently; a racing double-fill
/// writes the same bits twice.
pub struct ComputeMemo {
    class_of: Vec<u32>,
    n_classes: usize,
    out_dim: usize,
    filled: Vec<AtomicBool>,
    slots: Vec<AtomicU64>,
}

impl ComputeMemo {
    /// Class the items of `rows` (row-major, `dims` scalars each) by exact
    /// bit equality.
    pub fn from_rows(rows: &[f64], dims: usize, out_dim: usize) -> Self {
        assert!(dims > 0 && out_dim > 0);
        let n = rows.len() / dims;
        // Key the map on slices of one shared bits buffer instead of a
        // fresh Vec per row — interning must stay cheap relative to the
        // computes it elides.
        let bits: Vec<u64> = rows.iter().map(|v| v.to_bits()).collect();
        let mut ids: HashMap<&[u64], u32> = HashMap::new();
        let class_of: Vec<u32> = (0..n)
            .map(|i| {
                let key = &bits[i * dims..(i + 1) * dims];
                let next = ids.len() as u32;
                *ids.entry(key).or_insert(next)
            })
            .collect();
        let n_classes = ids.len();
        ComputeMemo {
            class_of,
            n_classes,
            out_dim,
            filled: (0..n_classes).map(|_| AtomicBool::new(false)).collect(),
            slots: (0..n_classes * out_dim)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// Identity classing: item `i` is its own class, with no row hashing.
    ///
    /// Sound for any compute that is pure in the *item index* over a fixed
    /// dataset — including bodies (LavaMD) that read data beyond their
    /// declared input row, where [`ComputeMemo::from_rows`] classing would
    /// be unsound. Pays off only when the memo outlives a single run (the
    /// sweep-scoped [`EvalMemo`]), since within one run each item computes
    /// once anyway.
    pub fn identity(n_items: usize, out_dim: usize) -> Self {
        assert!(out_dim > 0);
        ComputeMemo {
            class_of: (0..n_items as u32).collect(),
            n_classes: n_items,
            out_dim,
            filled: (0..n_items).map(|_| AtomicBool::new(false)).collect(),
            slots: (0..n_items * out_dim).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Distinct input rows found.
    pub fn classes(&self) -> usize {
        self.n_classes
    }

    /// Approximate resident size, for the [`EvalMemo`] byte cap.
    pub fn approx_bytes(&self) -> usize {
        self.class_of.len() * 4 + self.n_classes * (1 + self.out_dim * 8)
    }

    /// Produce item `i`'s output into `out`: from the cache when its class
    /// has been computed, else by running `compute` and caching the result.
    pub fn get_or(&self, i: usize, out: &mut [f64], compute: impl FnOnce(&mut [f64])) {
        debug_assert_eq!(out.len(), self.out_dim);
        let c = self.class_of[i] as usize;
        let base = c * self.out_dim;
        if self.filled[c].load(Ordering::Acquire) {
            hpac_obs::inc(hpac_obs::CounterId::ComputeMemoHits);
            for (d, o) in out.iter_mut().enumerate() {
                *o = f64::from_bits(self.slots[base + d].load(Ordering::Relaxed));
            }
            return;
        }
        hpac_obs::inc(hpac_obs::CounterId::ComputeMemoMisses);
        compute(out);
        for (d, o) in out.iter().enumerate() {
            self.slots[base + d].store(o.to_bits(), Ordering::Relaxed);
        }
        self.filled[c].store(true, Ordering::Release);
    }
}

const EVAL_MEMO_SHARDS: usize = 16;
/// Cap on resident interned output bytes across one sweep scope. On
/// overflow, memos are still built and used for the requesting run, just
/// not retained — correctness never depends on retention.
const EVAL_MEMO_BYTE_CAP: usize = 256 << 20;

fn fnv1a_words(words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

/// Build an [`EvalMemo`] key from an app tag and the exact parameter bits
/// that determine the memoized computation. Keys must uniquely identify
/// {app, dataset, compute}: two runs with equal keys must produce
/// bit-identical outputs for every item.
pub fn eval_key(app: &str, param_bits: &[u64]) -> Vec<u64> {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in app.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut key = Vec::with_capacity(1 + param_bits.len());
    key.push(h);
    key.extend_from_slice(param_bits);
    key
}

/// Sweep-scoped store of [`ComputeMemo`]s, shared by every config task of a
/// harness sweep or tuner search.
///
/// Per-run memos (PR 6) eliminate duplicate computes *within* one config
/// evaluation; promoting the memo here lets the accurate-lane outputs —
/// which do not vary with approximation parameters — be computed once per
/// sweep and replayed across all configs. Striped like `TuningCache`:
/// 16 mutex-guarded shards selected by an fnv1a hash of the key, so
/// parallel config tasks rarely contend. The shard lock is held across a
/// miss's build, so concurrent requests for the same key build it once.
pub struct EvalMemo {
    shards: Vec<Mutex<HashMap<Vec<u64>, Arc<ComputeMemo>>>>,
    bytes: AtomicUsize,
}

impl Default for EvalMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl EvalMemo {
    pub fn new() -> Self {
        EvalMemo {
            shards: (0..EVAL_MEMO_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            bytes: AtomicUsize::new(0),
        }
    }

    /// Fetch the memo for `key`, building (and, capacity permitting,
    /// retaining) it on first request.
    pub fn get_or_build(
        &self,
        key: &[u64],
        build: impl FnOnce() -> ComputeMemo,
    ) -> Arc<ComputeMemo> {
        let shard = (fnv1a_words(key) as usize) % EVAL_MEMO_SHARDS;
        let mut map = self.shards[shard].lock().unwrap();
        if let Some(memo) = map.get(key) {
            hpac_obs::inc(hpac_obs::CounterId::EvalMemoHits);
            return Arc::clone(memo);
        }
        hpac_obs::inc(hpac_obs::CounterId::EvalMemoMisses);
        let memo = Arc::new(build());
        let sz = memo.approx_bytes();
        if self.bytes.load(Ordering::Relaxed) + sz <= EVAL_MEMO_BYTE_CAP {
            self.bytes.fetch_add(sz, Ordering::Relaxed);
            map.insert(key.to_vec(), Arc::clone(&memo));
        }
        memo
    }

    /// Interned bytes currently retained.
    pub fn resident_bytes(&self) -> usize {
        self.bytes.load(Ordering::Relaxed)
    }
}

static EVAL_MEMO_SCOPE: OnceLock<RwLock<Option<Arc<EvalMemo>>>> = OnceLock::new();

fn scope_cell() -> &'static RwLock<Option<Arc<EvalMemo>>> {
    EVAL_MEMO_SCOPE.get_or_init(|| RwLock::new(None))
}

/// RAII guard for a sweep-scoped [`EvalMemo`]; see [`install_eval_memo`].
pub struct EvalMemoScope {
    installed: bool,
}

impl Drop for EvalMemoScope {
    fn drop(&mut self) {
        if self.installed {
            *scope_cell().write().unwrap() = None;
        }
    }
}

/// Install a fresh sweep-scoped [`EvalMemo`] for the duration of the
/// returned guard. If a scope is already active (a tuner search wrapping
/// harness sweeps), the existing store is reused and the guard is a no-op
/// on drop, so nested scopes compose: the outermost owner decides the
/// memo's lifetime. Apps that consult [`current_eval_memo`] behave exactly
/// as before when no scope is installed.
pub fn install_eval_memo() -> EvalMemoScope {
    let mut slot = scope_cell().write().unwrap();
    if slot.is_some() {
        return EvalMemoScope { installed: false };
    }
    *slot = Some(Arc::new(EvalMemo::new()));
    EvalMemoScope { installed: true }
}

/// The active sweep-scoped store, if any.
pub fn current_eval_memo() -> Option<Arc<EvalMemo>> {
    scope_cell().read().unwrap().clone()
}

/// Launch class for a single grid-stride kernel over `n_items`: the packed
/// effective `(n_blocks, block_size)` the launch parameters resolve to.
/// Distinct items-per-thread values that clamp to the same grid execute
/// identically.
pub fn grid_stride_launch_class(n_items: usize, lp: &LaunchParams) -> u64 {
    let lc = LaunchConfig::for_items_per_thread(n_items, lp.block_size, lp.items_per_thread);
    ((lc.n_blocks as u64) << 32) | lc.block_size as u64
}

/// Charge a uniform, non-approximated kernel (per-item cost `cost`) without
/// functionally iterating items — used for accurate helper kernels whose
/// outputs the app computes host-side (reductions, centroid updates).
pub fn charge_uniform_kernel(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    cost_per_warp_step: &CostProfile,
) -> Result<KernelRecord, RegionError> {
    let mut exec = KernelExec::new(spec, launch, 0)?;
    let wpb = launch.warps_per_block(spec);
    let steps = launch.steps();
    let mut remaining = launch.n_items as i64;
    let full_warp = spec.warp_size as i64;
    'outer: for _s in 0..steps {
        for b in 0..launch.n_blocks {
            for w in 0..wpb {
                if remaining <= 0 {
                    break 'outer;
                }
                let lanes = remaining.min(full_warp) as u32;
                exec.charge(b, w, cost_per_warp_step);
                exec.note_step(lanes, 0, 0, false);
                remaining -= full_warp;
            }
        }
    }
    Ok(exec.finish())
}

/// The interface the design-space-exploration harness drives.
///
/// Implementations are plain-data configuration structs; `run` is pure
/// (deterministic given the config and arguments) and internally owns all
/// mutable state, so benchmarks can be swept from parallel threads.
pub trait Benchmark: Send + Sync {
    /// Table 1 benchmark name.
    fn name(&self) -> &'static str;

    /// "MAPE" or "MCR" (Table 1's QoI metric).
    fn error_metric(&self) -> &'static str {
        "MAPE"
    }

    /// Whether speedups use kernel-only timing (true only for Blackscholes,
    /// where 99% of end-to-end time is allocation and transfer — §4.1).
    fn kernel_only_timing(&self) -> bool {
        false
    }

    /// Regions in this benchmark that support block-level decisions only
    /// (Binomial Options' cooperative blocks).
    fn block_level_only(&self) -> bool {
        false
    }

    /// A key identifying the *effective* execution the launch parameters
    /// resolve to (e.g. the clamped grid once items-per-thread exceeds the
    /// problem span). Two launch parameters with equal keys must produce
    /// bit-identical results for every region, letting the harness dedup
    /// grid points before evaluation. `None` (the default) opts out of
    /// deduplication — mandatory for benchmarks where the launch shape
    /// feeds anything beyond a single grid-stride kernel.
    fn launch_class(&self, _spec: &DeviceSpec, _lp: &LaunchParams) -> Option<u64> {
        None
    }

    /// Execute the benchmark, approximating its designated kernel(s) with
    /// `region` (or accurately when `None`), under default execution
    /// options (the `HPAC_THREADS` environment override applies).
    fn run(
        &self,
        spec: &DeviceSpec,
        region: Option<&ApproxRegion>,
        lp: &LaunchParams,
    ) -> Result<AppResult, RegionError> {
        self.run_opts(spec, region, lp, &ExecOptions::default())
    }

    /// [`Benchmark::run`] with explicit execution options — the executor
    /// knob (sequential reference vs parallel blocks) and ablations flow
    /// through here into every kernel launch of the application.
    fn run_opts(
        &self,
        spec: &DeviceSpec,
        region: Option<&ApproxRegion>,
        lp: &LaunchParams,
        opts: &ExecOptions,
    ) -> Result<AppResult, RegionError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qoi_mape_roundtrip() {
        let a = QoI::Values(vec![1.0, 2.0]);
        let p = QoI::Values(vec![1.1, 1.8]);
        assert!((p.error_vs(&a) - 0.1).abs() < 1e-12);
        assert_eq!(a.error_vs(&a), 0.0);
    }

    #[test]
    fn qoi_mcr_roundtrip() {
        let a = QoI::Labels(vec![0, 1, 2, 3]);
        let p = QoI::Labels(vec![0, 1, 0, 0]);
        assert!((p.error_vs(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn qoi_nan_is_infinite_error() {
        let a = QoI::Values(vec![1.0]);
        let p = QoI::Values(vec![f64::NAN]);
        assert!(p.error_vs(&a).is_infinite());
    }

    #[test]
    #[should_panic(expected = "mismatched QoI")]
    fn qoi_kind_mismatch_panics() {
        let a = QoI::Values(vec![1.0]);
        let p = QoI::Labels(vec![1]);
        let _ = p.error_vs(&a);
    }

    #[test]
    fn accumulator_sums() {
        let spec = DeviceSpec::v100();
        let mut acc = RunAccumulator::new();
        acc.host(0.5);
        acc.transfer(&spec, 1 << 30, Direction::HostToDevice);
        let r = acc.finish(QoI::Values(vec![]), None);
        assert!(r.end_to_end_seconds() > 0.5);
        assert_eq!(r.iterations, None);
    }

    #[test]
    fn timing_basis_selects_kernel_only() {
        let r = AppResult {
            qoi: QoI::Values(vec![]),
            kernel_seconds: 1.0,
            transfer_seconds: 2.0,
            host_seconds: 3.0,
            stats: KernelStats::default(),
            iterations: None,
        };
        assert_eq!(r.timing_basis_seconds(true), 1.0);
        assert_eq!(r.timing_basis_seconds(false), 6.0);
    }

    #[test]
    fn compute_memo_interns_by_exact_bits() {
        let rows = vec![1.0, 2.0, 1.0, 2.0, 3.0, 4.0, 1.0, 2.0];
        let memo = ComputeMemo::from_rows(&rows, 2, 1);
        assert_eq!(memo.classes(), 2);
        let mut calls = 0;
        let mut got = Vec::new();
        for i in 0..4 {
            let mut out = [0.0];
            memo.get_or(i, &mut out, |o| {
                calls += 1;
                o[0] = rows[i * 2] + 10.0 * rows[i * 2 + 1];
            });
            got.push(out[0]);
        }
        assert_eq!(calls, 2, "each class computes once");
        assert_eq!(got, vec![21.0, 21.0, 43.0, 21.0]);
    }

    #[test]
    fn compute_memo_distinguishes_negative_zero() {
        // Bit-exact classing: -0.0 and 0.0 compare equal but are different
        // inputs to sign-sensitive compute.
        let rows = vec![0.0, -0.0];
        let memo = ComputeMemo::from_rows(&rows, 1, 1);
        assert_eq!(memo.classes(), 2);
    }

    #[test]
    fn compute_memo_identity_classes_every_item() {
        let memo = ComputeMemo::identity(3, 2);
        assert_eq!(memo.classes(), 3);
        let mut calls = 0;
        for i in 0..3 {
            for _ in 0..2 {
                let mut out = [0.0, 0.0];
                memo.get_or(i, &mut out, |o| {
                    calls += 1;
                    o[0] = i as f64;
                    o[1] = -(i as f64);
                });
                assert_eq!(out, [i as f64, -(i as f64)]);
            }
        }
        assert_eq!(calls, 3, "each item computes once");
    }

    #[test]
    fn eval_memo_interns_by_key_and_scope_nests() {
        let store = EvalMemo::new();
        let key_a = eval_key("app", &[1, 2]);
        let key_b = eval_key("app", &[1, 3]);
        let a1 = store.get_or_build(&key_a, || ComputeMemo::identity(4, 1));
        let a2 = store.get_or_build(&key_a, || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a1, &a2));
        let b = store.get_or_build(&key_b, || ComputeMemo::identity(2, 1));
        assert!(!Arc::ptr_eq(&a1, &b));
        assert!(store.resident_bytes() > 0);

        // Nested installation reuses the outer store; the inner guard's
        // drop must not tear it down.
        let outer = install_eval_memo();
        let seen = current_eval_memo().expect("scope active");
        {
            let _inner = install_eval_memo();
            assert!(Arc::ptr_eq(
                &seen,
                &current_eval_memo().expect("still active")
            ));
        }
        assert!(
            current_eval_memo().is_some(),
            "inner drop must not clear the outer scope"
        );
        drop(outer);
    }

    #[test]
    fn grid_stride_class_collapses_clamped_grids() {
        // 64 and 512 items per thread both clamp to one block here.
        let a = grid_stride_launch_class(1000, &LaunchParams::new(64, 256));
        let b = grid_stride_launch_class(1000, &LaunchParams::new(512, 256));
        let c = grid_stride_launch_class(1000, &LaunchParams::new(1, 256));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_kernel_charges_all_items() {
        let spec = DeviceSpec::v100();
        let lc = LaunchConfig::one_item_per_thread(1000, 128);
        let cost = CostProfile::new().flops(10.0);
        let rec = charge_uniform_kernel(&spec, &lc, &cost).unwrap();
        assert_eq!(rec.stats.accurate_lanes, 1000);
        assert!(rec.timing.cycles > 0.0);
    }
}
