//! Leukocyte — tracking white blood cells in video microscopy (Rodinia).
//!
//! The tracking stage solves an IMGVF (image gradient vector flow) fixed
//! point per detected cell: one thread block per cell iterates a stencil
//! relaxation over the cell's sub-image until convergence, with in-block
//! barriers between sweeps. The paper approximates "the IMGVF matrix
//! calculation" — here the per-pixel relaxation update.
//!
//! As the field converges, a thread's output stream stabilizes; TAF enters
//! its stable regime and skips updates (≈2× speedup at ~1% error in Fig 9a),
//! while iACT's per-invocation distance search outweighs the cheap stencil
//! body and only slows the solve down (Fig 9b).
//!
//! Uses the substrate's block-local schedule: block = cell, items =
//! `iterations × pixels`, iteration-major within the block so the Jacobi
//! double-buffer dependency is honoured. Each cell owns a private slice of
//! the IMGVF field ([`BlockField`] partitions), so the solve is
//! block-private ([`StoreVisibility::BlockPrivate`]) and independent cells
//! relax in parallel on the engine's worker pool.
//!
//! QoI: each cell's final location (intensity-weighted centroid of the
//! converged field).

use crate::common::{AppResult, Benchmark, LaunchParams, QoI, RunAccumulator};
use gpu_sim::transfer::Direction;
use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, LaunchConfig};
use hpac_core::exec::{
    approx_parallel_for_opts, BlockField, ExecOptions, RegionBody, StoreVisibility,
};
use hpac_core::region::{ApproxRegion, RegionError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the Leukocyte benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Leukocyte {
    /// Cells tracked in the frame (one block each).
    pub n_cells: usize,
    /// Side of each cell's square sub-image (pixels = grid²).
    pub grid: usize,
    /// IMGVF relaxation sweeps.
    pub iterations: usize,
    /// Relaxation weight toward the neighbour average.
    pub omega: f64,
    /// Data-attachment weight toward the image.
    pub kappa: f64,
    pub seed: u64,
}

impl Default for Leukocyte {
    fn default() -> Self {
        Leukocyte {
            n_cells: 16,
            grid: 32,
            iterations: 48,
            omega: 0.6,
            kappa: 0.15,
            seed: 0x1E0C,
        }
    }
}

impl Leukocyte {
    pub fn pixels_per_cell(&self) -> usize {
        self.grid * self.grid
    }

    /// Synthetic microscopy frame: per cell, a bright blob at a seeded
    /// offset from the sub-image centre plus background noise. Returns
    /// `(image, true_offsets)` where `image` is `n_cells × grid²`.
    pub fn generate(&self) -> (Vec<f64>, Vec<(f64, f64)>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let g = self.grid as f64;
        let mut image = Vec::with_capacity(self.n_cells * self.pixels_per_cell());
        let mut offsets = Vec::with_capacity(self.n_cells);
        for _ in 0..self.n_cells {
            let cx = g / 2.0 + rng.gen_range(-g / 8.0..g / 8.0);
            let cy = g / 2.0 + rng.gen_range(-g / 8.0..g / 8.0);
            offsets.push((cx, cy));
            let sigma2 = (g / 6.0) * (g / 6.0);
            for y in 0..self.grid {
                for x in 0..self.grid {
                    let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
                    let noise: f64 = rng.gen_range(-0.02..0.02);
                    image.push((-d2 / (2.0 * sigma2)).exp() + noise);
                }
            }
        }
        (image, offsets)
    }

    /// Intensity-weighted centroid of one converged field.
    pub fn centroid(&self, field: &[f64]) -> (f64, f64) {
        let mut sx = 0.0;
        let mut sy = 0.0;
        let mut sw = 0.0;
        for y in 0..self.grid {
            for x in 0..self.grid {
                let w = field[y * self.grid + x].max(0.0);
                sx += w * x as f64;
                sy += w * y as f64;
                sw += w;
            }
        }
        if sw == 0.0 {
            (0.0, 0.0)
        } else {
            (sx / sw, sy / sw)
        }
    }
}

/// The approximated region: one pixel's IMGVF relaxation update.
struct ImgvfBody<'a> {
    cfg: &'a Leukocyte,
    image: &'a [f64],
    /// Double buffer: `buf[parity]` is read, `buf[1 - parity]` written.
    /// Cell `c` touches only indices `[c * pixels, (c + 1) * pixels)` of
    /// either buffer — the private per-block slices that make the solve
    /// block-parallel.
    buf: [BlockField; 2],
}

impl ImgvfBody<'_> {
    /// item = cell_local: iteration-major: `iter * pixels + pixel`, offset
    /// by `cell * iterations * pixels`.
    fn decode(&self, item: usize) -> (usize, usize, usize) {
        let per_cell = self.cfg.iterations * self.cfg.pixels_per_cell();
        let cell = item / per_cell;
        let rem = item % per_cell;
        let iter = rem / self.cfg.pixels_per_cell();
        let pixel = rem % self.cfg.pixels_per_cell();
        (cell, iter, pixel)
    }

    fn neighbor_avg(&self, cell: usize, pixel: usize, parity: usize) -> f64 {
        let g = self.cfg.grid;
        let (x, y) = (pixel % g, pixel / g);
        let base = cell * self.cfg.pixels_per_cell();
        let at = |xx: usize, yy: usize| self.buf[parity].get(base + yy * g + xx);
        let l = at(x.saturating_sub(1), y);
        let r = at((x + 1).min(g - 1), y);
        let u = at(x, y.saturating_sub(1));
        let d = at(x, (y + 1).min(g - 1));
        0.25 * (l + r + u + d)
    }
}

impl RegionBody for ImgvfBody<'_> {
    fn in_dim(&self) -> usize {
        // Current value, neighbour average, image intensity.
        3
    }

    fn out_dim(&self) -> usize {
        1
    }

    fn inputs(&self, item: usize, buf: &mut [f64]) {
        let (cell, iter, pixel) = self.decode(item);
        let parity = iter % 2;
        let idx = cell * self.cfg.pixels_per_cell() + pixel;
        buf[0] = self.buf[parity].get(idx);
        buf[1] = self.neighbor_avg(cell, pixel, parity);
        buf[2] = self.image[idx];
    }

    fn compute(&self, item: usize, out: &mut [f64]) {
        let (cell, iter, pixel) = self.decode(item);
        let parity = iter % 2;
        let idx = cell * self.cfg.pixels_per_cell() + pixel;
        let m = self.buf[parity].get(idx);
        let avg = self.neighbor_avg(cell, pixel, parity);
        let i = self.image[idx];
        out[0] = (1.0 - self.cfg.omega) * m + self.cfg.omega * avg + self.cfg.kappa * (i - m);
    }

    fn store(&mut self, item: usize, out: &[f64]) {
        // Same commit path as the parallel executor's inline route.
        self.store_shared(item, out);
    }

    /// Iteration `i+1` of a cell's in-kernel Jacobi sweep reads the field
    /// iteration `i` stored — but only within the cell's own partition
    /// (one cell per block under `Schedule::BlockLocal`), so blocks may
    /// run in parallel with stores committed inline per block.
    fn store_visibility(&self) -> StoreVisibility {
        StoreVisibility::BlockPrivate
    }

    fn store_shared(&self, item: usize, out: &[f64]) {
        let (cell, iter, pixel) = self.decode(item);
        let idx = cell * self.cfg.pixels_per_cell() + pixel;
        self.buf[1 - iter % 2].set(idx, out[0]);
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        // 5-point stencil from shared memory + the update arithmetic.
        CostProfile::new()
            .flops(10.0)
            .shared_ops(6.0)
            .global_read(lanes, 8, AccessPattern::Coalesced)
            .global_write(lanes, 8, AccessPattern::Coalesced)
            .barriers(1.0 / 8.0) // one per sweep, amortized per warp step
    }
}

impl Benchmark for Leukocyte {
    fn name(&self) -> &'static str {
        "Leukocyte"
    }

    fn run_opts(
        &self,
        spec: &DeviceSpec,
        region: Option<&ApproxRegion>,
        lp: &LaunchParams,
        opts: &ExecOptions,
    ) -> Result<AppResult, RegionError> {
        let (image, _) = self.generate();
        let mut acc = RunAccumulator::new();
        acc.transfer(
            spec,
            (self.n_cells * self.pixels_per_cell() * 8) as u64,
            Direction::HostToDevice,
        );

        let mut body = ImgvfBody {
            cfg: self,
            image: &image,
            // IMGVF starts from the image itself.
            buf: [
                BlockField::from_vec(image.clone()),
                BlockField::from_vec(image.clone()),
            ],
        };

        // One block per cell, iteration-major items within the block.
        let n_items = self.n_cells * self.iterations * self.pixels_per_cell();
        let block_size = lp.block_size.min(self.pixels_per_cell() as u32);
        let launch = LaunchConfig::block_local(n_items, block_size, self.n_cells as u32);
        let rec = approx_parallel_for_opts(spec, &launch, region, &mut body, opts)?;
        acc.kernel(&rec);

        // QoI: converged-field centroids (the tracked cell locations).
        let final_parity = self.iterations % 2;
        let mut qoi = Vec::with_capacity(self.n_cells * 2);
        for cell in 0..self.n_cells {
            let base = cell * self.pixels_per_cell();
            let field = body.buf[final_parity].to_vec(base..base + self.pixels_per_cell());
            let (cx, cy) = self.centroid(&field);
            qoi.push(cx);
            qoi.push(cy);
        }
        acc.transfer(spec, (self.n_cells * 2 * 8) as u64, Direction::DeviceToHost);

        Ok(acc.finish(QoI::Values(qoi), None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn small() -> Leukocyte {
        Leukocyte {
            n_cells: 4,
            grid: 16,
            iterations: 24,
            omega: 0.6,
            kappa: 0.15,
            seed: 9,
        }
    }

    #[test]
    fn centroid_of_uniform_field_is_center() {
        let cfg = small();
        let field = vec![1.0; cfg.pixels_per_cell()];
        let (cx, cy) = cfg.centroid(&field);
        assert!((cx - 7.5).abs() < 1e-9);
        assert!((cy - 7.5).abs() < 1e-9);
    }

    #[test]
    fn tracking_finds_blob_centers() {
        let cfg = small();
        let (_, true_offsets) = cfg.generate();
        let r = cfg.run(&spec(), None, &LaunchParams::default()).unwrap();
        let QoI::Values(q) = &r.qoi else { panic!() };
        for (cell, (tx, ty)) in true_offsets.iter().enumerate() {
            let (cx, cy) = (q[2 * cell], q[2 * cell + 1]);
            // The converged IMGVF centroid must sit near the true blob.
            assert!(
                (cx - tx).abs() < 2.5 && (cy - ty).abs() < 2.5,
                "cell {cell}: found ({cx:.2},{cy:.2}), true ({tx:.2},{ty:.2})"
            );
        }
    }

    #[test]
    fn relaxation_converges() {
        // After enough sweeps, the update changes values only slightly.
        let cfg = small();
        let more = Leukocyte {
            iterations: 48,
            ..cfg
        };
        let a = cfg.run(&spec(), None, &LaunchParams::default()).unwrap();
        let b = more.run(&spec(), None, &LaunchParams::default()).unwrap();
        let err = b.qoi.error_vs(&a.qoi);
        assert!(err < 0.05, "centroid still moving after convergence: {err}");
    }

    #[test]
    fn taf_zero_threshold_is_exact() {
        let cfg = small();
        let accurate = cfg.run(&spec(), None, &LaunchParams::default()).unwrap();
        let region = ApproxRegion::memo_out(3, 8, 0.0);
        let approx = cfg
            .run(&spec(), Some(&region), &LaunchParams::default())
            .unwrap();
        assert!(approx.qoi.error_vs(&accurate.qoi) < 1e-12);
    }

    #[test]
    fn taf_speeds_up_converged_solve() {
        // Fig 9a: once the field stabilizes, TAF freezes pixels.
        let cfg = small();
        let accurate = cfg.run(&spec(), None, &LaunchParams::default()).unwrap();
        let region = ApproxRegion::memo_out(2, 32, 0.05);
        let approx = cfg
            .run(&spec(), Some(&region), &LaunchParams::default())
            .unwrap();
        assert!(approx.stats.approx_fraction() > 0.1);
        assert!(approx.kernel_seconds < accurate.kernel_seconds);
        let err = approx.qoi.error_vs(&accurate.qoi);
        assert!(err < 0.05, "tracking error {err}");
    }

    #[test]
    fn parallel_blocks_bit_identical_despite_jacobi_dependency() {
        // The in-kernel Jacobi sweeps read the block's own stores, but the
        // field is partitioned per cell (BlockPrivate), so the engine may
        // relax cells in parallel — and must still match the sequential
        // reference bit for bit.
        use hpac_core::exec::Executor;
        let cfg = small();
        let regions = [
            None,
            Some(ApproxRegion::memo_out(2, 32, 0.05)),
            Some(ApproxRegion::memo_in(4, 0.1).tables_per_warp(16)),
        ];
        for region in &regions {
            let seq_opts = ExecOptions {
                executor: Executor::Sequential,
                ..ExecOptions::default()
            };
            let par_opts = ExecOptions {
                executor: Executor::ParallelBlocks,
                threads: Some(4),
                ..ExecOptions::default()
            };
            let lp = LaunchParams::default();
            let seq = cfg
                .run_opts(&spec(), region.as_ref(), &lp, &seq_opts)
                .unwrap();
            let par = cfg
                .run_opts(&spec(), region.as_ref(), &lp, &par_opts)
                .unwrap();
            let (QoI::Values(a), QoI::Values(b)) = (&seq.qoi, &par.qoi) else {
                panic!()
            };
            for (x, y) in a.iter().zip(b) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "QoI diverged between executors for {region:?}"
                );
            }
            assert_eq!(seq.kernel_seconds, par.kernel_seconds);
            assert_eq!(seq.stats, par.stats);
        }
    }

    #[test]
    fn iact_always_slows_down() {
        // Fig 9b: the stencil body is cheaper than the table search.
        let cfg = small();
        let accurate = cfg.run(&spec(), None, &LaunchParams::default()).unwrap();
        let region = ApproxRegion::memo_in(4, 0.1).tables_per_warp(16);
        let approx = cfg
            .run(&spec(), Some(&region), &LaunchParams::default())
            .unwrap();
        assert!(
            approx.kernel_seconds > accurate.kernel_seconds,
            "iACT must slow Leukocyte down: {} vs {}",
            approx.kernel_seconds,
            accurate.kernel_seconds
        );
    }
}
