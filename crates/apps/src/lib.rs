//! # hpac-apps — the seven HPC applications evaluated by HPAC-Offload
//!
//! Each module implements one benchmark from the paper's Table 1 as a
//! self-contained application on the `gpu-sim` substrate: input generation
//! (seeded, deterministic), the kernels the paper approximates expressed as
//! [`hpac_core::RegionBody`]/[`hpac_core::exec::BlockTaskBody`] regions,
//! the surrounding accurate computation, and the paper's quality-of-interest
//! (QoI) extraction.
//!
//! | Module | Paper benchmark | QoI | Error metric |
//! |---|---|---|---|
//! | [`lulesh`] | LULESH | final origin energy | MAPE |
//! | [`leukocyte`] | Leukocyte | final cell locations | MAPE |
//! | [`binomial`] | Binomial Options | option prices | MAPE |
//! | [`minife`] | MiniFE | final CG residual | MAPE |
//! | [`blackscholes`] | Blackscholes | option prices | MAPE |
//! | [`lavamd`] | LavaMD | particle forces & positions | MAPE |
//! | [`kmeans`] | K-Means | cluster assignments | MCR |

pub mod binomial;
pub mod blackscholes;
pub mod common;
pub mod kmeans;
pub mod lavamd;
pub mod leukocyte;
pub mod lulesh;
pub mod minife;

pub use common::{AppResult, Benchmark, LaunchParams, QoI};

/// All seven benchmarks with their default (laptop-scale) configurations,
/// in Table 1 order.
pub fn all_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(lulesh::Lulesh::default()),
        Box::new(leukocyte::Leukocyte::default()),
        Box::new(binomial::BinomialOptions::default()),
        Box::new(minife::MiniFe::default()),
        Box::new(blackscholes::Blackscholes::default()),
        Box::new(lavamd::LavaMd::default()),
        Box::new(kmeans::KMeans::default()),
    ]
}
