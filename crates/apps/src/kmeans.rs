//! K-Means — iterative Lloyd clustering (Rodinia).
//!
//! The paper approximates "the kernel computing the euclidean distance of
//! observations with the current clusters" and observes that although that
//! kernel is only a few percent of runtime, approximation *herds*
//! observations into staying in their clusters, accelerating the
//! convergence criterion (no observation changes cluster) — speedup comes
//! primarily from early convergence, with time speedup ≈ convergence
//! speedup (Fig 12c, R² = 0.95). That mechanism is emergent here: the
//! approximate path returns memoized distance vectors, assignments stop
//! changing, and the host loop exits earlier.
//!
//! QoI: the cluster id of each observation; error metric: MCR.

use crate::common::{
    current_eval_memo, eval_key, grid_stride_launch_class, AppResult, Benchmark, ComputeMemo,
    LaunchParams, QoI, RunAccumulator,
};
use gpu_sim::transfer::Direction;
use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, LaunchConfig};
use hpac_core::exec::{approx_parallel_for_opts, ExecOptions, RegionBody};
use hpac_core::region::{ApproxRegion, RegionError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the K-Means benchmark.
#[derive(Debug, Clone, Copy)]
pub struct KMeans {
    pub n_points: usize,
    pub dims: usize,
    pub k: usize,
    pub max_iters: usize,
    /// Standard deviation of each synthetic blob (unit-box centers); larger
    /// values overlap the blobs and lengthen convergence.
    pub spread: f64,
    /// Convergence tolerance: the solver stops once fewer than this
    /// fraction of observations change cluster (Rodinia's delta threshold).
    pub convergence_frac: f64,
    pub seed: u64,
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans {
            n_points: 4096,
            dims: 4,
            k: 8,
            max_iters: 100,
            spread: 0.45,
            convergence_frac: 5e-3,
            seed: 0x5EED,
        }
    }
}

impl KMeans {
    /// Generate blob-structured observations (row-major `n_points × dims`),
    /// ordered by blob so neighbouring indices are similar — the locality
    /// HPAC-Offload's relaxed TAF exploits. Returns `(points, initial
    /// centroids)`; the initial centroids are deliberately *perturbed* away
    /// from the true centers (as with random seeding in Rodinia) so the
    /// accurate solver needs a realistic number of Lloyd iterations.
    pub fn generate(&self) -> (Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let centers: Vec<f64> = (0..self.k * self.dims)
            .map(|_| rng.gen_range(0.0..1.0))
            .collect();
        let per_blob = self.n_points.div_ceil(self.k);
        let mut points = Vec::with_capacity(self.n_points * self.dims);
        for i in 0..self.n_points {
            let blob = (i / per_blob).min(self.k - 1);
            for d in 0..self.dims {
                let c = centers[blob * self.dims + d];
                // Triangular noise approximating a Gaussian, cheap and seeded.
                let noise: f64 = rng.gen_range(-1.0..1.0) + rng.gen_range(-1.0..1.0);
                points.push(c + self.spread * noise);
            }
        }
        let init: Vec<f64> = centers
            .iter()
            .map(|c| c + rng.gen_range(-0.35..0.35))
            .collect();
        (points, init)
    }
}

/// The approximated region: one (cluster, observation) euclidean distance —
/// "the kernel computing the euclidean distance of observations with the
/// current clusters" (§4.1). Items are cluster-major (`item = c·n + p`), so
/// a thread's grid-stride stream walks spatially sorted observations within
/// one cluster: memoized distances come from nearby observations and barely
/// perturb the argmin, which is what lets approximation *herd* boundary
/// observations into staying put instead of scrambling assignments.
/// Sweep-scoped interning for the distance kernel, re-measured for PR 10
/// (see README "Performance"): approximation feeds back through the
/// centroids, so the memo must be keyed per *centroid state* and only
/// iterations that reach identical centroids across configs can share.
/// The ~12-flop distance body is about as cheap as the memo's own hit
/// path, and the measured sweep is slower with interning on — kept off,
/// matching PR 6's per-run conclusion for Blackscholes.
const INTERN_DISTANCE_KERNEL: bool = false;

struct DistanceBody<'a> {
    points: &'a [f64],
    centroids: &'a [f64],
    distances: &'a mut [f64],
    n: usize,
    dims: usize,
    k: usize,
    memo: Option<std::sync::Arc<ComputeMemo>>,
}

impl RegionBody for DistanceBody<'_> {
    fn in_dim(&self) -> usize {
        self.dims + 1
    }

    fn out_dim(&self) -> usize {
        1
    }

    fn inputs(&self, item: usize, buf: &mut [f64]) {
        let (c, p) = (item / self.n, item % self.n);
        debug_assert!(c < self.k);
        buf[..self.dims].copy_from_slice(&self.points[p * self.dims..(p + 1) * self.dims]);
        // Distinguish clusters in the input signature so shared tables
        // cannot hit across clusters.
        buf[self.dims] = 100.0 * c as f64;
    }

    fn compute(&self, item: usize, out: &mut [f64]) {
        match &self.memo {
            Some(memo) => memo.get_or(item, out, |out| self.distance(item, out)),
            None => self.distance(item, out),
        }
    }

    fn store(&mut self, item: usize, out: &[f64]) {
        self.distances[item] = out[0];
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new()
            .flops((3 * self.dims) as f64)
            .global_read(lanes, (self.dims * 8) as u32, AccessPattern::Coalesced)
            // The centroid is warp-uniform (shared memory).
            .shared_ops(self.dims as f64 / 4.0)
            .global_write(lanes, 8, AccessPattern::Coalesced)
    }
}

impl DistanceBody<'_> {
    fn distance(&self, item: usize, out: &mut [f64]) {
        let (c, p) = (item / self.n, item % self.n);
        let pt = &self.points[p * self.dims..(p + 1) * self.dims];
        let ctr = &self.centroids[c * self.dims..(c + 1) * self.dims];
        let mut d2 = 0.0;
        for d in 0..self.dims {
            let diff = pt[d] - ctr[d];
            d2 += diff * diff;
        }
        out[0] = d2;
    }
}

fn argmin_stride(distances: &[f64], p: usize, n: usize, k: usize) -> u32 {
    let mut best = 0usize;
    let mut best_v = distances[p];
    for c in 1..k {
        let v = distances[c * n + p];
        if v < best_v {
            best_v = v;
            best = c;
        }
    }
    best as u32
}

impl Benchmark for KMeans {
    fn name(&self) -> &'static str {
        "K-Means"
    }

    fn error_metric(&self) -> &'static str {
        "MCR"
    }

    fn launch_class(&self, _spec: &DeviceSpec, lp: &LaunchParams) -> Option<u64> {
        // The distance kernel is the only launch-shaped computation; the
        // per-iteration host/transfer charges are launch-independent.
        Some(grid_stride_launch_class(self.k * self.n_points, lp))
    }

    fn run_opts(
        &self,
        spec: &DeviceSpec,
        region: Option<&ApproxRegion>,
        lp: &LaunchParams,
        opts: &ExecOptions,
    ) -> Result<AppResult, RegionError> {
        let (points, init_centroids) = self.generate();
        let mut centroids = init_centroids;
        let mut distances = vec![0.0; self.k * self.n_points];
        let mut assignment = vec![u32::MAX; self.n_points];

        let n_items = self.k * self.n_points;
        let launch =
            LaunchConfig::for_items_per_thread(n_items, lp.block_size, lp.items_per_thread);
        let mut acc = RunAccumulator::new();
        acc.transfer(
            spec,
            (self.n_points * self.dims * 8) as u64,
            Direction::HostToDevice,
        );

        let mut iterations = 0usize;
        for _ in 0..self.max_iters {
            iterations += 1;
            // Distance kernel: the approximated region.
            let memo = if INTERN_DISTANCE_KERNEL {
                current_eval_memo().map(|store| {
                    // All points are distinct (random blobs), so identity
                    // classing; the centroid state keys which iterations
                    // may share.
                    let mut bits: Vec<u64> = vec![
                        self.n_points as u64,
                        self.dims as u64,
                        self.k as u64,
                        self.spread.to_bits(),
                        self.seed,
                    ];
                    bits.extend(centroids.iter().map(|c| c.to_bits()));
                    let key = eval_key("K-Means", &bits);
                    store.get_or_build(&key, || ComputeMemo::identity(n_items, 1))
                })
            } else {
                None
            };
            let mut body = DistanceBody {
                points: &points,
                centroids: &centroids,
                distances: &mut distances,
                n: self.n_points,
                dims: self.dims,
                k: self.k,
                memo,
            };
            let rec = approx_parallel_for_opts(spec, &launch, region, &mut body, opts)?;
            acc.kernel(&rec);

            // Membership + convergence test (device-side in Rodinia).
            let mut changes = 0usize;
            for (i, slot) in assignment.iter_mut().enumerate() {
                let a = argmin_stride(&distances, i, self.n_points, self.k);
                if a != *slot {
                    changes += 1;
                    *slot = a;
                }
            }

            // Rodinia copies the membership back to the host and updates
            // the centroids on the CPU every iteration — a fixed
            // per-iteration cost that dwarfs the distance kernel (the paper
            // notes the kernel is only ~3.5% of runtime) and makes time
            // speedup track convergence speedup.
            acc.transfer(spec, (self.n_points * 4) as u64, Direction::DeviceToHost);
            acc.host(self.n_points as f64 * self.dims as f64 * 8.0 / 2.0e9 + 20e-6);
            acc.transfer(
                spec,
                (self.k * self.dims * 8) as u64,
                Direction::HostToDevice,
            );

            let mut sums = vec![0.0; self.k * self.dims];
            let mut counts = vec![0usize; self.k];
            for i in 0..self.n_points {
                let c = assignment[i] as usize;
                counts[c] += 1;
                for d in 0..self.dims {
                    sums[c * self.dims + d] += points[i * self.dims + d];
                }
            }
            for c in 0..self.k {
                if counts[c] > 0 {
                    for d in 0..self.dims {
                        centroids[c * self.dims + d] = sums[c * self.dims + d] / counts[c] as f64;
                    }
                }
            }

            if (changes as f64) <= self.convergence_frac * self.n_points as f64 {
                break;
            }
        }

        acc.transfer(spec, (self.n_points * 4) as u64, Direction::DeviceToHost);
        Ok(acc.finish(QoI::Labels(assignment), Some(iterations)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn small() -> KMeans {
        KMeans {
            n_points: 2048,
            dims: 4,
            k: 4,
            max_iters: 60,
            spread: 0.25,
            convergence_frac: 5e-3,
            seed: 11,
        }
    }

    #[test]
    fn accurate_clustering_recovers_blobs() {
        let cfg = small();
        let r = cfg.run(&spec(), None, &LaunchParams::new(8, 128)).unwrap();
        let QoI::Labels(labels) = &r.qoi else {
            panic!()
        };
        // Points are blob-ordered; most of each blob should share a label.
        let per_blob = cfg.n_points / cfg.k;
        let mut agree = 0usize;
        for blob in 0..cfg.k {
            let slice = &labels[blob * per_blob..(blob + 1) * per_blob];
            let mut counts = vec![0usize; cfg.k];
            for &l in slice {
                counts[l as usize] += 1;
            }
            agree += counts.iter().max().unwrap();
        }
        // The blobs deliberately overlap (hard problem, slow convergence),
        // so purity is well below 1 but far above the 1/k = 0.25 chance
        // level.
        assert!(
            agree as f64 / cfg.n_points as f64 > 0.6,
            "blob purity {}",
            agree as f64 / cfg.n_points as f64
        );
        assert!(r.iterations.unwrap() >= 2);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = small();
        let a = cfg.run(&spec(), None, &LaunchParams::new(8, 128)).unwrap();
        let b = cfg.run(&spec(), None, &LaunchParams::new(8, 128)).unwrap();
        assert_eq!(a.qoi, b.qoi);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn taf_zero_threshold_matches_accurate() {
        let cfg = small();
        let lp = LaunchParams::new(16, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_out(2, 8, 0.0);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        assert_eq!(approx.qoi.error_vs(&accurate.qoi), 0.0);
        assert_eq!(approx.iterations, accurate.iterations);
    }

    #[test]
    fn taf_converges_no_later_than_accurate() {
        let cfg = small();
        let lp = LaunchParams::new(64, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_out(2, 64, 1.5);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        // Herding keeps assignments stable: convergence cannot get slower.
        assert!(approx.iterations.unwrap() <= accurate.iterations.unwrap() + 1);
        assert!(approx.stats.approx_lanes > 0);
    }

    #[test]
    fn iact_hits_give_bounded_mcr() {
        let cfg = small();
        let lp = LaunchParams::new(16, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_in(4, 0.3).tables_per_warp(16);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        let err = approx.qoi.error_vs(&accurate.qoi);
        assert!(err < 0.6, "MCR = {err}");
    }
}
