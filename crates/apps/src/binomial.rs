//! Binomial Options — iterative lattice pricing of American options
//! (Podlozhnyuk's CUDA sample, adapted to American puts so early exercise
//! makes the lattice necessary).
//!
//! "In Binomial Options, an entire block collaboratively computes the price
//! of a single option, and therefore we only use block-level
//! decision-making" (§4.1). Each accurate task walks an `n`-step binomial
//! tree backwards — O(n²) work — so a successful memoization skips a lot of
//! computation: this is the paper's best case (up to 6.9× TAF speedup).
//!
//! The "Items per Thread" design-space knob maps to *options per block*
//! here (fewer blocks ⇒ each block prices more options in sequence ⇒ more
//! approximation potential but less latency-hiding parallelism — Fig 8c).

use crate::common::{
    current_eval_memo, eval_key, AppResult, Benchmark, ComputeMemo, LaunchParams, QoI,
    RunAccumulator,
};
use gpu_sim::transfer::Direction;
use gpu_sim::{AccessPattern, CostProfile, DeviceSpec};
use hpac_core::exec::{approx_block_tasks_opts, BlockTaskBody, ExecOptions};
use hpac_core::region::{ApproxRegion, RegionError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Per-option parameters: spot, strike, rate, volatility, expiry.
pub const OPTION_DIMS: usize = 5;

/// Configuration for the Binomial Options benchmark.
#[derive(Debug, Clone, Copy)]
pub struct BinomialOptions {
    pub n_options: usize,
    /// Binomial lattice depth (time steps to expiry).
    pub tree_steps: usize,
    /// Distinct base options (dataset redundancy, as in Blackscholes).
    pub distinct: usize,
    /// Consecutive copies of each base option.
    pub run_len: usize,
    pub block_size: u32,
    pub seed: u64,
}

impl Default for BinomialOptions {
    fn default() -> Self {
        BinomialOptions {
            n_options: 4096,
            tree_steps: 192,
            distinct: 24,
            run_len: 32,
            block_size: 128,
            seed: 0xB0,
        }
    }
}

impl BinomialOptions {
    pub fn generate(&self) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let base: Vec<[f64; OPTION_DIMS]> = (0..self.distinct)
            .map(|_| {
                // Near-the-money puts: prices bounded away from zero so the
                // relative-error metric stays conditioned.
                [
                    rng.gen_range(40.0..60.0),
                    rng.gen_range(45.0..70.0),
                    rng.gen_range(0.01..0.05),
                    rng.gen_range(0.20..0.50),
                    rng.gen_range(0.50..1.50),
                ]
            })
            .collect();
        let period = self.distinct * self.run_len;
        let mut data = Vec::with_capacity(self.n_options * OPTION_DIMS);
        for i in 0..self.n_options {
            let b = (i % period) / self.run_len;
            data.extend_from_slice(&base[b]);
        }
        data
    }
}

/// Price an American put on an `n`-step Cox–Ross–Rubinstein lattice.
pub fn price_american_put(spot: f64, strike: f64, rate: f64, vol: f64, t: f64, n: usize) -> f64 {
    let dt = t / n as f64;
    let u = (vol * dt.sqrt()).exp();
    let d = 1.0 / u;
    let disc = (-rate * dt).exp();
    let p = ((rate * dt).exp() - d) / (u - d);
    let q = 1.0 - p;

    // Powers of u and d recur at every lattice node; hoist them into
    // tables. Each entry is produced by the same `powi` call the node made
    // before, so every looked-up price is bit-identical — this just removes
    // the O(n²) redundant exponentiations from the walk.
    let upow: Vec<f64> = (0..=n).map(|j| u.powi(j as i32)).collect();
    let dpow: Vec<f64> = (0..=n).map(|j| d.powi(j as i32)).collect();

    // Terminal payoffs.
    let mut v: Vec<f64> = (0..=n)
        .map(|j| {
            let s = spot * upow[j] * dpow[n - j];
            (strike - s).max(0.0)
        })
        .collect();
    // Backward induction with early exercise.
    for i in (0..n).rev() {
        for j in 0..=i {
            let s = spot * upow[j] * dpow[i - j];
            let cont = disc * (p * v[j + 1] + q * v[j]);
            v[j] = cont.max(strike - s);
        }
    }
    v[0]
}

struct BinomialBody<'a> {
    options: &'a [f64],
    prices: Vec<f64>,
    tree_steps: usize,
    warps_per_block: u32,
    /// Interns the pure lattice walk per distinct option row: the
    /// portfolio tiles `distinct` base options, so at most that many O(n²)
    /// walks run per launch while the simulator still charges every
    /// accurate task (see [`ComputeMemo`]). Under a sweep-scoped
    /// [`EvalMemo`](crate::common::EvalMemo) the memo is shared across all
    /// configs of the sweep, so each distinct walk runs once per sweep.
    memo: Arc<ComputeMemo>,
}

impl BlockTaskBody for BinomialBody<'_> {
    fn in_dim(&self) -> usize {
        OPTION_DIMS
    }

    fn out_dim(&self) -> usize {
        1
    }

    fn inputs(&self, task: usize, buf: &mut [f64]) {
        buf.copy_from_slice(&self.options[task * OPTION_DIMS..(task + 1) * OPTION_DIMS]);
    }

    fn compute(&self, task: usize, out: &mut [f64]) {
        self.memo.get_or(task, out, |out| {
            let o = &self.options[task * OPTION_DIMS..(task + 1) * OPTION_DIMS];
            out[0] = price_american_put(o[0], o[1], o[2], o[3], o[4], self.tree_steps);
        });
    }

    fn store(&mut self, task: usize, out: &[f64]) {
        self.prices[task] = out[0];
    }

    fn task_cost_per_warp(&self, _spec: &DeviceSpec) -> CostProfile {
        // The lattice has n(n+1)/2 node updates of ~6 FP ops each, shared
        // across the block's warps; each level ends with a block barrier.
        let n = self.tree_steps as f64;
        let updates = n * (n + 1.0) / 2.0;
        CostProfile::new()
            .flops(6.0 * updates / self.warps_per_block as f64)
            .barriers(n / self.warps_per_block as f64)
            .global_read(1, (OPTION_DIMS * 8) as u32, AccessPattern::Broadcast)
            .global_write(1, 8, AccessPattern::Broadcast)
            .shared_ops(2.0 * updates / self.warps_per_block as f64)
    }
}

impl Benchmark for BinomialOptions {
    fn name(&self) -> &'static str {
        "Binomial Options"
    }

    fn block_level_only(&self) -> bool {
        true
    }

    fn launch_class(&self, spec: &DeviceSpec, lp: &LaunchParams) -> Option<u64> {
        // Mirror of `run_opts`' launch derivation: options-per-block values
        // that clamp to the same block grid execute identically.
        let opt_per_block = lp.items_per_thread.max(1);
        let n_blocks = self.n_options.div_ceil(opt_per_block).max(1) as u32;
        let launch_blocks = n_blocks.min(self.n_options as u32);
        let block_size = lp.block_size.min(spec.max_threads_per_block);
        Some(((launch_blocks as u64) << 32) | block_size as u64)
    }

    fn run_opts(
        &self,
        spec: &DeviceSpec,
        region: Option<&ApproxRegion>,
        lp: &LaunchParams,
        opts: &ExecOptions,
    ) -> Result<AppResult, RegionError> {
        let options = self.generate();
        // "Items per thread" = options per block.
        let opt_per_block = lp.items_per_thread.max(1);
        let n_blocks = self.n_options.div_ceil(opt_per_block).max(1) as u32;
        let launch_blocks = n_blocks.min(self.n_options as u32);
        let block_size = lp.block_size.min(spec.max_threads_per_block);
        let warps_per_block = block_size.div_ceil(spec.warp_size);

        // The lattice walk is keyed by everything that shapes it: the
        // portfolio parameters and the tree depth.
        let build = || ComputeMemo::from_rows(&options, OPTION_DIMS, 1);
        let memo = match current_eval_memo() {
            Some(store) => {
                let key = eval_key(
                    "Binomial Options",
                    &[
                        self.n_options as u64,
                        self.tree_steps as u64,
                        self.distinct as u64,
                        self.run_len as u64,
                        self.seed,
                    ],
                );
                store.get_or_build(&key, build)
            }
            None => Arc::new(build()),
        };
        let mut body = BinomialBody {
            memo,
            options: &options,
            prices: vec![0.0; self.n_options],
            tree_steps: self.tree_steps,
            warps_per_block,
        };

        let mut acc = RunAccumulator::new();
        let in_bytes = (self.n_options * OPTION_DIMS * 8) as u64;
        let out_bytes = (self.n_options * 8) as u64;
        // Host-side portfolio generation and result validation (the CUDA
        // sample builds the portfolio and cross-checks prices on the CPU);
        // this un-accelerated share is what bounds the paper's best case
        // near 7x despite ~100% of price calculations approximating.
        acc.host(self.n_options as f64 * 200e-9);
        acc.transfer(spec, in_bytes, Direction::HostToDevice);
        acc.transfer(spec, out_bytes, Direction::DeviceToHost);

        let rec = approx_block_tasks_opts(
            spec,
            self.n_options,
            block_size,
            launch_blocks,
            region,
            &mut body,
            opts,
        )?;
        acc.kernel(&rec);

        Ok(acc.finish(QoI::Values(body.prices), None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpac_core::HierarchyLevel;

    fn spec() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn small() -> BinomialOptions {
        BinomialOptions {
            n_options: 512,
            tree_steps: 160,
            distinct: 8,
            run_len: 16,
            block_size: 128,
            seed: 3,
        }
    }

    #[test]
    fn lattice_put_converges_to_positive_price() {
        // ATM American put must be worth more than zero and more than
        // intrinsic value (time value).
        let p = price_american_put(50.0, 50.0, 0.03, 0.3, 1.0, 128);
        assert!(p > 0.0);
        assert!(p < 50.0);
    }

    #[test]
    fn american_put_at_least_european() {
        // Early exercise can only add value; compare against a very deep
        // ITM case where exercise is immediate.
        let p = price_american_put(10.0, 80.0, 0.05, 0.2, 1.0, 128);
        assert!(p >= 70.0 - 1e-9, "deep ITM put must be exercised, p = {p}");
    }

    #[test]
    fn lattice_refines_with_steps() {
        let coarse = price_american_put(50.0, 55.0, 0.03, 0.3, 1.0, 32);
        let fine = price_american_put(50.0, 55.0, 0.03, 0.3, 1.0, 256);
        let finer = price_american_put(50.0, 55.0, 0.03, 0.3, 1.0, 512);
        assert!((fine - finer).abs() < (coarse - finer).abs() + 1e-6);
    }

    #[test]
    fn accurate_run_prices_all() {
        let cfg = small();
        let r = cfg.run(&spec(), None, &LaunchParams::new(4, 128)).unwrap();
        match &r.qoi {
            QoI::Values(p) => {
                assert_eq!(p.len(), cfg.n_options);
                assert!(p.iter().all(|&x| x.is_finite() && x >= 0.0));
                assert!(p.iter().any(|&x| x > 0.0));
            }
            _ => panic!(),
        }
    }

    #[test]
    fn taf_block_level_speedup_with_low_error() {
        let cfg = small();
        // 4 options per block -> 128 blocks = the dataset period, so every
        // block's task stream is one constant option.
        let lp = LaunchParams::new(4, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_out(2, 16, 0.3).level(HierarchyLevel::Block);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        let err = approx.qoi.error_vs(&accurate.qoi);
        let speedup = accurate.end_to_end_seconds() / approx.end_to_end_seconds();
        assert!(speedup > 1.5, "speedup = {speedup}");
        assert!(err < 0.10, "error = {err}");
        assert!(approx.stats.approx_fraction() > 0.3);
    }

    #[test]
    fn thread_level_memo_rejected() {
        let cfg = small();
        let region = ApproxRegion::memo_out(1, 16, 0.3); // thread level
        let err = cfg
            .run(&spec(), Some(&region), &LaunchParams::new(4, 128))
            .unwrap_err();
        assert!(matches!(err, RegionError::Invalid(_)));
    }

    #[test]
    fn iact_block_level_works() {
        let cfg = small();
        let lp = LaunchParams::new(16, 128);
        let accurate = cfg.run(&spec(), None, &lp).unwrap();
        let region = ApproxRegion::memo_in(8, 0.5).level(HierarchyLevel::Block);
        let approx = cfg.run(&spec(), Some(&region), &lp).unwrap();
        let err = approx.qoi.error_vs(&accurate.qoi);
        assert!(err < 0.10, "error = {err}");
        assert!(approx.stats.approx_lanes > 0);
    }

    #[test]
    fn more_options_per_block_means_fewer_blocks() {
        let cfg = small();
        let few = cfg.run(&spec(), None, &LaunchParams::new(1, 128)).unwrap();
        let many = cfg.run(&spec(), None, &LaunchParams::new(64, 128)).unwrap();
        // Same total work; the low-parallelism launch must not be faster.
        assert!(many.kernel_seconds >= few.kernel_seconds);
    }
}
