//! Behavioural tests of the execution pipeline (migrated from the former
//! `runtime.rs` module tests, plus executor-equivalence coverage).

use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, LaunchConfig, Schedule};
use hpac_core::exec::{
    approx_block_tasks, approx_block_tasks_opts, approx_parallel_for, approx_parallel_for_opts,
    engine, BlockTaskBody, ExecOptions, Executor, RegionBody,
};
use hpac_core::params::PerfoKind;
use hpac_core::region::{ApproxRegion, RegionError};
use hpac_core::HierarchyLevel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A simple square-root region over an input array.
struct SqrtBody {
    input: Vec<f64>,
    output: Vec<f64>,
    calls: AtomicUsize,
}

impl SqrtBody {
    fn new(n: usize) -> Self {
        SqrtBody {
            input: (0..n).map(|i| (i % 16) as f64).collect(),
            output: vec![-1.0; n],
            calls: AtomicUsize::new(0),
        }
    }

    fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }
}

impl RegionBody for SqrtBody {
    fn in_dim(&self) -> usize {
        1
    }
    fn out_dim(&self) -> usize {
        1
    }
    fn inputs(&self, i: usize, buf: &mut [f64]) {
        buf[0] = self.input[i];
    }
    fn compute(&self, i: usize, out: &mut [f64]) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        out[0] = (self.input[i] + 1.0).sqrt();
    }
    fn store(&mut self, i: usize, out: &[f64]) {
        self.output[i] = out[0];
    }
    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new()
            .flops(4.0)
            .sfu(1.0)
            .global_read(lanes, 8, AccessPattern::Coalesced)
            .global_write(lanes, 8, AccessPattern::Coalesced)
    }
}

fn spec() -> DeviceSpec {
    DeviceSpec::v100()
}

const N: usize = 4096;

fn launch(ipt: usize) -> LaunchConfig {
    LaunchConfig::for_items_per_thread(N, 128, ipt)
}

fn sequential() -> ExecOptions {
    ExecOptions {
        executor: Executor::Sequential,
        ..ExecOptions::default()
    }
}

fn parallel(threads: usize) -> ExecOptions {
    ExecOptions {
        executor: Executor::ParallelBlocks,
        threads: Some(threads),
        ..ExecOptions::default()
    }
}

#[test]
fn accurate_baseline_computes_everything() {
    let mut body = SqrtBody::new(N);
    let rec = approx_parallel_for(&spec(), &launch(1), None, &mut body).unwrap();
    assert_eq!(body.calls(), N);
    assert!(body.output.iter().all(|&o| o >= 1.0));
    assert_eq!(rec.stats.accurate_lanes, N as u64);
    assert_eq!(rec.stats.approx_fraction(), 0.0);
}

#[test]
fn taf_zero_threshold_on_varying_data_stays_accurate() {
    // Thread-consecutive items differ (period 17 is coprime to the
    // grid stride), so windows are never constant and threshold 0
    // never approximates.
    let mut body = SqrtBody::new(N);
    for (i, v) in body.input.iter_mut().enumerate() {
        *v = (i % 17) as f64;
    }
    let region = ApproxRegion::memo_out(2, 8, 0.0);
    let rec = approx_parallel_for(&spec(), &launch(8), Some(&region), &mut body).unwrap();
    assert_eq!(body.calls(), N);
    assert_eq!(rec.stats.approx_lanes, 0);
}

#[test]
fn taf_constant_data_approximates_heavily() {
    let mut body = SqrtBody::new(N);
    body.input.iter_mut().for_each(|v| *v = 7.0);
    let region = ApproxRegion::memo_out(2, 64, 0.1);
    let rec = approx_parallel_for(&spec(), &launch(64), Some(&region), &mut body).unwrap();
    assert!(
        rec.stats.approx_fraction() > 0.5,
        "fraction = {}",
        rec.stats.approx_fraction()
    );
    // Approximate outputs equal the memoized accurate value -> no error.
    let expect = (7.0f64 + 1.0).sqrt();
    assert!(body.output.iter().all(|&o| (o - expect).abs() < 1e-12));
}

#[test]
fn taf_faster_than_accurate_on_stable_data() {
    let mut acc = SqrtBody::new(N);
    acc.input.iter_mut().for_each(|v| *v = 3.0);
    let base = approx_parallel_for(&spec(), &launch(64), None, &mut acc).unwrap();

    let mut apx = SqrtBody::new(N);
    apx.input.iter_mut().for_each(|v| *v = 3.0);
    let region = ApproxRegion::memo_out(1, 64, 0.1);
    let fast = approx_parallel_for(&spec(), &launch(64), Some(&region), &mut apx).unwrap();
    assert!(
        fast.timing.cycles < base.timing.cycles,
        "approx {} >= accurate {}",
        fast.timing.cycles,
        base.timing.cycles
    );
}

#[test]
fn iact_exact_repeats_hit() {
    // Only 16 distinct inputs: small tables quickly cover them.
    let mut body = SqrtBody::new(N);
    let region = ApproxRegion::memo_in(8, 1e-9).tables_per_warp(1);
    let rec = approx_parallel_for(&spec(), &launch(32), Some(&region), &mut body).unwrap();
    assert!(rec.stats.approx_lanes > 0);
    // Exact-match hits mean zero output error.
    for (i, &o) in body.output.iter().enumerate() {
        let expect = (body.input[i] + 1.0).sqrt();
        assert!((o - expect).abs() < 1e-12, "item {i}");
    }
}

#[test]
fn iact_zero_threshold_still_exact() {
    let mut body = SqrtBody::new(N);
    let region = ApproxRegion::memo_in(4, 0.0);
    let rec = approx_parallel_for(&spec(), &launch(16), Some(&region), &mut body).unwrap();
    // threshold 0 hits only identical inputs -> outputs identical.
    for (i, &o) in body.output.iter().enumerate() {
        let expect = (body.input[i] + 1.0).sqrt();
        assert!((o - expect).abs() < 1e-12);
    }
    let _ = rec;
}

#[test]
fn iact_requires_inputs() {
    struct NoIn(Vec<f64>);
    impl RegionBody for NoIn {
        fn out_dim(&self) -> usize {
            1
        }
        fn compute(&self, _i: usize, out: &mut [f64]) {
            out[0] = 1.0;
        }
        fn store(&mut self, i: usize, out: &[f64]) {
            self.0[i] = out[0];
        }
        fn accurate_cost(&self, _l: u32, _s: &DeviceSpec) -> CostProfile {
            CostProfile::new().flops(1.0)
        }
    }
    let mut body = NoIn(vec![0.0; 64]);
    let region = ApproxRegion::memo_in(4, 0.5);
    let lc = LaunchConfig::one_item_per_thread(64, 64);
    let err = approx_parallel_for(&spec(), &lc, Some(&region), &mut body).unwrap_err();
    assert!(matches!(err, RegionError::Invalid(_)));
}

#[test]
fn iact_incompatibility_rejected() {
    struct Varying(Vec<f64>);
    impl RegionBody for Varying {
        fn in_dim(&self) -> usize {
            3
        }
        fn out_dim(&self) -> usize {
            1
        }
        fn inputs(&self, _i: usize, buf: &mut [f64]) {
            buf.fill(0.0);
        }
        fn compute(&self, _i: usize, out: &mut [f64]) {
            out[0] = 1.0;
        }
        fn store(&mut self, i: usize, out: &[f64]) {
            self.0[i] = out[0];
        }
        fn accurate_cost(&self, _l: u32, _s: &DeviceSpec) -> CostProfile {
            CostProfile::new().flops(1.0)
        }
        fn iact_incompatibility(&self) -> Option<String> {
            Some("input sizes vary across threads (CSR rows)".into())
        }
    }
    let mut body = Varying(vec![0.0; 64]);
    let region = ApproxRegion::memo_in(4, 0.5);
    let lc = LaunchConfig::one_item_per_thread(64, 64);
    let err = approx_parallel_for(&spec(), &lc, Some(&region), &mut body).unwrap_err();
    match err {
        RegionError::Invalid(msg) => assert!(msg.contains("CSR")),
        other => panic!("unexpected error {other:?}"),
    }
}

#[test]
fn perfo_large_skips_most_items() {
    let mut body = SqrtBody::new(N);
    let region = ApproxRegion::perfo(PerfoKind::Large { m: 4 }).herded(false);
    let rec = approx_parallel_for(&spec(), &launch(1), Some(&region), &mut body).unwrap();
    assert_eq!(body.calls(), N / 4);
    assert_eq!(rec.stats.skipped_lanes, (N - N / 4) as u64);
    // Skipped items keep their initial (stale) output.
    assert!(body.output.iter().filter(|&&o| o == -1.0).count() == N - N / 4);
}

#[test]
fn herded_perfo_cheaper_than_naive() {
    let region_naive = ApproxRegion::perfo(PerfoKind::Small { m: 4 }).herded(false);
    let region_herd = ApproxRegion::perfo(PerfoKind::Small { m: 4 });
    let lc = launch(64);
    let mut b1 = SqrtBody::new(N);
    let naive = approx_parallel_for(&spec(), &lc, Some(&region_naive), &mut b1).unwrap();
    let mut b2 = SqrtBody::new(N);
    let herd = approx_parallel_for(&spec(), &lc, Some(&region_herd), &mut b2).unwrap();
    // Herded perforation issues strictly less work (whole warps skip);
    // wall-clock can coincide when the launch is latency-bound.
    assert!(
        herd.stats.total_issue_cycles < naive.stats.total_issue_cycles,
        "herded {} >= naive {}",
        herd.stats.total_issue_cycles,
        naive.stats.total_issue_cycles
    );
    assert!(herd.timing.cycles <= naive.timing.cycles);
    // Naive diverges, herded does not.
    assert!(naive.stats.divergent_steps > 0);
    assert_eq!(herd.stats.divergent_steps, 0);
}

#[test]
fn ini_perfo_shrinks_bounds() {
    let mut body = SqrtBody::new(N);
    let region = ApproxRegion::perfo(PerfoKind::Ini { fraction: 0.5 });
    approx_parallel_for(&spec(), &launch(1), Some(&region), &mut body).unwrap();
    assert_eq!(body.calls(), N / 2);
    assert!(body.output[..N / 2].iter().all(|&o| o == -1.0));
    assert!(body.output[N / 2..].iter().all(|&o| o >= 1.0));
}

#[test]
fn fini_perfo_drops_tail() {
    let mut body = SqrtBody::new(N);
    let region = ApproxRegion::perfo(PerfoKind::Fini { fraction: 0.25 });
    approx_parallel_for(&spec(), &launch(1), Some(&region), &mut body).unwrap();
    assert_eq!(body.calls(), 3 * N / 4);
    assert!(body.output[3 * N / 4..].iter().all(|&o| o == -1.0));
}

#[test]
fn warp_level_eliminates_divergence() {
    // Mixed data: half the warps' lanes see constant input, half varying.
    let mk = |level: HierarchyLevel| {
        let mut body = SqrtBody::new(N);
        // Even lanes see a constant stream (stable), odd lanes a
        // strictly increasing one (never stable): thread level diverges.
        for (i, v) in body.input.iter_mut().enumerate() {
            *v = if i % 2 == 0 { 5.0 } else { i as f64 };
        }
        let region = ApproxRegion::memo_out(2, 32, 0.05).level(level);
        approx_parallel_for(&spec(), &launch(64), Some(&region), &mut body).unwrap()
    };
    let thread = mk(HierarchyLevel::Thread);
    let warp = mk(HierarchyLevel::Warp);
    assert!(thread.stats.divergent_steps > 0);
    assert_eq!(warp.stats.divergent_steps, 0);
}

#[test]
fn serialized_taf_much_slower() {
    let mut b1 = SqrtBody::new(N);
    b1.input.iter_mut().for_each(|v| *v = 2.0);
    let region = ApproxRegion::memo_out(2, 16, 0.1);
    let relaxed = approx_parallel_for(&spec(), &launch(16), Some(&region), &mut b1).unwrap();

    let mut b2 = SqrtBody::new(N);
    b2.input.iter_mut().for_each(|v| *v = 2.0);
    let serialized = approx_parallel_for_opts(
        &spec(),
        &launch(16),
        Some(&region),
        &mut b2,
        &ExecOptions {
            serialized_taf: true,
            ..ExecOptions::default()
        },
    )
    .unwrap();
    assert!(
        serialized.timing.cycles > 2.0 * relaxed.timing.cycles,
        "serialized {} vs relaxed {}",
        serialized.timing.cycles,
        relaxed.timing.cycles
    );
}

#[test]
fn oversized_ac_state_rejected_at_launch() {
    let mut body = SqrtBody::new(N);
    // 1024 threads/block * 4096-entry window would blow shared memory.
    let region = ApproxRegion::memo_out(4096, 8, 0.5);
    let lc = LaunchConfig {
        n_items: N,
        block_size: 1024,
        n_blocks: 4,
        schedule: Schedule::GridStride,
    };
    let err = approx_parallel_for(&spec(), &lc, Some(&region), &mut body).unwrap_err();
    assert!(matches!(
        err,
        RegionError::Launch(gpu_sim::LaunchError::SharedMemExceeded { .. })
    ));
}

#[test]
fn parallel_blocks_matches_sequential_for_all_techniques() {
    let regions = [
        None,
        Some(ApproxRegion::memo_out(2, 16, 0.3)),
        Some(ApproxRegion::memo_out(2, 16, 0.3).level(HierarchyLevel::Warp)),
        Some(ApproxRegion::memo_in(4, 0.2).tables_per_warp(8)),
        Some(ApproxRegion::perfo(PerfoKind::Small { m: 4 })),
    ];
    for region in &regions {
        let mut seq = SqrtBody::new(N);
        let r_seq = approx_parallel_for_opts(
            &spec(),
            &launch(16),
            region.as_ref(),
            &mut seq,
            &sequential(),
        )
        .unwrap();
        let mut par = SqrtBody::new(N);
        let r_par = approx_parallel_for_opts(
            &spec(),
            &launch(16),
            region.as_ref(),
            &mut par,
            &parallel(3),
        )
        .unwrap();
        assert_eq!(r_seq, r_par, "kernel record diverged for {region:?}");
        assert!(
            seq.output
                .iter()
                .zip(&par.output)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "outputs diverged for {region:?}"
        );
    }
}

/// A body that records which threads executed `compute`.
struct TracingBody {
    input: Vec<f64>,
    output: Vec<f64>,
    threads_seen: Mutex<std::collections::HashSet<std::thread::ThreadId>>,
}

impl TracingBody {
    fn new(n: usize) -> Self {
        TracingBody {
            input: (0..n).map(|i| (i % 16) as f64).collect(),
            output: vec![-1.0; n],
            threads_seen: Mutex::new(std::collections::HashSet::new()),
        }
    }
}

impl RegionBody for TracingBody {
    fn out_dim(&self) -> usize {
        1
    }
    fn compute(&self, i: usize, out: &mut [f64]) {
        self.threads_seen
            .lock()
            .unwrap()
            .insert(std::thread::current().id());
        out[0] = (self.input[i] + 1.0).sqrt();
    }
    fn store(&mut self, i: usize, out: &[f64]) {
        self.output[i] = out[0];
    }
    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new()
            .flops(4.0)
            .global_read(lanes, 8, AccessPattern::Coalesced)
            .global_write(lanes, 8, AccessPattern::Coalesced)
    }
}

#[test]
fn engine_is_reused_across_launches_no_respawn() {
    // Launch once to force the pool up to the requested width, then pin
    // down the observable contract: repeated launches execute on the same
    // persistent workers — worker ids stay stable, nothing respawns.
    let opts = parallel(4);
    {
        let mut warm = TracingBody::new(N);
        approx_parallel_for_opts(&spec(), &launch(8), None, &mut warm, &opts).unwrap();
    }
    let ids_before = engine().worker_thread_ids();
    let spawned_before = engine().spawned_workers();
    assert!(
        spawned_before >= 3,
        "width-4 launch should have spawned 3 helpers, saw {spawned_before}"
    );

    let caller = std::thread::current().id();
    let mut seen = std::collections::HashSet::new();
    for _ in 0..25 {
        let mut body = TracingBody::new(N);
        approx_parallel_for_opts(&spec(), &launch(8), None, &mut body, &opts).unwrap();
        seen.extend(body.threads_seen.into_inner().unwrap());
    }

    // Every thread that ran kernel work is a pool worker (or the caller,
    // which always participates in its own batch)...
    let ids_after = engine().worker_thread_ids();
    for t in &seen {
        assert!(
            *t == caller || ids_after.contains(t),
            "kernel work ran outside the engine pool"
        );
    }
    // ...and the workers that existed before are still the same threads,
    // in the same slots: the pool only ever grows, it never respawns.
    assert_eq!(
        &ids_after[..ids_before.len()],
        &ids_before[..],
        "existing workers were replaced between launches"
    );
}

// --- block tasks -----------------------------------------------------------

struct TaskBody {
    params: Vec<f64>,
    prices: Vec<f64>,
    calls: AtomicUsize,
}

impl TaskBody {
    fn new(n: usize) -> Self {
        TaskBody {
            params: (0..n).map(|i| (i % 8) as f64).collect(),
            prices: vec![0.0; n],
            calls: AtomicUsize::new(0),
        }
    }

    fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }
}

impl BlockTaskBody for TaskBody {
    fn in_dim(&self) -> usize {
        1
    }
    fn out_dim(&self) -> usize {
        1
    }
    fn inputs(&self, task: usize, buf: &mut [f64]) {
        buf[0] = self.params[task];
    }
    fn compute(&self, task: usize, out: &mut [f64]) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        out[0] = self.params[task] * 2.0 + 1.0;
    }
    fn store(&mut self, task: usize, out: &[f64]) {
        self.prices[task] = out[0];
    }
    fn task_cost_per_warp(&self, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new().flops(1000.0)
    }
}

#[test]
fn block_tasks_accurate_baseline() {
    let mut body = TaskBody::new(256);
    let rec = approx_block_tasks(&spec(), 256, 128, 64, None, &mut body).unwrap();
    assert_eq!(body.calls(), 256);
    assert!(body.prices.iter().all(|&p| p >= 1.0));
    assert_eq!(rec.stats.accurate_lanes, 256);
}

#[test]
fn block_tasks_taf_approximates_repeats() {
    // Blocks grid-stride: block b sees tasks b, b+64, ... with params
    // (b%8), (b+64)%8 = same value -> constant output stream.
    let mut body = TaskBody::new(1024);
    let region = ApproxRegion::memo_out(2, 8, 0.01).level(HierarchyLevel::Block);
    let rec = approx_block_tasks(&spec(), 1024, 128, 64, Some(&region), &mut body).unwrap();
    assert!(rec.stats.approx_lanes > 0);
    // Every task's price still exact because repeated params repeat prices.
    for (t, &p) in body.prices.iter().enumerate() {
        assert!((p - (body.params[t] * 2.0 + 1.0)).abs() < 1e-12);
    }
}

#[test]
fn block_tasks_iact_hits_on_repeats() {
    let mut body = TaskBody::new(1024);
    let region = ApproxRegion::memo_in(8, 1e-9).level(HierarchyLevel::Block);
    let rec = approx_block_tasks(&spec(), 1024, 128, 64, Some(&region), &mut body).unwrap();
    assert!(rec.stats.approx_lanes > 0);
    assert!(body.calls() < 1024);
    for (t, &p) in body.prices.iter().enumerate() {
        assert!((p - (body.params[t] * 2.0 + 1.0)).abs() < 1e-12);
    }
}

#[test]
fn block_tasks_reject_thread_level_memo() {
    let mut body = TaskBody::new(64);
    let region = ApproxRegion::memo_out(2, 8, 0.5); // thread level
    let err = approx_block_tasks(&spec(), 64, 128, 16, Some(&region), &mut body).unwrap_err();
    assert!(matches!(err, RegionError::Invalid(_)));
}

#[test]
fn block_tasks_taf_cheaper_on_stable_stream() {
    let n = 2048;
    let mut b_acc = TaskBody::new(n);
    b_acc.params.iter_mut().for_each(|p| *p = 4.0);
    let base = approx_block_tasks(&spec(), n, 128, 64, None, &mut b_acc).unwrap();

    let mut b_apx = TaskBody::new(n);
    b_apx.params.iter_mut().for_each(|p| *p = 4.0);
    let region = ApproxRegion::memo_out(1, 16, 0.01).level(HierarchyLevel::Block);
    let fast = approx_block_tasks(&spec(), n, 128, 64, Some(&region), &mut b_apx).unwrap();
    assert!(fast.timing.cycles < base.timing.cycles);
}

#[test]
fn block_tasks_parallel_matches_sequential() {
    let regions = [
        None,
        Some(ApproxRegion::memo_out(2, 8, 0.01).level(HierarchyLevel::Block)),
        Some(ApproxRegion::memo_in(8, 1e-9).level(HierarchyLevel::Block)),
        Some(ApproxRegion::perfo(PerfoKind::Small { m: 4 })),
    ];
    for region in &regions {
        let mut seq = TaskBody::new(1024);
        let r_seq = approx_block_tasks_opts(
            &spec(),
            1024,
            128,
            64,
            region.as_ref(),
            &mut seq,
            &sequential(),
        )
        .unwrap();
        let mut par = TaskBody::new(1024);
        let r_par = approx_block_tasks_opts(
            &spec(),
            1024,
            128,
            64,
            region.as_ref(),
            &mut par,
            &parallel(3),
        )
        .unwrap();
        assert_eq!(r_seq, r_par, "kernel record diverged for {region:?}");
        assert!(
            seq.prices
                .iter()
                .zip(&par.prices)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "prices diverged for {region:?}"
        );
    }
}
