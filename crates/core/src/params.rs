//! Parameter types for the three approximation techniques.
//!
//! These mirror the clause arguments of the paper's pragmas:
//! `memo(out : hsize : psize : threshold)` for TAF,
//! `memo(in : tsize : threshold : tperwarp)` for iACT, and
//! `perfo(kind : rate)` for loop perforation.

/// TAF (Temporal Approximate Function memoization) parameters.
///
/// TAF watches a sliding window of the region's last `hsize` outputs; when
/// their relative standard deviation (RSD = σ/μ) drops below `threshold` the
/// state machine enters a *stable regime* and the next `psize` invocations
/// return the last accurately computed output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TafParams {
    /// History size: outputs in the sliding window.
    pub hsize: usize,
    /// Prediction size: invocations approximated per stable regime.
    pub psize: usize,
    /// RSD threshold below which the regime is considered stable.
    pub threshold: f64,
}

impl TafParams {
    pub fn new(hsize: usize, psize: usize, threshold: f64) -> Self {
        TafParams {
            hsize,
            psize,
            threshold,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.hsize == 0 {
            return Err("TAF history size must be >= 1".into());
        }
        if self.psize == 0 {
            return Err("TAF prediction size must be >= 1".into());
        }
        if !self.threshold.is_finite() || self.threshold < 0.0 {
            return Err(format!(
                "TAF threshold must be finite and >= 0, got {}",
                self.threshold
            ));
        }
        Ok(())
    }

    /// Upper bound on the fraction of invocations a thread can approximate:
    /// after each stable window of `hsize` accurate runs, `psize` invocations
    /// are predicted.
    pub fn max_approx_fraction(&self) -> f64 {
        self.psize as f64 / (self.psize + self.hsize) as f64
    }
}

/// Replacement policy for iACT memoization tables. The paper uses
/// round-robin and notes (footnote 3) that CLOCK made no difference; both
/// are implemented so that claim can be checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    #[default]
    RoundRobin,
    Clock,
}

/// iACT (approximate input memoization) parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IactParams {
    /// Entries per memoization table.
    pub tsize: usize,
    /// Euclidean-distance threshold for a cache hit.
    pub threshold: f64,
    /// Tables per warp. `warp_size` tables = private per-thread tables
    /// (the CPU-HPAC default); 1 = one table shared by the whole warp.
    pub tables_per_warp: u32,
    pub replacement: Replacement,
}

impl IactParams {
    pub fn new(tsize: usize, threshold: f64) -> Self {
        IactParams {
            tsize,
            threshold,
            // Default matches the paper: "The warp size is the default
            // value, yielding one independent table for each thread."
            // u32::MAX is clamped to the device's warp size at launch.
            tables_per_warp: u32::MAX,
            replacement: Replacement::RoundRobin,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.tsize == 0 {
            return Err("iACT table size must be >= 1".into());
        }
        if !self.threshold.is_finite() || self.threshold < 0.0 {
            return Err(format!(
                "iACT threshold must be finite and >= 0, got {}",
                self.threshold
            ));
        }
        if self.tables_per_warp == 0 {
            return Err("iACT tables per warp must be >= 1".into());
        }
        Ok(())
    }

    /// Tables per warp clamped to the device warp size; must divide the
    /// warp size so every table serves an equal lane group.
    pub fn effective_tables_per_warp(&self, warp_size: u32) -> Result<u32, String> {
        let t = self.tables_per_warp.min(warp_size);
        if !warp_size.is_multiple_of(t) {
            return Err(format!(
                "tables per warp ({t}) must divide the warp size ({warp_size})"
            ));
        }
        Ok(t)
    }
}

/// Loop perforation kinds (§2.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerfoKind {
    /// Skip one of every `m` iterations.
    Small { m: u32 },
    /// Execute one of every `m` iterations.
    Large { m: u32 },
    /// Skip the first `fraction` of the iteration space (bounds change).
    Ini { fraction: f64 },
    /// Skip the last `fraction` of the iteration space (bounds change).
    Fini { fraction: f64 },
}

/// Perforation parameters. `herded` selects the paper's divergence-free
/// variant where every thread in the grid drops the same grid-stride steps
/// (§3.1.5); it only affects `Small`/`Large` (ini/fini are bounds changes
/// and never diverge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfoParams {
    pub kind: PerfoKind,
    pub herded: bool,
}

impl PerfoParams {
    pub fn new(kind: PerfoKind) -> Self {
        // Herded is hpac-offload's default GPU design.
        PerfoParams { kind, herded: true }
    }

    pub fn validate(&self) -> Result<(), String> {
        match self.kind {
            PerfoKind::Small { m } | PerfoKind::Large { m } => {
                if m < 2 {
                    return Err(format!("perforation rate must be >= 2, got {m}"));
                }
            }
            PerfoKind::Ini { fraction } | PerfoKind::Fini { fraction } => {
                if !(0.0..1.0).contains(&fraction) || fraction <= 0.0 {
                    return Err(format!(
                        "ini/fini fraction must be in (0, 1), got {fraction}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Fraction of iterations dropped by this pattern.
    pub fn drop_fraction(&self) -> f64 {
        match self.kind {
            PerfoKind::Small { m } => 1.0 / m as f64,
            PerfoKind::Large { m } => 1.0 - 1.0 / m as f64,
            PerfoKind::Ini { fraction } | PerfoKind::Fini { fraction } => fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taf_validation() {
        assert!(TafParams::new(5, 8, 0.5).validate().is_ok());
        assert!(TafParams::new(0, 8, 0.5).validate().is_err());
        assert!(TafParams::new(5, 0, 0.5).validate().is_err());
        assert!(TafParams::new(5, 8, -1.0).validate().is_err());
        assert!(TafParams::new(5, 8, f64::NAN).validate().is_err());
    }

    #[test]
    fn taf_max_approx_fraction() {
        let p = TafParams::new(1, 511, 0.5);
        assert!((p.max_approx_fraction() - 511.0 / 512.0).abs() < 1e-12);
    }

    #[test]
    fn iact_validation() {
        assert!(IactParams::new(4, 0.5).validate().is_ok());
        assert!(IactParams::new(0, 0.5).validate().is_err());
        assert!(IactParams::new(4, -0.5).validate().is_err());
    }

    #[test]
    fn iact_tables_per_warp_divides_warp() {
        let mut p = IactParams::new(4, 0.5);
        p.tables_per_warp = 16;
        assert_eq!(p.effective_tables_per_warp(32).unwrap(), 16);
        assert_eq!(p.effective_tables_per_warp(64).unwrap(), 16);
        p.tables_per_warp = 3;
        assert!(p.effective_tables_per_warp(32).is_err());
    }

    #[test]
    fn iact_default_is_private_tables() {
        let p = IactParams::new(4, 0.5);
        assert_eq!(p.effective_tables_per_warp(32).unwrap(), 32);
        assert_eq!(p.effective_tables_per_warp(64).unwrap(), 64);
    }

    #[test]
    fn perfo_validation() {
        assert!(PerfoParams::new(PerfoKind::Small { m: 4 })
            .validate()
            .is_ok());
        assert!(PerfoParams::new(PerfoKind::Small { m: 1 })
            .validate()
            .is_err());
        assert!(PerfoParams::new(PerfoKind::Ini { fraction: 0.3 })
            .validate()
            .is_ok());
        assert!(PerfoParams::new(PerfoKind::Ini { fraction: 1.0 })
            .validate()
            .is_err());
        assert!(PerfoParams::new(PerfoKind::Fini { fraction: 0.0 })
            .validate()
            .is_err());
    }

    #[test]
    fn perfo_drop_fractions() {
        assert_eq!(
            PerfoParams::new(PerfoKind::Small { m: 4 }).drop_fraction(),
            0.25
        );
        assert_eq!(
            PerfoParams::new(PerfoKind::Large { m: 4 }).drop_fraction(),
            0.75
        );
        assert_eq!(
            PerfoParams::new(PerfoKind::Ini { fraction: 0.2 }).drop_fraction(),
            0.2
        );
    }
}
