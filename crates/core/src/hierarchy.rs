//! Hierarchical decision-making: thread, warp, and block approximation
//! scopes (§3.1.2, §3.3).
//!
//! At `thread` level every lane follows its own activation criterion — the
//! CPU-HPAC behaviour, which on a GPU introduces divergence whenever lanes of
//! one warp disagree. At `warp` level, lanes vote via ballot + popcount and
//! majority rules: the whole warp takes one path. At `block` level, per-warp
//! counts are combined through a shared-memory atomic and a barrier before
//! the whole block commits to one path.

use gpu_sim::{CostProfile, WarpVote};

/// The `level(...)` clause values. `Block` corresponds to the pragma value
/// `team` (an OpenMP team maps to a thread block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierarchyLevel {
    Thread,
    Warp,
    Block,
}

impl std::fmt::Display for HierarchyLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyLevel::Thread => write!(f, "thread"),
            HierarchyLevel::Warp => write!(f, "warp"),
            HierarchyLevel::Block => write!(f, "block"),
        }
    }
}

/// Outcome of a warp's decision stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpDecision {
    /// Each lane follows its own vote (thread level).
    PerLane,
    /// The whole group approximates (majority voted yes).
    GroupApprox,
    /// The whole group takes the accurate path.
    GroupAccurate,
}

/// Resolve a warp's votes at the given level. For `Block` level the caller
/// must aggregate votes across warps first and pass the block-wide majority
/// through [`group_decision`] instead.
pub fn warp_decide(level: HierarchyLevel, votes: &[bool]) -> WarpDecision {
    match level {
        HierarchyLevel::Thread => WarpDecision::PerLane,
        HierarchyLevel::Warp | HierarchyLevel::Block => {
            let v = WarpVote::collect(votes);
            if v.majority() {
                WarpDecision::GroupApprox
            } else {
                WarpDecision::GroupAccurate
            }
        }
    }
}

/// Block-level majority over aggregated per-warp tallies.
pub fn group_decision(yes: u32, active: u32) -> WarpDecision {
    if 2 * yes > active {
        WarpDecision::GroupApprox
    } else {
        WarpDecision::GroupAccurate
    }
}

/// Cycle cost of the decision stage itself, charged per warp step.
///
/// * thread: reading the per-lane criterion only (folded into activation);
/// * warp: ballot + popcount (§3.3);
/// * block: per-warp ballot/popcount, one shared-memory atomic add by the
///   warp's first lane, and a barrier before reading the block total.
pub fn decision_cost(level: HierarchyLevel) -> CostProfile {
    match level {
        HierarchyLevel::Thread => CostProfile::new(),
        HierarchyLevel::Warp => CostProfile::new().flops(2.0),
        HierarchyLevel::Block => CostProfile::new()
            .flops(2.0)
            .atomics(1.0)
            .barriers(1.0)
            .shared_ops(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_level_is_per_lane() {
        assert_eq!(
            warp_decide(HierarchyLevel::Thread, &[true, false]),
            WarpDecision::PerLane
        );
    }

    #[test]
    fn warp_majority_approximates() {
        let votes = [true, true, true, false, false];
        assert_eq!(
            warp_decide(HierarchyLevel::Warp, &votes),
            WarpDecision::GroupApprox
        );
    }

    #[test]
    fn warp_minority_stays_accurate() {
        let votes = [true, false, false];
        assert_eq!(
            warp_decide(HierarchyLevel::Warp, &votes),
            WarpDecision::GroupAccurate
        );
    }

    #[test]
    fn warp_tie_stays_accurate() {
        // Strict majority: a 2-2 tie does not approximate.
        let votes = [true, true, false, false];
        assert_eq!(
            warp_decide(HierarchyLevel::Warp, &votes),
            WarpDecision::GroupAccurate
        );
    }

    #[test]
    fn block_tally_majority() {
        assert_eq!(group_decision(65, 128), WarpDecision::GroupApprox);
        assert_eq!(group_decision(64, 128), WarpDecision::GroupAccurate);
        assert_eq!(group_decision(0, 0), WarpDecision::GroupAccurate);
    }

    #[test]
    fn decision_costs_ordered() {
        let spec = gpu_sim::DeviceSpec::v100();
        let t = decision_cost(HierarchyLevel::Thread).issue_cycles(&spec.costs);
        let w = decision_cost(HierarchyLevel::Warp).issue_cycles(&spec.costs);
        let b = decision_cost(HierarchyLevel::Block).issue_cycles(&spec.costs);
        assert!(t <= w && w < b);
    }

    #[test]
    fn display_names_match_pragma_values() {
        assert_eq!(HierarchyLevel::Thread.to_string(), "thread");
        assert_eq!(HierarchyLevel::Warp.to_string(), "warp");
        assert_eq!(HierarchyLevel::Block.to_string(), "block");
    }
}
