//! iACT — approximate input memoization with warp-shared tables (§3.1.4).
//!
//! Each table caches `(input vector, output vector)` pairs from accurate
//! region executions. A lookup computes the euclidean distance between the
//! query inputs and every cached entry; if the closest entry is within the
//! user threshold, its output is returned and the region is skipped.
//!
//! The GPU adaptation shares tables among the lanes of a warp
//! (`tables_per_warp`), which (1) cuts shared-memory use, (2) lets lanes hit
//! on values computed by their neighbours, and (3) trades synchronization
//! for aggregate table capacity. Access is split into a read phase (all
//! lanes search) and a write phase (one writer per table — the lane whose
//! inputs were *farthest* from any cached entry, i.e. the most novel), with
//! a warp barrier between phases (§3.3). Replacement is round-robin by
//! default; CLOCK is implemented because the paper's footnote 3 reports it
//! made no difference, and we verify that.

use crate::params::{IactParams, Replacement};
use gpu_sim::CostProfile;

/// Result of probing a table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// Slot of the closest valid entry, if the table is non-empty.
    pub slot: Option<usize>,
    /// Euclidean distance to that entry (`f64::INFINITY` on empty tables).
    pub distance: f64,
}

impl Probe {
    /// Does this probe satisfy the hit threshold?
    pub fn hit(&self, threshold: f64) -> bool {
        self.slot.is_some() && self.distance <= threshold
    }
}

/// All iACT tables for one kernel launch, stored flat.
#[derive(Debug, Clone)]
pub struct IactPool {
    params: IactParams,
    in_dim: usize,
    out_dim: usize,
    n_tables: usize,
    /// `n_tables * tsize * in_dim`
    inputs: Vec<f64>,
    /// `n_tables * tsize * out_dim`
    outputs: Vec<f64>,
    /// Valid entries per table. Insertion always fills the first empty slot,
    /// so the valid slots of a table form the prefix `0..fill` — the probe
    /// loop walks a contiguous slice instead of testing a validity bit per
    /// slot.
    fill: Vec<u32>,
    /// CLOCK reference bits, `n_tables * tsize`.
    referenced: Vec<bool>,
    /// Per-table round-robin pointer / clock hand.
    hand: Vec<u32>,
}

impl IactPool {
    pub fn new(n_tables: usize, in_dim: usize, out_dim: usize, params: IactParams) -> Self {
        assert!(in_dim > 0, "iACT region must declare inputs");
        assert!(out_dim > 0, "iACT region must declare outputs");
        let slots = n_tables * params.tsize;
        IactPool {
            params,
            in_dim,
            out_dim,
            n_tables,
            inputs: vec![0.0; slots * in_dim],
            outputs: vec![0.0; slots * out_dim],
            fill: vec![0; n_tables],
            referenced: vec![false; slots],
            hand: vec![0; n_tables],
        }
    }

    pub fn params(&self) -> &IactParams {
        &self.params
    }

    pub fn n_tables(&self) -> usize {
        self.n_tables
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    fn slot_index(&self, table: usize, slot: usize) -> usize {
        debug_assert!(table < self.n_tables && slot < self.params.tsize);
        table * self.params.tsize + slot
    }

    /// Search `table` for the entry closest to `query` (read phase).
    ///
    /// Valid slots are the prefix `0..fill` (see [`IactPool::fill`]), so the
    /// walk is a branch-free scan over one contiguous slice — this is the
    /// hottest loop of an iACT sweep (every lane, every step).
    pub fn probe(&self, table: usize, query: &[f64]) -> Probe {
        debug_assert_eq!(query.len(), self.in_dim);
        let filled = self.fill[table] as usize;
        let base = table * self.params.tsize * self.in_dim;
        let mut best: Option<usize> = None;
        let mut best_d2 = f64::INFINITY;
        for (slot, entry) in self.inputs[base..base + filled * self.in_dim]
            .chunks_exact(self.in_dim)
            .enumerate()
        {
            let mut d2 = 0.0;
            for (&q, &e) in query.iter().zip(entry) {
                let diff = q - e;
                d2 += diff * diff;
            }
            if d2 < best_d2 {
                best_d2 = d2;
                best = Some(slot);
            }
        }
        Probe {
            slot: best,
            distance: if best.is_some() {
                best_d2.sqrt()
            } else {
                f64::INFINITY
            },
        }
    }

    /// The cached output vector of `(table, slot)`.
    pub fn output(&self, table: usize, slot: usize) -> &[f64] {
        let idx = self.slot_index(table, slot);
        &self.outputs[idx * self.out_dim..(idx + 1) * self.out_dim]
    }

    /// Mark a hit for CLOCK replacement (sets the reference bit).
    pub fn touch(&mut self, table: usize, slot: usize) {
        let idx = self.slot_index(table, slot);
        self.referenced[idx] = true;
    }

    /// Choose the victim slot for insertion according to the replacement
    /// policy, advancing the hand.
    fn victim(&mut self, table: usize) -> usize {
        let tsize = self.params.tsize;
        // Empty slots are always preferred; they form the suffix `fill..`.
        let filled = self.fill[table] as usize;
        if filled < tsize {
            return filled;
        }
        match self.params.replacement {
            Replacement::RoundRobin => {
                let slot = self.hand[table] as usize % tsize;
                self.hand[table] = (self.hand[table] + 1) % tsize as u32;
                slot
            }
            Replacement::Clock => {
                // Sweep: clear reference bits until an unreferenced slot is
                // found (bounded by 2 * tsize).
                for _ in 0..2 * tsize {
                    let slot = self.hand[table] as usize % tsize;
                    let idx = self.slot_index(table, slot);
                    self.hand[table] = (self.hand[table] + 1) % tsize as u32;
                    if self.referenced[idx] {
                        self.referenced[idx] = false;
                    } else {
                        return slot;
                    }
                }
                self.hand[table] as usize % tsize
            }
        }
    }

    /// Insert an `(inputs, outputs)` pair (write phase; the runtime selects
    /// one writer per table per step).
    pub fn insert(&mut self, table: usize, inputs: &[f64], outputs: &[f64]) {
        debug_assert_eq!(inputs.len(), self.in_dim);
        debug_assert_eq!(outputs.len(), self.out_dim);
        let slot = self.victim(table);
        let idx = self.slot_index(table, slot);
        self.inputs[idx * self.in_dim..(idx + 1) * self.in_dim].copy_from_slice(inputs);
        self.outputs[idx * self.out_dim..(idx + 1) * self.out_dim].copy_from_slice(outputs);
        self.fill[table] = self.fill[table].max(slot as u32 + 1);
        self.referenced[idx] = false;
    }

    /// Number of valid entries in `table` (diagnostics and tests).
    pub fn occupancy(&self, table: usize) -> usize {
        self.fill[table] as usize
    }

    /// Cycle cost of the read phase for one warp step: gathering handled by
    /// the body's `input_cost`; this covers the table walk — per lane,
    /// `tsize` entries × `in_dim` components of subtract/multiply/add plus
    /// the shared-memory reads of the entries.
    pub fn search_cost(&self) -> CostProfile {
        let walk = (self.params.tsize * self.in_dim) as f64;
        CostProfile::new().flops(3.0 * walk).shared_ops(walk)
    }

    /// Cycle cost of the write phase: a warp barrier separating phases, the
    /// writer-selection reduction, and one entry write per table.
    pub fn write_phase_cost(&self, lanes_per_table: u32) -> CostProfile {
        let entry = (self.in_dim + self.out_dim) as f64;
        let mut c = CostProfile::new().shared_ops(entry);
        if lanes_per_table > 1 {
            // Shared tables need the barrier and a max-distance reduction.
            c = c
                .barriers(1.0)
                .flops(f64::from(lanes_per_table.ilog2().max(1)));
        }
        c
    }

    /// Cycle cost of returning a memoized output (reading the entry).
    pub fn hit_cost(&self) -> CostProfile {
        CostProfile::new().shared_ops(self.out_dim as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(tsize: usize, replacement: Replacement) -> IactPool {
        let mut p = IactParams::new(tsize, 0.5);
        p.replacement = replacement;
        IactPool::new(2, 2, 1, p)
    }

    #[test]
    fn empty_table_misses() {
        let p = pool(4, Replacement::RoundRobin);
        let probe = p.probe(0, &[1.0, 2.0]);
        assert_eq!(probe.slot, None);
        assert!(probe.distance.is_infinite());
        assert!(!probe.hit(1000.0));
    }

    #[test]
    fn probe_finds_closest() {
        let mut p = pool(4, Replacement::RoundRobin);
        p.insert(0, &[0.0, 0.0], &[10.0]);
        p.insert(0, &[3.0, 4.0], &[20.0]);
        let probe = p.probe(0, &[2.9, 4.1]);
        assert_eq!(probe.slot, Some(1));
        assert!((probe.distance - (0.01f64 + 0.01).sqrt()).abs() < 1e-12);
        assert!(probe.hit(0.5));
        assert_eq!(p.output(0, 1), &[20.0]);
    }

    #[test]
    fn hit_respects_threshold() {
        let mut p = pool(2, Replacement::RoundRobin);
        p.insert(0, &[0.0, 0.0], &[1.0]);
        let probe = p.probe(0, &[1.0, 0.0]);
        assert!(!probe.hit(0.5));
        assert!(probe.hit(1.0));
    }

    #[test]
    fn tables_are_independent() {
        let mut p = pool(2, Replacement::RoundRobin);
        p.insert(0, &[0.0, 0.0], &[1.0]);
        assert_eq!(p.probe(1, &[0.0, 0.0]).slot, None);
        assert_eq!(p.occupancy(0), 1);
        assert_eq!(p.occupancy(1), 0);
    }

    #[test]
    fn round_robin_replaces_in_order() {
        let mut p = pool(2, Replacement::RoundRobin);
        p.insert(0, &[0.0, 0.0], &[0.0]); // slot 0
        p.insert(0, &[1.0, 0.0], &[1.0]); // slot 1
        p.insert(0, &[2.0, 0.0], &[2.0]); // evicts slot 0
        assert_eq!(p.probe(0, &[2.0, 0.0]).slot, Some(0));
        assert_eq!(p.output(0, 0), &[2.0]);
        p.insert(0, &[3.0, 0.0], &[3.0]); // evicts slot 1
        assert_eq!(p.output(0, 1), &[3.0]);
    }

    #[test]
    fn clock_protects_referenced_entries() {
        let mut p = pool(2, Replacement::Clock);
        p.insert(0, &[0.0, 0.0], &[0.0]);
        p.insert(0, &[1.0, 0.0], &[1.0]);
        p.touch(0, 0); // protect slot 0
        p.insert(0, &[2.0, 0.0], &[2.0]);
        // Slot 0 was referenced, so the hand clears its bit and evicts slot 1.
        assert_eq!(p.output(0, 0), &[0.0]);
        assert_eq!(p.output(0, 1), &[2.0]);
    }

    #[test]
    fn empty_slots_fill_before_eviction() {
        let mut p = pool(3, Replacement::RoundRobin);
        p.insert(0, &[0.0, 0.0], &[0.0]);
        p.insert(0, &[1.0, 0.0], &[1.0]);
        assert_eq!(p.occupancy(0), 2);
        p.insert(0, &[2.0, 0.0], &[2.0]);
        assert_eq!(p.occupancy(0), 3);
        // All three distinct values present.
        for v in [0.0, 1.0, 2.0] {
            let probe = p.probe(0, &[v, 0.0]);
            assert_eq!(p.output(0, probe.slot.unwrap()), &[v]);
        }
    }

    #[test]
    fn search_cost_scales_with_table_and_dims() {
        let spec = gpu_sim::DeviceSpec::v100();
        let small = IactPool::new(1, 2, 1, IactParams::new(1, 0.5));
        let big = IactPool::new(1, 8, 1, IactParams::new(8, 0.5));
        assert!(
            big.search_cost().issue_cycles(&spec.costs)
                > small.search_cost().issue_cycles(&spec.costs)
        );
    }

    #[test]
    fn write_phase_barrier_only_when_shared() {
        let p = pool(2, Replacement::RoundRobin);
        assert_eq!(p.write_phase_cost(1).barriers, 0.0);
        assert_eq!(p.write_phase_cost(16).barriers, 1.0);
    }
}
