//! Strictly-validated `HPAC_*` environment variables — one helper, one
//! behavior.
//!
//! Every knob the stack reads from the environment goes through
//! [`strict_var`]: unset means "use the default", an empty or
//! whitespace-only value also means "use the default" (so `HPAC_X= cmd`
//! and `unset HPAC_X` behave the same), and a malformed value **aborts
//! with a clear error** rather than silently falling back — a typo in
//! `HPAC_THREADS` must not quietly run sequentially, and a typo in
//! `HPAC_TRACE` must not quietly drop a bench run's trace.
//!
//! The variables routed through here:
//!
//! | variable             | parser                                   | consumer |
//! |----------------------|------------------------------------------|----------|
//! | `HPAC_THREADS`       | [`crate::exec::engine::parse_hpac_threads`] | the `ExecEngine` batch width |
//! | `HPAC_TRACE`         | `hpac_obs::parse_hpac_trace` (via [`init_trace_from_env`]) | trace sink selection |
//! | `HPAC_TUNER_CACHE`   | [`parse_dir`]                            | the tuner's persistent cache directory |
//! | `HPAC_SERVICE_QUEUE` | `hpac_service::parse_hpac_service_queue` | the service's admission width |
//!
//! Domain parsers stay in the crate that owns the knob; this module owns
//! only the read-validate-abort glue, so a new variable gets the strict
//! behavior for free by writing one pure `&str -> Result<Option<T>, String>`
//! function.

/// Read `name` from the environment and validate it with `parse`.
///
/// * unset → `None`;
/// * non-unicode → abort (the value cannot be inspected, let alone parsed);
/// * `parse` returning `Ok(None)` (by convention: empty / whitespace-only)
///   → `None`;
/// * `parse` returning `Err(msg)` → abort with `msg`, naming the variable
///   and echoing the offending value.
pub fn strict_var<T>(
    name: &str,
    parse: impl FnOnce(&str) -> Result<Option<T>, String>,
) -> Option<T> {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => None,
        Err(e) => panic!("{name} is not valid unicode: {e}"),
        Ok(raw) => match parse(&raw) {
            Ok(v) => v,
            Err(msg) => panic!("invalid {name} value {raw:?}: {msg}"),
        },
    }
}

/// Parser for directory-valued variables (`HPAC_TUNER_CACHE`): any
/// non-empty path is accepted; empty / whitespace-only means "unset".
pub fn parse_dir(raw: &str) -> Result<Option<std::path::PathBuf>, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    Ok(Some(std::path::PathBuf::from(trimmed)))
}

/// Read `HPAC_TRACE` and, when set, install the sink and enable tracing.
///
/// The strictness contract is [`strict_var`]'s: unset or empty means
/// tracing stays off; a malformed value or an unwritable path aborts (a
/// bench run that silently drops its trace is worse than one that fails
/// fast). Bins call this once at startup.
pub fn init_trace_from_env() {
    if let Some(cfg) = strict_var("HPAC_TRACE", hpac_obs::parse_hpac_trace) {
        let path = cfg.path.clone();
        hpac_obs::install_sink(cfg)
            .unwrap_or_else(|e| panic!("HPAC_TRACE: cannot open {}: {e}", path.display()));
        hpac_obs::set_enabled(true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_var_unset_is_none() {
        assert_eq!(
            strict_var("HPAC_TEST_UNSET_NEVER_EXPORTED", |_| Ok(Some(1u32))),
            None
        );
    }

    #[test]
    fn strict_var_applies_parser() {
        std::env::set_var("HPAC_TEST_STRICT_OK", "17");
        let v = strict_var("HPAC_TEST_STRICT_OK", |s| {
            s.trim().parse::<u32>().map(Some).map_err(|e| e.to_string())
        });
        assert_eq!(v, Some(17));
        std::env::remove_var("HPAC_TEST_STRICT_OK");
    }

    #[test]
    #[should_panic(expected = "invalid HPAC_TEST_STRICT_BAD value")]
    fn strict_var_aborts_on_parse_error() {
        std::env::set_var("HPAC_TEST_STRICT_BAD", "nope");
        let _ = strict_var("HPAC_TEST_STRICT_BAD", |s| {
            s.parse::<u32>()
                .map(Some)
                .map_err(|_| format!("expected an integer, got {s:?}"))
        });
    }

    #[test]
    fn parse_dir_empty_is_unset() {
        assert_eq!(parse_dir("").unwrap(), None);
        assert_eq!(parse_dir("   ").unwrap(), None);
        assert_eq!(
            parse_dir("/tmp/cache").unwrap(),
            Some(std::path::PathBuf::from("/tmp/cache"))
        );
    }
}
