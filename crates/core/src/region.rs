//! The `#pragma approx` surface: a builder describing one approximated code
//! region.
//!
//! An [`ApproxRegion`] carries exactly the information HPAC-Offload's Clang
//! extension lowers from the pragma clauses: which technique, its parameters,
//! and the `level(hierarchy)` decision scope (§3.2).

use crate::hierarchy::HierarchyLevel;
use crate::params::{IactParams, PerfoKind, PerfoParams, Replacement, TafParams};
use gpu_sim::LaunchError;

/// The approximation technique selected for a region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Technique {
    /// `memo(out:hsize:psize:threshold)` — TAF output memoization.
    Taf(TafParams),
    /// `memo(in:tsize:threshold:tperwarp)` — iACT input memoization.
    Iact(IactParams),
    /// `perfo(kind:rate)` — loop perforation.
    Perfo(PerfoParams),
}

impl Technique {
    pub fn name(&self) -> &'static str {
        match self {
            Technique::Taf(_) => "TAF",
            Technique::Iact(_) => "iACT",
            Technique::Perfo(_) => "Perfo",
        }
    }
}

/// Errors raised when building or launching an approximated region.
#[derive(Debug, Clone, PartialEq)]
pub enum RegionError {
    /// The region parameters are invalid or incompatible with the body
    /// (e.g. iACT on a region with non-uniform input sizes — the paper's
    /// MiniFE case).
    Invalid(String),
    /// The underlying kernel launch was rejected (geometry or shared
    /// memory, including AC state that does not fit).
    Launch(LaunchError),
    /// Execution was abandoned because the modeled cost already exceeds
    /// the caller's ceiling (`ExecOptions::abort_above_seconds`): the run
    /// provably cannot beat the configuration the ceiling was derived from.
    CostCeiling(f64),
}

impl std::fmt::Display for RegionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionError::Invalid(msg) => write!(f, "invalid approx region: {msg}"),
            RegionError::Launch(e) => write!(f, "launch failed: {e}"),
            RegionError::CostCeiling(s) => {
                write!(f, "aborted: modeled cost exceeds ceiling of {s:.3e}s")
            }
        }
    }
}

impl std::error::Error for RegionError {}

impl From<LaunchError> for RegionError {
    fn from(e: LaunchError) -> Self {
        RegionError::Launch(e)
    }
}

/// A fully specified approximated region — the analogue of one
/// `#pragma approx ...` annotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxRegion {
    pub technique: Technique,
    pub level: HierarchyLevel,
}

impl ApproxRegion {
    /// `#pragma approx memo(out : hsize : psize : threshold)` — TAF.
    pub fn memo_out(hsize: usize, psize: usize, threshold: f64) -> Self {
        ApproxRegion {
            technique: Technique::Taf(TafParams::new(hsize, psize, threshold)),
            level: HierarchyLevel::Thread,
        }
    }

    /// `#pragma approx memo(in : tsize : threshold)` — iACT with the default
    /// one-table-per-thread sharing.
    pub fn memo_in(tsize: usize, threshold: f64) -> Self {
        ApproxRegion {
            technique: Technique::Iact(IactParams::new(tsize, threshold)),
            level: HierarchyLevel::Thread,
        }
    }

    /// `#pragma approx perfo(kind : rate)` — loop perforation (herded, the
    /// GPU-aware default; use [`ApproxRegion::herded`] to toggle).
    pub fn perfo(kind: PerfoKind) -> Self {
        ApproxRegion {
            technique: Technique::Perfo(PerfoParams::new(kind)),
            level: HierarchyLevel::Thread,
        }
    }

    /// The `level(hierarchy)` clause.
    pub fn level(mut self, level: HierarchyLevel) -> Self {
        self.level = level;
        self
    }

    /// The `tperwarp` clause argument (iACT only; validated in
    /// [`ApproxRegion::validate`]).
    pub fn tables_per_warp(mut self, t: u32) -> Self {
        if let Technique::Iact(ref mut p) = self.technique {
            p.tables_per_warp = t;
        }
        self
    }

    /// Replacement policy for iACT tables.
    pub fn replacement(mut self, r: Replacement) -> Self {
        if let Technique::Iact(ref mut p) = self.technique {
            p.replacement = r;
        }
        self
    }

    /// Toggle herded perforation (perfo only). Herded is the default.
    pub fn herded(mut self, herded: bool) -> Self {
        if let Technique::Perfo(ref mut p) = self.technique {
            p.herded = herded;
        }
        self
    }

    /// Validate parameter combinations (clause-level checks; body- and
    /// device-dependent checks happen at launch).
    pub fn validate(&self) -> Result<(), RegionError> {
        match &self.technique {
            Technique::Taf(p) => p.validate().map_err(RegionError::Invalid),
            Technique::Iact(p) => p.validate().map_err(RegionError::Invalid),
            Technique::Perfo(p) => {
                p.validate().map_err(RegionError::Invalid)?;
                if self.level != HierarchyLevel::Thread {
                    return Err(RegionError::Invalid(
                        "perforation patterns are data-independent; level(warp|block) \
                         does not apply to perfo regions"
                            .into(),
                    ));
                }
                Ok(())
            }
        }
    }

    pub fn technique_name(&self) -> &'static str {
        self.technique.name()
    }

    /// Exact-bit fingerprint of the region as `u64` words: technique and
    /// level discriminants plus every parameter's bit pattern. Two regions
    /// with equal fingerprints behave identically on any body and launch,
    /// which lets the harness dedup grid points whose launch shapes also
    /// coincide.
    pub fn fingerprint_words(&self) -> Vec<u64> {
        let level = self.level as u64;
        match &self.technique {
            Technique::Taf(p) => vec![
                1,
                p.hsize as u64,
                p.psize as u64,
                p.threshold.to_bits(),
                level,
            ],
            Technique::Iact(p) => vec![
                2,
                p.tsize as u64,
                p.threshold.to_bits(),
                p.tables_per_warp as u64,
                match p.replacement {
                    Replacement::RoundRobin => 0,
                    Replacement::Clock => 1,
                },
                level,
            ],
            Technique::Perfo(p) => {
                let (kind, arg) = match p.kind {
                    PerfoKind::Small { m } => (0u64, m as u64),
                    PerfoKind::Large { m } => (1, m as u64),
                    PerfoKind::Ini { fraction } => (2, fraction.to_bits()),
                    PerfoKind::Fini { fraction } => (3, fraction.to_bits()),
                };
                vec![3, kind, arg, p.herded as u64, level]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_fields() {
        let r = ApproxRegion::memo_in(2, 0.5)
            .tables_per_warp(4)
            .level(HierarchyLevel::Warp);
        match r.technique {
            Technique::Iact(p) => {
                assert_eq!(p.tsize, 2);
                assert_eq!(p.tables_per_warp, 4);
            }
            _ => panic!("expected iACT"),
        }
        assert_eq!(r.level, HierarchyLevel::Warp);
        assert!(r.validate().is_ok());
    }

    #[test]
    fn taf_builder_matches_fig5_line13() {
        // #pragma approx memo(out:3:5:1.5f) level(thread)
        let r = ApproxRegion::memo_out(3, 5, 1.5).level(HierarchyLevel::Thread);
        match r.technique {
            Technique::Taf(p) => {
                assert_eq!(p.hsize, 3);
                assert_eq!(p.psize, 5);
                assert_eq!(p.threshold, 1.5);
            }
            _ => panic!("expected TAF"),
        }
        assert!(r.validate().is_ok());
    }

    #[test]
    fn tables_per_warp_ignored_for_taf() {
        let r = ApproxRegion::memo_out(3, 5, 1.5).tables_per_warp(4);
        assert!(matches!(r.technique, Technique::Taf(_)));
    }

    #[test]
    fn invalid_params_rejected() {
        let r = ApproxRegion::memo_out(0, 5, 1.5);
        assert!(matches!(r.validate(), Err(RegionError::Invalid(_))));
    }

    #[test]
    fn perfo_rejects_group_levels() {
        let r = ApproxRegion::perfo(PerfoKind::Small { m: 4 }).level(HierarchyLevel::Warp);
        assert!(r.validate().is_err());
        let ok = ApproxRegion::perfo(PerfoKind::Small { m: 4 });
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn perfo_herded_default_and_toggle() {
        let r = ApproxRegion::perfo(PerfoKind::Large { m: 8 });
        match r.technique {
            Technique::Perfo(p) => assert!(p.herded),
            _ => unreachable!(),
        }
        let r = r.herded(false);
        match r.technique {
            Technique::Perfo(p) => assert!(!p.herded),
            _ => unreachable!(),
        }
    }

    #[test]
    fn technique_names() {
        assert_eq!(ApproxRegion::memo_out(1, 2, 0.5).technique_name(), "TAF");
        assert_eq!(ApproxRegion::memo_in(1, 0.5).technique_name(), "iACT");
        assert_eq!(
            ApproxRegion::perfo(PerfoKind::Ini { fraction: 0.1 }).technique_name(),
            "Perfo"
        );
    }

    #[test]
    fn fingerprints_separate_distinct_regions() {
        let a = ApproxRegion::memo_out(3, 5, 1.5);
        let b = ApproxRegion::memo_out(3, 5, 1.5);
        assert_eq!(a.fingerprint_words(), b.fingerprint_words());
        assert_ne!(
            a.fingerprint_words(),
            ApproxRegion::memo_out(3, 5, 1.0).fingerprint_words()
        );
        assert_ne!(
            a.fingerprint_words(),
            a.level(HierarchyLevel::Warp).fingerprint_words()
        );
        assert_ne!(
            ApproxRegion::memo_in(3, 1.5).fingerprint_words(),
            ApproxRegion::memo_in(3, 1.5)
                .tables_per_warp(4)
                .fingerprint_words()
        );
        assert_ne!(
            ApproxRegion::perfo(PerfoKind::Small { m: 4 }).fingerprint_words(),
            ApproxRegion::perfo(PerfoKind::Large { m: 4 }).fingerprint_words()
        );
    }

    #[test]
    fn error_display() {
        let e = RegionError::Invalid("bad".into());
        assert!(e.to_string().contains("bad"));
    }
}
