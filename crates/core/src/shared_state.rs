//! Sizing and placement of AC state in block shared memory (§3.1.1, §3.3).
//!
//! HPAC-Offload's key memory design: AC state lives in each block's shared
//! memory, not in per-thread global memory, so resource use is bounded by
//! the number of *resident* threads instead of the number of *software*
//! threads (compare Fig 3). The functions here compute the bytes one block's
//! AC state occupies; the runtime rejects launches whose state exceeds the
//! device's per-block limit, and the occupancy model in `gpu_sim::timing`
//! lowers block residency as this footprint grows.
//!
//! Device-side scalars are stored as `f32` (as HPAC's runtime does — Fig 3's
//! 36-byte 5-entry example corresponds to f32 in/out pairs), so each scalar
//! costs [`AC_SCALAR_BYTES`] bytes of shared memory even though the
//! functional simulation carries `f64` precision.

use crate::hierarchy::HierarchyLevel;
use crate::params::{IactParams, TafParams};
use crate::region::{ApproxRegion, Technique};
use gpu_sim::{DeviceSpec, LaunchConfig};

/// Bytes per AC scalar in device shared memory.
pub const AC_SCALAR_BYTES: usize = 4;
/// Per-state-machine control bytes (mode, counters, ring head).
pub const TAF_CONTROL_BYTES: usize = 8;
/// Per-table control bytes (round-robin hand / clock hand).
pub const IACT_TABLE_CONTROL_BYTES: usize = 4;
/// Per-entry control bytes (valid + reference bits).
pub const IACT_ENTRY_CONTROL_BYTES: usize = 2;

/// Shared-memory footprint of TAF state for one block: one state machine per
/// thread, each holding an `hsize` signature window plus the memoized
/// `out_dim` output vector.
pub fn taf_block_bytes(block_size: u32, params: &TafParams, out_dim: usize) -> usize {
    let per_thread = params.hsize * AC_SCALAR_BYTES + out_dim * AC_SCALAR_BYTES + TAF_CONTROL_BYTES;
    block_size as usize * per_thread
}

/// Shared-memory footprint of iACT state for one block:
/// `warps_per_block × tables_per_warp` tables of `tsize` entries, each entry
/// an `(in_dim, out_dim)` scalar pair plus control bits.
pub fn iact_block_bytes(
    warps_per_block: u32,
    tables_per_warp: u32,
    params: &IactParams,
    in_dim: usize,
    out_dim: usize,
) -> usize {
    let entry = (in_dim + out_dim) * AC_SCALAR_BYTES + IACT_ENTRY_CONTROL_BYTES;
    let table = params.tsize * entry + IACT_TABLE_CONTROL_BYTES;
    (warps_per_block * tables_per_warp) as usize * table
}

/// Shared-memory footprint of perforation state: one encounter counter per
/// thread (§3.3: "hpac-offload counts the number of times a thread has
/// encountered the perforated code region").
pub fn perfo_block_bytes(block_size: u32) -> usize {
    block_size as usize * 4
}

/// Extra bytes for the block-level decision tally (§3.3: "The first thread
/// in each warp atomically adds its count to the block total in shared
/// memory").
pub fn block_vote_bytes(level: HierarchyLevel) -> usize {
    match level {
        HierarchyLevel::Block => 8,
        _ => 0,
    }
}

/// Total per-block shared-memory bytes required by a region for a launch.
pub fn region_block_bytes(
    region: &ApproxRegion,
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    in_dim: usize,
    out_dim: usize,
) -> Result<usize, String> {
    let state = match &region.technique {
        Technique::Taf(p) => taf_block_bytes(launch.block_size, p, out_dim),
        Technique::Iact(p) => {
            let tpw = p.effective_tables_per_warp(spec.warp_size)?;
            iact_block_bytes(launch.warps_per_block(spec), tpw, p, in_dim, out_dim)
        }
        Technique::Perfo(_) => perfo_block_bytes(launch.block_size),
    };
    Ok(state + block_vote_bytes(region.level))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PerfoKind;

    #[test]
    fn fig3_entry_size_is_36_bytes() {
        // Fig 3 assumes 5-entry tables with 36-byte entries. An entry with
        // 7 f32 inputs + 1 f32 output + control = 34 bytes; the canonical
        // 36-byte entry is 8 scalars + control rounded — check we're in the
        // same regime rather than exactly equal.
        let entry = (7 + 1) * AC_SCALAR_BYTES + IACT_ENTRY_CONTROL_BYTES;
        assert!((32..=40).contains(&entry));
    }

    #[test]
    fn taf_bytes_scale_with_block_and_hsize() {
        let p5 = TafParams::new(5, 8, 0.5);
        let p1 = TafParams::new(1, 8, 0.5);
        assert!(taf_block_bytes(256, &p5, 1) > taf_block_bytes(256, &p1, 1));
        assert_eq!(
            taf_block_bytes(512, &p1, 1),
            2 * taf_block_bytes(256, &p1, 1)
        );
    }

    #[test]
    fn taf_typical_config_fits_v100_block() {
        let spec = DeviceSpec::v100();
        let p = TafParams::new(5, 512, 0.5);
        let bytes = taf_block_bytes(256, &p, 6);
        assert!(
            bytes <= spec.shared_mem_per_block,
            "{bytes} > {}",
            spec.shared_mem_per_block
        );
    }

    #[test]
    fn iact_sharing_reduces_footprint() {
        let p = IactParams::new(8, 0.5);
        let private = iact_block_bytes(8, 32, &p, 5, 1);
        let shared = iact_block_bytes(8, 2, &p, 5, 1);
        assert!(shared < private / 8);
    }

    #[test]
    fn oversized_iact_exceeds_block_limit() {
        let spec = DeviceSpec::v100();
        let region = ApproxRegion::memo_in(64, 0.5); // 64-entry private tables
        let launch = LaunchConfig::one_item_per_thread(1 << 20, 1024);
        let bytes = region_block_bytes(&region, &spec, &launch, 16, 8).unwrap();
        assert!(bytes > spec.shared_mem_per_block);
    }

    #[test]
    fn block_vote_tally_only_for_block_level() {
        assert_eq!(block_vote_bytes(HierarchyLevel::Thread), 0);
        assert_eq!(block_vote_bytes(HierarchyLevel::Warp), 0);
        assert!(block_vote_bytes(HierarchyLevel::Block) > 0);
    }

    #[test]
    fn perfo_state_is_tiny() {
        let spec = DeviceSpec::v100();
        let region = ApproxRegion::perfo(PerfoKind::Small { m: 4 });
        let launch = LaunchConfig::one_item_per_thread(1 << 20, 1024);
        let bytes = region_block_bytes(&region, &spec, &launch, 0, 1).unwrap();
        assert!(bytes < spec.shared_mem_per_block / 10);
    }

    #[test]
    fn invalid_tperwarp_propagates() {
        let spec = DeviceSpec::v100();
        let region = ApproxRegion::memo_in(4, 0.5).tables_per_warp(3);
        let launch = LaunchConfig::one_item_per_thread(1024, 128);
        assert!(region_block_bytes(&region, &spec, &launch, 2, 1).is_err());
    }
}
