//! TAF — Temporal Approximate Function memoization (output memoization),
//! GPU-adapted per §3.1.3.
//!
//! Each state machine watches the stream of outputs produced by *one thread's
//! successive region executions* (the grid-stride iterations of Fig 4d —
//! the relaxed-locality design: no inter-thread dependencies). When the
//! sliding window of the last `hsize` outputs has relative standard
//! deviation below the threshold, the machine enters the *stable regime*:
//! the next `psize` invocations return the last accurately computed output
//! without executing the region. After the prediction phase the window is
//! cleared and the machine re-observes.
//!
//! For regions with multi-dimensional outputs the window tracks a scalar
//! signature (the mean of the output components) while the memoized value
//! retains the full output vector. (CPU-HPAC computes per-component RSDs;
//! the scalar signature keeps per-thread shared-memory state at
//! `hsize + out_dim` scalars instead of `hsize × out_dim`, which is what
//! makes large launches fit the per-block shared-memory budget — see
//! `shared_state` and DESIGN.md.)
//!
//! [`TafPool`] stores all state machines of a kernel launch in flat arrays
//! (structure-of-arrays) so the per-launch allocation cost is a handful of
//! `Vec`s rather than millions of small boxes.

use crate::metrics::rsd;
use crate::params::TafParams;
use gpu_sim::CostProfile;

/// All TAF state machines for one kernel launch.
#[derive(Debug, Clone)]
pub struct TafPool {
    params: TafParams,
    out_dim: usize,
    /// Ring buffers of window signatures, `n * hsize`.
    window: Vec<f64>,
    /// Valid entries in each window.
    win_len: Vec<u16>,
    /// Ring head of each window.
    win_head: Vec<u16>,
    /// Last accurately computed output vector, `n * out_dim`.
    last: Vec<f64>,
    /// Whether `last` holds a value.
    has_last: Vec<bool>,
    /// Remaining invocations in the current stable regime.
    approx_left: Vec<u32>,
}

impl TafPool {
    /// Create `n` state machines for a region with `out_dim` outputs.
    pub fn new(n: usize, out_dim: usize, params: TafParams) -> Self {
        assert!(out_dim > 0, "TAF region must declare outputs");
        TafPool {
            params,
            out_dim,
            window: vec![0.0; n * params.hsize],
            win_len: vec![0; n],
            win_head: vec![0; n],
            last: vec![0.0; n * out_dim],
            has_last: vec![false; n],
            approx_left: vec![0; n],
        }
    }

    pub fn params(&self) -> &TafParams {
        &self.params
    }

    pub fn len(&self) -> usize {
        self.win_len.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does state machine `s` want to take the approximate path?
    /// (In the stable regime with a memoized output available.)
    pub fn wants_approx(&self, s: usize) -> bool {
        self.approx_left[s] > 0 && self.has_last[s]
    }

    /// Can machine `s` be *forced* to approximate by a group decision?
    /// It needs at least one accurately computed output to return.
    pub fn can_approximate(&self, s: usize) -> bool {
        self.has_last[s]
    }

    /// The memoized output of machine `s`.
    pub fn last(&self, s: usize) -> &[f64] {
        &self.last[s * self.out_dim..(s + 1) * self.out_dim]
    }

    /// Record an accurately computed output and update the state machine.
    pub fn observe(&mut self, s: usize, out: &[f64]) {
        debug_assert_eq!(out.len(), self.out_dim);
        self.last[s * self.out_dim..(s + 1) * self.out_dim].copy_from_slice(out);
        self.has_last[s] = true;

        let sig = out.iter().sum::<f64>() / self.out_dim as f64;
        let h = self.params.hsize;
        let base = s * h;
        let head = self.win_head[s] as usize;
        self.window[base + head] = sig;
        self.win_head[s] = ((head + 1) % h) as u16;
        self.win_len[s] = (self.win_len[s] + 1).min(h as u16);

        if self.win_len[s] as usize == h {
            let r = rsd(&self.window[base..base + h]);
            if r <= self.params.threshold {
                // Enter the stable regime; the window restarts afterwards.
                self.approx_left[s] = self.params.psize as u32;
                self.win_len[s] = 0;
                self.win_head[s] = 0;
            }
        }
    }

    /// Consume one prediction from the stable regime (no-op when machine `s`
    /// was forced to approximate outside a regime).
    pub fn note_approx(&mut self, s: usize) {
        if self.approx_left[s] > 0 {
            self.approx_left[s] -= 1;
        }
    }

    /// Cycle cost of evaluating the activation criterion for one warp step
    /// (reading the per-lane regime flag from shared memory).
    pub fn activation_cost(&self) -> CostProfile {
        CostProfile::new().flops(1.0).shared_ops(1.0)
    }

    /// Cycle cost of the accurate-path bookkeeping: writing the signature
    /// into the window and (when full) computing the RSD.
    pub fn observe_cost(&self) -> CostProfile {
        CostProfile::new()
            .flops(self.out_dim as f64 + 3.0 * self.params.hsize as f64)
            .shared_ops(2.0 + self.out_dim as f64)
    }

    /// Cycle cost of producing the approximate output (reading the memoized
    /// vector from shared memory).
    pub fn predict_cost(&self) -> CostProfile {
        CostProfile::new().shared_ops(self.out_dim as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(hsize: usize, psize: usize, thresh: f64) -> TafPool {
        TafPool::new(4, 1, TafParams::new(hsize, psize, thresh))
    }

    #[test]
    fn no_approx_before_window_full() {
        let mut p = pool(3, 5, 10.0);
        p.observe(0, &[1.0]);
        p.observe(0, &[1.0]);
        assert!(!p.wants_approx(0));
        p.observe(0, &[1.0]);
        assert!(p.wants_approx(0)); // window full, RSD 0 <= 10
    }

    #[test]
    fn stable_regime_lasts_psize() {
        let mut p = pool(2, 3, 0.5);
        p.observe(0, &[2.0]);
        p.observe(0, &[2.0]);
        assert!(p.wants_approx(0));
        for _ in 0..3 {
            assert!(p.wants_approx(0));
            p.note_approx(0);
        }
        assert!(
            !p.wants_approx(0),
            "regime must end after psize approximations"
        );
    }

    #[test]
    fn window_resets_after_regime() {
        let mut p = pool(2, 1, 0.5);
        p.observe(0, &[2.0]);
        p.observe(0, &[2.0]);
        p.note_approx(0);
        assert!(!p.wants_approx(0));
        // Needs a full fresh window again, not just one more value.
        p.observe(0, &[2.0]);
        assert!(!p.wants_approx(0));
        p.observe(0, &[2.0]);
        assert!(p.wants_approx(0));
    }

    #[test]
    fn unstable_window_never_approximates() {
        let mut p = pool(3, 5, 0.1);
        for v in [1.0, 100.0, 1.0, 100.0, 1.0, 100.0] {
            p.observe(0, &[v]);
            assert!(!p.wants_approx(0));
        }
    }

    #[test]
    fn zero_threshold_requires_exactly_constant() {
        let mut p = pool(2, 5, 0.0);
        p.observe(0, &[3.0]);
        p.observe(0, &[3.0 + 1e-9]);
        assert!(!p.wants_approx(0));
        p.observe(0, &[3.0]);
        p.observe(0, &[3.0]);
        // window = {3+1e-9, 3, 3}? hsize=2 so window = {3, 3}
        assert!(p.wants_approx(0));
    }

    #[test]
    fn last_holds_latest_accurate_output() {
        let mut p = TafPool::new(2, 3, TafParams::new(2, 2, 5.0));
        p.observe(1, &[1.0, 2.0, 3.0]);
        p.observe(1, &[4.0, 5.0, 6.0]);
        assert_eq!(p.last(1), &[4.0, 5.0, 6.0]);
        assert!(p.can_approximate(1));
        assert!(!p.can_approximate(0));
    }

    #[test]
    fn machines_are_independent() {
        let mut p = pool(1, 4, 10.0);
        p.observe(2, &[1.0]);
        assert!(p.wants_approx(2));
        assert!(!p.wants_approx(0));
        assert!(!p.wants_approx(1));
        assert!(!p.wants_approx(3));
    }

    #[test]
    fn note_approx_on_forced_lane_is_noop() {
        let mut p = pool(2, 2, 0.5);
        p.observe(0, &[1.0]);
        // Not in a regime, but has_last -> can be forced by a warp vote.
        assert!(p.can_approximate(0));
        p.note_approx(0);
        assert!(!p.wants_approx(0));
    }

    #[test]
    fn multi_dim_signature_uses_mean() {
        // Outputs whose means are constant but components vary: the scalar
        // signature treats them as stable (documented design choice).
        let mut p = TafPool::new(1, 2, TafParams::new(2, 1, 0.0));
        p.observe(0, &[0.0, 2.0]);
        p.observe(0, &[2.0, 0.0]);
        assert!(p.wants_approx(0));
    }

    #[test]
    fn costs_scale_with_params() {
        let small = pool(1, 1, 0.5);
        let big = TafPool::new(4, 1, TafParams::new(16, 1, 0.5));
        let spec = gpu_sim::DeviceSpec::v100();
        assert!(
            big.observe_cost().issue_cycles(&spec.costs)
                > small.observe_cost().issue_cycles(&spec.costs)
        );
    }
}
