//! Quality-of-result metrics: MAPE, MCR, and the relative standard deviation
//! (RSD) that drives TAF's activation function.
//!
//! These are the paper's equations (1) and (2) plus the footnote-1 RSD
//! definition (population σ/μ).

/// Mean absolute percentage error between accurate and approximate outputs
/// (paper eq. 1), as a fraction (multiply by 100 for percent).
///
/// Elements where the accurate output is exactly zero are compared
/// absolutely (|diff| contributes directly), avoiding division by zero —
/// the same convention HPAC's harness uses.
pub fn mape(accurate: &[f64], approximate: &[f64]) -> f64 {
    assert_eq!(
        accurate.len(),
        approximate.len(),
        "MAPE over mismatched lengths"
    );
    if accurate.is_empty() {
        return 0.0;
    }
    let sum: f64 = accurate
        .iter()
        .zip(approximate)
        .map(|(&a, &p)| {
            let diff = (a - p).abs();
            if a == 0.0 {
                diff
            } else {
                diff / a.abs()
            }
        })
        .sum();
    sum / accurate.len() as f64
}

/// Misclassification rate between accurate and approximate labels
/// (paper eq. 2), as a fraction.
pub fn mcr(accurate: &[u32], approximate: &[u32]) -> f64 {
    assert_eq!(
        accurate.len(),
        approximate.len(),
        "MCR over mismatched lengths"
    );
    if accurate.is_empty() {
        return 0.0;
    }
    let wrong = accurate
        .iter()
        .zip(approximate)
        .filter(|(a, p)| a != p)
        .count();
    wrong as f64 / accurate.len() as f64
}

/// Relative standard deviation σ/μ with population standard deviation
/// (paper footnote 1). Conventions for degenerate windows:
///
/// * empty or single-element windows have RSD 0 (no spread observable);
/// * a zero mean with zero spread is RSD 0 (constant zeros are stable);
/// * a zero mean with nonzero spread is RSD ∞ (never stable).
pub fn rsd(values: &[f64]) -> f64 {
    if values.len() <= 1 {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sigma = var.sqrt();
    if mean == 0.0 {
        if sigma == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        sigma / mean.abs()
    }
}

/// Online RSD over a fixed-capacity ring of values, used by the TAF state
/// machine so the window never allocates in the kernel hot loop.
#[derive(Debug, Clone)]
pub struct RsdWindow {
    values: Vec<f64>,
    head: usize,
    len: usize,
}

impl RsdWindow {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1);
        RsdWindow {
            values: vec![0.0; capacity],
            head: 0,
            len: 0,
        }
    }

    pub fn push(&mut self, v: f64) {
        self.values[self.head] = v;
        self.head = (self.head + 1) % self.values.len();
        self.len = (self.len + 1).min(self.values.len());
    }

    pub fn is_full(&self) -> bool {
        self.len == self.values.len()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn clear(&mut self) {
        self.len = 0;
        self.head = 0;
    }

    /// RSD over the currently held values.
    pub fn rsd(&self) -> f64 {
        rsd(&self.values[..self.len.min(self.values.len())])
    }
}

/// Geometric mean of positive values, used for the paper's headline
/// "geomean speedup 1.42×" aggregation.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mape_zero_on_identical() {
        let a = [1.0, 2.0, -3.0];
        assert_eq!(mape(&a, &a), 0.0);
    }

    #[test]
    fn mape_simple_case() {
        // 10% error on each of two elements
        let a = [10.0, 100.0];
        let p = [11.0, 90.0];
        assert!((mape(&a, &p) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mape_handles_zero_accurate() {
        let a = [0.0];
        let p = [0.5];
        assert_eq!(mape(&a, &p), 0.5);
    }

    #[test]
    fn mape_empty_is_zero() {
        assert_eq!(mape(&[], &[]), 0.0);
    }

    #[test]
    fn mcr_counts_mismatches() {
        let a = [1, 2, 3, 4];
        let p = [1, 9, 3, 9];
        assert!((mcr(&a, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mcr_zero_on_identical() {
        let a = [5, 5, 5];
        assert_eq!(mcr(&a, &a), 0.0);
    }

    #[test]
    fn rsd_constant_is_zero() {
        assert!(rsd(&[4.2; 10]) < 1e-12);
    }

    #[test]
    fn rsd_known_value() {
        // values {2, 4}: mean 3, sigma 1 -> RSD 1/3
        assert!((rsd(&[2.0, 4.0]) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rsd_zero_mean_nonzero_spread_is_inf() {
        assert!(rsd(&[-1.0, 1.0]).is_infinite());
    }

    #[test]
    fn rsd_all_zero_is_zero() {
        assert_eq!(rsd(&[0.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn rsd_single_is_zero() {
        assert_eq!(rsd(&[7.0]), 0.0);
    }

    #[test]
    fn window_slides() {
        let mut w = RsdWindow::new(3);
        for v in [1.0, 1.0, 1.0, 100.0] {
            w.push(v);
        }
        // window now holds {1, 1, 100}
        assert!(w.is_full());
        assert!(w.rsd() > 1.0);
        w.push(100.0);
        w.push(100.0);
        // window now holds {100, 100, 100}
        assert_eq!(w.rsd(), 0.0);
    }

    #[test]
    fn window_partial_rsd() {
        let mut w = RsdWindow::new(5);
        w.push(2.0);
        w.push(4.0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_full());
        assert!((w.rsd() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn window_clear_resets() {
        let mut w = RsdWindow::new(2);
        w.push(1.0);
        w.push(2.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.rsd(), 0.0);
    }

    #[test]
    fn geomean_of_constant() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_known() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }
}
