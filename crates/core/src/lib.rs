//! # hpac-core — the HPAC-Offload programming model and runtime
//!
//! This crate is the Rust analogue of the paper's Clang/LLVM + OpenMP-offload
//! extension. Where the paper writes
//!
//! ```c
//! #pragma approx memo(in:2:0.5f:4) level(warp) in(input[i*5:5:N]) out(output1[i])
//! output1[i] = foo(&input[5*i], 5, N);
//! ```
//!
//! this crate writes
//!
//! ```ignore
//! let region = ApproxRegion::memo_in(2, 0.5).tables_per_warp(4).level(HierarchyLevel::Warp);
//! approx_parallel_for(&spec, &launch, Some(&region), &mut body)?;
//! ```
//!
//! with `body` implementing [`exec::RegionBody`] — the closure capture of
//! the accurate execution path, its region inputs/outputs, and its cost.
//!
//! The runtime is a staged pipeline (see [`exec`]): one generic grid walker,
//! a pluggable technique-policy layer, per-block accounting that lets
//! independent blocks execute on separate threads
//! ([`exec::Executor::ParallelBlocks`]), and it implements the paper's
//! GPU-aware designs:
//!
//! * [`taf`] — relaxed-locality temporal output memoization (Fig 4d), with
//!   the serialized "semantically equivalent" variant (Fig 4c) available for
//!   ablation;
//! * [`iact`] — input memoization with warp-shared tables
//!   (`tables_per_warp`), two-phase read/write access, and round-robin or
//!   CLOCK replacement;
//! * [`perfo`] — small/large/ini/fini loop perforation plus the paper's
//!   divergence-free *herded* variants;
//! * [`hierarchy`] — thread/warp/block majority-rules decision-making built
//!   on ballot + popcount;
//! * [`shared_state`] — AC state sized and placed in block shared memory,
//!   with launches rejected when the device limit is exceeded.

pub mod env;
pub mod exec;
pub mod hierarchy;
pub mod iact;
pub mod metrics;
pub mod params;
pub mod perfo;
pub mod region;
pub mod shared_state;
pub mod taf;

pub use exec::{
    approx_block_tasks, approx_parallel_for, approx_parallel_for_opts, BlockTaskBody, ExecOptions,
    Executor, RegionBody,
};
pub use hierarchy::HierarchyLevel;
pub use params::{IactParams, PerfoKind, PerfoParams, Replacement, TafParams};
pub use region::{ApproxRegion, RegionError, Technique};
