//! Loop perforation patterns, including the paper's GPU-aware *herded*
//! variant.
//!
//! Non-herded `small`/`large` perforation decides per *loop item*: adjacent
//! items live on adjacent lanes of a warp, so some lanes skip while their
//! neighbours execute — the warp still pays the full SIMD execution and its
//! memory span stays fragmented (no fewer transactions). Herded perforation
//! drops the same *warp-aligned blocks of iterations* across the whole grid
//! ("the same iterations are dropped by every thread in the grid", §3.1.5):
//! control flow stays uniform within every warp, skipped groups cost
//! nothing, and the surviving accesses stay aligned and unfragmented.
//!
//! `ini`/`fini` are loop-bound changes performed "by the compiler" (§3.3):
//! [`bounds`] shrinks the iteration space before launch and no runtime
//! decision is made at all.

use crate::params::{PerfoKind, PerfoParams};

/// Decide whether the given loop item is dropped.
///
/// * `item` — the logical loop index;
/// * `group` — the warp-aligned group index `item / warp_size` (herded
///   small/large key on this so whole warps skip together).
///
/// `ini`/`fini` always return `false` here because they are applied as
/// bounds changes via [`bounds`].
pub fn should_skip(params: &PerfoParams, item: usize, group: usize) -> bool {
    let idx = if params.herded { group } else { item };
    match params.kind {
        PerfoKind::Small { m } => idx % m as usize == m as usize - 1,
        PerfoKind::Large { m } => idx % m as usize != 0,
        PerfoKind::Ini { .. } | PerfoKind::Fini { .. } => false,
    }
}

/// Iteration-space bounds `[lo, hi)` after applying ini/fini perforation to
/// a loop of `n_items` iterations. Small/large leave the bounds unchanged.
pub fn bounds(params: &PerfoParams, n_items: usize) -> (usize, usize) {
    match params.kind {
        PerfoKind::Ini { fraction } => {
            let lo = (n_items as f64 * fraction).round() as usize;
            (lo.min(n_items), n_items)
        }
        PerfoKind::Fini { fraction } => {
            let hi = (n_items as f64 * (1.0 - fraction)).round() as usize;
            (0, hi.min(n_items))
        }
        _ => (0, n_items),
    }
}

/// Exact number of items a loop of `n_items` drops under this pattern when
/// decisions are per-item (non-herded); used by tests and the harness to
/// validate skip rates.
pub fn dropped_items(params: &PerfoParams, n_items: usize) -> usize {
    match params.kind {
        PerfoKind::Small { m } => n_items / m as usize,
        PerfoKind::Large { m } => n_items - n_items.div_ceil(m as usize),
        PerfoKind::Ini { .. } | PerfoKind::Fini { .. } => {
            let (lo, hi) = bounds(params, n_items);
            n_items - (hi - lo)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(kind: PerfoKind, herded: bool) -> PerfoParams {
        PerfoParams { kind, herded }
    }

    #[test]
    fn small_skips_one_in_m_items() {
        let params = p(PerfoKind::Small { m: 4 }, false);
        let skipped: Vec<usize> = (0..16).filter(|&i| should_skip(&params, i, 0)).collect();
        assert_eq!(skipped, vec![3, 7, 11, 15]);
    }

    #[test]
    fn large_executes_one_in_m_items() {
        let params = p(PerfoKind::Large { m: 4 }, false);
        let executed: Vec<usize> = (0..16).filter(|&i| !should_skip(&params, i, 0)).collect();
        assert_eq!(executed, vec![0, 4, 8, 12]);
    }

    #[test]
    fn herded_small_keys_on_group() {
        let params = p(PerfoKind::Small { m: 2 }, true);
        // item index irrelevant; odd groups skipped, even not
        assert!(!should_skip(&params, 999, 0));
        assert!(should_skip(&params, 0, 1));
        assert!(should_skip(&params, 12345, 3));
    }

    #[test]
    fn herded_group_zero_never_skips_small() {
        let params = p(PerfoKind::Small { m: 8 }, true);
        assert!(!should_skip(&params, 0, 0));
    }

    #[test]
    fn ini_moves_lower_bound() {
        let params = p(PerfoKind::Ini { fraction: 0.25 }, true);
        assert_eq!(bounds(&params, 100), (25, 100));
        assert_eq!(dropped_items(&params, 100), 25);
    }

    #[test]
    fn fini_moves_upper_bound() {
        let params = p(PerfoKind::Fini { fraction: 0.3 }, true);
        assert_eq!(bounds(&params, 100), (0, 70));
        assert_eq!(dropped_items(&params, 100), 30);
    }

    #[test]
    fn ini_fini_never_skip_at_runtime() {
        for kind in [
            PerfoKind::Ini { fraction: 0.9 },
            PerfoKind::Fini { fraction: 0.9 },
        ] {
            let params = p(kind, false);
            assert!((0..100).all(|i| !should_skip(&params, i, i)));
        }
    }

    #[test]
    fn small_large_keep_bounds() {
        let params = p(PerfoKind::Small { m: 2 }, false);
        assert_eq!(bounds(&params, 50), (0, 50));
    }

    #[test]
    fn dropped_counts_exact() {
        assert_eq!(dropped_items(&p(PerfoKind::Small { m: 4 }, false), 17), 4);
        // Large m=4 over 17 items: executes ceil(17/4)=5, drops 12.
        assert_eq!(dropped_items(&p(PerfoKind::Large { m: 4 }, false), 17), 12);
    }
}
