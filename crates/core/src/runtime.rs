//! The HPAC-Offload runtime: functional execution of approximated kernels on
//! the `gpu-sim` substrate.
//!
//! [`approx_parallel_for`] is the analogue of launching an annotated
//! `#pragma omp target teams distribute parallel for` region: it walks the
//! launch geometry block → grid-stride step → warp (warps execute their
//! lanes in lockstep at region granularity, where HPAC-Offload's activation
//! functions and collectives live), evaluates the technique's activation
//! criterion per lane, resolves the hierarchy-level vote, executes the
//! accurate path (a real Rust closure) or the approximate path (memoized /
//! stale outputs), and charges the cycle cost of whichever paths the warp
//! serialized.
//!
//! [`approx_block_tasks`] is the cooperative-block variant used by
//! benchmarks like Binomial Options where one block computes one work item
//! and decisions are block-scoped.

use crate::hierarchy::{self, HierarchyLevel, WarpDecision};
use crate::iact::IactPool;
use crate::params::{IactParams, PerfoParams, TafParams};
use crate::perfo;
use crate::region::{ApproxRegion, RegionError, Technique};
use crate::shared_state;
use crate::taf::TafPool;
use gpu_sim::{
    AccessPattern, CostProfile, DeviceSpec, KernelExec, KernelRecord, LaunchConfig, Schedule,
};

/// The annotated code region: the accurate path, its declared inputs and
/// outputs, and its cost.
///
/// This is the Rust rendering of what HPAC's Clang pass captures as a
/// closure. `accurate` computes the region for one item; `store` commits an
/// output vector (both paths call it — the approximate path passes the
/// memoized vector). Cost methods describe one warp-step's work so the
/// engine can model kernel time:
///
/// * [`RegionBody::accurate_cost`] — the full accurate body including its
///   global reads and writes;
/// * [`RegionBody::input_cost`] — only the gathering of the declared region
///   inputs (paid by iACT's activation on every invocation);
/// * [`RegionBody::store_cost`] — only the write of the region outputs
///   (paid by the approximate path when it stores a memoized value).
pub trait RegionBody {
    /// Scalars in the declared region input (`in(...)` clause). 0 means the
    /// region declares no inputs (TAF and perforation need none).
    fn in_dim(&self) -> usize {
        0
    }

    /// Scalars in the declared region output (`out(...)` clause).
    fn out_dim(&self) -> usize;

    /// Gather the region inputs of item `i` into `buf` (`len == in_dim`).
    fn inputs(&self, _i: usize, _buf: &mut [f64]) {
        unreachable!("region declares no inputs; implement `inputs` to use iACT");
    }

    /// Execute the accurate path for item `i`, writing outputs to `out`.
    fn accurate(&mut self, i: usize, out: &mut [f64]);

    /// Commit the region outputs for item `i`.
    fn store(&mut self, i: usize, out: &[f64]);

    /// Cost of one warp executing the accurate path with `lanes` active
    /// lanes (including the body's own global traffic).
    fn accurate_cost(&self, lanes: u32, spec: &DeviceSpec) -> CostProfile;

    /// Cost of gathering the declared inputs for `lanes` lanes.
    fn input_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new().global_read(lanes, (self.in_dim() * 8) as u32, AccessPattern::Coalesced)
    }

    /// Cost of writing the declared outputs for `lanes` lanes.
    fn store_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new().global_write(
            lanes,
            (self.out_dim() * 8) as u32,
            AccessPattern::Coalesced,
        )
    }

    /// `Some(reason)` when iACT cannot apply (the paper's MiniFE case:
    /// "hpac-offload only supports computations with uniform input sizes").
    fn iact_incompatibility(&self) -> Option<String> {
        None
    }
}

/// Execution options beyond the pragma surface (ablation switches).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOptions {
    /// Run the "semantically equivalent" serialized GPU TAF of Fig 4(c)
    /// instead of the relaxed-locality algorithm of Fig 4(d): one state
    /// machine per warp consumes the warp's items in loop order, and every
    /// lane's region execution serializes.
    pub serialized_taf: bool,
}

/// One active lane of a warp step.
#[derive(Debug, Clone, Copy)]
struct Lane {
    lane: u32,
    item: usize,
    tid: usize,
}

struct Geom {
    warp_size: u32,
    warps_per_block: u32,
    n_blocks: u32,
    steps: usize,
    item_lo: usize,
}

impl Geom {
    fn new(spec: &DeviceSpec, launch: &LaunchConfig, item_lo: usize) -> Self {
        Geom {
            warp_size: spec.warp_size,
            warps_per_block: launch.warps_per_block(spec),
            n_blocks: launch.n_blocks,
            steps: launch.steps(),
            item_lo,
        }
    }

    fn collect(
        &self,
        spec: &DeviceSpec,
        launch: &LaunchConfig,
        block: u32,
        warp: u32,
        step: usize,
        lanes: &mut Vec<Lane>,
    ) {
        lanes.clear();
        for lane in 0..self.warp_size {
            if let Some(idx) = launch.item_for(spec, block, warp, lane, step) {
                lanes.push(Lane {
                    lane,
                    item: self.item_lo + idx,
                    tid: launch.tid(spec, block, warp, lane),
                });
            }
        }
    }
}

/// Launch the region without approximation (the accurate baseline).
fn run_accurate(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    body: &mut dyn RegionBody,
) -> Result<KernelRecord, RegionError> {
    let mut exec = KernelExec::new(spec, launch, 0)?;
    let geom = Geom::new(spec, launch, 0);
    let mut lanes = Vec::with_capacity(spec.warp_size as usize);
    let mut out = vec![0.0; body.out_dim()];
    for b in 0..geom.n_blocks {
        for s in 0..geom.steps {
            for w in 0..geom.warps_per_block {
                geom.collect(spec, launch, b, w, s, &mut lanes);
                if lanes.is_empty() {
                    continue;
                }
                for l in &lanes {
                    body.accurate(l.item, &mut out);
                    body.store(l.item, &out);
                }
                let cost = body.accurate_cost(lanes.len() as u32, spec);
                exec.charge(b, w, &cost);
                exec.note_step(lanes.len() as u32, 0, 0, false);
            }
        }
    }
    Ok(exec.finish())
}

/// Launch an approximated grid-stride parallel-for.
///
/// `region = None` runs the accurate baseline with identical bookkeeping.
pub fn approx_parallel_for(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    region: Option<&ApproxRegion>,
    body: &mut dyn RegionBody,
) -> Result<KernelRecord, RegionError> {
    approx_parallel_for_opts(spec, launch, region, body, &ExecOptions::default())
}

/// [`approx_parallel_for`] with ablation options.
pub fn approx_parallel_for_opts(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    region: Option<&ApproxRegion>,
    body: &mut dyn RegionBody,
    opts: &ExecOptions,
) -> Result<KernelRecord, RegionError> {
    let Some(region) = region else {
        return run_accurate(spec, launch, body);
    };
    region.validate()?;
    if body.out_dim() == 0 {
        return Err(RegionError::Invalid("region must declare outputs".into()));
    }
    if let Technique::Iact(_) = region.technique {
        if let Some(reason) = body.iact_incompatibility() {
            return Err(RegionError::Invalid(format!(
                "iACT not applicable to this region: {reason}"
            )));
        }
        if body.in_dim() == 0 {
            return Err(RegionError::Invalid(
                "iACT requires the region to declare inputs".into(),
            ));
        }
    }

    let shared =
        shared_state::region_block_bytes(region, spec, launch, body.in_dim(), body.out_dim())
            .map_err(RegionError::Invalid)?;

    match region.technique {
        Technique::Perfo(p) => run_perfo(spec, launch, shared, &p, body),
        Technique::Taf(p) => {
            if opts.serialized_taf {
                run_taf_serialized(spec, launch, shared, &p, body)
            } else {
                run_taf(spec, launch, shared, &p, region.level, body)
            }
        }
        Technique::Iact(p) => run_iact(spec, launch, shared, &p, region.level, body),
    }
}

fn run_perfo(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    shared: usize,
    params: &PerfoParams,
    body: &mut dyn RegionBody,
) -> Result<KernelRecord, RegionError> {
    let (lo, hi) = perfo::bounds(params, launch.n_items);
    if lo >= hi {
        return Err(RegionError::Invalid(
            "perforation drops the entire iteration space".into(),
        ));
    }
    // ini/fini are loop-bound changes: the kernel iterates only [lo, hi).
    let eff = LaunchConfig {
        n_items: hi - lo,
        block_size: launch.block_size,
        n_blocks: launch.n_blocks,
        schedule: Schedule::GridStride,
    };
    let mut exec = KernelExec::new(spec, &eff, shared)?;
    let geom = Geom::new(spec, &eff, lo);
    let mut lanes = Vec::with_capacity(spec.warp_size as usize);
    let mut out = vec![0.0; body.out_dim()];

    for b in 0..geom.n_blocks {
        for s in 0..geom.steps {
            for w in 0..geom.warps_per_block {
                geom.collect(spec, &eff, b, w, s, &mut lanes);
                if lanes.is_empty() {
                    continue;
                }
                let mut n_exec = 0u32;
                let mut n_skip = 0u32;
                for l in &lanes {
                    if perfo::should_skip(params, l.item, l.item / spec.warp_size as usize) {
                        n_skip += 1;
                    } else {
                        body.accurate(l.item, &mut out);
                        body.store(l.item, &out);
                        n_exec += 1;
                    }
                }
                // Encounter-counter bookkeeping.
                let mut cost = CostProfile::new().flops(1.0);
                if n_exec > 0 {
                    // Non-herded patterns leave the warp's memory span
                    // fragmented and the SIMD issue width unchanged, so the
                    // warp pays the cost of its full active width; herded
                    // skips are all-or-nothing so this is equivalent there.
                    let effective = if params.herded {
                        n_exec
                    } else {
                        lanes.len() as u32
                    };
                    cost = cost.add(&body.accurate_cost(effective, spec));
                }
                exec.charge(b, w, &cost);
                exec.note_step(n_exec, 0, n_skip, n_exec > 0 && n_skip > 0);
            }
        }
    }
    Ok(exec.finish())
}

fn run_taf(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    shared: usize,
    params: &TafParams,
    level: HierarchyLevel,
    body: &mut dyn RegionBody,
) -> Result<KernelRecord, RegionError> {
    let mut exec = KernelExec::new(spec, launch, shared)?;
    let geom = Geom::new(spec, launch, 0);
    let out_dim = body.out_dim();
    let mut pool = TafPool::new(launch.total_threads(), out_dim, *params);

    let ws = spec.warp_size as usize;
    let mut lanes = Vec::with_capacity(ws);
    let mut want = vec![false; ws];
    let mut out = vec![0.0; out_dim];

    for b in 0..geom.n_blocks {
        for s in 0..geom.steps {
            // Block-level: tally votes across the whole block first.
            let block_decision = if level == HierarchyLevel::Block {
                let mut yes = 0u32;
                let mut active = 0u32;
                for w in 0..geom.warps_per_block {
                    geom.collect(spec, launch, b, w, s, &mut lanes);
                    active += lanes.len() as u32;
                    yes += lanes.iter().filter(|l| pool.wants_approx(l.tid)).count() as u32;
                }
                Some(hierarchy::group_decision(yes, active))
            } else {
                None
            };

            for w in 0..geom.warps_per_block {
                geom.collect(spec, launch, b, w, s, &mut lanes);
                if lanes.is_empty() {
                    continue;
                }
                for (k, l) in lanes.iter().enumerate() {
                    want[k] = pool.wants_approx(l.tid);
                }
                let decision = match block_decision {
                    Some(d) => d,
                    None => hierarchy::warp_decide(level, &want[..lanes.len()]),
                };

                let mut n_acc = 0u32;
                let mut n_apx = 0u32;
                for (k, l) in lanes.iter().enumerate() {
                    let approx = match decision {
                        WarpDecision::PerLane => want[k],
                        WarpDecision::GroupApprox => pool.can_approximate(l.tid),
                        WarpDecision::GroupAccurate => false,
                    };
                    if approx {
                        out.copy_from_slice(pool.last(l.tid));
                        body.store(l.item, &out);
                        pool.note_approx(l.tid);
                        n_apx += 1;
                    } else {
                        body.accurate(l.item, &mut out);
                        body.store(l.item, &out);
                        pool.observe(l.tid, &out);
                        n_acc += 1;
                    }
                }

                let mut cost = pool.activation_cost().add(&hierarchy::decision_cost(level));
                if n_acc > 0 {
                    cost = cost
                        .add(&body.accurate_cost(n_acc, spec))
                        .add(&pool.observe_cost());
                }
                if n_apx > 0 {
                    cost = cost
                        .add(&pool.predict_cost())
                        .add(&body.store_cost(n_apx, spec));
                }
                exec.charge(b, w, &cost);
                exec.note_step(n_acc, n_apx, 0, n_acc > 0 && n_apx > 0);
            }
        }
    }
    Ok(exec.finish())
}

/// Fig 4(c) ablation: the "semantically equivalent" GPU TAF. One state
/// machine per warp consumes the warp's items in loop order (spatial
/// locality preserved), and lanes execute one at a time while the rest of
/// the warp idles — the serialization the relaxed-locality design removes.
fn run_taf_serialized(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    shared: usize,
    params: &TafParams,
    body: &mut dyn RegionBody,
) -> Result<KernelRecord, RegionError> {
    let mut exec = KernelExec::new(spec, launch, shared)?;
    let geom = Geom::new(spec, launch, 0);
    let out_dim = body.out_dim();
    let n_warps = geom.n_blocks as usize * geom.warps_per_block as usize;
    let mut pool = TafPool::new(n_warps, out_dim, *params);

    let mut lanes = Vec::with_capacity(spec.warp_size as usize);
    let mut out = vec![0.0; out_dim];

    for b in 0..geom.n_blocks {
        for s in 0..geom.steps {
            for w in 0..geom.warps_per_block {
                geom.collect(spec, launch, b, w, s, &mut lanes);
                if lanes.is_empty() {
                    continue;
                }
                let wid = b as usize * geom.warps_per_block as usize + w as usize;
                let mut n_acc = 0u32;
                let mut n_apx = 0u32;
                let mut cost = pool.activation_cost();
                for l in &lanes {
                    if pool.wants_approx(wid) {
                        out.copy_from_slice(pool.last(wid));
                        body.store(l.item, &out);
                        pool.note_approx(wid);
                        n_apx += 1;
                        cost = cost
                            .add(&pool.predict_cost())
                            .add(&body.store_cost(1, spec));
                    } else {
                        body.accurate(l.item, &mut out);
                        body.store(l.item, &out);
                        pool.observe(wid, &out);
                        n_acc += 1;
                        // Serialized: each lane pays a full single-lane body.
                        cost = cost
                            .add(&body.accurate_cost(1, spec))
                            .add(&pool.observe_cost());
                    }
                }
                exec.charge(b, w, &cost);
                exec.note_step(n_acc, n_apx, 0, n_acc > 0 && n_apx > 0);
            }
        }
    }
    Ok(exec.finish())
}

fn run_iact(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    shared: usize,
    params: &IactParams,
    level: HierarchyLevel,
    body: &mut dyn RegionBody,
) -> Result<KernelRecord, RegionError> {
    let tables_per_warp = params
        .effective_tables_per_warp(spec.warp_size)
        .map_err(RegionError::Invalid)?;
    let lanes_per_table = spec.warp_size / tables_per_warp;

    let mut exec = KernelExec::new(spec, launch, shared)?;
    let geom = Geom::new(spec, launch, 0);
    let in_dim = body.in_dim();
    let out_dim = body.out_dim();
    let n_tables =
        geom.n_blocks as usize * geom.warps_per_block as usize * tables_per_warp as usize;
    let mut pool = IactPool::new(n_tables, in_dim, out_dim, *params);

    let ws = spec.warp_size as usize;
    let mut lanes = Vec::with_capacity(ws);
    let mut want = vec![false; ws];
    let mut in_cache = vec![0.0; ws * in_dim];
    let mut out_cache = vec![0.0; ws * out_dim];
    let mut probe_slot: Vec<Option<usize>> = vec![None; ws];
    let mut probe_dist = vec![f64::INFINITY; ws];
    let mut acc_mask = vec![false; ws];
    let mut out = vec![0.0; out_dim];
    let mut query = vec![0.0; in_dim];

    // Block-level vote tallies are collected warp-by-warp within the step
    // loop; for simplicity of bookkeeping we recompute probes per warp in a
    // single pass and, for block level, pre-tally with a cheap extra pass.
    for b in 0..geom.n_blocks {
        for s in 0..geom.steps {
            let block_decision = if level == HierarchyLevel::Block {
                let mut yes = 0u32;
                let mut active = 0u32;
                for w in 0..geom.warps_per_block {
                    geom.collect(spec, launch, b, w, s, &mut lanes);
                    let table_base = (b as usize * geom.warps_per_block as usize + w as usize)
                        * tables_per_warp as usize;
                    for l in &lanes {
                        let t = table_base + (l.lane / lanes_per_table) as usize;
                        body.inputs(l.item, &mut query);
                        let probe = pool.probe(t, &query);
                        active += 1;
                        if probe.hit(params.threshold) {
                            yes += 1;
                        }
                    }
                }
                Some(hierarchy::group_decision(yes, active))
            } else {
                None
            };

            for w in 0..geom.warps_per_block {
                geom.collect(spec, launch, b, w, s, &mut lanes);
                if lanes.is_empty() {
                    continue;
                }
                let table_base = (b as usize * geom.warps_per_block as usize + w as usize)
                    * tables_per_warp as usize;

                // Read phase: gather inputs, probe tables.
                for (k, l) in lanes.iter().enumerate() {
                    let t = table_base + (l.lane / lanes_per_table) as usize;
                    body.inputs(l.item, &mut in_cache[k * in_dim..(k + 1) * in_dim]);
                    let probe = pool.probe(t, &in_cache[k * in_dim..(k + 1) * in_dim]);
                    probe_slot[k] = probe.slot;
                    probe_dist[k] = probe.distance;
                    want[k] = probe.hit(params.threshold);
                }
                let decision = match block_decision {
                    Some(d) => d,
                    None => hierarchy::warp_decide(level, &want[..lanes.len()]),
                };

                let mut n_acc = 0u32;
                let mut n_apx = 0u32;
                for (k, l) in lanes.iter().enumerate() {
                    let t = table_base + (l.lane / lanes_per_table) as usize;
                    let approx = match decision {
                        WarpDecision::PerLane => want[k],
                        // A forced lane returns its *nearest* entry even
                        // beyond the threshold; with an empty table it must
                        // execute accurately.
                        WarpDecision::GroupApprox => probe_slot[k].is_some(),
                        WarpDecision::GroupAccurate => false,
                    };
                    acc_mask[k] = !approx;
                    if approx {
                        let slot = probe_slot[k].expect("approx lane must have an entry");
                        out.copy_from_slice(pool.output(t, slot));
                        pool.touch(t, slot);
                        body.store(l.item, &out);
                        n_apx += 1;
                    } else {
                        body.accurate(l.item, &mut out);
                        out_cache[k * out_dim..(k + 1) * out_dim].copy_from_slice(&out);
                        body.store(l.item, &out);
                        n_acc += 1;
                    }
                }

                // Write phase: one writer per table — the accurate lane whose
                // inputs were farthest from any cached entry (most novel).
                if n_acc > 0 {
                    for table_off in 0..tables_per_warp {
                        let t = table_base + table_off as usize;
                        let mut writer: Option<usize> = None;
                        let mut best = f64::NEG_INFINITY;
                        for (k, l) in lanes.iter().enumerate() {
                            if !acc_mask[k] || (l.lane / lanes_per_table) != table_off {
                                continue;
                            }
                            let d = probe_dist[k];
                            if d > best {
                                best = d;
                                writer = Some(k);
                            }
                        }
                        if let Some(k) = writer {
                            pool.insert(
                                t,
                                &in_cache[k * in_dim..(k + 1) * in_dim],
                                &out_cache[k * out_dim..(k + 1) * out_dim],
                            );
                        }
                    }
                }

                let mut cost = hierarchy::decision_cost(level)
                    .add(&body.input_cost(lanes.len() as u32, spec))
                    .add(&pool.search_cost());
                if n_acc > 0 {
                    cost = cost
                        .add(&body.accurate_cost(n_acc, spec))
                        .add(&pool.write_phase_cost(lanes_per_table));
                }
                if n_apx > 0 {
                    cost = cost
                        .add(&pool.hit_cost())
                        .add(&body.store_cost(n_apx, spec));
                }
                exec.charge(b, w, &cost);
                exec.note_step(n_acc, n_apx, 0, n_acc > 0 && n_apx > 0);
            }
        }
    }
    Ok(exec.finish())
}

/// A cooperative block task: one thread block computes one work item
/// (Binomial Options' one-block-per-option pattern). Decisions are
/// block-scoped — there is one AC state per block and the whole block takes
/// one path.
pub trait BlockTaskBody {
    /// Scalars in the declared task input.
    fn in_dim(&self) -> usize {
        0
    }

    /// Scalars in the declared task output.
    fn out_dim(&self) -> usize;

    /// Gather the task inputs.
    fn inputs(&self, _task: usize, _buf: &mut [f64]) {
        unreachable!("task declares no inputs; implement `inputs` to use iACT");
    }

    /// Execute the accurate task, writing outputs to `out`.
    fn accurate(&mut self, task: usize, out: &mut [f64]);

    /// Commit the task outputs.
    fn store(&mut self, task: usize, out: &[f64]);

    /// Per-warp cost of one accurate task execution (the block's warps
    /// cooperate; each warp is charged this profile).
    fn task_cost_per_warp(&self, spec: &DeviceSpec) -> CostProfile;

    /// Cost of gathering task inputs (one warp does it).
    fn input_cost(&self, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new().global_read(1, (self.in_dim() * 8) as u32, AccessPattern::Broadcast)
    }

    /// Cost of writing task outputs (one warp does it).
    fn store_cost(&self, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new().global_write(1, (self.out_dim() * 8) as u32, AccessPattern::Broadcast)
    }
}

/// Launch a block-cooperative kernel over `n_tasks` tasks with block-level
/// approximation. Blocks grid-stride over tasks: block `b` handles tasks
/// `b, b + n_blocks, ...`.
pub fn approx_block_tasks(
    spec: &DeviceSpec,
    n_tasks: usize,
    block_size: u32,
    n_blocks: u32,
    region: Option<&ApproxRegion>,
    body: &mut dyn BlockTaskBody,
) -> Result<KernelRecord, RegionError> {
    if n_tasks == 0 {
        return Err(RegionError::Invalid("no tasks to execute".into()));
    }
    let launch = LaunchConfig {
        n_items: n_tasks,
        block_size,
        n_blocks,
        schedule: Schedule::GridStride,
    };
    let out_dim = body.out_dim();
    let in_dim = body.in_dim();

    let (shared, technique, level) = match region {
        None => (0, None, HierarchyLevel::Block),
        Some(r) => {
            r.validate()?;
            match r.technique {
                Technique::Taf(_) | Technique::Iact(_) if r.level != HierarchyLevel::Block => {
                    return Err(RegionError::Invalid(
                        "block-cooperative tasks require level(block) decisions".into(),
                    ));
                }
                _ => {}
            }
            if let Technique::Iact(_) = r.technique {
                if in_dim == 0 {
                    return Err(RegionError::Invalid(
                        "iACT requires the task to declare inputs".into(),
                    ));
                }
            }
            // Block-task AC state: a single state machine / table per block.
            let bytes = match &r.technique {
                Technique::Taf(p) => {
                    p.hsize * shared_state::AC_SCALAR_BYTES
                        + out_dim * shared_state::AC_SCALAR_BYTES
                        + shared_state::TAF_CONTROL_BYTES
                }
                Technique::Iact(p) => shared_state::iact_block_bytes(1, 1, p, in_dim, out_dim),
                Technique::Perfo(_) => 4,
            } + shared_state::block_vote_bytes(HierarchyLevel::Block);
            (bytes, Some(r.technique), r.level)
        }
    };
    let _ = level;

    let mut exec = KernelExec::new(spec, &launch, shared)?;
    let warps = launch.warps_per_block(spec);
    let steps = n_tasks.div_ceil(n_blocks as usize);

    let mut taf_pool = match technique {
        Some(Technique::Taf(p)) => Some(TafPool::new(n_blocks as usize, out_dim, p)),
        _ => None,
    };
    let mut iact_pool = match technique {
        Some(Technique::Iact(p)) => Some(IactPool::new(n_blocks as usize, in_dim, out_dim, p)),
        _ => None,
    };
    let perfo_params = match technique {
        Some(Technique::Perfo(p)) => Some(p),
        _ => None,
    };

    let mut out = vec![0.0; out_dim];
    let mut query = vec![0.0; in_dim];

    for b in 0..n_blocks {
        for s in 0..steps {
            let task = b as usize + s * n_blocks as usize;
            if task >= n_tasks {
                continue;
            }

            // Decide the block's path.
            enum Path {
                Accurate,
                Approx,
                Skip,
            }
            let (path, iact_slot) = if let Some(p) = &perfo_params {
                if perfo::should_skip(p, task, s) {
                    (Path::Skip, None)
                } else {
                    (Path::Accurate, None)
                }
            } else if let Some(pool) = &taf_pool {
                if pool.wants_approx(b as usize) {
                    (Path::Approx, None)
                } else {
                    (Path::Accurate, None)
                }
            } else if let Some(pool) = &iact_pool {
                body.inputs(task, &mut query);
                let probe = pool.probe(b as usize, &query);
                if probe.hit(pool.params().threshold) {
                    (Path::Approx, probe.slot)
                } else {
                    (Path::Accurate, None)
                }
            } else {
                (Path::Accurate, None)
            };

            let decision_overhead = if technique.is_some() {
                hierarchy::decision_cost(HierarchyLevel::Block)
            } else {
                CostProfile::new()
            };

            match path {
                Path::Skip => {
                    for w in 0..warps {
                        exec.charge(b, w, &CostProfile::new().flops(1.0));
                    }
                    exec.note_step(0, 0, 1, false);
                }
                Path::Approx => {
                    if let Some(pool) = &mut taf_pool {
                        out.copy_from_slice(pool.last(b as usize));
                        pool.note_approx(b as usize);
                    } else if let Some(pool) = &mut iact_pool {
                        let slot = iact_slot.expect("iACT hit must carry a slot");
                        out.copy_from_slice(pool.output(b as usize, slot));
                        pool.touch(b as usize, slot);
                    }
                    body.store(task, &out);
                    let c = decision_overhead
                        .add(&body.input_cost(spec))
                        .add(&body.store_cost(spec));
                    for w in 0..warps {
                        exec.charge(b, w, &c);
                    }
                    exec.note_step(0, 1, 0, false);
                }
                Path::Accurate => {
                    body.accurate(task, &mut out);
                    body.store(task, &out);
                    if let Some(pool) = &mut taf_pool {
                        pool.observe(b as usize, &out);
                    } else if let Some(pool) = &mut iact_pool {
                        body.inputs(task, &mut query);
                        pool.insert(b as usize, &query, &out);
                    }
                    let mut c = decision_overhead.add(&body.task_cost_per_warp(spec));
                    if let Some(pool) = &iact_pool {
                        c = c.add(&pool.search_cost()).add(&pool.write_phase_cost(1));
                    }
                    for w in 0..warps {
                        exec.charge(b, w, &c);
                    }
                    exec.note_step(1, 0, 0, false);
                }
            }
        }
    }
    Ok(exec.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::PerfoKind;

    /// A simple square-root region over an input array.
    struct SqrtBody {
        input: Vec<f64>,
        output: Vec<f64>,
        calls: usize,
    }

    impl SqrtBody {
        fn new(n: usize) -> Self {
            SqrtBody {
                input: (0..n).map(|i| (i % 16) as f64).collect(),
                output: vec![-1.0; n],
                calls: 0,
            }
        }
    }

    impl RegionBody for SqrtBody {
        fn in_dim(&self) -> usize {
            1
        }
        fn out_dim(&self) -> usize {
            1
        }
        fn inputs(&self, i: usize, buf: &mut [f64]) {
            buf[0] = self.input[i];
        }
        fn accurate(&mut self, i: usize, out: &mut [f64]) {
            self.calls += 1;
            out[0] = (self.input[i] + 1.0).sqrt();
        }
        fn store(&mut self, i: usize, out: &[f64]) {
            self.output[i] = out[0];
        }
        fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
            CostProfile::new()
                .flops(4.0)
                .sfu(1.0)
                .global_read(lanes, 8, AccessPattern::Coalesced)
                .global_write(lanes, 8, AccessPattern::Coalesced)
        }
    }

    fn spec() -> DeviceSpec {
        DeviceSpec::v100()
    }

    const N: usize = 4096;

    fn launch(ipt: usize) -> LaunchConfig {
        LaunchConfig::for_items_per_thread(N, 128, ipt)
    }

    #[test]
    fn accurate_baseline_computes_everything() {
        let mut body = SqrtBody::new(N);
        let rec = approx_parallel_for(&spec(), &launch(1), None, &mut body).unwrap();
        assert_eq!(body.calls, N);
        assert!(body.output.iter().all(|&o| o >= 1.0));
        assert_eq!(rec.stats.accurate_lanes, N as u64);
        assert_eq!(rec.stats.approx_fraction(), 0.0);
    }

    #[test]
    fn taf_zero_threshold_on_varying_data_stays_accurate() {
        // Thread-consecutive items differ (period 17 is coprime to the
        // grid stride), so windows are never constant and threshold 0
        // never approximates.
        let mut body = SqrtBody::new(N);
        for (i, v) in body.input.iter_mut().enumerate() {
            *v = (i % 17) as f64;
        }
        let region = ApproxRegion::memo_out(2, 8, 0.0);
        let rec = approx_parallel_for(&spec(), &launch(8), Some(&region), &mut body).unwrap();
        assert_eq!(body.calls, N);
        assert_eq!(rec.stats.approx_lanes, 0);
    }

    #[test]
    fn taf_constant_data_approximates_heavily() {
        let mut body = SqrtBody::new(N);
        body.input.iter_mut().for_each(|v| *v = 7.0);
        let region = ApproxRegion::memo_out(2, 64, 0.1);
        let rec = approx_parallel_for(&spec(), &launch(64), Some(&region), &mut body).unwrap();
        assert!(
            rec.stats.approx_fraction() > 0.5,
            "fraction = {}",
            rec.stats.approx_fraction()
        );
        // Approximate outputs equal the memoized accurate value -> no error.
        let expect = (7.0f64 + 1.0).sqrt();
        assert!(body.output.iter().all(|&o| (o - expect).abs() < 1e-12));
    }

    #[test]
    fn taf_faster_than_accurate_on_stable_data() {
        let mut acc = SqrtBody::new(N);
        acc.input.iter_mut().for_each(|v| *v = 3.0);
        let base = approx_parallel_for(&spec(), &launch(64), None, &mut acc).unwrap();

        let mut apx = SqrtBody::new(N);
        apx.input.iter_mut().for_each(|v| *v = 3.0);
        let region = ApproxRegion::memo_out(1, 64, 0.1);
        let fast = approx_parallel_for(&spec(), &launch(64), Some(&region), &mut apx).unwrap();
        assert!(
            fast.timing.cycles < base.timing.cycles,
            "approx {} >= accurate {}",
            fast.timing.cycles,
            base.timing.cycles
        );
    }

    #[test]
    fn iact_exact_repeats_hit() {
        // Only 16 distinct inputs: small tables quickly cover them.
        let mut body = SqrtBody::new(N);
        let region = ApproxRegion::memo_in(8, 1e-9).tables_per_warp(1);
        let rec = approx_parallel_for(&spec(), &launch(32), Some(&region), &mut body).unwrap();
        assert!(rec.stats.approx_lanes > 0);
        // Exact-match hits mean zero output error.
        for (i, &o) in body.output.iter().enumerate() {
            let expect = (body.input[i] + 1.0).sqrt();
            assert!((o - expect).abs() < 1e-12, "item {i}");
        }
    }

    #[test]
    fn iact_zero_threshold_still_exact() {
        let mut body = SqrtBody::new(N);
        let region = ApproxRegion::memo_in(4, 0.0);
        let rec = approx_parallel_for(&spec(), &launch(16), Some(&region), &mut body).unwrap();
        // threshold 0 hits only identical inputs -> outputs identical.
        for (i, &o) in body.output.iter().enumerate() {
            let expect = (body.input[i] + 1.0).sqrt();
            assert!((o - expect).abs() < 1e-12);
        }
        let _ = rec;
    }

    #[test]
    fn iact_requires_inputs() {
        struct NoIn(Vec<f64>);
        impl RegionBody for NoIn {
            fn out_dim(&self) -> usize {
                1
            }
            fn accurate(&mut self, _i: usize, out: &mut [f64]) {
                out[0] = 1.0;
            }
            fn store(&mut self, i: usize, out: &[f64]) {
                self.0[i] = out[0];
            }
            fn accurate_cost(&self, _l: u32, _s: &DeviceSpec) -> CostProfile {
                CostProfile::new().flops(1.0)
            }
        }
        let mut body = NoIn(vec![0.0; 64]);
        let region = ApproxRegion::memo_in(4, 0.5);
        let lc = LaunchConfig::one_item_per_thread(64, 64);
        let err = approx_parallel_for(&spec(), &lc, Some(&region), &mut body).unwrap_err();
        assert!(matches!(err, RegionError::Invalid(_)));
    }

    #[test]
    fn iact_incompatibility_rejected() {
        struct Varying(Vec<f64>);
        impl RegionBody for Varying {
            fn in_dim(&self) -> usize {
                3
            }
            fn out_dim(&self) -> usize {
                1
            }
            fn inputs(&self, _i: usize, buf: &mut [f64]) {
                buf.fill(0.0);
            }
            fn accurate(&mut self, _i: usize, out: &mut [f64]) {
                out[0] = 1.0;
            }
            fn store(&mut self, i: usize, out: &[f64]) {
                self.0[i] = out[0];
            }
            fn accurate_cost(&self, _l: u32, _s: &DeviceSpec) -> CostProfile {
                CostProfile::new().flops(1.0)
            }
            fn iact_incompatibility(&self) -> Option<String> {
                Some("input sizes vary across threads (CSR rows)".into())
            }
        }
        let mut body = Varying(vec![0.0; 64]);
        let region = ApproxRegion::memo_in(4, 0.5);
        let lc = LaunchConfig::one_item_per_thread(64, 64);
        let err = approx_parallel_for(&spec(), &lc, Some(&region), &mut body).unwrap_err();
        match err {
            RegionError::Invalid(msg) => assert!(msg.contains("CSR")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn perfo_large_skips_most_items() {
        let mut body = SqrtBody::new(N);
        let region = ApproxRegion::perfo(PerfoKind::Large { m: 4 }).herded(false);
        let rec = approx_parallel_for(&spec(), &launch(1), Some(&region), &mut body).unwrap();
        assert_eq!(body.calls, N / 4);
        assert_eq!(rec.stats.skipped_lanes, (N - N / 4) as u64);
        // Skipped items keep their initial (stale) output.
        assert!(body.output.iter().filter(|&&o| o == -1.0).count() == N - N / 4);
    }

    #[test]
    fn herded_perfo_cheaper_than_naive() {
        let region_naive = ApproxRegion::perfo(PerfoKind::Small { m: 4 }).herded(false);
        let region_herd = ApproxRegion::perfo(PerfoKind::Small { m: 4 });
        let lc = launch(64);
        let mut b1 = SqrtBody::new(N);
        let naive = approx_parallel_for(&spec(), &lc, Some(&region_naive), &mut b1).unwrap();
        let mut b2 = SqrtBody::new(N);
        let herd = approx_parallel_for(&spec(), &lc, Some(&region_herd), &mut b2).unwrap();
        // Herded perforation issues strictly less work (whole warps skip);
        // wall-clock can coincide when the launch is latency-bound.
        assert!(
            herd.stats.total_issue_cycles < naive.stats.total_issue_cycles,
            "herded {} >= naive {}",
            herd.stats.total_issue_cycles,
            naive.stats.total_issue_cycles
        );
        assert!(herd.timing.cycles <= naive.timing.cycles);
        // Naive diverges, herded does not.
        assert!(naive.stats.divergent_steps > 0);
        assert_eq!(herd.stats.divergent_steps, 0);
    }

    #[test]
    fn ini_perfo_shrinks_bounds() {
        let mut body = SqrtBody::new(N);
        let region = ApproxRegion::perfo(PerfoKind::Ini { fraction: 0.5 });
        approx_parallel_for(&spec(), &launch(1), Some(&region), &mut body).unwrap();
        assert_eq!(body.calls, N / 2);
        assert!(body.output[..N / 2].iter().all(|&o| o == -1.0));
        assert!(body.output[N / 2..].iter().all(|&o| o >= 1.0));
    }

    #[test]
    fn fini_perfo_drops_tail() {
        let mut body = SqrtBody::new(N);
        let region = ApproxRegion::perfo(PerfoKind::Fini { fraction: 0.25 });
        approx_parallel_for(&spec(), &launch(1), Some(&region), &mut body).unwrap();
        assert_eq!(body.calls, 3 * N / 4);
        assert!(body.output[3 * N / 4..].iter().all(|&o| o == -1.0));
    }

    #[test]
    fn warp_level_eliminates_divergence() {
        // Mixed data: half the warps' lanes see constant input, half varying.
        let mk = |level: HierarchyLevel| {
            let mut body = SqrtBody::new(N);
            // Even lanes see a constant stream (stable), odd lanes a
            // strictly increasing one (never stable): thread level diverges.
            for (i, v) in body.input.iter_mut().enumerate() {
                *v = if i % 2 == 0 { 5.0 } else { i as f64 };
            }
            let region = ApproxRegion::memo_out(2, 32, 0.05).level(level);
            approx_parallel_for(&spec(), &launch(64), Some(&region), &mut body).unwrap()
        };
        let thread = mk(HierarchyLevel::Thread);
        let warp = mk(HierarchyLevel::Warp);
        assert!(thread.stats.divergent_steps > 0);
        assert_eq!(warp.stats.divergent_steps, 0);
    }

    #[test]
    fn serialized_taf_much_slower() {
        let mut b1 = SqrtBody::new(N);
        b1.input.iter_mut().for_each(|v| *v = 2.0);
        let region = ApproxRegion::memo_out(2, 16, 0.1);
        let relaxed = approx_parallel_for(&spec(), &launch(16), Some(&region), &mut b1).unwrap();

        let mut b2 = SqrtBody::new(N);
        b2.input.iter_mut().for_each(|v| *v = 2.0);
        let serialized = approx_parallel_for_opts(
            &spec(),
            &launch(16),
            Some(&region),
            &mut b2,
            &ExecOptions {
                serialized_taf: true,
            },
        )
        .unwrap();
        assert!(
            serialized.timing.cycles > 2.0 * relaxed.timing.cycles,
            "serialized {} vs relaxed {}",
            serialized.timing.cycles,
            relaxed.timing.cycles
        );
    }

    #[test]
    fn oversized_ac_state_rejected_at_launch() {
        let mut body = SqrtBody::new(N);
        // 1024 threads/block * 4096-entry window would blow shared memory.
        let region = ApproxRegion::memo_out(4096, 8, 0.5);
        let lc = LaunchConfig {
            n_items: N,
            block_size: 1024,
            n_blocks: 4,
            schedule: Schedule::GridStride,
        };
        let err = approx_parallel_for(&spec(), &lc, Some(&region), &mut body).unwrap_err();
        assert!(matches!(
            err,
            RegionError::Launch(gpu_sim::LaunchError::SharedMemExceeded { .. })
        ));
    }

    // --- block tasks -------------------------------------------------------

    struct TaskBody {
        params: Vec<f64>,
        prices: Vec<f64>,
        calls: usize,
    }

    impl TaskBody {
        fn new(n: usize) -> Self {
            TaskBody {
                params: (0..n).map(|i| (i % 8) as f64).collect(),
                prices: vec![0.0; n],
                calls: 0,
            }
        }
    }

    impl BlockTaskBody for TaskBody {
        fn in_dim(&self) -> usize {
            1
        }
        fn out_dim(&self) -> usize {
            1
        }
        fn inputs(&self, task: usize, buf: &mut [f64]) {
            buf[0] = self.params[task];
        }
        fn accurate(&mut self, task: usize, out: &mut [f64]) {
            self.calls += 1;
            out[0] = self.params[task] * 2.0 + 1.0;
        }
        fn store(&mut self, task: usize, out: &[f64]) {
            self.prices[task] = out[0];
        }
        fn task_cost_per_warp(&self, _spec: &DeviceSpec) -> CostProfile {
            CostProfile::new().flops(1000.0)
        }
    }

    #[test]
    fn block_tasks_accurate_baseline() {
        let mut body = TaskBody::new(256);
        let rec = approx_block_tasks(&spec(), 256, 128, 64, None, &mut body).unwrap();
        assert_eq!(body.calls, 256);
        assert!(body.prices.iter().all(|&p| p >= 1.0));
        assert_eq!(rec.stats.accurate_lanes, 256);
    }

    #[test]
    fn block_tasks_taf_approximates_repeats() {
        // Blocks grid-stride: block b sees tasks b, b+64, ... with params
        // (b%8), (b+64)%8 = same value -> constant output stream.
        let mut body = TaskBody::new(1024);
        let region = ApproxRegion::memo_out(2, 8, 0.01).level(HierarchyLevel::Block);
        let rec = approx_block_tasks(&spec(), 1024, 128, 64, Some(&region), &mut body).unwrap();
        assert!(rec.stats.approx_lanes > 0);
        // Every task's price still exact because repeated params repeat prices.
        for (t, &p) in body.prices.iter().enumerate() {
            assert!((p - (body.params[t] * 2.0 + 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn block_tasks_iact_hits_on_repeats() {
        let mut body = TaskBody::new(1024);
        let region = ApproxRegion::memo_in(8, 1e-9).level(HierarchyLevel::Block);
        let rec = approx_block_tasks(&spec(), 1024, 128, 64, Some(&region), &mut body).unwrap();
        assert!(rec.stats.approx_lanes > 0);
        assert!(body.calls < 1024);
        for (t, &p) in body.prices.iter().enumerate() {
            assert!((p - (body.params[t] * 2.0 + 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn block_tasks_reject_thread_level_memo() {
        let mut body = TaskBody::new(64);
        let region = ApproxRegion::memo_out(2, 8, 0.5); // thread level
        let err = approx_block_tasks(&spec(), 64, 128, 16, Some(&region), &mut body).unwrap_err();
        assert!(matches!(err, RegionError::Invalid(_)));
    }

    #[test]
    fn block_tasks_taf_cheaper_on_stable_stream() {
        let n = 2048;
        let mut b_acc = TaskBody::new(n);
        b_acc.params.iter_mut().for_each(|p| *p = 4.0);
        let base = approx_block_tasks(&spec(), n, 128, 64, None, &mut b_acc).unwrap();

        let mut b_apx = TaskBody::new(n);
        b_apx.params.iter_mut().for_each(|p| *p = 4.0);
        let region = ApproxRegion::memo_out(1, 16, 0.01).level(HierarchyLevel::Block);
        let fast = approx_block_tasks(&spec(), n, 128, 64, Some(&region), &mut b_apx).unwrap();
        assert!(fast.timing.cycles < base.timing.cycles);
    }
}
