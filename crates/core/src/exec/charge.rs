//! Charging and accounting for the execution pipeline.
//!
//! Two concerns live here, shared by every technique policy:
//!
//! * **Cost commitment** — [`MixedStep`] assembles the cost of a warp step
//!   whose lanes split between the accurate and approximate paths (the
//!   divergence-serialization charge of the GPU model) and commits it,
//!   together with the step statistics, to the block's
//!   [`BlockAccumulator`].
//! * **Output accounting** — [`StoreBuffer`] records one block's `store`
//!   calls when the parallel executor cannot commit them inline, preserving
//!   the exact call order of the sequential walk for later replay.

use gpu_sim::{BlockAccumulator, CostProfile};

/// Cost of one warp step with a mix of accurate and approximate lanes.
///
/// `base` is always charged (activation, decisions, table searches);
/// `accurate` is added when at least one lane ran the accurate path, and
/// `approx` when at least one lane took the approximate path — a warp that
/// serializes both paths pays both, which is exactly the divergence penalty
/// hierarchy-level decisions exist to avoid.
pub(crate) struct MixedStep {
    pub base: CostProfile,
    pub accurate: CostProfile,
    pub approx: CostProfile,
}

impl MixedStep {
    /// Charge the assembled cost to `warp` and record the step outcome.
    pub fn commit(self, acc: &mut BlockAccumulator, warp: u32, n_acc: u32, n_apx: u32) {
        let mut cost = self.base;
        if n_acc > 0 {
            cost = cost.add(&self.accurate);
        }
        if n_apx > 0 {
            cost = cost.add(&self.approx);
        }
        acc.charge(warp, &cost);
        acc.note_step(n_acc, n_apx, 0, n_acc > 0 && n_apx > 0);
    }
}

/// One block's buffered `store` calls: items in walk order with their
/// output vectors, replayed through `&mut` body access after the parallel
/// phase joins.
#[derive(Debug, Default)]
pub struct StoreBuffer {
    out_dim: usize,
    items: Vec<usize>,
    data: Vec<f64>,
}

impl StoreBuffer {
    pub fn new(out_dim: usize) -> Self {
        StoreBuffer {
            out_dim,
            items: Vec::new(),
            data: Vec::new(),
        }
    }

    pub fn push(&mut self, item: usize, out: &[f64]) {
        debug_assert_eq!(out.len(), self.out_dim);
        self.items.push(item);
        self.data.extend_from_slice(out);
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Apply the buffered stores in the order they were recorded.
    pub fn replay(&self, mut store: impl FnMut(usize, &[f64])) {
        for (k, &item) in self.items.iter().enumerate() {
            store(item, &self.data[k * self.out_dim..(k + 1) * self.out_dim]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    #[test]
    fn store_buffer_replays_in_order() {
        let mut buf = StoreBuffer::new(2);
        buf.push(5, &[1.0, 2.0]);
        buf.push(3, &[3.0, 4.0]);
        assert_eq!(buf.len(), 2);
        let mut seen = Vec::new();
        buf.replay(|item, out| seen.push((item, out.to_vec())));
        assert_eq!(seen, vec![(5, vec![1.0, 2.0]), (3, vec![3.0, 4.0])]);
    }

    #[test]
    fn mixed_step_charges_only_taken_paths() {
        let spec = DeviceSpec::v100();
        let step = || MixedStep {
            base: CostProfile::new().flops(1.0),
            accurate: CostProfile::new().flops(10.0),
            approx: CostProfile::new().flops(100.0),
        };

        let mut only_acc = BlockAccumulator::new(1, spec.costs);
        step().commit(&mut only_acc, 0, 2, 0);
        let mut both = BlockAccumulator::new(1, spec.costs);
        step().commit(&mut both, 0, 2, 2);

        assert!(both.stats().total_issue_cycles > only_acc.stats().total_issue_cycles);
        assert_eq!(only_acc.stats().divergent_steps, 0);
        assert_eq!(both.stats().divergent_steps, 1);
        assert_eq!(both.stats().accurate_lanes, 2);
        assert_eq!(both.stats().approx_lanes, 2);
    }
}
