//! Charging and accounting for the execution pipeline.
//!
//! Two concerns live here, shared by every technique policy:
//!
//! * **Cost memoization** — [`MixMemo`] caches the fully composed,
//!   device-resolved cost of a warp step per lane mix `(n_acc, n_apx)`.
//!   Policies assemble a mix's [`CostProfile`] at most once per executor
//!   task and replay the precomposed cycle sums on every later step with
//!   the same mix, which removes the profile summing and cycle dot products
//!   from the hot path without changing a single charged bit.
//! * **Output accounting** — [`StoreBuffer`] records buffered `store`
//!   calls when the parallel executor cannot commit them inline, preserving
//!   the exact call order of the sequential walk for later replay.

use gpu_sim::{CostParams, CostProfile, PrecomposedCost};

/// Memo of composed warp-step costs, keyed by the lane mix
/// `(n_acc, n_apx)` of the step (both in `0..=warp_size`).
///
/// Sound exactly when the policy's assembled profile is a pure function of
/// the mix — which holds for every slice policy: activation, decision,
/// search, and body costs depend only on fixed launch/body/params state and
/// on the lane counts in the key. (The serialized-TAF ablation accumulates
/// per-lane in decision order and therefore bypasses the memo.) The cached
/// value is [`PrecomposedCost`], so replaying a hit is two f64 adds per
/// accumulator field instead of a profile sum plus two dot products; the
/// adds are bit-identical to recomputing because `issue_cycles` /
/// `latency_cycles` are deterministic in (profile, params).
pub(crate) struct MixMemo {
    side: usize,
    slots: Vec<Option<PrecomposedCost>>,
    params: CostParams,
    // Plain (non-atomic) tallies: cheaper on the hot path than a gate
    // check, drained to obs counters at arena retirement when tracing is
    // on (`hit_stats` + `reset_stats`).
    hits: u64,
    misses: u64,
}

impl MixMemo {
    pub fn new(warp_size: u32, params: CostParams) -> Self {
        let side = warp_size as usize + 1;
        MixMemo {
            side,
            slots: vec![None; side * side],
            params,
            hits: 0,
            misses: 0,
        }
    }

    /// The precomposed cost for mix `(n_acc, n_apx)`, building (and
    /// caching) it from `assemble` on first sight of the mix.
    pub fn get_or(
        &mut self,
        n_acc: u32,
        n_apx: u32,
        assemble: impl FnOnce() -> CostProfile,
    ) -> PrecomposedCost {
        let i = n_acc as usize * self.side + n_apx as usize;
        if let Some(c) = self.slots[i] {
            self.hits += 1;
            return c;
        }
        self.misses += 1;
        let c = assemble().precompose(&self.params);
        self.slots[i] = Some(c);
        c
    }

    /// Lookup tallies since the last [`reset_stats`](Self::reset_stats).
    pub fn hit_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

/// One block's buffered `store` calls: items in walk order with their
/// output vectors, replayed through `&mut` body access after the parallel
/// phase joins.
#[derive(Debug, Default)]
pub struct StoreBuffer {
    out_dim: usize,
    items: Vec<usize>,
    data: Vec<f64>,
}

impl StoreBuffer {
    pub fn new(out_dim: usize) -> Self {
        StoreBuffer {
            out_dim,
            items: Vec::new(),
            data: Vec::new(),
        }
    }

    pub fn push(&mut self, item: usize, out: &[f64]) {
        debug_assert_eq!(out.len(), self.out_dim);
        self.items.push(item);
        self.data.extend_from_slice(out);
    }

    pub(crate) fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Drop the recorded stores, keeping the backing capacity for reuse.
    pub fn clear(&mut self) {
        self.items.clear();
        self.data.clear();
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Apply the buffered stores in the order they were recorded.
    pub fn replay(&self, mut store: impl FnMut(usize, &[f64])) {
        for (k, &item) in self.items.iter().enumerate() {
            store(item, &self.data[k * self.out_dim..(k + 1) * self.out_dim]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceSpec;

    #[test]
    fn store_buffer_replays_in_order() {
        let mut buf = StoreBuffer::new(2);
        buf.push(5, &[1.0, 2.0]);
        buf.push(3, &[3.0, 4.0]);
        assert_eq!(buf.len(), 2);
        let mut seen = Vec::new();
        buf.replay(|item, out| seen.push((item, out.to_vec())));
        assert_eq!(seen, vec![(5, vec![1.0, 2.0]), (3, vec![3.0, 4.0])]);
    }

    #[test]
    fn mix_memo_builds_once_and_matches_direct_precompose() {
        let spec = DeviceSpec::v100();
        let mut memo = MixMemo::new(spec.warp_size, spec.costs);
        let profile = CostProfile::new().flops(7.0).barriers(1.0);
        let mut builds = 0;
        let a = memo.get_or(3, 1, || {
            builds += 1;
            profile
        });
        let b = memo.get_or(3, 1, || {
            builds += 1;
            profile
        });
        assert_eq!(builds, 1, "second lookup must hit the cache");
        assert_eq!(a, b);
        assert_eq!(a, profile.precompose(&spec.costs));
        // A different mix is a different slot.
        let c = memo.get_or(1, 3, || CostProfile::new().flops(1.0));
        assert_ne!(a, c);
    }
}
