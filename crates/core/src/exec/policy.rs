//! The pluggable technique layer: one trait, one impl per approximation
//! technique.
//!
//! A [`TechniquePolicy`] owns everything technique-specific — activation
//! criteria, per-block approximation state, path execution, cost assembly —
//! while the walker in [`walk`](crate::exec::walk) owns everything
//! geometric. Policies operate *slice-wise*: the walker hands them one
//! [`WarpSlice`] per warp step (lane `k` executes item `item_base + k` as
//! thread `tid_base + k`) plus a vote segment to fill, instead of one
//! virtual call per lane. Adding a fourth technique to the runtime means
//! implementing this trait (~150 lines of pure decision logic) and adding
//! one dispatch arm in [`exec`](crate::exec); the grid walk, the hierarchy
//! voting machinery, the executors, and the accounting are inherited
//! unchanged.
//!
//! Policies must be block-decomposable: `block_state` returns state private
//! to one block (per-thread TAF machines, per-warp iACT tables, …), which
//! is what lets the parallel executor run blocks on separate threads
//! without locks and still match the sequential walk bit for bit.

use crate::exec::body::{BodyAccess, RegionBody};
use crate::exec::charge::MixMemo;
use crate::exec::walk::{Geom, WarpSlice};
use crate::hierarchy::{HierarchyLevel, WarpDecision};
use gpu_sim::{BlockAccumulator, DeviceSpec};

/// One warp step, as handed to a policy: the slice of active lanes, their
/// activation votes, and the resolved hierarchy decision. Policies never
/// see the block index: all block-scoped state lives in their `State`,
/// which is what keeps blocks decomposable.
pub(crate) struct WarpCtx<'a> {
    pub spec: &'a DeviceSpec,
    /// The active lanes of this step.
    pub slice: WarpSlice,
    /// Activation votes of lanes `0..slice.n`, filled by `vote_slice`.
    pub votes: &'a [bool],
    /// The resolved group decision for this step.
    pub decision: WarpDecision,
}

/// One approximation technique, as seen by the grid walker.
pub(crate) trait TechniquePolicy: Sync {
    /// Per-block approximation state (pools, scratch). Created fresh for
    /// every block; must not alias state of any other block.
    type State;

    /// The `level(...)` clause this region runs at. `Block` makes the
    /// walker pre-tally votes across the whole block.
    fn level(&self) -> HierarchyLevel {
        HierarchyLevel::Thread
    }

    /// Fresh state for `block`.
    fn block_state(&self, geom: &Geom, block: u32, body: &dyn RegionBody) -> Self::State;

    /// Fill the activation votes of the slice's lanes into
    /// `votes[..slice.n]`. Called once per warp step, immediately before
    /// [`TechniquePolicy::warp_step`] for the same slice (for block-level
    /// regions: once per warp during the block-wide tally pass), so
    /// policies may cache per-lane scratch (e.g. iACT probes) indexed by
    /// `slice.warp * warp_size + k`. The default is the no-criterion vote
    /// (all accurate).
    fn vote_slice(
        &self,
        _st: &mut Self::State,
        _slice: &WarpSlice,
        votes: &mut [bool],
        _body: &dyn RegionBody,
    ) {
        votes.fill(false);
    }

    /// Execute one warp step: resolve each lane against `ctx.decision`,
    /// run the accurate or approximate path through `access`, and charge
    /// the step's cost (composed through `memo`) and statistics to `acc`.
    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut Self::State,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        memo: &mut MixMemo,
        acc: &mut BlockAccumulator,
    );
}

/// The non-approximated baseline: every lane takes the accurate path.
pub(crate) struct AccuratePolicy;

/// Scratch for one block of the accurate baseline.
pub(crate) struct AccurateState {
    out: Vec<f64>,
}

impl TechniquePolicy for AccuratePolicy {
    type State = AccurateState;

    fn block_state(&self, _geom: &Geom, _block: u32, body: &dyn RegionBody) -> AccurateState {
        AccurateState {
            out: vec![0.0; body.out_dim()],
        }
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut AccurateState,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        memo: &mut MixMemo,
        acc: &mut BlockAccumulator,
    ) {
        let n = ctx.slice.n;
        for k in 0..n as usize {
            let item = ctx.slice.item_base + k;
            access.compute(item, &mut st.out);
            access.store(item, &st.out);
        }
        let cost = memo.get_or(n, 0, || access.body().accurate_cost(n, ctx.spec));
        acc.charge_precomposed(ctx.slice.warp, &cost);
        acc.note_step(n, 0, 0, false);
    }
}
