//! The pluggable technique layer: one trait, one impl per approximation
//! technique.
//!
//! A [`TechniquePolicy`] owns everything technique-specific — activation
//! criteria, per-block approximation state, path execution, cost assembly —
//! while the walker in [`walk`](crate::exec::walk) owns everything
//! geometric. Adding a fourth technique to the runtime means implementing
//! this trait (~150 lines of pure decision logic) and adding one dispatch
//! arm in [`exec`](crate::exec); the grid walk, the hierarchy voting
//! machinery, the executors, and the accounting are inherited unchanged.
//!
//! Policies must be block-decomposable: `block_state` returns state private
//! to one block (per-thread TAF machines, per-warp iACT tables, …), which
//! is what lets the parallel executor run blocks on separate threads
//! without locks and still match the sequential walk bit for bit.

use crate::exec::body::{BodyAccess, RegionBody};
use crate::exec::walk::{Geom, Lane};
use crate::hierarchy::{HierarchyLevel, WarpDecision};
use gpu_sim::{BlockAccumulator, DeviceSpec};

/// One warp step, as handed to a policy: position, active lanes, their
/// activation votes, and the resolved hierarchy decision. Policies never
/// see the block index: all block-scoped state lives in their `State`,
/// which is what keeps blocks decomposable.
pub(crate) struct WarpCtx<'a> {
    pub spec: &'a DeviceSpec,
    /// Warp index within the block.
    pub warp: u32,
    /// Active lanes of this step, in lane order.
    pub lanes: &'a [Lane],
    /// Activation votes of `lanes`, filled by `lane_vote` in the same order.
    pub votes: &'a [bool],
    /// The resolved group decision for this step.
    pub decision: WarpDecision,
}

/// One approximation technique, as seen by the grid walker.
pub(crate) trait TechniquePolicy: Sync {
    /// Per-block approximation state (pools, scratch). Created fresh for
    /// every block; must not alias state of any other block.
    type State;

    /// The `level(...)` clause this region runs at. `Block` makes the
    /// walker pre-tally votes across the whole block.
    fn level(&self) -> HierarchyLevel {
        HierarchyLevel::Thread
    }

    /// Fresh state for `block`.
    fn block_state(&self, geom: &Geom, block: u32, body: &dyn RegionBody) -> Self::State;

    /// Activation vote of lane `k` of the current warp. Called in lane
    /// order immediately before [`TechniquePolicy::warp_step`] for the same
    /// warp, so policies may cache per-lane scratch (e.g. iACT probes)
    /// indexed by `k`.
    fn lane_vote(&self, st: &mut Self::State, k: usize, lane: &Lane, body: &dyn RegionBody)
        -> bool;

    /// Execute one warp step: resolve each lane against `ctx.decision`,
    /// run the accurate or approximate path through `access`, and charge
    /// the step's cost and statistics to `acc`.
    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut Self::State,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    );
}

/// The non-approximated baseline: every lane takes the accurate path.
pub(crate) struct AccuratePolicy;

/// Scratch for one block of the accurate baseline.
pub(crate) struct AccurateState {
    out: Vec<f64>,
}

impl TechniquePolicy for AccuratePolicy {
    type State = AccurateState;

    fn block_state(&self, _geom: &Geom, _block: u32, body: &dyn RegionBody) -> AccurateState {
        AccurateState {
            out: vec![0.0; body.out_dim()],
        }
    }

    fn lane_vote(
        &self,
        _st: &mut AccurateState,
        _k: usize,
        _l: &Lane,
        _b: &dyn RegionBody,
    ) -> bool {
        false
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut AccurateState,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    ) {
        for l in ctx.lanes {
            access.compute(l.item, &mut st.out);
            access.store(l.item, &st.out);
        }
        let cost = access
            .body()
            .accurate_cost(ctx.lanes.len() as u32, ctx.spec);
        acc.charge(ctx.warp, &cost);
        acc.note_step(ctx.lanes.len() as u32, 0, 0, false);
    }
}
