//! The `ExecEngine`: one persistent worker pool unifying block-level and
//! config-level parallelism across the stack.
//!
//! Every site that fans work out over host threads — the block executor in
//! [`walk`](crate::exec) / `block_tasks`, the harness's configuration
//! sweeps, the tuner's batched evaluations — submits to this engine. The
//! engine fronts the process-wide pool of `rayon::pool`: workers are
//! spawned once, on first demand, and reused for every subsequent launch,
//! so the per-launch thread-spawn cost that used to tax many-small-kernel
//! applications (LULESH) is paid exactly once per process.
//!
//! Nesting is safe by construction: a task already running on the engine
//! that submits again (a config task whose kernel launches fan out blocks)
//! executes the nested batch inline on its own thread. One level of the
//! stack parallelizes, every level below it serializes — no
//! oversubscription, and no need to manually pin inner launches to the
//! sequential executor.
//!
//! # Worker-count precedence
//!
//! This is the single source of truth for how many threads work a batch:
//!
//! 1. an explicit [`ExecOptions::threads`] (`Some(n)`; `0` is clamped to
//!    1, larger values are honored verbatim — the equivalence tests force
//!    widths beyond the core count);
//! 2. else the `HPAC_THREADS` environment variable — must be a
//!    non-negative integer, where `0` means "all available cores"; any
//!    other value aborts with a clear error rather than silently falling
//!    back. Values above the core count are capped to it: fanning a batch
//!    wider than the machine only adds handoff overhead (measured 0.70x →
//!    0.54x on LULESH on a 1-core host), so the environment knob never
//!    oversubscribes;
//! 3. else every available core
//!    (`std::thread::available_parallelism()`).
//!
//! An unset or empty `HPAC_THREADS` counts as absent. The resolved width
//! is a *cap on threads touching one batch*, not a pool size: the pool
//! grows lazily to the largest width ever requested (bounded by
//! [`rayon::pool::MAX_WORKERS`]) and idle workers cost nothing.

use crate::exec::ExecOptions;
use rayon::pool::{self, WorkerPool};
use std::thread::ThreadId;

/// Handle to the process-wide execution engine.
pub fn engine() -> &'static ExecEngine {
    static ENGINE: ExecEngine = ExecEngine { _priv: () };
    &ENGINE
}

/// The facade over the persistent worker pool. Obtain it with [`engine`];
/// there is exactly one per process.
pub struct ExecEngine {
    _priv: (),
}

impl ExecEngine {
    /// Run `n` independent tasks with at most `width` threads (including
    /// the caller, which always participates) and return the results in
    /// task-index order. Called from inside another engine task, the batch
    /// runs inline on the calling thread — the nesting depth guard.
    pub fn run<R, F>(&self, n: usize, width: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if !hpac_obs::enabled() {
            return pool::global().run(n, width, f);
        }
        if pool::in_task() {
            // Nested submission: runs inline inside the enclosing task, so
            // it is already inside that task's span and busy time.
            hpac_obs::inc(hpac_obs::CounterId::EngineNestedInline);
            return pool::global().run(n, width, f);
        }
        hpac_obs::inc(hpac_obs::CounterId::EngineBatches);
        hpac_obs::mark(
            hpac_obs::Mark::QueueDepth,
            pool::global().busy_workers() as u64,
            n as u64,
        );
        let _batch = hpac_obs::span(hpac_obs::SpanId::EngineBatch, n as u64, width as u64);
        pool::global().run(n, width, |i| {
            let t0 = hpac_obs::now_ns();
            let _task = hpac_obs::span(hpac_obs::SpanId::EngineTask, i as u64, n as u64);
            let r = f(i);
            hpac_obs::inc(hpac_obs::CounterId::EngineTasks);
            hpac_obs::add(
                hpac_obs::CounterId::EngineBusyNs,
                hpac_obs::now_ns().saturating_sub(t0),
            );
            r
        })
    }

    /// Is the calling thread already inside an engine task? Submissions
    /// from such a context execute inline.
    pub fn is_nested(&self) -> bool {
        pool::in_task()
    }

    /// The batch width used when no explicit option narrows it:
    /// `HPAC_THREADS` capped at the core count, else every available core
    /// (precedence rules 2–3).
    pub fn default_width(&self) -> usize {
        let cores = available_cores();
        match env_threads() {
            Some(0) | None => cores,
            Some(n) => n.min(cores),
        }
    }

    /// The batch width `opts` resolves to (the full precedence chain).
    pub fn width_for(&self, opts: &ExecOptions) -> usize {
        match opts.threads {
            Some(n) => n.max(1),
            None => self.default_width(),
        }
    }

    /// Run a sequence of dependent *phases* as one engine submission.
    ///
    /// Phase `p` consists of `sizes[p]` independent tasks; `f(p, j)` runs
    /// task `j` of phase `p`. Tasks of phase `p` only start after every
    /// task of every earlier phase has finished (a barrier), but the
    /// submission as a whole claims from one task queue, so workers stay
    /// warm across the barriers instead of being re-dispatched per phase —
    /// the batching [`crate::exec::batch`] uses to submit LULESH's five
    /// dependent kernels per timestep at once.
    ///
    /// Deadlock-free by construction: the pool claims tasks in flat index
    /// order, so whichever thread holds the lowest unfinished index has all
    /// earlier phases complete and can always run; everyone else waits on
    /// the phase condvar. Results return per phase, in task order.
    pub fn run_phases<R, F>(&self, sizes: &[usize], width: usize, f: F) -> Vec<Vec<R>>
    where
        R: Send,
        F: Fn(usize, usize) -> R + Sync,
    {
        use std::sync::{Condvar, Mutex};

        let offsets: Vec<usize> = sizes
            .iter()
            .scan(0usize, |acc, &s| {
                let off = *acc;
                *acc += s;
                Some(off)
            })
            .collect();
        let total: usize = sizes.iter().sum();
        let progress = Mutex::new(vec![0usize; sizes.len()]);
        let barrier = Condvar::new();
        hpac_obs::add(hpac_obs::CounterId::EnginePhases, sizes.len() as u64);

        let mut flat = self
            .run(total, width, |idx| {
                let p = match offsets.binary_search(&idx) {
                    // Equal offsets from empty phases: take the last, the
                    // one whose tasks actually start at this offset.
                    Ok(mut i) => {
                        while i + 1 < offsets.len() && offsets[i + 1] == idx {
                            i += 1;
                        }
                        i
                    }
                    Err(i) => i - 1,
                };
                if p > 0 {
                    let wait_from = hpac_obs::enabled().then(hpac_obs::now_ns);
                    let mut done = progress.lock().unwrap();
                    while !(0..p).all(|q| done[q] == sizes[q]) {
                        done = barrier.wait(done).unwrap();
                    }
                    drop(done);
                    if let Some(t0) = wait_from {
                        hpac_obs::add(
                            hpac_obs::CounterId::EngineBarrierWaitNs,
                            hpac_obs::now_ns().saturating_sub(t0),
                        );
                    }
                }
                let r = f(p, idx - offsets[p]);
                {
                    let mut done = progress.lock().unwrap();
                    done[p] += 1;
                }
                barrier.notify_all();
                r
            })
            .into_iter();
        sizes
            .iter()
            .map(|&s| flat.by_ref().take(s).collect())
            .collect()
    }

    /// Workers spawned so far (grows lazily; never shrinks).
    pub fn spawned_workers(&self) -> usize {
        pool::global().spawned_workers()
    }

    /// Thread ids of the live pool workers, in worker-index order. The
    /// list only grows and existing entries never change — the observable
    /// behind the "no respawn" regression tests.
    pub fn worker_thread_ids(&self) -> Vec<ThreadId> {
        pool::global().worker_thread_ids()
    }

    /// The underlying pool, for callers that need the raw abstraction.
    pub fn pool(&self) -> &'static WorkerPool {
        pool::global()
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// Parse an `HPAC_THREADS` value: a non-negative integer, `0` meaning
/// "all available cores". Empty / whitespace-only means "unset".
pub fn parse_hpac_threads(raw: &str) -> Result<Option<usize>, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    trimmed.parse::<usize>().map(Some).map_err(|_| {
        format!(
            "HPAC_THREADS must be a non-negative integer \
             (0 = all cores, 1 = sequential, N = N workers); got {trimmed:?}"
        )
    })
}

/// The validated `HPAC_THREADS` environment override. A malformed value
/// aborts with the parse error — a typo must not silently run sequentially.
/// Read-validate-abort behavior comes from [`crate::env::strict_var`], the
/// helper shared by every `HPAC_*` variable.
pub(crate) fn env_threads() -> Option<usize> {
    crate::env::strict_var("HPAC_THREADS", parse_hpac_threads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_counts_and_zero() {
        assert_eq!(parse_hpac_threads("0"), Ok(Some(0)));
        assert_eq!(parse_hpac_threads("1"), Ok(Some(1)));
        assert_eq!(parse_hpac_threads(" 8 "), Ok(Some(8)));
    }

    #[test]
    fn parse_treats_empty_as_unset() {
        assert_eq!(parse_hpac_threads(""), Ok(None));
        assert_eq!(parse_hpac_threads("   "), Ok(None));
    }

    #[test]
    fn parse_rejects_garbage_with_clear_error() {
        for bad in ["four", "-2", "1.5", "8x", "0x10"] {
            let err = parse_hpac_threads(bad).unwrap_err();
            assert!(
                err.contains("HPAC_THREADS") && err.contains(bad),
                "unhelpful error for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn explicit_threads_beats_environment() {
        let opts = ExecOptions {
            threads: Some(3),
            ..ExecOptions::default()
        };
        assert_eq!(engine().width_for(&opts), 3);
        let zero = ExecOptions {
            threads: Some(0),
            ..ExecOptions::default()
        };
        assert_eq!(engine().width_for(&zero), 1);
    }

    #[test]
    fn engine_runs_batches_in_order() {
        let out = engine().run(100, 4, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn run_phases_barriers_between_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let finished = AtomicUsize::new(0);
        let sizes = [3usize, 0, 5, 1];
        let out = engine().run_phases(&sizes, 4, |p, j| {
            let before: usize = sizes[..p].iter().sum();
            assert!(
                finished.load(Ordering::SeqCst) >= before,
                "phase {p} task {j} started before earlier phases finished"
            );
            finished.fetch_add(1, Ordering::SeqCst);
            (p, j)
        });
        assert_eq!(out.len(), sizes.len());
        for (p, phase) in out.iter().enumerate() {
            assert_eq!(phase.len(), sizes[p]);
            for (j, v) in phase.iter().enumerate() {
                assert_eq!(*v, (p, j));
            }
        }
    }
}
