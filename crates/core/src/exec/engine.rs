//! The `ExecEngine`: one persistent worker pool unifying block-level and
//! config-level parallelism across the stack.
//!
//! Every site that fans work out over host threads — the block executor in
//! [`walk`](crate::exec) / `block_tasks`, the harness's configuration
//! sweeps, the tuner's batched evaluations — submits to this engine. The
//! engine fronts the process-wide pool of `rayon::pool`: workers are
//! spawned once, on first demand, and reused for every subsequent launch,
//! so the per-launch thread-spawn cost that used to tax many-small-kernel
//! applications (LULESH) is paid exactly once per process.
//!
//! Nesting is safe by construction: a task already running on the engine
//! that submits again (a config task whose kernel launches fan out blocks)
//! executes the nested batch inline on its own thread. One level of the
//! stack parallelizes, every level below it serializes — no
//! oversubscription, and no need to manually pin inner launches to the
//! sequential executor.
//!
//! # Worker-count precedence
//!
//! This is the single source of truth for how many threads work a batch:
//!
//! 1. an explicit [`ExecOptions::threads`] (`Some(n)`; `0` is clamped to
//!    1, larger values are honored verbatim — the equivalence tests force
//!    widths beyond the core count);
//! 2. else the `HPAC_THREADS` environment variable — must be a
//!    non-negative integer, where `0` means "all available cores"; any
//!    other value aborts with a clear error rather than silently falling
//!    back. Values above the core count are capped to it: fanning a batch
//!    wider than the machine only adds handoff overhead (measured 0.70x →
//!    0.54x on LULESH on a 1-core host), so the environment knob never
//!    oversubscribes;
//! 3. else every available core
//!    (`std::thread::available_parallelism()`).
//!
//! An unset or empty `HPAC_THREADS` counts as absent. The resolved width
//! is a *cap on threads touching one batch*, not a pool size: the pool
//! grows lazily to the largest width ever requested (bounded by
//! [`rayon::pool::MAX_WORKERS`]) and idle workers cost nothing.

use crate::exec::ExecOptions;
use rayon::pool::{self, WorkerPool};
use std::thread::ThreadId;

/// Handle to the process-wide execution engine.
pub fn engine() -> &'static ExecEngine {
    static ENGINE: ExecEngine = ExecEngine { _priv: () };
    &ENGINE
}

/// The facade over the persistent worker pool. Obtain it with [`engine`];
/// there is exactly one per process.
pub struct ExecEngine {
    _priv: (),
}

impl ExecEngine {
    /// Run `n` independent tasks with at most `width` threads (including
    /// the caller, which always participates) and return the results in
    /// task-index order. Called from inside another engine task, the batch
    /// runs inline on the calling thread — the nesting depth guard.
    pub fn run<R, F>(&self, n: usize, width: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        pool::global().run(n, width, f)
    }

    /// Is the calling thread already inside an engine task? Submissions
    /// from such a context execute inline.
    pub fn is_nested(&self) -> bool {
        pool::in_task()
    }

    /// The batch width used when no explicit option narrows it:
    /// `HPAC_THREADS` capped at the core count, else every available core
    /// (precedence rules 2–3).
    pub fn default_width(&self) -> usize {
        let cores = available_cores();
        match env_threads() {
            Some(0) | None => cores,
            Some(n) => n.min(cores),
        }
    }

    /// The batch width `opts` resolves to (the full precedence chain).
    pub fn width_for(&self, opts: &ExecOptions) -> usize {
        match opts.threads {
            Some(n) => n.max(1),
            None => self.default_width(),
        }
    }

    /// Workers spawned so far (grows lazily; never shrinks).
    pub fn spawned_workers(&self) -> usize {
        pool::global().spawned_workers()
    }

    /// Thread ids of the live pool workers, in worker-index order. The
    /// list only grows and existing entries never change — the observable
    /// behind the "no respawn" regression tests.
    pub fn worker_thread_ids(&self) -> Vec<ThreadId> {
        pool::global().worker_thread_ids()
    }

    /// The underlying pool, for callers that need the raw abstraction.
    pub fn pool(&self) -> &'static WorkerPool {
        pool::global()
    }
}

fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
}

/// Parse an `HPAC_THREADS` value: a non-negative integer, `0` meaning
/// "all available cores". Empty / whitespace-only means "unset".
pub fn parse_hpac_threads(raw: &str) -> Result<Option<usize>, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    trimmed.parse::<usize>().map(Some).map_err(|_| {
        format!(
            "HPAC_THREADS must be a non-negative integer \
             (0 = all cores, 1 = sequential, N = N workers); got {trimmed:?}"
        )
    })
}

/// The validated `HPAC_THREADS` environment override. A malformed value
/// aborts with the parse error — a typo must not silently run sequentially.
pub(crate) fn env_threads() -> Option<usize> {
    match std::env::var("HPAC_THREADS") {
        Err(_) => None,
        Ok(raw) => match parse_hpac_threads(&raw) {
            Ok(v) => v,
            Err(msg) => panic!("{msg}"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_counts_and_zero() {
        assert_eq!(parse_hpac_threads("0"), Ok(Some(0)));
        assert_eq!(parse_hpac_threads("1"), Ok(Some(1)));
        assert_eq!(parse_hpac_threads(" 8 "), Ok(Some(8)));
    }

    #[test]
    fn parse_treats_empty_as_unset() {
        assert_eq!(parse_hpac_threads(""), Ok(None));
        assert_eq!(parse_hpac_threads("   "), Ok(None));
    }

    #[test]
    fn parse_rejects_garbage_with_clear_error() {
        for bad in ["four", "-2", "1.5", "8x", "0x10"] {
            let err = parse_hpac_threads(bad).unwrap_err();
            assert!(
                err.contains("HPAC_THREADS") && err.contains(bad),
                "unhelpful error for {bad:?}: {err}"
            );
        }
    }

    #[test]
    fn explicit_threads_beats_environment() {
        let opts = ExecOptions {
            threads: Some(3),
            ..ExecOptions::default()
        };
        assert_eq!(engine().width_for(&opts), 3);
        let zero = ExecOptions {
            threads: Some(0),
            ..ExecOptions::default()
        };
        assert_eq!(engine().width_for(&zero), 1);
    }

    #[test]
    fn engine_runs_batches_in_order() {
        let out = engine().run(100, 4, |i| i * i);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }
}
