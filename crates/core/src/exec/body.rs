//! The body contracts the pipeline executes: [`RegionBody`] for grid-stride
//! parallel-for regions and [`BlockTaskBody`] for block-cooperative tasks.
//!
//! Both traits split a region into a *pure* compute path (`compute`, taking
//! `&self`, so independent blocks can run it from separate threads) and a
//! mutable commit path (`store`, taking `&mut self`). Under the
//! [`Executor::Sequential`](crate::exec::Executor::Sequential) reference
//! executor stores are applied inline as the walk proceeds; under
//! [`Executor::ParallelBlocks`](crate::exec::Executor::ParallelBlocks) the
//! commit route is chosen by the body's [`StoreVisibility`]: independent
//! bodies buffer each block's stores in a private [`StoreBuffer`] that the
//! runtime replays in block order after all blocks finish, while
//! block-private bodies (Leukocyte's in-kernel Jacobi, whose later sweeps
//! re-read their own block's stores) commit inline into per-block
//! partitioned state ([`BlockField`]) through
//! [`RegionBody::store_shared`]. Either way the call sequence each block
//! observes is exactly the sequential walk's, so outputs are
//! bit-identical.

use crate::exec::charge::StoreBuffer;
use gpu_sim::{AccessPattern, CostProfile, DeviceSpec};
use std::sync::atomic::{AtomicU64, Ordering};

/// What a region's `store` calls are allowed to feed back into `compute`
/// within one launch — the property that decides how the parallel executor
/// may commit them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreVisibility {
    /// `compute` never reads in-launch stores. The parallel executor
    /// buffers each block's stores privately and replays them in block
    /// order after the join (the default).
    #[default]
    Independent,
    /// `compute` reads in-launch stores, but only those of its *own* block,
    /// held in per-block private state reachable through `&self`
    /// ([`RegionBody::store_shared`], typically backed by a [`BlockField`]).
    /// Legal only under [`gpu_sim::Schedule::BlockLocal`]-style launches
    /// where blocks own disjoint item ranges (Leukocyte's in-kernel Jacobi
    /// sweeps); the parallel executor commits such stores inline from the
    /// block's worker, so the block sees its own writes immediately.
    BlockPrivate,
    /// `compute` reads stores of other blocks. Such bodies always execute
    /// on the sequential reference executor, because no buffering or
    /// partitioning discipline can make their cross-block timing
    /// deterministic.
    Global,
}

/// A field partitioned into per-block private slices, giving a region body
/// interior-mutable storage that independent block workers can write
/// concurrently.
///
/// The contract mirrors GPU shared/global memory under
/// `Schedule::BlockLocal`: while a kernel is in flight, the thread walking
/// block `b` reads and writes only `b`'s partition, so every index has at
/// most one writer. Values are stored as their IEEE-754 bit patterns in
/// relaxed atomics — races are impossible by construction and every
/// round-trip is bit-exact, which preserves the executor-equivalence
/// guarantee.
#[derive(Debug)]
pub struct BlockField {
    bits: Vec<AtomicU64>,
}

impl BlockField {
    /// A field initialized from `init` (e.g. the input image).
    pub fn from_vec(init: Vec<f64>) -> Self {
        BlockField {
            bits: init
                .into_iter()
                .map(|v| AtomicU64::new(v.to_bits()))
                .collect(),
        }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    // get/set are the per-scalar hot path of every field-backed body;
    // without the inline hint they stay opaque calls across the crate
    // boundary and field reads dominate the kernel walk.
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        f64::from_bits(self.bits[i].load(Ordering::Relaxed))
    }

    #[inline]
    pub fn set(&self, i: usize, v: f64) {
        self.bits[i].store(v.to_bits(), Ordering::Relaxed);
    }

    /// Snapshot a contiguous range (e.g. one block's slice after launch).
    pub fn to_vec(&self, range: std::ops::Range<usize>) -> Vec<f64> {
        range.map(|i| self.get(i)).collect()
    }
}

/// The annotated code region: the accurate path, its declared inputs and
/// outputs, and its cost.
///
/// This is the Rust rendering of what HPAC's Clang pass captures as a
/// closure. `compute` evaluates the region for one item; `store` commits an
/// output vector (both paths call it — the approximate path passes the
/// memoized vector). Cost methods describe one warp-step's work so the
/// engine can model kernel time:
///
/// * [`RegionBody::accurate_cost`] — the full accurate body including its
///   global reads and writes;
/// * [`RegionBody::input_cost`] — only the gathering of the declared region
///   inputs (paid by iACT's activation on every invocation);
/// * [`RegionBody::store_cost`] — only the write of the region outputs
///   (paid by the approximate path when it stores a memoized value).
pub trait RegionBody: Sync {
    /// Scalars in the declared region input (`in(...)` clause). 0 means the
    /// region declares no inputs (TAF and perforation need none).
    fn in_dim(&self) -> usize {
        0
    }

    /// Scalars in the declared region output (`out(...)` clause).
    fn out_dim(&self) -> usize;

    /// Gather the region inputs of item `i` into `buf` (`len == in_dim`).
    fn inputs(&self, _i: usize, _buf: &mut [f64]) {
        unreachable!("region declares no inputs; implement `inputs` to use iACT");
    }

    /// Execute the accurate path for item `i`, writing outputs to `out`.
    ///
    /// Must depend only on `i` and on state that existed before the kernel
    /// launch — not on what `store` wrote for other items — unless
    /// [`RegionBody::store_visibility`] says otherwise.
    fn compute(&self, i: usize, out: &mut [f64]);

    /// Commit the region outputs for item `i`.
    fn store(&mut self, i: usize, out: &[f64]);

    /// How this body's stores feed back into `compute` within one launch.
    /// [`StoreVisibility::Independent`] (the default) lets the parallel
    /// executor buffer stores per block; [`StoreVisibility::BlockPrivate`]
    /// commits them inline through [`RegionBody::store_shared`];
    /// [`StoreVisibility::Global`] pins the body to the sequential
    /// reference executor.
    fn store_visibility(&self) -> StoreVisibility {
        StoreVisibility::Independent
    }

    /// Commit the region outputs for item `i` through a shared reference,
    /// into per-block private state (see [`StoreVisibility::BlockPrivate`];
    /// typically a [`BlockField`] write). Required exactly when
    /// `store_visibility()` returns `BlockPrivate`; `store` should delegate
    /// here so both executors commit through the same path.
    fn store_shared(&self, _i: usize, _out: &[f64]) {
        unreachable!("store_shared is required for StoreVisibility::BlockPrivate bodies");
    }

    /// Cost of one warp executing the accurate path with `lanes` active
    /// lanes (including the body's own global traffic).
    fn accurate_cost(&self, lanes: u32, spec: &DeviceSpec) -> CostProfile;

    /// Cost of gathering the declared inputs for `lanes` lanes.
    fn input_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new().global_read(lanes, (self.in_dim() * 8) as u32, AccessPattern::Coalesced)
    }

    /// Cost of writing the declared outputs for `lanes` lanes.
    fn store_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new().global_write(
            lanes,
            (self.out_dim() * 8) as u32,
            AccessPattern::Coalesced,
        )
    }

    /// `Some(reason)` when iACT cannot apply (the paper's MiniFE case:
    /// "hpac-offload only supports computations with uniform input sizes").
    fn iact_incompatibility(&self) -> Option<String> {
        None
    }
}

/// A cooperative block task: one thread block computes one work item
/// (Binomial Options' one-block-per-option pattern). Decisions are
/// block-scoped — there is one AC state per block and the whole block takes
/// one path.
pub trait BlockTaskBody: Sync {
    /// Scalars in the declared task input.
    fn in_dim(&self) -> usize {
        0
    }

    /// Scalars in the declared task output.
    fn out_dim(&self) -> usize;

    /// Gather the task inputs.
    fn inputs(&self, _task: usize, _buf: &mut [f64]) {
        unreachable!("task declares no inputs; implement `inputs` to use iACT");
    }

    /// Execute the accurate task, writing outputs to `out`.
    ///
    /// Tasks are independent by the pattern's contract: `compute` must
    /// depend only on `task` and pre-launch state, never on what `store`
    /// committed for another task of the same launch.
    fn compute(&self, task: usize, out: &mut [f64]);

    /// Commit the task outputs.
    fn store(&mut self, task: usize, out: &[f64]);

    /// Per-warp cost of one accurate task execution (the block's warps
    /// cooperate; each warp is charged this profile).
    fn task_cost_per_warp(&self, spec: &DeviceSpec) -> CostProfile;

    /// Cost of gathering task inputs (one warp does it).
    fn input_cost(&self, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new().global_read(1, (self.in_dim() * 8) as u32, AccessPattern::Broadcast)
    }

    /// Cost of writing task outputs (one warp does it).
    fn store_cost(&self, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new().global_write(1, (self.out_dim() * 8) as u32, AccessPattern::Broadcast)
    }
}

/// How the walker reaches the body: the sequential executor commits stores
/// inline through `&mut`; the parallel executor shares the body immutably
/// and buffers stores per block.
pub(crate) trait BodyAccess {
    fn body(&self) -> &dyn RegionBody;
    fn compute(&mut self, i: usize, out: &mut [f64]);
    fn store(&mut self, i: usize, out: &[f64]);
}

pub(crate) struct InlineAccess<'a> {
    pub body: &'a mut dyn RegionBody,
}

impl BodyAccess for InlineAccess<'_> {
    fn body(&self) -> &dyn RegionBody {
        self.body
    }

    fn compute(&mut self, i: usize, out: &mut [f64]) {
        self.body.compute(i, out);
    }

    fn store(&mut self, i: usize, out: &[f64]) {
        self.body.store(i, out);
    }
}

pub(crate) struct BufferedAccess<'a> {
    pub body: &'a dyn RegionBody,
    /// Borrowed so one executor task can append several blocks' stores into
    /// a single buffer (replayed in block order after the join) instead of
    /// allocating a buffer per block.
    pub buffer: &'a mut StoreBuffer,
}

impl<'a> BufferedAccess<'a> {
    pub fn new(body: &'a dyn RegionBody, buffer: &'a mut StoreBuffer) -> Self {
        debug_assert_eq!(buffer.out_dim(), body.out_dim());
        BufferedAccess { body, buffer }
    }
}

impl BodyAccess for BufferedAccess<'_> {
    fn body(&self) -> &dyn RegionBody {
        self.body
    }

    fn compute(&mut self, i: usize, out: &mut [f64]) {
        self.body.compute(i, out);
    }

    fn store(&mut self, i: usize, out: &[f64]) {
        self.buffer.push(i, out);
    }
}

/// Parallel-executor access for [`StoreVisibility::BlockPrivate`] bodies:
/// stores commit inline through `store_shared` into the body's per-block
/// partitioned state, so the block's later `compute` calls see them.
pub(crate) struct SharedAccess<'a> {
    pub body: &'a dyn RegionBody,
}

impl BodyAccess for SharedAccess<'_> {
    fn body(&self) -> &dyn RegionBody {
        self.body
    }

    fn compute(&mut self, i: usize, out: &mut [f64]) {
        self.body.compute(i, out);
    }

    fn store(&mut self, i: usize, out: &[f64]) {
        self.body.store_shared(i, out);
    }
}
