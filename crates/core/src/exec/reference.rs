//! The retired per-lane walk, preserved verbatim as the bit-equivalence
//! oracle for the slice-wise walker.
//!
//! Everything in this module is the pre-vectorization runtime: one virtual
//! `lane_vote` call per lane, a fresh [`RefWarpLanes`] gather per warp step
//! (including the double collect+vote the block-level path used to do), the
//! per-step [`MixedStep`] cost assembly with no memoization, and a fresh
//! `BlockAccumulator` per block. [`reference_parallel_for`] drives it
//! sequentially through the same dispatch (`resolve`) as the production
//! entry point, so the property tests at the bottom can assert that the
//! slice-wise walk — sequential or fanned out — reproduces the old walk's
//! outputs, costs, and statistics bit for bit.

use crate::exec::body::{BodyAccess, InlineAccess, RegionBody};
use crate::exec::walk::Geom;
use crate::exec::{resolve, ResolvedPolicy};
use crate::hierarchy::{self, HierarchyLevel, WarpDecision};
use crate::iact::IactPool;
use crate::params::{IactParams, PerfoParams, TafParams};
use crate::perfo;
use crate::region::{ApproxRegion, RegionError};
use crate::taf::TafPool;
use gpu_sim::{BlockAccumulator, CostProfile, DeviceSpec, KernelExec, KernelRecord, LaunchConfig};

/// One active lane of a warp step (the old walk's unit of work).
#[derive(Debug, Clone, Copy)]
struct Lane {
    lane: u32,
    warp: u32,
    item: usize,
    tid: usize,
}

/// The old lane-buffer cursor: collects a warp's active lanes through one
/// `item_for` call per lane and their votes through one `lane_vote` call
/// per lane.
struct RefWarpLanes {
    lanes: Vec<Lane>,
    votes: Vec<bool>,
}

impl RefWarpLanes {
    fn new(warp_size: u32) -> Self {
        RefWarpLanes {
            lanes: Vec::with_capacity(warp_size as usize),
            votes: vec![false; warp_size as usize],
        }
    }

    fn collect(&mut self, geom: &Geom, block: u32, warp: u32, step: usize) {
        self.lanes.clear();
        for lane in 0..geom.spec.warp_size {
            if let Some(idx) = geom.launch.item_for(&geom.spec, block, warp, lane, step) {
                self.lanes.push(Lane {
                    lane,
                    warp,
                    item: geom.item_lo + idx,
                    tid: geom.launch.tid(&geom.spec, block, warp, lane),
                });
            }
        }
    }

    fn fill_votes<P: RefPolicy + ?Sized>(
        &mut self,
        policy: &P,
        st: &mut P::State,
        body: &dyn RegionBody,
    ) {
        let (lanes, votes) = (&self.lanes, &mut self.votes);
        for (k, l) in lanes.iter().enumerate() {
            votes[k] = policy.lane_vote(st, k, l, body);
        }
    }

    fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    fn votes(&self) -> &[bool] {
        &self.votes[..self.lanes.len()]
    }
}

struct RefWarpCtx<'a> {
    spec: &'a DeviceSpec,
    warp: u32,
    lanes: &'a [Lane],
    votes: &'a [bool],
    decision: WarpDecision,
}

/// The old per-lane policy trait: one `lane_vote` virtual call per lane.
trait RefPolicy {
    type State;

    fn level(&self) -> HierarchyLevel {
        HierarchyLevel::Thread
    }

    fn block_state(&self, geom: &Geom, block: u32, body: &dyn RegionBody) -> Self::State;

    fn lane_vote(&self, st: &mut Self::State, k: usize, lane: &Lane, body: &dyn RegionBody)
        -> bool;

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut Self::State,
        ctx: &RefWarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    );
}

/// The old unmemoized per-step cost assembly.
struct MixedStep {
    base: CostProfile,
    accurate: CostProfile,
    approx: CostProfile,
}

impl MixedStep {
    fn commit(self, acc: &mut BlockAccumulator, warp: u32, n_acc: u32, n_apx: u32) {
        let mut cost = self.base;
        if n_acc > 0 {
            cost = cost.add(&self.accurate);
        }
        if n_apx > 0 {
            cost = cost.add(&self.approx);
        }
        acc.charge(warp, &cost);
        acc.note_step(n_acc, n_apx, 0, n_acc > 0 && n_apx > 0);
    }
}

/// The old block walk, double block-level vote pass and all.
fn ref_walk_block<P, A>(geom: &Geom, policy: &P, access: &mut A, block: u32) -> BlockAccumulator
where
    P: RefPolicy + ?Sized,
    A: BodyAccess,
{
    let mut acc = BlockAccumulator::new(geom.warps_per_block as usize, geom.spec.costs);
    let mut st = policy.block_state(geom, block, access.body());
    let mut cur = RefWarpLanes::new(geom.spec.warp_size);

    for s in 0..geom.steps {
        let block_decision = if policy.level() == HierarchyLevel::Block {
            let mut yes = 0u32;
            let mut active = 0u32;
            for w in 0..geom.warps_per_block {
                cur.collect(geom, block, w, s);
                cur.fill_votes(policy, &mut st, access.body());
                active += cur.lanes().len() as u32;
                yes += cur.votes().iter().filter(|&&v| v).count() as u32;
            }
            Some(hierarchy::group_decision(yes, active))
        } else {
            None
        };

        for w in 0..geom.warps_per_block {
            cur.collect(geom, block, w, s);
            if cur.lanes().is_empty() {
                continue;
            }
            cur.fill_votes(policy, &mut st, access.body());
            let ctx = RefWarpCtx {
                spec: &geom.spec,
                warp: w,
                lanes: cur.lanes(),
                votes: cur.votes(),
                decision: block_decision
                    .unwrap_or_else(|| hierarchy::warp_decide(policy.level(), cur.votes())),
            };
            policy.warp_step(&mut st, &ctx, access, &mut acc);
        }
    }
    acc
}

struct RefAccurate;

struct RefAccurateState {
    out: Vec<f64>,
}

impl RefPolicy for RefAccurate {
    type State = RefAccurateState;

    fn block_state(&self, _geom: &Geom, _block: u32, body: &dyn RegionBody) -> RefAccurateState {
        RefAccurateState {
            out: vec![0.0; body.out_dim()],
        }
    }

    fn lane_vote(
        &self,
        _st: &mut RefAccurateState,
        _k: usize,
        _l: &Lane,
        _b: &dyn RegionBody,
    ) -> bool {
        false
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut RefAccurateState,
        ctx: &RefWarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    ) {
        for l in ctx.lanes {
            access.compute(l.item, &mut st.out);
            access.store(l.item, &st.out);
        }
        let cost = access
            .body()
            .accurate_cost(ctx.lanes.len() as u32, ctx.spec);
        acc.charge(ctx.warp, &cost);
        acc.note_step(ctx.lanes.len() as u32, 0, 0, false);
    }
}

struct RefPerfo {
    params: PerfoParams,
}

impl RefPolicy for RefPerfo {
    type State = RefAccurateState;

    fn block_state(&self, _geom: &Geom, _block: u32, body: &dyn RegionBody) -> RefAccurateState {
        RefAccurateState {
            out: vec![0.0; body.out_dim()],
        }
    }

    fn lane_vote(
        &self,
        _st: &mut RefAccurateState,
        _k: usize,
        _l: &Lane,
        _b: &dyn RegionBody,
    ) -> bool {
        false
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut RefAccurateState,
        ctx: &RefWarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    ) {
        let mut n_exec = 0u32;
        let mut n_skip = 0u32;
        for l in ctx.lanes {
            if perfo::should_skip(&self.params, l.item, l.item / ctx.spec.warp_size as usize) {
                n_skip += 1;
            } else {
                access.compute(l.item, &mut st.out);
                access.store(l.item, &st.out);
                n_exec += 1;
            }
        }
        let mut cost = CostProfile::new().flops(1.0);
        if n_exec > 0 {
            let effective = if self.params.herded {
                n_exec
            } else {
                ctx.lanes.len() as u32
            };
            cost = cost.add(&access.body().accurate_cost(effective, ctx.spec));
        }
        acc.charge(ctx.warp, &cost);
        acc.note_step(n_exec, 0, n_skip, n_exec > 0 && n_skip > 0);
    }
}

struct RefTaf {
    params: TafParams,
    level: HierarchyLevel,
}

struct RefTafState {
    pool: TafPool,
    block_base: usize,
    out: Vec<f64>,
}

impl RefTafState {
    fn local(&self, lane: &Lane) -> usize {
        lane.tid - self.block_base
    }
}

impl RefPolicy for RefTaf {
    type State = RefTafState;

    fn level(&self) -> HierarchyLevel {
        self.level
    }

    fn block_state(&self, geom: &Geom, block: u32, body: &dyn RegionBody) -> RefTafState {
        let out_dim = body.out_dim();
        RefTafState {
            pool: TafPool::new(geom.launch.block_size as usize, out_dim, self.params),
            block_base: block as usize * geom.launch.block_size as usize,
            out: vec![0.0; out_dim],
        }
    }

    fn lane_vote(&self, st: &mut RefTafState, _k: usize, l: &Lane, _b: &dyn RegionBody) -> bool {
        st.pool.wants_approx(st.local(l))
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut RefTafState,
        ctx: &RefWarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    ) {
        let mut n_acc = 0u32;
        let mut n_apx = 0u32;
        for (k, l) in ctx.lanes.iter().enumerate() {
            let s = st.local(l);
            let approx = match ctx.decision {
                WarpDecision::PerLane => ctx.votes[k],
                WarpDecision::GroupApprox => st.pool.can_approximate(s),
                WarpDecision::GroupAccurate => false,
            };
            if approx {
                st.out.copy_from_slice(st.pool.last(s));
                access.store(l.item, &st.out);
                st.pool.note_approx(s);
                n_apx += 1;
            } else {
                access.compute(l.item, &mut st.out);
                access.store(l.item, &st.out);
                st.pool.observe(s, &st.out);
                n_acc += 1;
            }
        }

        let body = access.body();
        MixedStep {
            base: st
                .pool
                .activation_cost()
                .add(&hierarchy::decision_cost(self.level)),
            accurate: body
                .accurate_cost(n_acc.max(1), ctx.spec)
                .add(&st.pool.observe_cost()),
            approx: st
                .pool
                .predict_cost()
                .add(&body.store_cost(n_apx.max(1), ctx.spec)),
        }
        .commit(acc, ctx.warp, n_acc, n_apx);
    }
}

struct RefSerializedTaf {
    params: TafParams,
}

struct RefSerializedTafState {
    pool: TafPool,
    out: Vec<f64>,
}

impl RefPolicy for RefSerializedTaf {
    type State = RefSerializedTafState;

    fn block_state(
        &self,
        geom: &Geom,
        _block: u32,
        body: &dyn RegionBody,
    ) -> RefSerializedTafState {
        let out_dim = body.out_dim();
        RefSerializedTafState {
            pool: TafPool::new(geom.warps_per_block as usize, out_dim, self.params),
            out: vec![0.0; out_dim],
        }
    }

    fn lane_vote(
        &self,
        _st: &mut RefSerializedTafState,
        _k: usize,
        _l: &Lane,
        _b: &dyn RegionBody,
    ) -> bool {
        false
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut RefSerializedTafState,
        ctx: &RefWarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    ) {
        let wid = ctx.warp as usize;
        let mut n_acc = 0u32;
        let mut n_apx = 0u32;
        let mut cost = st.pool.activation_cost();
        for l in ctx.lanes {
            if st.pool.wants_approx(wid) {
                st.out.copy_from_slice(st.pool.last(wid));
                access.store(l.item, &st.out);
                st.pool.note_approx(wid);
                n_apx += 1;
                cost = cost
                    .add(&st.pool.predict_cost())
                    .add(&access.body().store_cost(1, ctx.spec));
            } else {
                access.compute(l.item, &mut st.out);
                access.store(l.item, &st.out);
                st.pool.observe(wid, &st.out);
                n_acc += 1;
                cost = cost
                    .add(&access.body().accurate_cost(1, ctx.spec))
                    .add(&st.pool.observe_cost());
            }
        }
        acc.charge(ctx.warp, &cost);
        acc.note_step(n_acc, n_apx, 0, n_acc > 0 && n_apx > 0);
    }
}

struct RefIact {
    params: IactParams,
    level: HierarchyLevel,
    tables_per_warp: u32,
    lanes_per_table: u32,
}

struct RefIactState {
    pool: IactPool,
    in_cache: Vec<f64>,
    out_cache: Vec<f64>,
    probe_slot: Vec<Option<usize>>,
    probe_dist: Vec<f64>,
    acc_mask: Vec<bool>,
    out: Vec<f64>,
}

impl RefIact {
    fn table(&self, warp_in_block: u32, lane: &Lane) -> usize {
        (warp_in_block * self.tables_per_warp + lane.lane / self.lanes_per_table) as usize
    }
}

impl RefPolicy for RefIact {
    type State = RefIactState;

    fn level(&self) -> HierarchyLevel {
        self.level
    }

    fn block_state(&self, geom: &Geom, _block: u32, body: &dyn RegionBody) -> RefIactState {
        let ws = geom.spec.warp_size as usize;
        let in_dim = body.in_dim();
        let out_dim = body.out_dim();
        let n_tables = geom.warps_per_block as usize * self.tables_per_warp as usize;
        RefIactState {
            pool: IactPool::new(n_tables, in_dim, out_dim, self.params),
            in_cache: vec![0.0; ws * in_dim],
            out_cache: vec![0.0; ws * out_dim],
            probe_slot: vec![None; ws],
            probe_dist: vec![f64::INFINITY; ws],
            acc_mask: vec![false; ws],
            out: vec![0.0; out_dim],
        }
    }

    fn lane_vote(&self, st: &mut RefIactState, k: usize, l: &Lane, body: &dyn RegionBody) -> bool {
        let in_dim = st.pool.in_dim();
        let t = self.table(l.warp, l);
        body.inputs(l.item, &mut st.in_cache[k * in_dim..(k + 1) * in_dim]);
        let probe = st.pool.probe(t, &st.in_cache[k * in_dim..(k + 1) * in_dim]);
        st.probe_slot[k] = probe.slot;
        st.probe_dist[k] = probe.distance;
        probe.hit(self.params.threshold)
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut RefIactState,
        ctx: &RefWarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    ) {
        let in_dim = st.pool.in_dim();
        let out_dim = st.out.len();

        let mut n_acc = 0u32;
        let mut n_apx = 0u32;
        for (k, l) in ctx.lanes.iter().enumerate() {
            let t = self.table(ctx.warp, l);
            let approx = match ctx.decision {
                WarpDecision::PerLane => ctx.votes[k],
                WarpDecision::GroupApprox => st.probe_slot[k].is_some(),
                WarpDecision::GroupAccurate => false,
            };
            st.acc_mask[k] = !approx;
            if approx {
                let slot = st.probe_slot[k].expect("approx lane must have an entry");
                st.out.copy_from_slice(st.pool.output(t, slot));
                st.pool.touch(t, slot);
                access.store(l.item, &st.out);
                n_apx += 1;
            } else {
                access.compute(l.item, &mut st.out);
                st.out_cache[k * out_dim..(k + 1) * out_dim].copy_from_slice(&st.out);
                access.store(l.item, &st.out);
                n_acc += 1;
            }
        }

        if n_acc > 0 {
            for table_off in 0..self.tables_per_warp {
                let t = (ctx.warp * self.tables_per_warp + table_off) as usize;
                let mut writer: Option<usize> = None;
                let mut best = f64::NEG_INFINITY;
                for (k, l) in ctx.lanes.iter().enumerate() {
                    if !st.acc_mask[k] || (l.lane / self.lanes_per_table) != table_off {
                        continue;
                    }
                    let d = st.probe_dist[k];
                    if d > best {
                        best = d;
                        writer = Some(k);
                    }
                }
                if let Some(k) = writer {
                    st.pool.insert(
                        t,
                        &st.in_cache[k * in_dim..(k + 1) * in_dim],
                        &st.out_cache[k * out_dim..(k + 1) * out_dim],
                    );
                }
            }
        }

        let body = access.body();
        MixedStep {
            base: hierarchy::decision_cost(self.level)
                .add(&body.input_cost(ctx.lanes.len() as u32, ctx.spec))
                .add(&st.pool.search_cost()),
            accurate: body
                .accurate_cost(n_acc.max(1), ctx.spec)
                .add(&st.pool.write_phase_cost(self.lanes_per_table)),
            approx: st
                .pool
                .hit_cost()
                .add(&body.store_cost(n_apx.max(1), ctx.spec)),
        }
        .commit(acc, ctx.warp, n_acc, n_apx);
    }
}

/// The oracle entry point: the old walk, sequential, behind the production
/// dispatch. Bit-comparable against `approx_parallel_for_opts` on any
/// executor.
pub(crate) fn reference_parallel_for(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    region: Option<&ApproxRegion>,
    body: &mut dyn RegionBody,
    serialized_taf: bool,
) -> Result<KernelRecord, RegionError> {
    let rk = resolve(spec, launch, region, body, serialized_taf)?;
    let mut exec = KernelExec::new(spec, &rk.launch, rk.shared)?;
    let geom = Geom::new(spec, &rk.launch, rk.item_lo);
    match &rk.policy {
        ResolvedPolicy::Accurate(_) => ref_execute(&geom, &RefAccurate, body, &mut exec),
        ResolvedPolicy::Perfo(p) => {
            ref_execute(&geom, &RefPerfo { params: p.params }, body, &mut exec)
        }
        ResolvedPolicy::Taf(p) => ref_execute(
            &geom,
            &RefTaf {
                params: p.params,
                level: p.level,
            },
            body,
            &mut exec,
        ),
        ResolvedPolicy::SerializedTaf(p) => ref_execute(
            &geom,
            &RefSerializedTaf { params: p.params },
            body,
            &mut exec,
        ),
        ResolvedPolicy::Iact(p) => ref_execute(
            &geom,
            &RefIact {
                params: p.params,
                level: p.level,
                tables_per_warp: p.tables_per_warp,
                lanes_per_table: p.lanes_per_table,
            },
            body,
            &mut exec,
        ),
    }
    Ok(exec.finish())
}

fn ref_execute<P: RefPolicy>(
    geom: &Geom,
    policy: &P,
    body: &mut dyn RegionBody,
    exec: &mut KernelExec,
) {
    for b in 0..geom.n_blocks {
        let mut access = InlineAccess { body: &mut *body };
        let acc = ref_walk_block(geom, policy, &mut access, b);
        exec.merge_block(b, &acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::body::{BlockField, StoreVisibility};
    use crate::exec::{approx_parallel_for_opts, ExecOptions, Executor};
    use crate::params::PerfoKind;
    use gpu_sim::{AccessPattern, Schedule};
    use proptest::prelude::*;

    /// A deterministic body whose input stream mixes plateaus (so TAF and
    /// iACT genuinely approximate) with varying stretches (so decisions
    /// differ across lanes and hierarchy levels matter). `compute` and
    /// `inputs` are pure in the item — never functions of in-launch stores
    /// — which is the contract every shipped app body satisfies.
    struct OracleBody {
        input: Vec<f64>,
        output: Vec<f64>,
        field: Option<BlockField>,
        visibility: StoreVisibility,
    }

    impl OracleBody {
        fn new(n: usize, seed: u64, visibility: StoreVisibility) -> Self {
            let input = (0..n)
                .map(|i| {
                    let plateau = (i >> 5) as f64;
                    let wiggle = (((i as u64).wrapping_mul(seed | 1) >> 7) % 13) as f64;
                    plateau + if i % 3 == 0 { 0.0 } else { wiggle * 0.25 }
                })
                .collect();
            let field = (visibility == StoreVisibility::BlockPrivate)
                .then(|| BlockField::from_vec(vec![-1.0; n]));
            OracleBody {
                input,
                output: vec![-1.0; n],
                field,
                visibility,
            }
        }

        /// The committed outputs, wherever they live.
        fn result(&self) -> Vec<f64> {
            match &self.field {
                Some(f) => f.to_vec(0..f.len()),
                None => self.output.clone(),
            }
        }
    }

    impl RegionBody for OracleBody {
        fn in_dim(&self) -> usize {
            1
        }
        fn out_dim(&self) -> usize {
            2
        }
        fn inputs(&self, i: usize, buf: &mut [f64]) {
            buf[0] = self.input[i];
        }
        fn compute(&self, i: usize, out: &mut [f64]) {
            let x = self.input[i] + 1.0;
            out[0] = x.sqrt();
            out[1] = x.ln();
        }
        fn store(&mut self, i: usize, out: &[f64]) {
            match self.visibility {
                StoreVisibility::BlockPrivate => self.store_shared(i, out),
                _ => self.output[i] = out[0] + 0.5 * out[1],
            }
        }
        fn store_visibility(&self) -> StoreVisibility {
            self.visibility
        }
        fn store_shared(&self, i: usize, out: &[f64]) {
            self.field
                .as_ref()
                .expect("BlockPrivate body carries a field")
                .set(i, out[0] + 0.5 * out[1]);
        }
        fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
            CostProfile::new()
                .flops(8.0)
                .sfu(2.0)
                .global_read(lanes, 8, AccessPattern::Coalesced)
                .global_write(lanes, 16, AccessPattern::Coalesced)
        }
    }

    fn level_of(idx: usize) -> HierarchyLevel {
        match idx % 3 {
            0 => HierarchyLevel::Thread,
            1 => HierarchyLevel::Warp,
            _ => HierarchyLevel::Block,
        }
    }

    fn visibility_of(idx: usize) -> StoreVisibility {
        match idx % 3 {
            0 => StoreVisibility::Independent,
            1 => StoreVisibility::BlockPrivate,
            _ => StoreVisibility::Global,
        }
    }

    /// Every technique × hierarchy-level shape the runtime accepts, plus
    /// the serialized-TAF ablation flagged separately.
    fn regions(
        level_idx: usize,
        tsize: usize,
        threshold: f64,
    ) -> Vec<(Option<ApproxRegion>, bool)> {
        let level = level_of(level_idx);
        vec![
            (None, false),
            (
                Some(ApproxRegion::memo_out(2, 16, threshold).level(level)),
                false,
            ),
            (
                Some(ApproxRegion::memo_out(2, 16, threshold).level(level)),
                true,
            ),
            (
                Some(
                    ApproxRegion::memo_in(tsize, threshold)
                        .tables_per_warp(8)
                        .level(level),
                ),
                false,
            ),
            (Some(ApproxRegion::perfo(PerfoKind::Small { m: 4 })), false),
            (
                Some(ApproxRegion::perfo(PerfoKind::Large { m: 8 }).herded(false)),
                false,
            ),
            (
                Some(ApproxRegion::perfo(PerfoKind::Ini { fraction: 0.25 })),
                false,
            ),
        ]
    }

    fn launches(n: usize, bs_idx: usize, blocks: u32) -> Vec<LaunchConfig> {
        let block_size = [32u32, 48, 64, 96, 128][bs_idx % 5];
        vec![
            LaunchConfig {
                n_items: n,
                block_size,
                n_blocks: blocks,
                schedule: Schedule::GridStride,
            },
            LaunchConfig {
                n_items: n,
                block_size,
                n_blocks: blocks,
                schedule: Schedule::BlockLocal,
            },
        ]
    }

    /// The new walk (on `executor`) must reproduce the old per-lane walk
    /// bit for bit: same `KernelRecord` (costs, timing, statistics), same
    /// committed output bits.
    #[allow(clippy::too_many_arguments)]
    fn assert_matches_oracle(
        lc: &LaunchConfig,
        region: Option<&ApproxRegion>,
        serialized: bool,
        n: usize,
        seed: u64,
        vis: StoreVisibility,
        executor: Executor,
        threads: Option<usize>,
    ) -> Result<(), TestCaseError> {
        let spec = DeviceSpec::v100();
        let mut oracle = OracleBody::new(n, seed, vis);
        let expect = match reference_parallel_for(&spec, lc, region, &mut oracle, serialized) {
            Ok(r) => r,
            // Launches the dispatch rejects must be rejected identically.
            Err(_) => {
                let mut body = OracleBody::new(n, seed, vis);
                let opts = ExecOptions {
                    serialized_taf: serialized,
                    executor,
                    threads,
                    abort_above_seconds: None,
                };
                prop_assert!(
                    approx_parallel_for_opts(&spec, lc, region, &mut body, &opts).is_err(),
                    "walk accepted a launch the oracle dispatch rejects"
                );
                return Ok(());
            }
        };

        let mut body = OracleBody::new(n, seed, vis);
        let opts = ExecOptions {
            serialized_taf: serialized,
            executor,
            threads,
            abort_above_seconds: None,
        };
        let got = approx_parallel_for_opts(&spec, lc, region, &mut body, &opts)
            .expect("walk rejected a launch the oracle accepts");

        prop_assert_eq!(
            got,
            expect,
            "kernel record diverged from per-lane oracle: {:?} region={:?} serialized={} vis={:?} exec={:?}",
            lc,
            region,
            serialized,
            vis,
            executor
        );
        let (got_out, expect_out) = (body.result(), oracle.result());
        prop_assert!(
            got_out.iter().zip(&expect_out).all(|(a, b)| a.to_bits() == b.to_bits()),
            "outputs diverged from per-lane oracle: {:?} region={:?} serialized={} vis={:?} exec={:?}",
            lc,
            region,
            serialized,
            vis,
            executor
        );
        Ok(())
    }

    proptest! {
        /// Sequential slice-wise walk ≡ per-lane oracle.
        #[test]
        fn slice_walk_matches_per_lane_oracle(
            n in 1usize..260,
            blocks in 1u32..7,
            bs_idx in 0usize..5,
            level_idx in 0usize..3,
            vis_idx in 0usize..3,
            seed in 1u64..1_000_000,
        ) {
            for lc in launches(n, bs_idx, blocks) {
                for (region, serialized) in regions(level_idx, 4, 0.6) {
                    assert_matches_oracle(
                        &lc,
                        region.as_ref(),
                        serialized,
                        n,
                        seed,
                        visibility_of(vis_idx),
                        Executor::Sequential,
                        None,
                    )?;
                }
            }
        }

        /// Fanned-out slice-wise walk ≡ per-lane oracle (store buffering,
        /// chunked arenas, block-order folds included).
        #[test]
        fn parallel_slice_walk_matches_per_lane_oracle(
            n in 1usize..260,
            blocks in 2u32..9,
            bs_idx in 0usize..5,
            level_idx in 0usize..3,
            vis_idx in 0usize..2,
            seed in 1u64..1_000_000,
        ) {
            for lc in launches(n, bs_idx, blocks) {
                for (region, serialized) in regions(level_idx, 4, 0.6) {
                    assert_matches_oracle(
                        &lc,
                        region.as_ref(),
                        serialized,
                        n,
                        seed,
                        visibility_of(vis_idx),
                        Executor::ParallelBlocks,
                        Some(4),
                    )?;
                }
            }
        }

        /// `Executor::Auto` lands on one of the two proven-identical paths,
        /// so it too must match the oracle — both below and above the
        /// fan-out threshold.
        #[test]
        fn auto_executor_matches_per_lane_oracle(
            n in 1usize..4000,
            blocks in 1u32..17,
            bs_idx in 0usize..5,
            level_idx in 0usize..3,
            seed in 1u64..1_000_000,
        ) {
            for lc in launches(n, bs_idx, blocks) {
                for (region, serialized) in regions(level_idx, 4, 0.6) {
                    assert_matches_oracle(
                        &lc,
                        region.as_ref(),
                        serialized,
                        n,
                        seed,
                        StoreVisibility::Independent,
                        Executor::Auto,
                        Some(4),
                    )?;
                }
            }
        }
    }
}
