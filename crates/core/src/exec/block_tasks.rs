//! The block-cooperative pipeline: one thread block computes one work item
//! per grid-stride step (Binomial Options' one-block-per-option pattern),
//! with block-scoped approximation decisions.
//!
//! Each block owns exactly one AC state (one TAF machine or one iACT
//! table), and blocks grid-stride over disjoint task sets, so the same
//! per-block decomposition that parallelizes the warp walker applies here:
//! under [`Executor::ParallelBlocks`](crate::exec::Executor::ParallelBlocks)
//! blocks run on the persistent [`engine`](crate::exec::engine) worker pool
//! with buffered stores and fold back in block order, bit-identical to the
//! sequential reference.
//!
//! The per-step path costs are fixed for the whole launch (they depend only
//! on body, device, and technique parameters), so they are precomposed once
//! into cycle sums ([`TaskCosts`]) and replayed per warp, and the per-block
//! scratch (output/query vectors, store buffer, accumulator) is hoisted
//! into reusable per-task state.

use crate::exec::body::BlockTaskBody;
use crate::exec::charge::StoreBuffer;
use crate::exec::engine::engine;
use crate::exec::walk::{self, chunk_ranges, AUTO_FANOUT_MIN_WARP_STEPS};
use crate::exec::{ExecOptions, Executor};
use crate::hierarchy::{self, HierarchyLevel};
use crate::iact::IactPool;
use crate::params::PerfoParams;
use crate::perfo;
use crate::region::{ApproxRegion, RegionError, Technique};
use crate::shared_state;
use crate::taf::TafPool;
use gpu_sim::{
    BlockAccumulator, CostProfile, DeviceSpec, KernelExec, KernelRecord, LaunchConfig,
    PrecomposedCost, Schedule,
};

/// Launch a block-cooperative kernel over `n_tasks` tasks with block-level
/// approximation. Blocks grid-stride over tasks: block `b` handles tasks
/// `b, b + n_blocks, ...`.
pub fn approx_block_tasks(
    spec: &DeviceSpec,
    n_tasks: usize,
    block_size: u32,
    n_blocks: u32,
    region: Option<&ApproxRegion>,
    body: &mut dyn BlockTaskBody,
) -> Result<KernelRecord, RegionError> {
    approx_block_tasks_opts(
        spec,
        n_tasks,
        block_size,
        n_blocks,
        region,
        body,
        &ExecOptions::default(),
    )
}

/// [`approx_block_tasks`] with explicit execution options.
pub fn approx_block_tasks_opts(
    spec: &DeviceSpec,
    n_tasks: usize,
    block_size: u32,
    n_blocks: u32,
    region: Option<&ApproxRegion>,
    body: &mut dyn BlockTaskBody,
    opts: &ExecOptions,
) -> Result<KernelRecord, RegionError> {
    if n_tasks == 0 {
        return Err(RegionError::Invalid("no tasks to execute".into()));
    }
    let launch = LaunchConfig {
        n_items: n_tasks,
        block_size,
        n_blocks,
        schedule: Schedule::GridStride,
    };
    let out_dim = body.out_dim();
    let in_dim = body.in_dim();

    let (shared, technique) = match region {
        None => (0, None),
        Some(r) => {
            r.validate()?;
            match r.technique {
                Technique::Taf(_) | Technique::Iact(_) if r.level != HierarchyLevel::Block => {
                    return Err(RegionError::Invalid(
                        "block-cooperative tasks require level(block) decisions".into(),
                    ));
                }
                _ => {}
            }
            if let Technique::Iact(_) = r.technique {
                if in_dim == 0 {
                    return Err(RegionError::Invalid(
                        "iACT requires the task to declare inputs".into(),
                    ));
                }
            }
            // Block-task AC state: a single state machine / table per block.
            let bytes = match &r.technique {
                Technique::Taf(p) => {
                    p.hsize * shared_state::AC_SCALAR_BYTES
                        + out_dim * shared_state::AC_SCALAR_BYTES
                        + shared_state::TAF_CONTROL_BYTES
                }
                Technique::Iact(p) => shared_state::iact_block_bytes(1, 1, p, in_dim, out_dim),
                Technique::Perfo(_) => 4,
            } + shared_state::block_vote_bytes(HierarchyLevel::Block);
            (bytes, Some(r.technique))
        }
    };

    let mut exec = KernelExec::new(spec, &launch, shared)?;
    let walk = TaskWalk {
        spec: *spec,
        n_tasks,
        n_blocks,
        warps: launch.warps_per_block(spec),
        steps: n_tasks.div_ceil(n_blocks as usize),
        in_dim,
        out_dim,
        technique,
    };
    let costs = walk.precompose_costs(body);

    let width = engine().width_for(opts);
    let wants_fan_out = match opts.executor {
        Executor::Sequential => false,
        Executor::ParallelBlocks => true,
        Executor::Auto => {
            n_blocks as usize * walk.warps as usize * walk.steps >= AUTO_FANOUT_MIN_WARP_STEPS
        }
    };
    let parallel = wants_fan_out && width > 1 && n_blocks > 1 && !engine().is_nested();
    if hpac_obs::enabled() && matches!(opts.executor, Executor::Auto) {
        hpac_obs::inc(if parallel {
            hpac_obs::CounterId::AutoFanOut
        } else {
            hpac_obs::CounterId::AutoInline
        });
    }
    let _span = hpac_obs::span(
        hpac_obs::SpanId::BlockTasks,
        n_blocks as u64,
        walk.steps as u64,
    );

    if parallel {
        let shared_body: &dyn BlockTaskBody = body;
        let ranges = chunk_ranges(n_blocks, width);
        hpac_obs::add(hpac_obs::CounterId::WalkChunks, ranges.len() as u64);
        let per_chunk: Vec<(Vec<BlockAccumulator>, StoreBuffer)> =
            engine().run(ranges.len(), width, |k| {
                let (lo, hi) = ranges[k];
                let mut scratch = TaskScratch::new(&walk);
                let mut buffer = StoreBuffer::new(walk.out_dim);
                let accs = (lo..hi)
                    .map(|b| {
                        let mut acc = BlockAccumulator::new(walk.warps as usize, walk.spec.costs);
                        walk.run_block(
                            shared_body,
                            b,
                            &costs,
                            &mut scratch,
                            &mut acc,
                            &mut |task, out| buffer.push(task, out),
                        );
                        acc
                    })
                    .collect();
                (accs, buffer)
            });
        let mut b = 0u32;
        for (accs, stores) in &per_chunk {
            for acc in accs {
                exec.merge_block(b, acc);
                b += 1;
            }
            walk::check_ceiling(&exec, opts)?;
            stores.replay(|task, out| body.store(task, out));
        }
    } else {
        // Tasks are independent by the pattern's contract (one block, one
        // work item), so the reference executor may buffer each block's
        // stores and commit them as soon as the block finishes. One set of
        // buffers serves every block.
        let mut scratch = TaskScratch::new(&walk);
        let mut buffer = StoreBuffer::new(walk.out_dim);
        let mut acc = BlockAccumulator::new(walk.warps as usize, walk.spec.costs);
        for b in 0..n_blocks {
            walk.run_block(body, b, &costs, &mut scratch, &mut acc, &mut |task, out| {
                buffer.push(task, out)
            });
            exec.merge_block(b, &acc);
            acc.reset();
            walk::check_ceiling(&exec, opts)?;
            buffer.replay(|task, out| body.store(task, out));
            buffer.clear();
        }
    }
    Ok(exec.finish())
}

/// The geometry and technique of one block-task launch.
struct TaskWalk {
    spec: DeviceSpec,
    n_tasks: usize,
    n_blocks: u32,
    warps: u32,
    steps: usize,
    in_dim: usize,
    out_dim: usize,
    technique: Option<Technique>,
}

/// One block's AC state.
enum TaskState {
    Accurate,
    Perfo(PerfoParams),
    Taf(TafPool),
    Iact(IactPool),
}

enum Path {
    Accurate,
    Approx,
    Skip,
}

/// The three per-step path costs, fixed for the whole launch and resolved
/// against the device once. Every step charges one of these to each warp.
struct TaskCosts {
    skip: PrecomposedCost,
    approx: PrecomposedCost,
    accurate: PrecomposedCost,
}

/// Reusable per-block scratch: the AC state is fresh per block, the vectors
/// keep their allocations.
struct TaskScratch {
    out: Vec<f64>,
    query: Vec<f64>,
}

impl TaskScratch {
    fn new(walk: &TaskWalk) -> Self {
        TaskScratch {
            out: vec![0.0; walk.out_dim],
            query: vec![0.0; walk.in_dim],
        }
    }
}

impl TaskWalk {
    fn block_state(&self) -> TaskState {
        match self.technique {
            None => TaskState::Accurate,
            Some(Technique::Perfo(p)) => TaskState::Perfo(p),
            Some(Technique::Taf(p)) => TaskState::Taf(TafPool::new(1, self.out_dim, p)),
            Some(Technique::Iact(p)) => {
                TaskState::Iact(IactPool::new(1, self.in_dim, self.out_dim, p))
            }
        }
    }

    /// Assemble and device-resolve the three path costs. Cost methods are
    /// pure in (body, device, technique params), so a prototype AC state
    /// stands in for every block's.
    fn precompose_costs(&self, body: &dyn BlockTaskBody) -> TaskCosts {
        let decision_overhead = if self.technique.is_some() {
            hierarchy::decision_cost(HierarchyLevel::Block)
        } else {
            CostProfile::new()
        };
        let approx = decision_overhead
            .add(&body.input_cost(&self.spec))
            .add(&body.store_cost(&self.spec));
        let mut accurate = decision_overhead.add(&body.task_cost_per_warp(&self.spec));
        if let TaskState::Iact(pool) = self.block_state() {
            accurate = accurate
                .add(&pool.search_cost())
                .add(&pool.write_phase_cost(1));
        }
        let p = &self.spec.costs;
        TaskCosts {
            skip: CostProfile::new().flops(1.0).precompose(p),
            approx: approx.precompose(p),
            accurate: accurate.precompose(p),
        }
    }

    /// Walk block `b` over its grid-stride tasks, emitting stores through
    /// `store` and charging into `acc` (provided empty, reusable via
    /// [`BlockAccumulator::reset`]).
    fn run_block(
        &self,
        body: &dyn BlockTaskBody,
        b: u32,
        costs: &TaskCosts,
        scratch: &mut TaskScratch,
        acc: &mut BlockAccumulator,
        store: &mut dyn FnMut(usize, &[f64]),
    ) {
        let mut state = self.block_state();
        let (out, query) = (&mut scratch.out, &mut scratch.query);

        for s in 0..self.steps {
            let task = b as usize + s * self.n_blocks as usize;
            if task >= self.n_tasks {
                continue;
            }

            // Decide the block's path.
            let (path, iact_slot) = match &state {
                TaskState::Accurate => (Path::Accurate, None),
                TaskState::Perfo(p) => {
                    if perfo::should_skip(p, task, s) {
                        (Path::Skip, None)
                    } else {
                        (Path::Accurate, None)
                    }
                }
                TaskState::Taf(pool) => {
                    if pool.wants_approx(0) {
                        (Path::Approx, None)
                    } else {
                        (Path::Accurate, None)
                    }
                }
                TaskState::Iact(pool) => {
                    body.inputs(task, query);
                    let probe = pool.probe(0, query);
                    if probe.hit(pool.params().threshold) {
                        (Path::Approx, probe.slot)
                    } else {
                        (Path::Accurate, None)
                    }
                }
            };

            match path {
                Path::Skip => {
                    for w in 0..self.warps {
                        acc.charge_precomposed(w, &costs.skip);
                    }
                    acc.note_step(0, 0, 1, false);
                }
                Path::Approx => {
                    match &mut state {
                        TaskState::Taf(pool) => {
                            out.copy_from_slice(pool.last(0));
                            pool.note_approx(0);
                        }
                        TaskState::Iact(pool) => {
                            let slot = iact_slot.expect("iACT hit must carry a slot");
                            out.copy_from_slice(pool.output(0, slot));
                            pool.touch(0, slot);
                        }
                        _ => unreachable!("only memoizing techniques approximate"),
                    }
                    store(task, out);
                    for w in 0..self.warps {
                        acc.charge_precomposed(w, &costs.approx);
                    }
                    acc.note_step(0, 1, 0, false);
                }
                Path::Accurate => {
                    body.compute(task, out);
                    store(task, out);
                    match &mut state {
                        TaskState::Taf(pool) => pool.observe(0, out),
                        TaskState::Iact(pool) => {
                            body.inputs(task, query);
                            pool.insert(0, query, out);
                        }
                        _ => {}
                    }
                    for w in 0..self.warps {
                        acc.charge_precomposed(w, &costs.accurate);
                    }
                    acc.note_step(1, 0, 0, false);
                }
            }
        }
    }
}
