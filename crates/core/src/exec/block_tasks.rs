//! The block-cooperative pipeline: one thread block computes one work item
//! per grid-stride step (Binomial Options' one-block-per-option pattern),
//! with block-scoped approximation decisions.
//!
//! Each block owns exactly one AC state (one TAF machine or one iACT
//! table), and blocks grid-stride over disjoint task sets, so the same
//! per-block decomposition that parallelizes the warp walker applies here:
//! under [`Executor::ParallelBlocks`](crate::exec::Executor::ParallelBlocks)
//! blocks run on the persistent [`engine`](crate::exec::engine) worker pool
//! with buffered stores and fold back in block order, bit-identical to the
//! sequential reference.

use crate::exec::body::BlockTaskBody;
use crate::exec::charge::StoreBuffer;
use crate::exec::engine::engine;
use crate::exec::walk::chunk_ranges;
use crate::exec::{ExecOptions, Executor};
use crate::hierarchy::{self, HierarchyLevel};
use crate::iact::IactPool;
use crate::params::PerfoParams;
use crate::perfo;
use crate::region::{ApproxRegion, RegionError, Technique};
use crate::shared_state;
use crate::taf::TafPool;
use gpu_sim::{
    BlockAccumulator, CostProfile, DeviceSpec, KernelExec, KernelRecord, LaunchConfig, Schedule,
};

/// Launch a block-cooperative kernel over `n_tasks` tasks with block-level
/// approximation. Blocks grid-stride over tasks: block `b` handles tasks
/// `b, b + n_blocks, ...`.
pub fn approx_block_tasks(
    spec: &DeviceSpec,
    n_tasks: usize,
    block_size: u32,
    n_blocks: u32,
    region: Option<&ApproxRegion>,
    body: &mut dyn BlockTaskBody,
) -> Result<KernelRecord, RegionError> {
    approx_block_tasks_opts(
        spec,
        n_tasks,
        block_size,
        n_blocks,
        region,
        body,
        &ExecOptions::default(),
    )
}

/// [`approx_block_tasks`] with explicit execution options.
pub fn approx_block_tasks_opts(
    spec: &DeviceSpec,
    n_tasks: usize,
    block_size: u32,
    n_blocks: u32,
    region: Option<&ApproxRegion>,
    body: &mut dyn BlockTaskBody,
    opts: &ExecOptions,
) -> Result<KernelRecord, RegionError> {
    if n_tasks == 0 {
        return Err(RegionError::Invalid("no tasks to execute".into()));
    }
    let launch = LaunchConfig {
        n_items: n_tasks,
        block_size,
        n_blocks,
        schedule: Schedule::GridStride,
    };
    let out_dim = body.out_dim();
    let in_dim = body.in_dim();

    let (shared, technique) = match region {
        None => (0, None),
        Some(r) => {
            r.validate()?;
            match r.technique {
                Technique::Taf(_) | Technique::Iact(_) if r.level != HierarchyLevel::Block => {
                    return Err(RegionError::Invalid(
                        "block-cooperative tasks require level(block) decisions".into(),
                    ));
                }
                _ => {}
            }
            if let Technique::Iact(_) = r.technique {
                if in_dim == 0 {
                    return Err(RegionError::Invalid(
                        "iACT requires the task to declare inputs".into(),
                    ));
                }
            }
            // Block-task AC state: a single state machine / table per block.
            let bytes = match &r.technique {
                Technique::Taf(p) => {
                    p.hsize * shared_state::AC_SCALAR_BYTES
                        + out_dim * shared_state::AC_SCALAR_BYTES
                        + shared_state::TAF_CONTROL_BYTES
                }
                Technique::Iact(p) => shared_state::iact_block_bytes(1, 1, p, in_dim, out_dim),
                Technique::Perfo(_) => 4,
            } + shared_state::block_vote_bytes(HierarchyLevel::Block);
            (bytes, Some(r.technique))
        }
    };

    let mut exec = KernelExec::new(spec, &launch, shared)?;
    let walk = TaskWalk {
        spec: *spec,
        n_tasks,
        n_blocks,
        warps: launch.warps_per_block(spec),
        steps: n_tasks.div_ceil(n_blocks as usize),
        in_dim,
        out_dim,
        technique,
    };

    let width = engine().width_for(opts);
    let parallel = matches!(opts.executor, Executor::ParallelBlocks)
        && width > 1
        && n_blocks > 1
        && !engine().is_nested();

    if parallel {
        let shared_body: &dyn BlockTaskBody = body;
        let ranges = chunk_ranges(n_blocks, width);
        let per_chunk: Vec<Vec<(BlockAccumulator, StoreBuffer)>> =
            engine().run(ranges.len(), ranges.len(), |k| {
                let (lo, hi) = ranges[k];
                (lo..hi)
                    .map(|b| {
                        let mut buffer = StoreBuffer::new(walk.out_dim);
                        let acc =
                            walk.run_block(shared_body, b, &mut |task, out| buffer.push(task, out));
                        (acc, buffer)
                    })
                    .collect()
            });
        for (b, (acc, stores)) in per_chunk.into_iter().flatten().enumerate() {
            exec.merge_block(b as u32, acc);
            stores.replay(|task, out| body.store(task, out));
        }
    } else {
        // Tasks are independent by the pattern's contract (one block, one
        // work item), so the reference executor may buffer each block's
        // stores and commit them as soon as the block finishes.
        for b in 0..n_blocks {
            let mut buffer = StoreBuffer::new(walk.out_dim);
            let acc = walk.run_block(body, b, &mut |task, out| buffer.push(task, out));
            exec.merge_block(b, acc);
            buffer.replay(|task, out| body.store(task, out));
        }
    }
    Ok(exec.finish())
}

/// The geometry and technique of one block-task launch.
struct TaskWalk {
    spec: DeviceSpec,
    n_tasks: usize,
    n_blocks: u32,
    warps: u32,
    steps: usize,
    in_dim: usize,
    out_dim: usize,
    technique: Option<Technique>,
}

/// One block's AC state.
enum TaskState {
    Accurate,
    Perfo(PerfoParams),
    Taf(TafPool),
    Iact(IactPool),
}

enum Path {
    Accurate,
    Approx,
    Skip,
}

impl TaskWalk {
    fn block_state(&self) -> TaskState {
        match self.technique {
            None => TaskState::Accurate,
            Some(Technique::Perfo(p)) => TaskState::Perfo(p),
            Some(Technique::Taf(p)) => TaskState::Taf(TafPool::new(1, self.out_dim, p)),
            Some(Technique::Iact(p)) => {
                TaskState::Iact(IactPool::new(1, self.in_dim, self.out_dim, p))
            }
        }
    }

    /// Walk block `b` over its grid-stride tasks, emitting stores through
    /// `store` and returning the block's accounting.
    fn run_block(
        &self,
        body: &dyn BlockTaskBody,
        b: u32,
        store: &mut dyn FnMut(usize, &[f64]),
    ) -> BlockAccumulator {
        let mut acc = BlockAccumulator::new(self.warps as usize, self.spec.costs);
        let mut state = self.block_state();
        let mut out = vec![0.0; self.out_dim];
        let mut query = vec![0.0; self.in_dim];

        let decision_overhead = if self.technique.is_some() {
            hierarchy::decision_cost(HierarchyLevel::Block)
        } else {
            CostProfile::new()
        };

        for s in 0..self.steps {
            let task = b as usize + s * self.n_blocks as usize;
            if task >= self.n_tasks {
                continue;
            }

            // Decide the block's path.
            let (path, iact_slot) = match &state {
                TaskState::Accurate => (Path::Accurate, None),
                TaskState::Perfo(p) => {
                    if perfo::should_skip(p, task, s) {
                        (Path::Skip, None)
                    } else {
                        (Path::Accurate, None)
                    }
                }
                TaskState::Taf(pool) => {
                    if pool.wants_approx(0) {
                        (Path::Approx, None)
                    } else {
                        (Path::Accurate, None)
                    }
                }
                TaskState::Iact(pool) => {
                    body.inputs(task, &mut query);
                    let probe = pool.probe(0, &query);
                    if probe.hit(pool.params().threshold) {
                        (Path::Approx, probe.slot)
                    } else {
                        (Path::Accurate, None)
                    }
                }
            };

            match path {
                Path::Skip => {
                    for w in 0..self.warps {
                        acc.charge(w, &CostProfile::new().flops(1.0));
                    }
                    acc.note_step(0, 0, 1, false);
                }
                Path::Approx => {
                    match &mut state {
                        TaskState::Taf(pool) => {
                            out.copy_from_slice(pool.last(0));
                            pool.note_approx(0);
                        }
                        TaskState::Iact(pool) => {
                            let slot = iact_slot.expect("iACT hit must carry a slot");
                            out.copy_from_slice(pool.output(0, slot));
                            pool.touch(0, slot);
                        }
                        _ => unreachable!("only memoizing techniques approximate"),
                    }
                    store(task, &out);
                    let c = decision_overhead
                        .add(&body.input_cost(&self.spec))
                        .add(&body.store_cost(&self.spec));
                    for w in 0..self.warps {
                        acc.charge(w, &c);
                    }
                    acc.note_step(0, 1, 0, false);
                }
                Path::Accurate => {
                    body.compute(task, &mut out);
                    store(task, &out);
                    match &mut state {
                        TaskState::Taf(pool) => pool.observe(0, &out),
                        TaskState::Iact(pool) => {
                            body.inputs(task, &mut query);
                            pool.insert(0, &query, &out);
                        }
                        _ => {}
                    }
                    let mut c = decision_overhead.add(&body.task_cost_per_warp(&self.spec));
                    if let TaskState::Iact(pool) = &state {
                        c = c.add(&pool.search_cost()).add(&pool.write_phase_cost(1));
                    }
                    for w in 0..self.warps {
                        acc.charge(w, &c);
                    }
                    acc.note_step(1, 0, 0, false);
                }
            }
        }
        acc
    }
}
