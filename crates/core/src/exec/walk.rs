//! The one grid walker: block → grid-stride step → warp iteration, shared
//! by every technique policy.
//!
//! The walk is *slice-wise*: for both schedules the active lanes of a
//! `(block, warp, step)` form a lane prefix `[0, n)` whose items and thread
//! ids are consecutive (the lane index is the lowest-order term of both
//! formulas in [`LaunchConfig::item_for`]), so one [`WarpSlice`] of span
//! arithmetic replaces the former 32 `item_for` calls per warp step, and
//! policies receive whole slices instead of one virtual call per lane.
//! Votes are produced once per warp step into the [`WalkArena`]'s SoA
//! buffers — block-level decisions tally that single pass instead of
//! re-collecting and re-voting every warp (the old walk did both twice).
//!
//! Because a block touches only its own technique state, its own store
//! buffer, and its own accumulator, [`execute`] can run blocks sequentially
//! (the reference executor) or fan them out over the persistent
//! [`engine`](crate::exec::engine) worker pool
//! ([`Executor::ParallelBlocks`]) with bit-identical results. The
//! per-lane walk this replaced is preserved verbatim as the test oracle in
//! [`reference`](crate::exec::reference).

use crate::exec::body::{
    BodyAccess, BufferedAccess, InlineAccess, RegionBody, SharedAccess, StoreVisibility,
};
use crate::exec::charge::{MixMemo, StoreBuffer};
use crate::exec::engine::engine;
use crate::exec::policy::{TechniquePolicy, WarpCtx};
use crate::exec::{ExecOptions, Executor};
use crate::hierarchy::{self, HierarchyLevel};
use crate::region::RegionError;
use gpu_sim::{BlockAccumulator, DeviceSpec, KernelExec, KernelRecord, LaunchConfig, Schedule};

/// The active lanes of one warp at a given (block, step): a lane prefix
/// `[0, n)` executing consecutive items with consecutive thread ids. Lane
/// `k` of the slice executes item `item_base + k` as thread `tid_base + k`.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct WarpSlice {
    /// Warp index within the block.
    pub warp: u32,
    /// Item of lane 0 (already offset by `item_lo`). Meaningless if `n == 0`.
    pub item_base: usize,
    /// Global thread id of lane 0.
    pub tid_base: usize,
    /// Active lane count.
    pub n: u32,
}

/// The launch geometry the walker iterates, plus the item offset applied by
/// ini-perforation (the kernel iterates `[item_lo, item_lo + n_items)`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Geom {
    pub spec: DeviceSpec,
    pub launch: LaunchConfig,
    pub warps_per_block: u32,
    pub n_blocks: u32,
    pub steps: usize,
    pub item_lo: usize,
}

impl Geom {
    pub fn new(spec: &DeviceSpec, launch: &LaunchConfig, item_lo: usize) -> Self {
        Geom {
            spec: *spec,
            launch: *launch,
            warps_per_block: launch.warps_per_block(spec),
            n_blocks: launch.n_blocks,
            steps: launch.steps(),
            item_lo,
        }
    }

    /// The slice of active lanes of `(block, warp, step)`, by direct span
    /// arithmetic. Agrees lane-for-lane with [`LaunchConfig::item_for`]:
    /// every activity condition there is of the form `lane < bound`, so the
    /// active set is the prefix below the tightest bound.
    pub fn warp_span(&self, block: u32, warp: u32, step: usize) -> WarpSlice {
        let ws = self.spec.warp_size as usize;
        let bs = self.launch.block_size as usize;
        let lanes_in_block = bs.saturating_sub(warp as usize * ws);
        let tid_base = block as usize * bs + warp as usize * ws;
        let (raw_base, n) = match self.launch.schedule {
            Schedule::GridStride => {
                let first = tid_base + step * self.launch.total_threads();
                let remaining = self.launch.n_items.saturating_sub(first);
                (first, ws.min(lanes_in_block).min(remaining))
            }
            Schedule::BlockLocal => {
                let ipb = self.launch.items_per_block();
                let local_base = warp as usize * ws + step * bs;
                let raw = block as usize * ipb + local_base;
                let rem_local = ipb.saturating_sub(local_base);
                let rem_items = self.launch.n_items.saturating_sub(raw);
                (raw, ws.min(lanes_in_block).min(rem_local).min(rem_items))
            }
        };
        WarpSlice {
            warp,
            item_base: self.item_lo + raw_base,
            tid_base,
            n: n as u32,
        }
    }
}

/// Reusable per-walk buffers: the SoA step state (one slice and one vote
/// segment per warp) and the cost-composition memo. One arena serves every
/// block an executor task walks — nothing here is allocated per block.
pub(crate) struct WalkArena {
    /// spans[w] = this step's slice of warp `w`.
    spans: Vec<WarpSlice>,
    /// votes[w*warp_size ..][..spans[w].n] = activation votes of warp `w`.
    votes: Vec<bool>,
    /// Memoized (lane-mix → precomposed cost) table for the policy in play.
    memo: MixMemo,
}

impl WalkArena {
    pub fn new(geom: &Geom) -> Self {
        let ws = geom.spec.warp_size as usize;
        let wpb = geom.warps_per_block as usize;
        WalkArena {
            spans: vec![WarpSlice::default(); wpb],
            votes: vec![false; wpb * ws],
            memo: MixMemo::new(geom.spec.warp_size, geom.spec.costs),
        }
    }
}

/// Walk one block through every (step, warp), charging into `acc` (which
/// the caller provides empty and may reuse across blocks via
/// [`BlockAccumulator::reset`]).
pub(crate) fn walk_block<P, A>(
    geom: &Geom,
    policy: &P,
    access: &mut A,
    block: u32,
    arena: &mut WalkArena,
    acc: &mut BlockAccumulator,
) where
    P: TechniquePolicy + ?Sized,
    A: BodyAccess,
{
    let ws = geom.spec.warp_size as usize;
    let wpb = geom.warps_per_block as usize;
    let mut st = policy.block_state(geom, block, access.body());
    let block_level = policy.level() == HierarchyLevel::Block;

    for s in 0..geom.steps {
        // Block-level decisions need the whole block's votes before any
        // warp steps (shared-memory atomic + barrier on hardware). Produce
        // them once into the arena and reuse them for the steps below —
        // warp-local vote state (per-thread TAF machines, per-warp iACT
        // tables) is only mutated by its own warp's step, which has not
        // happened yet this step, so the single pass votes identically to
        // re-voting each warp right before its step.
        let block_decision = if block_level {
            let mut yes = 0u32;
            let mut active = 0u32;
            for w in 0..wpb {
                let slice = geom.warp_span(block, w as u32, s);
                arena.spans[w] = slice;
                let n = slice.n as usize;
                if n > 0 {
                    let seg = &mut arena.votes[w * ws..w * ws + n];
                    policy.vote_slice(&mut st, &slice, seg, access.body());
                    active += slice.n;
                    yes += seg.iter().filter(|&&v| v).count() as u32;
                }
            }
            Some(hierarchy::group_decision(yes, active))
        } else {
            None
        };

        for w in 0..wpb {
            let slice = if block_level {
                arena.spans[w]
            } else {
                geom.warp_span(block, w as u32, s)
            };
            if slice.n == 0 {
                continue;
            }
            let seg_end = w * ws + slice.n as usize;
            if !block_level {
                policy.vote_slice(
                    &mut st,
                    &slice,
                    &mut arena.votes[w * ws..seg_end],
                    access.body(),
                );
            }
            let votes = &arena.votes[w * ws..seg_end];
            let ctx = WarpCtx {
                spec: &geom.spec,
                slice,
                votes,
                decision: block_decision
                    .unwrap_or_else(|| hierarchy::warp_decide(policy.level(), votes)),
            };
            policy.warp_step(&mut st, &ctx, access, &mut arena.memo, acc);
        }
    }
}

/// How many chunks `chunk_ranges` aims for per worker: oversplitting lets
/// the engine's atomic claim cursor rebalance unbalanced launches (blocks
/// whose work varies) instead of pinning one fixed range per worker.
const CHUNKS_PER_WORKER: usize = 4;

/// Split `n` blocks into contiguous index ranges for the engine — about
/// [`CHUNKS_PER_WORKER`] per worker, each at least one block.
pub(crate) fn chunk_ranges(n: u32, threads: usize) -> Vec<(u32, u32)> {
    let chunk = (n as usize)
        .div_ceil(threads.max(1) * CHUNKS_PER_WORKER)
        .max(1) as u32;
    (0..n)
        .step_by(chunk as usize)
        .map(|lo| (lo, (lo + chunk).min(n)))
        .collect()
}

/// Modeled warp-steps below which [`Executor::Auto`] keeps the walk on the
/// calling thread: a handful of steps cannot amortize the handoff to the
/// worker pool (task dispatch, per-chunk arenas, store buffering).
pub(crate) const AUTO_FANOUT_MIN_WARP_STEPS: usize = 4096;

fn should_fan_out(geom: &Geom, opts: &ExecOptions, width: usize) -> bool {
    let wants = match opts.executor {
        Executor::Sequential => false,
        Executor::ParallelBlocks => true,
        Executor::Auto => {
            geom.n_blocks as usize * geom.warps_per_block as usize * geom.steps
                >= AUTO_FANOUT_MIN_WARP_STEPS
        }
    };
    let fan = wants && width > 1 && geom.n_blocks > 1 && !engine().is_nested();
    if hpac_obs::enabled() && matches!(opts.executor, Executor::Auto) {
        hpac_obs::inc(if fan {
            hpac_obs::CounterId::AutoFanOut
        } else {
            hpac_obs::CounterId::AutoInline
        });
    }
    fan
}

/// Drain an arena's memo tallies into the calling worker's obs counters.
/// Called where an arena retires (end of chunk task / sequential walk), so
/// the per-lookup hot path stays a plain integer increment.
pub(crate) fn flush_memo_stats(arena: &mut WalkArena) {
    if hpac_obs::enabled() {
        let (h, m) = arena.memo.hit_stats();
        hpac_obs::add(hpac_obs::CounterId::MixMemoHits, h);
        hpac_obs::add(hpac_obs::CounterId::MixMemoMisses, m);
        arena.memo.reset_stats();
    }
}

/// Frontier-aware early abort: with a ceiling set, fail once the modeled
/// time already spent — prior kernels finished on this thread plus a lower
/// bound on the in-flight kernel's merged work — provably exceeds it.
/// Checked at block boundaries so the bit-identical accounting of completed
/// blocks is untouched; when no abort fires the run is indistinguishable
/// from an unbounded one.
pub(crate) fn check_ceiling(exec: &KernelExec, opts: &ExecOptions) -> Result<(), RegionError> {
    if let Some(ceiling) = opts.abort_above_seconds {
        if gpu_sim::modeled_seconds() + exec.lower_bound_seconds() > ceiling {
            return Err(RegionError::CostCeiling(ceiling));
        }
    }
    Ok(())
}

/// Run every block of the launch through `policy` and fold the results into
/// a [`KernelRecord`], on the executor `opts` selects.
pub(crate) fn execute<P: TechniquePolicy + ?Sized>(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    shared: usize,
    policy: &P,
    body: &mut dyn RegionBody,
    opts: &ExecOptions,
    item_lo: usize,
) -> Result<KernelRecord, RegionError> {
    let mut exec = KernelExec::new(spec, launch, shared)?;
    let geom = Geom::new(spec, launch, item_lo);

    // Launches submitted from inside an engine task (a config-level sweep
    // worker) run inline — the engine's depth guard would serialize them
    // anyway, and skipping the fan-out avoids pointless store buffering.
    let width = engine().width_for(opts);
    let parallel = should_fan_out(&geom, opts, width);
    let wpb = geom.warps_per_block as usize;
    let _walk = hpac_obs::span(
        hpac_obs::SpanId::KernelWalk,
        geom.n_blocks as u64,
        (geom.n_blocks as usize * wpb * geom.steps) as u64,
    );

    match (parallel, body.store_visibility()) {
        (true, StoreVisibility::Independent) => {
            // Fan blocks out in contiguous chunks; results come back in
            // chunk order, so the fold below visits blocks in ascending
            // index order no matter which worker finished first. Each chunk
            // task reuses one arena and one store buffer across its blocks
            // (per-block accumulators must stay separate: the timing model
            // wants per-block cycles).
            let ranges = chunk_ranges(geom.n_blocks, width);
            hpac_obs::add(hpac_obs::CounterId::WalkChunks, ranges.len() as u64);
            let shared_body: &dyn RegionBody = body;
            let per_chunk: Vec<(Vec<BlockAccumulator>, StoreBuffer)> =
                engine().run(ranges.len(), width, |k| {
                    let (lo, hi) = ranges[k];
                    let mut arena = WalkArena::new(&geom);
                    let mut stores = StoreBuffer::new(shared_body.out_dim());
                    let accs = (lo..hi)
                        .map(|b| {
                            let mut acc = BlockAccumulator::new(wpb, geom.spec.costs);
                            let mut access = BufferedAccess::new(shared_body, &mut stores);
                            walk_block(&geom, policy, &mut access, b, &mut arena, &mut acc);
                            acc
                        })
                        .collect();
                    flush_memo_stats(&mut arena);
                    (accs, stores)
                });
            let mut b = 0u32;
            for (accs, stores) in &per_chunk {
                for acc in accs {
                    exec.merge_block(b, acc);
                    b += 1;
                }
                check_ceiling(&exec, opts)?;
                // Chunks replay in chunk (= block) order, and each chunk's
                // buffer recorded its blocks' stores in walk order, so the
                // global store order matches the sequential walk.
                stores.replay(|item, out| body.store(item, out));
            }
        }
        (true, StoreVisibility::BlockPrivate) => {
            // Blocks own disjoint partitions of the body's shared state, so
            // stores commit inline from each block's worker and the block's
            // own later reads (Jacobi sweeps) observe them immediately.
            let ranges = chunk_ranges(geom.n_blocks, width);
            hpac_obs::add(hpac_obs::CounterId::WalkChunks, ranges.len() as u64);
            let shared_body: &dyn RegionBody = body;
            let per_chunk: Vec<Vec<BlockAccumulator>> = engine().run(ranges.len(), width, |k| {
                let (lo, hi) = ranges[k];
                let mut arena = WalkArena::new(&geom);
                let accs = (lo..hi)
                    .map(|b| {
                        let mut acc = BlockAccumulator::new(wpb, geom.spec.costs);
                        let mut access = SharedAccess { body: shared_body };
                        walk_block(&geom, policy, &mut access, b, &mut arena, &mut acc);
                        acc
                    })
                    .collect::<Vec<_>>();
                flush_memo_stats(&mut arena);
                accs
            });
            for (b, acc) in per_chunk.iter().flatten().enumerate() {
                exec.merge_block(b as u32, acc);
                check_ceiling(&exec, opts)?;
            }
        }
        // Sequential reference, or a Global-visibility body that must stay
        // on it: blocks walked one after another, stores committed inline,
        // one arena and one accumulator reused for the whole launch.
        _ => {
            let mut arena = WalkArena::new(&geom);
            let mut acc = BlockAccumulator::new(wpb, geom.spec.costs);
            for b in 0..geom.n_blocks {
                let mut access = InlineAccess { body: &mut *body };
                walk_block(&geom, policy, &mut access, b, &mut arena, &mut acc);
                exec.merge_block(b, &acc);
                acc.reset();
                check_ceiling(&exec, opts)?;
            }
            flush_memo_stats(&mut arena);
        }
    }
    Ok(exec.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_span_matches_item_for() {
        let spec = DeviceSpec::v100();
        let launches = [
            LaunchConfig::for_items_per_thread(1000, 64, 4),
            LaunchConfig::one_item_per_thread(4096, 128),
            LaunchConfig {
                n_items: 96,
                block_size: 48,
                n_blocks: 2,
                schedule: Schedule::GridStride,
            },
            LaunchConfig::block_local(1000, 96, 7),
            LaunchConfig::block_local(37, 64, 3),
        ];
        for launch in &launches {
            for item_lo in [0usize, 11] {
                let geom = Geom::new(&spec, launch, item_lo);
                for b in 0..geom.n_blocks {
                    for w in 0..geom.warps_per_block {
                        for s in 0..geom.steps {
                            let slice = geom.warp_span(b, w, s);
                            for lane in 0..spec.warp_size {
                                let expect = launch.item_for(&spec, b, w, lane, s);
                                let got = (lane < slice.n)
                                    .then(|| slice.item_base + lane as usize - item_lo);
                                assert_eq!(got, expect, "{launch:?} b={b} w={w} s={s} lane={lane}");
                                if lane < slice.n {
                                    assert_eq!(
                                        slice.tid_base + lane as usize,
                                        launch.tid(&spec, b, w, lane)
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn chunk_ranges_cover_and_oversplit() {
        for (n, threads) in [(1u32, 4), (7, 2), (64, 4), (237, 8), (3, 16)] {
            let ranges = chunk_ranges(n, threads);
            let mut next = 0u32;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, next);
                assert!(hi > lo);
                next = hi;
            }
            assert_eq!(next, n);
            assert!(ranges.len() <= (threads * CHUNKS_PER_WORKER).max(1));
        }
    }
}
