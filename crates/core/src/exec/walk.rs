//! The one grid walker: block → grid-stride step → warp → lane iteration,
//! shared by every technique policy.
//!
//! The former `runtime.rs` carried four copies of this walk (accurate,
//! perforation, TAF, iACT), each with its own lane-buffer plumbing. Here the
//! walk exists exactly once: [`walk_block`] drives one block through all of
//! its steps and warps, delegates every approximation decision to a
//! [`TechniquePolicy`](crate::exec::policy::TechniquePolicy), and returns
//! the block's private [`BlockAccumulator`]. Because a block touches only
//! its own technique state, its own store buffer, and its own accumulator,
//! [`execute`] can run blocks sequentially (the reference executor) or
//! fan them out over the persistent [`engine`](crate::exec::engine) worker
//! pool ([`Executor::ParallelBlocks`]) with bit-identical results.

use crate::exec::body::{
    BodyAccess, BufferedAccess, InlineAccess, RegionBody, SharedAccess, StoreVisibility,
};
use crate::exec::charge::StoreBuffer;
use crate::exec::engine::engine;
use crate::exec::policy::{TechniquePolicy, WarpCtx};
use crate::exec::{ExecOptions, Executor};
use crate::hierarchy::{self, HierarchyLevel};
use crate::region::RegionError;
use gpu_sim::{BlockAccumulator, DeviceSpec, KernelExec, KernelRecord, LaunchConfig};

/// One active lane of a warp step.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Lane {
    /// Lane index within the warp.
    pub lane: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// The loop item this lane executes (already offset by `item_lo`).
    pub item: usize,
    /// Global thread id.
    pub tid: usize,
}

/// The launch geometry the walker iterates, plus the item offset applied by
/// ini-perforation (the kernel iterates `[item_lo, item_lo + n_items)`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Geom {
    pub spec: DeviceSpec,
    pub launch: LaunchConfig,
    pub warps_per_block: u32,
    pub n_blocks: u32,
    pub steps: usize,
    pub item_lo: usize,
}

impl Geom {
    pub fn new(spec: &DeviceSpec, launch: &LaunchConfig, item_lo: usize) -> Self {
        Geom {
            spec: *spec,
            launch: *launch,
            warps_per_block: launch.warps_per_block(spec),
            n_blocks: launch.n_blocks,
            steps: launch.steps(),
            item_lo,
        }
    }
}

/// The lane-buffer cursor all policies share: collects a warp's active
/// lanes and their activation votes, reusing its buffers across the whole
/// walk (the `Geom::collect` plumbing each former `run_*` duplicated).
pub(crate) struct WarpLanes {
    lanes: Vec<Lane>,
    votes: Vec<bool>,
}

impl WarpLanes {
    pub fn new(warp_size: u32) -> Self {
        WarpLanes {
            lanes: Vec::with_capacity(warp_size as usize),
            votes: vec![false; warp_size as usize],
        }
    }

    /// Gather the active lanes of `(block, warp, step)`.
    pub fn collect(&mut self, geom: &Geom, block: u32, warp: u32, step: usize) {
        self.lanes.clear();
        for lane in 0..geom.spec.warp_size {
            if let Some(idx) = geom.launch.item_for(&geom.spec, block, warp, lane, step) {
                self.lanes.push(Lane {
                    lane,
                    warp,
                    item: geom.item_lo + idx,
                    tid: geom.launch.tid(&geom.spec, block, warp, lane),
                });
            }
        }
    }

    /// Refresh the per-lane activation votes via the policy.
    pub fn fill_votes<P: TechniquePolicy + ?Sized>(
        &mut self,
        policy: &P,
        st: &mut P::State,
        body: &dyn RegionBody,
    ) {
        let (lanes, votes) = (&self.lanes, &mut self.votes);
        for (k, l) in lanes.iter().enumerate() {
            votes[k] = policy.lane_vote(st, k, l, body);
        }
    }

    pub fn lanes(&self) -> &[Lane] {
        &self.lanes
    }

    pub fn votes(&self) -> &[bool] {
        &self.votes[..self.lanes.len()]
    }
}

/// Walk one block through every (step, warp) and return its accounting.
pub(crate) fn walk_block<P, A>(
    geom: &Geom,
    policy: &P,
    access: &mut A,
    block: u32,
) -> BlockAccumulator
where
    P: TechniquePolicy + ?Sized,
    A: BodyAccess,
{
    let mut acc = BlockAccumulator::new(geom.warps_per_block as usize, geom.spec.costs);
    let mut st = policy.block_state(geom, block, access.body());
    let mut cur = WarpLanes::new(geom.spec.warp_size);

    for s in 0..geom.steps {
        // Block-level decisions tally votes across the whole block first
        // (shared-memory atomic + barrier on hardware; an extra pass here).
        let block_decision = if policy.level() == HierarchyLevel::Block {
            let mut yes = 0u32;
            let mut active = 0u32;
            for w in 0..geom.warps_per_block {
                cur.collect(geom, block, w, s);
                cur.fill_votes(policy, &mut st, access.body());
                active += cur.lanes().len() as u32;
                yes += cur.votes().iter().filter(|&&v| v).count() as u32;
            }
            Some(hierarchy::group_decision(yes, active))
        } else {
            None
        };

        for w in 0..geom.warps_per_block {
            cur.collect(geom, block, w, s);
            if cur.lanes().is_empty() {
                continue;
            }
            cur.fill_votes(policy, &mut st, access.body());
            let ctx = WarpCtx {
                spec: &geom.spec,
                warp: w,
                lanes: cur.lanes(),
                votes: cur.votes(),
                decision: block_decision
                    .unwrap_or_else(|| hierarchy::warp_decide(policy.level(), cur.votes())),
            };
            policy.warp_step(&mut st, &ctx, access, &mut acc);
        }
    }
    acc
}

/// Split `n` blocks into at most `threads` contiguous index ranges — one
/// per engine task.
pub(crate) fn chunk_ranges(n: u32, threads: usize) -> Vec<(u32, u32)> {
    let chunk = (n as usize).div_ceil(threads).max(1) as u32;
    (0..n)
        .step_by(chunk as usize)
        .map(|lo| (lo, (lo + chunk).min(n)))
        .collect()
}

/// Run every block of the launch through `policy` and fold the results into
/// a [`KernelRecord`], on the executor `opts` selects.
pub(crate) fn execute<P: TechniquePolicy + ?Sized>(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    shared: usize,
    policy: &P,
    body: &mut dyn RegionBody,
    opts: &ExecOptions,
    item_lo: usize,
) -> Result<KernelRecord, RegionError> {
    let mut exec = KernelExec::new(spec, launch, shared)?;
    let geom = Geom::new(spec, launch, item_lo);

    // Launches submitted from inside an engine task (a config-level sweep
    // worker) run inline — the engine's depth guard would serialize them
    // anyway, and skipping the fan-out avoids pointless store buffering.
    let width = engine().width_for(opts);
    let parallel = matches!(opts.executor, Executor::ParallelBlocks)
        && width > 1
        && geom.n_blocks > 1
        && !engine().is_nested();

    match (parallel, body.store_visibility()) {
        (true, StoreVisibility::Independent) => {
            // Fan blocks out in contiguous chunks, one engine task each;
            // results come back in chunk order, so the fold below visits
            // blocks in ascending index order no matter which worker
            // finished first.
            let ranges = chunk_ranges(geom.n_blocks, width);
            let shared_body: &dyn RegionBody = body;
            let per_chunk: Vec<Vec<(BlockAccumulator, StoreBuffer)>> =
                engine().run(ranges.len(), ranges.len(), |k| {
                    let (lo, hi) = ranges[k];
                    (lo..hi)
                        .map(|b| {
                            let mut access = BufferedAccess::new(shared_body);
                            let acc = walk_block(&geom, policy, &mut access, b);
                            (acc, access.buffer)
                        })
                        .collect()
                });
            for (b, (acc, stores)) in per_chunk.into_iter().flatten().enumerate() {
                exec.merge_block(b as u32, acc);
                stores.replay(|item, out| body.store(item, out));
            }
        }
        (true, StoreVisibility::BlockPrivate) => {
            // Blocks own disjoint partitions of the body's shared state, so
            // stores commit inline from each block's worker and the block's
            // own later reads (Jacobi sweeps) observe them immediately.
            let ranges = chunk_ranges(geom.n_blocks, width);
            let shared_body: &dyn RegionBody = body;
            let per_chunk: Vec<Vec<BlockAccumulator>> =
                engine().run(ranges.len(), ranges.len(), |k| {
                    let (lo, hi) = ranges[k];
                    (lo..hi)
                        .map(|b| {
                            let mut access = SharedAccess { body: shared_body };
                            walk_block(&geom, policy, &mut access, b)
                        })
                        .collect()
                });
            for (b, acc) in per_chunk.into_iter().flatten().enumerate() {
                exec.merge_block(b as u32, acc);
            }
        }
        // Sequential reference, or a Global-visibility body that must stay
        // on it: blocks walked one after another, stores committed inline.
        _ => {
            for b in 0..geom.n_blocks {
                let mut access = InlineAccess { body: &mut *body };
                let acc = walk_block(&geom, policy, &mut access, b);
                exec.merge_block(b, acc);
            }
        }
    }
    Ok(exec.finish())
}
