//! Phased multi-kernel submission: several dependent kernels enter the
//! engine as *one* batch.
//!
//! Apps like LULESH launch a handful of small, sequentially dependent
//! kernels per timestep; submitting each through
//! [`approx_parallel_for_opts`](crate::exec::approx_parallel_for_opts)
//! pays one worker-pool handoff (dispatch, join, fold) per kernel. This
//! module instead resolves every kernel up front ([`prepare`]) and submits
//! all of them as the phases of a single
//! [`ExecEngine::run_phases`](crate::exec::engine::ExecEngine::run_phases)
//! call ([`run_batch`]): workers stay warm across the inter-kernel
//! barriers, and the per-timestep handoff cost is paid once instead of
//! five times.
//!
//! Batched bodies must have [`StoreVisibility::BlockPrivate`]: their stores
//! commit inline through `store_shared` (interior-mutable state such as
//! [`BlockField`](crate::exec::body::BlockField)), which is what makes the
//! next phase's reads of this phase's outputs well-defined — the barrier
//! between phases gives the happens-before edge. Within a phase the usual
//! block-decomposition contract applies, so each kernel's walk — and
//! therefore the whole batch — is bit-identical to submitting the kernels
//! one by one on either executor.

use crate::exec::body::{RegionBody, SharedAccess, StoreVisibility};
use crate::exec::engine::engine;
use crate::exec::walk::{chunk_ranges, walk_block, Geom, WalkArena, AUTO_FANOUT_MIN_WARP_STEPS};
use crate::exec::{resolve, ExecOptions, Executor, ResolvedKernel, ResolvedPolicy};
use crate::region::{ApproxRegion, RegionError};
use gpu_sim::{BlockAccumulator, DeviceSpec, KernelExec, KernelRecord};

/// One kernel of a batch: the dispatch-stage output plus the shared body it
/// will run against. Build with [`prepare`]; run with [`run_batch`].
pub struct BatchKernel<'a> {
    resolved: ResolvedKernel,
    body: &'a dyn RegionBody,
}

/// Resolve one kernel of a batch (the dispatch stage of
/// [`approx_parallel_for_opts`](crate::exec::approx_parallel_for_opts),
/// hoisted out of the submission loop). Fails eagerly on anything the
/// per-kernel entry point would reject, plus on bodies whose stores cannot
/// commit inline between phases.
pub fn prepare<'a>(
    spec: &DeviceSpec,
    launch: &gpu_sim::LaunchConfig,
    region: Option<&ApproxRegion>,
    body: &'a dyn RegionBody,
    opts: &ExecOptions,
) -> Result<BatchKernel<'a>, RegionError> {
    if body.store_visibility() != StoreVisibility::BlockPrivate {
        return Err(RegionError::Invalid(
            "batched kernels need StoreVisibility::BlockPrivate: later phases read earlier \
             phases' outputs, so stores must commit inline through store_shared"
                .into(),
        ));
    }
    let resolved = resolve(spec, launch, region, body, opts.serialized_taf)?;
    Ok(BatchKernel { resolved, body })
}

impl ResolvedPolicy {
    /// Walk blocks `[lo, hi)` against a shared body (stores through
    /// `store_shared`), one fresh accumulator per block, one arena for the
    /// whole range. The monomorphized-per-technique inner loop of
    /// [`run_batch`]'s phase tasks.
    fn walk_range_shared(
        &self,
        geom: &Geom,
        body: &dyn RegionBody,
        lo: u32,
        hi: u32,
    ) -> Vec<BlockAccumulator> {
        fn go<P: crate::exec::policy::TechniquePolicy>(
            policy: &P,
            geom: &Geom,
            body: &dyn RegionBody,
            lo: u32,
            hi: u32,
        ) -> Vec<BlockAccumulator> {
            let mut arena = WalkArena::new(geom);
            let accs = (lo..hi)
                .map(|b| {
                    let mut acc =
                        BlockAccumulator::new(geom.warps_per_block as usize, geom.spec.costs);
                    let mut access = SharedAccess { body };
                    walk_block(geom, policy, &mut access, b, &mut arena, &mut acc);
                    acc
                })
                .collect();
            crate::exec::walk::flush_memo_stats(&mut arena);
            accs
        }
        match self {
            ResolvedPolicy::Accurate(p) => go(p, geom, body, lo, hi),
            ResolvedPolicy::Perfo(p) => go(p, geom, body, lo, hi),
            ResolvedPolicy::Taf(p) => go(p, geom, body, lo, hi),
            ResolvedPolicy::SerializedTaf(p) => go(p, geom, body, lo, hi),
            ResolvedPolicy::Iact(p) => go(p, geom, body, lo, hi),
        }
    }
}

/// Run `kernels` in order as the phases of one engine submission and return
/// each kernel's record. Equivalent, bit for bit, to running them one by
/// one through the per-kernel entry point with the same options.
pub fn run_batch(
    spec: &DeviceSpec,
    kernels: &[BatchKernel<'_>],
    opts: &ExecOptions,
) -> Result<Vec<KernelRecord>, RegionError> {
    // Validate every launch before any phase runs: a batch must fail
    // atomically, not after earlier kernels already committed stores.
    let mut execs = Vec::with_capacity(kernels.len());
    let mut geoms = Vec::with_capacity(kernels.len());
    for k in kernels {
        execs.push(KernelExec::new(
            spec,
            &k.resolved.launch,
            k.resolved.shared,
        )?);
        geoms.push(Geom::new(spec, &k.resolved.launch, k.resolved.item_lo));
    }

    let width = engine().width_for(opts);
    let modeled: usize = geoms
        .iter()
        .map(|g| g.n_blocks as usize * g.warps_per_block as usize * g.steps)
        .sum();
    let wants_fan_out = match opts.executor {
        Executor::Sequential => false,
        Executor::ParallelBlocks => true,
        Executor::Auto => modeled >= AUTO_FANOUT_MIN_WARP_STEPS,
    };
    let parallel = wants_fan_out && width > 1 && !engine().is_nested();

    let per_kernel: Vec<Vec<Vec<BlockAccumulator>>> = if parallel {
        let chunks: Vec<Vec<(u32, u32)>> = geoms
            .iter()
            .map(|g| chunk_ranges(g.n_blocks, width))
            .collect();
        let sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
        engine().run_phases(&sizes, width, |p, j| {
            let (lo, hi) = chunks[p][j];
            kernels[p]
                .resolved
                .policy
                .walk_range_shared(&geoms[p], kernels[p].body, lo, hi)
        })
    } else {
        // The sequential reference: kernels in order, each walked in one
        // range. Same walk, same shared-store commits, no handoff.
        kernels
            .iter()
            .zip(&geoms)
            .map(|(k, g)| {
                vec![k
                    .resolved
                    .policy
                    .walk_range_shared(g, k.body, 0, g.n_blocks)]
            })
            .collect()
    };

    Ok(execs
        .into_iter()
        .zip(per_kernel)
        .map(|(mut exec, chunks)| {
            // Chunks come back in chunk (= ascending block) order.
            for (b, acc) in chunks.iter().flatten().enumerate() {
                exec.merge_block(b as u32, acc);
            }
            exec.finish()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::approx_parallel_for_opts;
    use crate::exec::body::BlockField;
    use crate::region::ApproxRegion;
    use gpu_sim::{AccessPattern, CostProfile, LaunchConfig};

    /// Two dependent stages over block-private fields: stage 1 writes `a`,
    /// stage 2 reads `a` and writes `b`.
    struct StageOne {
        a: BlockField,
    }

    impl RegionBody for StageOne {
        fn out_dim(&self) -> usize {
            1
        }
        fn compute(&self, i: usize, out: &mut [f64]) {
            out[0] = (i as f64).sqrt() + 1.0;
        }
        fn store(&mut self, i: usize, out: &[f64]) {
            self.store_shared(i, out);
        }
        fn store_visibility(&self) -> StoreVisibility {
            StoreVisibility::BlockPrivate
        }
        fn store_shared(&self, i: usize, out: &[f64]) {
            self.a.set(i, out[0]);
        }
        fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
            CostProfile::new()
                .flops(4.0)
                .global_write(lanes, 8, AccessPattern::Coalesced)
        }
    }

    struct StageTwo<'m> {
        a: &'m BlockField,
        b: BlockField,
    }

    impl RegionBody for StageTwo<'_> {
        fn out_dim(&self) -> usize {
            1
        }
        fn compute(&self, i: usize, out: &mut [f64]) {
            out[0] = self.a.get(i) * 2.0 - 1.0;
        }
        fn store(&mut self, i: usize, out: &[f64]) {
            self.store_shared(i, out);
        }
        fn store_visibility(&self) -> StoreVisibility {
            StoreVisibility::BlockPrivate
        }
        fn store_shared(&self, i: usize, out: &[f64]) {
            self.b.set(i, out[0]);
        }
        fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
            CostProfile::new()
                .flops(4.0)
                .global_read(lanes, 8, AccessPattern::Coalesced)
                .global_write(lanes, 8, AccessPattern::Coalesced)
        }
    }

    fn run_pair(opts: &ExecOptions, batched: bool) -> (Vec<KernelRecord>, Vec<f64>) {
        let spec = DeviceSpec::v100();
        let n = 1000;
        let lc = LaunchConfig::block_local(n, 64, 8);
        let one = StageOne {
            a: BlockField::from_vec(vec![0.0; n]),
        };
        if batched {
            let two_field = BlockField::from_vec(vec![0.0; n]);
            let two = StageTwo {
                a: &one.a,
                b: two_field,
            };
            let batch = [
                prepare(&spec, &lc, None, &one, opts).unwrap(),
                prepare(&spec, &lc, None, &two, opts).unwrap(),
            ];
            let records = run_batch(&spec, &batch, opts).unwrap();
            let out = two.b.to_vec(0..n);
            (records, out)
        } else {
            let mut one = one;
            let r1 = approx_parallel_for_opts(&spec, &lc, None, &mut one, opts).unwrap();
            let mut two = StageTwo {
                a: &one.a,
                b: BlockField::from_vec(vec![0.0; n]),
            };
            let r2 = approx_parallel_for_opts(&spec, &lc, None, &mut two, opts).unwrap();
            let out = two.b.to_vec(0..n);
            (vec![r1, r2], out)
        }
    }

    #[test]
    fn batch_matches_one_by_one_submission() {
        for executor in [
            Executor::Sequential,
            Executor::ParallelBlocks,
            Executor::Auto,
        ] {
            let opts = ExecOptions {
                executor,
                threads: Some(4),
                ..ExecOptions::default()
            };
            let (batch_records, batch_out) = run_pair(&opts, true);
            let (solo_records, solo_out) = run_pair(&opts, false);
            assert_eq!(batch_records, solo_records, "{executor:?}");
            assert!(
                batch_out
                    .iter()
                    .zip(&solo_out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{executor:?}: batched outputs diverged"
            );
        }
    }

    #[test]
    fn batch_rejects_buffering_bodies() {
        struct Indep;
        impl RegionBody for Indep {
            fn out_dim(&self) -> usize {
                1
            }
            fn compute(&self, _i: usize, out: &mut [f64]) {
                out[0] = 0.0;
            }
            fn store(&mut self, _i: usize, _out: &[f64]) {}
            fn accurate_cost(&self, _lanes: u32, _spec: &DeviceSpec) -> CostProfile {
                CostProfile::new().flops(1.0)
            }
        }
        let spec = DeviceSpec::v100();
        let lc = LaunchConfig::one_item_per_thread(64, 32);
        let err = prepare(&spec, &lc, None, &Indep, &ExecOptions::default());
        assert!(err.is_err());
    }

    #[test]
    fn batch_with_approx_region_matches_solo() {
        let spec = DeviceSpec::v100();
        let n = 600;
        let lc = LaunchConfig::block_local(n, 64, 4);
        let region = ApproxRegion::memo_out(2, 16, 0.8);
        let run = |opts: &ExecOptions| {
            let one = StageOne {
                a: BlockField::from_vec(vec![0.0; n]),
            };
            let batch = [prepare(&spec, &lc, Some(&region), &one, opts).unwrap()];
            let mut records = run_batch(&spec, &batch, opts).unwrap();
            (records.remove(0), one.a.to_vec(0..n))
        };
        fn solo(
            spec: &DeviceSpec,
            lc: &LaunchConfig,
            region: &ApproxRegion,
            opts: &ExecOptions,
            n: usize,
        ) -> (KernelRecord, Vec<f64>) {
            let mut one = StageOne {
                a: BlockField::from_vec(vec![0.0; n]),
            };
            let r = approx_parallel_for_opts(spec, lc, Some(region), &mut one, opts).unwrap();
            (r, one.a.to_vec(0..n))
        }
        for executor in [Executor::Sequential, Executor::ParallelBlocks] {
            let opts = ExecOptions {
                executor,
                threads: Some(3),
                ..ExecOptions::default()
            };
            let (br, bo) = run(&opts);
            let (sr, so) = solo(&spec, &lc, &region, &opts, n);
            assert_eq!(br, sr, "{executor:?}");
            assert!(
                bo.iter().zip(&so).all(|(a, b)| a.to_bits() == b.to_bits()),
                "{executor:?}"
            );
        }
    }
}
