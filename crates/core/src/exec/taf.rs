//! TAF policies: the relaxed-locality per-thread design (Fig 4d) and the
//! serialized "semantically equivalent" per-warp ablation (Fig 4c).
//!
//! Per-thread TAF state machines are indexed by thread id; a block's
//! threads form a contiguous disjoint id range, so each block gets a
//! private pool of `block_size` machines and decisions match the former
//! launch-wide pool exactly. A slice's machines are likewise consecutive
//! (`tid_base - block_base + k`), so voting and stepping walk the pool
//! linearly.

use crate::exec::body::{BodyAccess, RegionBody};
use crate::exec::charge::MixMemo;
use crate::exec::policy::{TechniquePolicy, WarpCtx};
use crate::exec::walk::{Geom, WarpSlice};
use crate::hierarchy::{self, HierarchyLevel, WarpDecision};
use crate::params::TafParams;
use crate::taf::TafPool;
use gpu_sim::{BlockAccumulator, CostProfile};

pub(crate) struct TafPolicy {
    pub params: TafParams,
    pub level: HierarchyLevel,
}

pub(crate) struct TafState {
    /// One state machine per thread of this block, indexed by
    /// `tid - block_base`.
    pool: TafPool,
    block_base: usize,
    out: Vec<f64>,
}

impl TafState {
    /// Machine of the slice's lane 0; lane `k` is `local(slice) + k`.
    fn local(&self, slice: &WarpSlice) -> usize {
        slice.tid_base - self.block_base
    }
}

impl TechniquePolicy for TafPolicy {
    type State = TafState;

    fn level(&self) -> HierarchyLevel {
        self.level
    }

    fn block_state(&self, geom: &Geom, block: u32, body: &dyn RegionBody) -> TafState {
        let out_dim = body.out_dim();
        TafState {
            pool: TafPool::new(geom.launch.block_size as usize, out_dim, self.params),
            block_base: block as usize * geom.launch.block_size as usize,
            out: vec![0.0; out_dim],
        }
    }

    fn vote_slice(
        &self,
        st: &mut TafState,
        slice: &WarpSlice,
        votes: &mut [bool],
        _body: &dyn RegionBody,
    ) {
        let base = st.local(slice);
        for (k, v) in votes.iter_mut().enumerate() {
            *v = st.pool.wants_approx(base + k);
        }
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut TafState,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        memo: &mut MixMemo,
        acc: &mut BlockAccumulator,
    ) {
        let base = st.local(&ctx.slice);
        let mut n_acc = 0u32;
        let mut n_apx = 0u32;
        for k in 0..ctx.slice.n as usize {
            let s = base + k;
            let item = ctx.slice.item_base + k;
            let approx = match ctx.decision {
                WarpDecision::PerLane => ctx.votes[k],
                WarpDecision::GroupApprox => st.pool.can_approximate(s),
                WarpDecision::GroupAccurate => false,
            };
            if approx {
                st.out.copy_from_slice(st.pool.last(s));
                access.store(item, &st.out);
                st.pool.note_approx(s);
                n_apx += 1;
            } else {
                access.compute(item, &mut st.out);
                access.store(item, &st.out);
                st.pool.observe(s, &st.out);
                n_acc += 1;
            }
        }

        let cost = memo.get_or(n_acc, n_apx, || {
            let body = access.body();
            let mut cost = st
                .pool
                .activation_cost()
                .add(&hierarchy::decision_cost(self.level));
            if n_acc > 0 {
                cost = cost.add(
                    &body
                        .accurate_cost(n_acc, ctx.spec)
                        .add(&st.pool.observe_cost()),
                );
            }
            if n_apx > 0 {
                cost = cost.add(
                    &st.pool
                        .predict_cost()
                        .add(&body.store_cost(n_apx, ctx.spec)),
                );
            }
            cost
        });
        acc.charge_precomposed(ctx.slice.warp, &cost);
        acc.note_step(n_acc, n_apx, 0, n_acc > 0 && n_apx > 0);
    }
}

/// Fig 4(c) ablation: the "semantically equivalent" GPU TAF. One state
/// machine per warp consumes the warp's items in loop order (spatial
/// locality preserved), and lanes execute one at a time while the rest of
/// the warp idles — the serialization the relaxed-locality design removes.
pub(crate) struct SerializedTafPolicy {
    pub params: TafParams,
}

pub(crate) struct SerializedTafState {
    /// One machine per warp of this block, indexed by the warp's index
    /// within the block.
    pool: TafPool,
    out: Vec<f64>,
    // The component profiles are fixed for the whole launch; caching them
    // here keeps the per-lane serialized cost accumulation (whose f64
    // addition order is semantically part of the ablation and cannot be
    // memoized by mix) from re-assembling them every lane.
    activation: CostProfile,
    predict: CostProfile,
    observe: CostProfile,
    accurate_one: CostProfile,
    store_one: CostProfile,
}

impl TechniquePolicy for SerializedTafPolicy {
    type State = SerializedTafState;

    // The serialized ablation makes no group decisions (each warp's state
    // machine is consulted lane by lane inside `warp_step`), so the default
    // all-accurate `vote_slice` stands.

    fn block_state(&self, geom: &Geom, _block: u32, body: &dyn RegionBody) -> SerializedTafState {
        let out_dim = body.out_dim();
        let pool = TafPool::new(geom.warps_per_block as usize, out_dim, self.params);
        SerializedTafState {
            activation: pool.activation_cost(),
            predict: pool.predict_cost(),
            observe: pool.observe_cost(),
            accurate_one: body.accurate_cost(1, &geom.spec),
            store_one: body.store_cost(1, &geom.spec),
            pool,
            out: vec![0.0; out_dim],
        }
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut SerializedTafState,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        _memo: &mut MixMemo,
        acc: &mut BlockAccumulator,
    ) {
        let wid = ctx.slice.warp as usize;
        let mut n_acc = 0u32;
        let mut n_apx = 0u32;
        let mut cost = st.activation;
        for k in 0..ctx.slice.n as usize {
            let item = ctx.slice.item_base + k;
            if st.pool.wants_approx(wid) {
                st.out.copy_from_slice(st.pool.last(wid));
                access.store(item, &st.out);
                st.pool.note_approx(wid);
                n_apx += 1;
                cost = cost.add(&st.predict).add(&st.store_one);
            } else {
                access.compute(item, &mut st.out);
                access.store(item, &st.out);
                st.pool.observe(wid, &st.out);
                n_acc += 1;
                // Serialized: each lane pays a full single-lane body.
                cost = cost.add(&st.accurate_one).add(&st.observe);
            }
        }
        acc.charge(ctx.slice.warp, &cost);
        acc.note_step(n_acc, n_apx, 0, n_acc > 0 && n_apx > 0);
    }
}
