//! TAF policies: the relaxed-locality per-thread design (Fig 4d) and the
//! serialized "semantically equivalent" per-warp ablation (Fig 4c).
//!
//! Per-thread TAF state machines are indexed by thread id; a block's
//! threads form a contiguous disjoint id range, so each block gets a
//! private pool of `block_size` machines and decisions match the former
//! launch-wide pool exactly.

use crate::exec::body::{BodyAccess, RegionBody};
use crate::exec::charge::MixedStep;
use crate::exec::policy::{TechniquePolicy, WarpCtx};
use crate::exec::walk::{Geom, Lane};
use crate::hierarchy::{self, HierarchyLevel, WarpDecision};
use crate::params::TafParams;
use crate::taf::TafPool;
use gpu_sim::BlockAccumulator;

pub(crate) struct TafPolicy {
    pub params: TafParams,
    pub level: HierarchyLevel,
}

pub(crate) struct TafState {
    /// One state machine per thread of this block, indexed by
    /// `tid - block_base`.
    pool: TafPool,
    block_base: usize,
    out: Vec<f64>,
}

impl TafState {
    fn local(&self, lane: &Lane) -> usize {
        lane.tid - self.block_base
    }
}

impl TechniquePolicy for TafPolicy {
    type State = TafState;

    fn level(&self) -> HierarchyLevel {
        self.level
    }

    fn block_state(&self, geom: &Geom, block: u32, body: &dyn RegionBody) -> TafState {
        let out_dim = body.out_dim();
        TafState {
            pool: TafPool::new(geom.launch.block_size as usize, out_dim, self.params),
            block_base: block as usize * geom.launch.block_size as usize,
            out: vec![0.0; out_dim],
        }
    }

    fn lane_vote(&self, st: &mut TafState, _k: usize, l: &Lane, _b: &dyn RegionBody) -> bool {
        st.pool.wants_approx(st.local(l))
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut TafState,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    ) {
        let mut n_acc = 0u32;
        let mut n_apx = 0u32;
        for (k, l) in ctx.lanes.iter().enumerate() {
            let s = st.local(l);
            let approx = match ctx.decision {
                WarpDecision::PerLane => ctx.votes[k],
                WarpDecision::GroupApprox => st.pool.can_approximate(s),
                WarpDecision::GroupAccurate => false,
            };
            if approx {
                st.out.copy_from_slice(st.pool.last(s));
                access.store(l.item, &st.out);
                st.pool.note_approx(s);
                n_apx += 1;
            } else {
                access.compute(l.item, &mut st.out);
                access.store(l.item, &st.out);
                st.pool.observe(s, &st.out);
                n_acc += 1;
            }
        }

        let body = access.body();
        MixedStep {
            base: st
                .pool
                .activation_cost()
                .add(&hierarchy::decision_cost(self.level)),
            accurate: body
                .accurate_cost(n_acc.max(1), ctx.spec)
                .add(&st.pool.observe_cost()),
            approx: st
                .pool
                .predict_cost()
                .add(&body.store_cost(n_apx.max(1), ctx.spec)),
        }
        .commit(acc, ctx.warp, n_acc, n_apx);
    }
}

/// Fig 4(c) ablation: the "semantically equivalent" GPU TAF. One state
/// machine per warp consumes the warp's items in loop order (spatial
/// locality preserved), and lanes execute one at a time while the rest of
/// the warp idles — the serialization the relaxed-locality design removes.
pub(crate) struct SerializedTafPolicy {
    pub params: TafParams,
}

pub(crate) struct SerializedTafState {
    /// One machine per warp of this block, indexed by the warp's index
    /// within the block.
    pool: TafPool,
    out: Vec<f64>,
}

impl TechniquePolicy for SerializedTafPolicy {
    type State = SerializedTafState;

    fn block_state(&self, geom: &Geom, _block: u32, body: &dyn RegionBody) -> SerializedTafState {
        let out_dim = body.out_dim();
        SerializedTafState {
            pool: TafPool::new(geom.warps_per_block as usize, out_dim, self.params),
            out: vec![0.0; out_dim],
        }
    }

    // The serialized ablation makes no group decisions: each warp's state
    // machine is consulted lane by lane inside `warp_step`.
    fn lane_vote(
        &self,
        _st: &mut SerializedTafState,
        _k: usize,
        _l: &Lane,
        _b: &dyn RegionBody,
    ) -> bool {
        false
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut SerializedTafState,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    ) {
        let wid = ctx.warp as usize;
        let mut n_acc = 0u32;
        let mut n_apx = 0u32;
        let mut cost = st.pool.activation_cost();
        for l in ctx.lanes {
            if st.pool.wants_approx(wid) {
                st.out.copy_from_slice(st.pool.last(wid));
                access.store(l.item, &st.out);
                st.pool.note_approx(wid);
                n_apx += 1;
                cost = cost
                    .add(&st.pool.predict_cost())
                    .add(&access.body().store_cost(1, ctx.spec));
            } else {
                access.compute(l.item, &mut st.out);
                access.store(l.item, &st.out);
                st.pool.observe(wid, &st.out);
                n_acc += 1;
                // Serialized: each lane pays a full single-lane body.
                cost = cost
                    .add(&access.body().accurate_cost(1, ctx.spec))
                    .add(&st.pool.observe_cost());
            }
        }
        acc.charge(ctx.warp, &cost);
        acc.note_step(n_acc, n_apx, 0, n_acc > 0 && n_apx > 0);
    }
}
