//! Perforation policy: data-independent skip patterns (small/large, herded
//! or not); ini/fini are applied as loop-bound changes before the walk ever
//! starts (see the dispatch in [`exec`](crate::exec)).

use crate::exec::body::{BodyAccess, RegionBody};
use crate::exec::policy::{TechniquePolicy, WarpCtx};
use crate::exec::walk::{Geom, Lane};
use crate::params::PerfoParams;
use crate::perfo;
use gpu_sim::{BlockAccumulator, CostProfile};

pub(crate) struct PerfoPolicy {
    pub params: PerfoParams,
}

pub(crate) struct PerfoState {
    out: Vec<f64>,
}

impl TechniquePolicy for PerfoPolicy {
    type State = PerfoState;

    fn block_state(&self, _geom: &Geom, _block: u32, body: &dyn RegionBody) -> PerfoState {
        PerfoState {
            out: vec![0.0; body.out_dim()],
        }
    }

    // Perforation is data-independent: there is no activation criterion to
    // vote on (the region validates `level(thread)` only).
    fn lane_vote(&self, _st: &mut PerfoState, _k: usize, _l: &Lane, _b: &dyn RegionBody) -> bool {
        false
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut PerfoState,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    ) {
        let mut n_exec = 0u32;
        let mut n_skip = 0u32;
        for l in ctx.lanes {
            if perfo::should_skip(&self.params, l.item, l.item / ctx.spec.warp_size as usize) {
                n_skip += 1;
            } else {
                access.compute(l.item, &mut st.out);
                access.store(l.item, &st.out);
                n_exec += 1;
            }
        }
        // Encounter-counter bookkeeping.
        let mut cost = CostProfile::new().flops(1.0);
        if n_exec > 0 {
            // Non-herded patterns leave the warp's memory span fragmented
            // and the SIMD issue width unchanged, so the warp pays the cost
            // of its full active width; herded skips are all-or-nothing so
            // this is equivalent there.
            let effective = if self.params.herded {
                n_exec
            } else {
                ctx.lanes.len() as u32
            };
            cost = cost.add(&access.body().accurate_cost(effective, ctx.spec));
        }
        acc.charge(ctx.warp, &cost);
        acc.note_step(n_exec, 0, n_skip, n_exec > 0 && n_skip > 0);
    }
}
