//! Perforation policy: data-independent skip patterns (small/large, herded
//! or not); ini/fini are applied as loop-bound changes before the walk ever
//! starts (see the dispatch in [`exec`](crate::exec)).

use crate::exec::body::{BodyAccess, RegionBody};
use crate::exec::charge::MixMemo;
use crate::exec::policy::{TechniquePolicy, WarpCtx};
use crate::exec::walk::Geom;
use crate::params::PerfoParams;
use crate::perfo;
use gpu_sim::{BlockAccumulator, CostProfile};

pub(crate) struct PerfoPolicy {
    pub params: PerfoParams,
}

pub(crate) struct PerfoState {
    out: Vec<f64>,
}

impl TechniquePolicy for PerfoPolicy {
    type State = PerfoState;

    // Perforation is data-independent: there is no activation criterion to
    // vote on (the region validates `level(thread)` only), so the default
    // all-accurate `vote_slice` stands.

    fn block_state(&self, _geom: &Geom, _block: u32, body: &dyn RegionBody) -> PerfoState {
        PerfoState {
            out: vec![0.0; body.out_dim()],
        }
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut PerfoState,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        memo: &mut MixMemo,
        acc: &mut BlockAccumulator,
    ) {
        let ws = ctx.spec.warp_size as usize;
        let mut n_exec = 0u32;
        let mut n_skip = 0u32;
        for k in 0..ctx.slice.n as usize {
            let item = ctx.slice.item_base + k;
            if perfo::should_skip(&self.params, item, item / ws) {
                n_skip += 1;
            } else {
                access.compute(item, &mut st.out);
                access.store(item, &st.out);
                n_exec += 1;
            }
        }
        // Non-herded patterns leave the warp's memory span fragmented and
        // the SIMD issue width unchanged, so the warp pays the cost of its
        // full active width; herded skips are all-or-nothing so this is
        // equivalent there. The memo key encodes exactly what the cost
        // depends on: the effective width when anything executed
        // (`(effective, 1)`, effective ≥ 1), or the bare encounter counter
        // (`(0, 0)`) when the whole slice skipped.
        let effective = if self.params.herded {
            n_exec
        } else {
            ctx.slice.n
        };
        let cost = if n_exec > 0 {
            memo.get_or(effective, 1, || {
                CostProfile::new()
                    .flops(1.0)
                    .add(&access.body().accurate_cost(effective, ctx.spec))
            })
        } else {
            memo.get_or(0, 0, || CostProfile::new().flops(1.0))
        };
        acc.charge_precomposed(ctx.slice.warp, &cost);
        acc.note_step(n_exec, 0, n_skip, n_exec > 0 && n_skip > 0);
    }
}
