//! The staged execution pipeline: functional execution of approximated
//! kernels on the `gpu-sim` substrate.
//!
//! The pipeline has three stages, one module each:
//!
//! 1. **Dispatch** (this module) — validate the region against the body,
//!    size the shared-memory AC state, and select the
//!    [`TechniquePolicy`](policy) for the region's technique. [`resolve`]
//!    is the shared front half, used both by [`approx_parallel_for_opts`]
//!    and by the phased [`batch`] API.
//! 2. **Walk** ([`walk`]) — the single grid walker iterates block →
//!    grid-stride step → warp, evaluates each warp step as one lane
//!    *slice*, resolves hierarchy-level votes, and calls the policy's
//!    hooks; [`taf`], [`iact`], and [`perfo`] each implement the policy
//!    trait in ~150 lines of pure decision logic. The retired per-lane
//!    walk survives as the bit-equivalence oracle in [`reference`].
//! 3. **Accounting** ([`charge`], plus `gpu_sim::BlockAccumulator`) —
//!    every block accumulates costs, statistics, and stores privately, and
//!    the results fold back in block order, which is what lets
//!    [`Executor::ParallelBlocks`] run blocks on the persistent
//!    [`ExecEngine`](engine::ExecEngine) worker pool with results
//!    bit-identical to the [`Executor::Sequential`] reference.
//!
//! [`approx_parallel_for`] is the analogue of launching an annotated
//! `#pragma omp target teams distribute parallel for` region;
//! [`approx_block_tasks`] is the cooperative-block variant used by
//! benchmarks like Binomial Options where one block computes one work item
//! and decisions are block-scoped.

pub mod batch;
mod block_tasks;
pub mod body;
pub mod charge;
pub mod engine;
mod iact;
mod perfo;
mod policy;
#[cfg(test)]
mod reference;
mod taf;
mod walk;

pub use block_tasks::{approx_block_tasks, approx_block_tasks_opts};
pub use body::{BlockField, BlockTaskBody, RegionBody, StoreVisibility};
pub use charge::StoreBuffer;
pub use engine::{engine, ExecEngine};

use crate::region::{ApproxRegion, RegionError, Technique};
use crate::shared_state;
use gpu_sim::{DeviceSpec, KernelRecord, LaunchConfig, Schedule};

/// Which executor drives the block walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// The reference executor: blocks walked one after another on the
    /// calling thread, stores committed inline.
    #[default]
    Sequential,
    /// Independent blocks fan out over the persistent
    /// [`ExecEngine`](engine::ExecEngine) worker pool; each block buffers
    /// its stores and accounting privately and the results fold back in
    /// block order, bit-identical to [`Executor::Sequential`].
    ParallelBlocks,
    /// Fan out like [`Executor::ParallelBlocks`], but only when the
    /// launch's modeled work (blocks × warps × steps) is large enough to
    /// amortize the handoff to the worker pool; tiny launches run inline
    /// on the calling thread. Results are bit-identical either way.
    Auto,
}

impl Executor {
    /// The executor selected by the `HPAC_THREADS` environment override:
    /// unset or `1` keeps the sequential reference; a worker count (or `0`
    /// for all cores) enables [`Executor::ParallelBlocks`]. A malformed
    /// value aborts with a clear error (see [`engine`] for the full
    /// precedence rules).
    pub fn from_env() -> Executor {
        match engine::env_threads() {
            Some(1) | None => Executor::Sequential,
            Some(_) => Executor::ParallelBlocks,
        }
    }
}

/// Execution options beyond the pragma surface: ablation switches and the
/// executor knob.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Run the "semantically equivalent" serialized GPU TAF of Fig 4(c)
    /// instead of the relaxed-locality algorithm of Fig 4(d): one state
    /// machine per warp consumes the warp's items in loop order, and every
    /// lane's region execution serializes.
    pub serialized_taf: bool,
    /// Which executor drives the block walk. `Default::default()` consults
    /// the `HPAC_THREADS` environment override (see [`Executor::from_env`]).
    pub executor: Executor,
    /// Worker threads for [`Executor::ParallelBlocks`]. `None` falls back
    /// to `HPAC_THREADS`, then to every available core — the canonical
    /// precedence chain lives in the [`engine`] module docs.
    pub threads: Option<usize>,
    /// Modeled-seconds ceiling for frontier-aware early abort. When set,
    /// the walk compares a *lower bound* of the run's accumulated modeled
    /// time (prior kernels on this thread plus the in-flight kernel's
    /// issue cycles spread over all SMs) against the ceiling at block
    /// boundaries and returns [`RegionError::CostCeiling`] once it is
    /// provably exceeded. Results are bit-identical when no abort fires;
    /// callers must only set a ceiling they are prepared to treat as a
    /// proof of "cannot beat the incumbent" (see the tuner's wiring).
    pub abort_above_seconds: Option<f64>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            serialized_taf: false,
            executor: Executor::from_env(),
            threads: None,
            abort_above_seconds: None,
        }
    }
}

impl ExecOptions {
    /// Options pinned to one executor (threads still resolved from the
    /// environment / core count).
    pub fn with_executor(executor: Executor) -> Self {
        ExecOptions {
            executor,
            ..ExecOptions::default()
        }
    }
}

/// A region's technique policy, resolved to a concrete implementation.
/// This is the closed set [`resolve`] dispatches into; the walker is
/// monomorphized per variant at the call sites.
pub(crate) enum ResolvedPolicy {
    Accurate(policy::AccuratePolicy),
    Perfo(perfo::PerfoPolicy),
    Taf(taf::TafPolicy),
    SerializedTaf(taf::SerializedTafPolicy),
    Iact(iact::IactPolicy),
}

/// The dispatch stage's output: everything [`walk::execute`] needs beyond
/// the body itself.
pub(crate) struct ResolvedKernel {
    pub policy: ResolvedPolicy,
    /// The effective launch (ini/fini perforation applied as bound changes).
    pub launch: LaunchConfig,
    /// Shared-memory AC state bytes per block.
    pub shared: usize,
    /// First iterated item (nonzero under ini-perforation).
    pub item_lo: usize,
}

impl ResolvedKernel {
    pub(crate) fn execute(
        &self,
        spec: &DeviceSpec,
        body: &mut dyn RegionBody,
        opts: &ExecOptions,
    ) -> Result<KernelRecord, RegionError> {
        match &self.policy {
            ResolvedPolicy::Accurate(p) => {
                walk::execute(spec, &self.launch, self.shared, p, body, opts, self.item_lo)
            }
            ResolvedPolicy::Perfo(p) => {
                walk::execute(spec, &self.launch, self.shared, p, body, opts, self.item_lo)
            }
            ResolvedPolicy::Taf(p) => {
                walk::execute(spec, &self.launch, self.shared, p, body, opts, self.item_lo)
            }
            ResolvedPolicy::SerializedTaf(p) => {
                walk::execute(spec, &self.launch, self.shared, p, body, opts, self.item_lo)
            }
            ResolvedPolicy::Iact(p) => {
                walk::execute(spec, &self.launch, self.shared, p, body, opts, self.item_lo)
            }
        }
    }
}

/// The dispatch stage: validate the region against the body, size the
/// shared AC state, apply perforation's loop-bound changes, and select the
/// technique policy.
pub(crate) fn resolve(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    region: Option<&ApproxRegion>,
    body: &dyn RegionBody,
    serialized_taf: bool,
) -> Result<ResolvedKernel, RegionError> {
    let Some(region) = region else {
        return Ok(ResolvedKernel {
            policy: ResolvedPolicy::Accurate(policy::AccuratePolicy),
            launch: *launch,
            shared: 0,
            item_lo: 0,
        });
    };
    region.validate()?;
    if body.out_dim() == 0 {
        return Err(RegionError::Invalid("region must declare outputs".into()));
    }
    if let Technique::Iact(_) = region.technique {
        if let Some(reason) = body.iact_incompatibility() {
            return Err(RegionError::Invalid(format!(
                "iACT not applicable to this region: {reason}"
            )));
        }
        if body.in_dim() == 0 {
            return Err(RegionError::Invalid(
                "iACT requires the region to declare inputs".into(),
            ));
        }
    }

    let shared =
        shared_state::region_block_bytes(region, spec, launch, body.in_dim(), body.out_dim())
            .map_err(RegionError::Invalid)?;

    match region.technique {
        Technique::Perfo(params) => {
            let (lo, hi) = crate::perfo::bounds(&params, launch.n_items);
            if lo >= hi {
                return Err(RegionError::Invalid(
                    "perforation drops the entire iteration space".into(),
                ));
            }
            // ini/fini are loop-bound changes: the kernel iterates only
            // [lo, hi).
            let eff = LaunchConfig {
                n_items: hi - lo,
                block_size: launch.block_size,
                n_blocks: launch.n_blocks,
                schedule: Schedule::GridStride,
            };
            Ok(ResolvedKernel {
                policy: ResolvedPolicy::Perfo(perfo::PerfoPolicy { params }),
                launch: eff,
                shared,
                item_lo: lo,
            })
        }
        Technique::Taf(params) => {
            let policy = if serialized_taf {
                ResolvedPolicy::SerializedTaf(taf::SerializedTafPolicy { params })
            } else {
                ResolvedPolicy::Taf(taf::TafPolicy {
                    params,
                    level: region.level,
                })
            };
            Ok(ResolvedKernel {
                policy,
                launch: *launch,
                shared,
                item_lo: 0,
            })
        }
        Technique::Iact(params) => {
            let tables_per_warp = params
                .effective_tables_per_warp(spec.warp_size)
                .map_err(RegionError::Invalid)?;
            Ok(ResolvedKernel {
                policy: ResolvedPolicy::Iact(iact::IactPolicy {
                    params,
                    level: region.level,
                    tables_per_warp,
                    lanes_per_table: spec.warp_size / tables_per_warp,
                }),
                launch: *launch,
                shared,
                item_lo: 0,
            })
        }
    }
}

/// Launch an approximated grid-stride parallel-for.
///
/// `region = None` runs the accurate baseline with identical bookkeeping.
pub fn approx_parallel_for(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    region: Option<&ApproxRegion>,
    body: &mut dyn RegionBody,
) -> Result<KernelRecord, RegionError> {
    approx_parallel_for_opts(spec, launch, region, body, &ExecOptions::default())
}

/// [`approx_parallel_for`] with explicit execution options.
pub fn approx_parallel_for_opts(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    region: Option<&ApproxRegion>,
    body: &mut dyn RegionBody,
    opts: &ExecOptions,
) -> Result<KernelRecord, RegionError> {
    resolve(spec, launch, region, body, opts.serialized_taf)?.execute(spec, body, opts)
}
