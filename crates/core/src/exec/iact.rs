//! iACT policy: input memoization with warp-shared tables and two-phase
//! (read/write) access.
//!
//! Tables belong to warps (`tables_per_warp` per warp), and a block's warps
//! are private to it, so each block gets a pool of
//! `warps_per_block × tables_per_warp` tables and behaves exactly like the
//! former launch-wide pool.

use crate::exec::body::{BodyAccess, RegionBody};
use crate::exec::charge::MixedStep;
use crate::exec::policy::{TechniquePolicy, WarpCtx};
use crate::exec::walk::{Geom, Lane};
use crate::hierarchy::{self, HierarchyLevel, WarpDecision};
use crate::iact::IactPool;
use crate::params::IactParams;
use gpu_sim::BlockAccumulator;

pub(crate) struct IactPolicy {
    pub params: IactParams,
    pub level: HierarchyLevel,
    pub tables_per_warp: u32,
    pub lanes_per_table: u32,
}

pub(crate) struct IactState {
    pool: IactPool,
    // Per-lane scratch of the current warp, refreshed by `lane_vote` in the
    // read phase and consumed by `warp_step`.
    in_cache: Vec<f64>,
    out_cache: Vec<f64>,
    probe_slot: Vec<Option<usize>>,
    probe_dist: Vec<f64>,
    acc_mask: Vec<bool>,
    out: Vec<f64>,
}

impl IactPolicy {
    /// Table of `lane` within its warp's table group, relative to the
    /// block's pool.
    fn table(&self, warp_in_block: u32, lane: &Lane) -> usize {
        (warp_in_block * self.tables_per_warp + lane.lane / self.lanes_per_table) as usize
    }
}

impl TechniquePolicy for IactPolicy {
    type State = IactState;

    fn level(&self) -> HierarchyLevel {
        self.level
    }

    fn block_state(&self, geom: &Geom, _block: u32, body: &dyn RegionBody) -> IactState {
        let ws = geom.spec.warp_size as usize;
        let in_dim = body.in_dim();
        let out_dim = body.out_dim();
        let n_tables = geom.warps_per_block as usize * self.tables_per_warp as usize;
        IactState {
            pool: IactPool::new(n_tables, in_dim, out_dim, self.params),
            in_cache: vec![0.0; ws * in_dim],
            out_cache: vec![0.0; ws * out_dim],
            probe_slot: vec![None; ws],
            probe_dist: vec![f64::INFINITY; ws],
            acc_mask: vec![false; ws],
            out: vec![0.0; out_dim],
        }
    }

    /// Read phase for one lane: gather the region inputs, probe the lane's
    /// table, cache the probe, vote on the hit.
    fn lane_vote(&self, st: &mut IactState, k: usize, l: &Lane, body: &dyn RegionBody) -> bool {
        let in_dim = st.pool.in_dim();
        let t = self.table(l.warp, l);
        body.inputs(l.item, &mut st.in_cache[k * in_dim..(k + 1) * in_dim]);
        let probe = st.pool.probe(t, &st.in_cache[k * in_dim..(k + 1) * in_dim]);
        st.probe_slot[k] = probe.slot;
        st.probe_dist[k] = probe.distance;
        probe.hit(self.params.threshold)
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut IactState,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        acc: &mut BlockAccumulator,
    ) {
        let in_dim = st.pool.in_dim();
        let out_dim = st.out.len();

        let mut n_acc = 0u32;
        let mut n_apx = 0u32;
        for (k, l) in ctx.lanes.iter().enumerate() {
            let t = self.table(ctx.warp, l);
            let approx = match ctx.decision {
                WarpDecision::PerLane => ctx.votes[k],
                // A forced lane returns its *nearest* entry even beyond the
                // threshold; with an empty table it must execute accurately.
                WarpDecision::GroupApprox => st.probe_slot[k].is_some(),
                WarpDecision::GroupAccurate => false,
            };
            st.acc_mask[k] = !approx;
            if approx {
                let slot = st.probe_slot[k].expect("approx lane must have an entry");
                st.out.copy_from_slice(st.pool.output(t, slot));
                st.pool.touch(t, slot);
                access.store(l.item, &st.out);
                n_apx += 1;
            } else {
                access.compute(l.item, &mut st.out);
                st.out_cache[k * out_dim..(k + 1) * out_dim].copy_from_slice(&st.out);
                access.store(l.item, &st.out);
                n_acc += 1;
            }
        }

        // Write phase: one writer per table — the accurate lane whose
        // inputs were farthest from any cached entry (most novel).
        if n_acc > 0 {
            for table_off in 0..self.tables_per_warp {
                let t = (ctx.warp * self.tables_per_warp + table_off) as usize;
                let mut writer: Option<usize> = None;
                let mut best = f64::NEG_INFINITY;
                for (k, l) in ctx.lanes.iter().enumerate() {
                    if !st.acc_mask[k] || (l.lane / self.lanes_per_table) != table_off {
                        continue;
                    }
                    let d = st.probe_dist[k];
                    if d > best {
                        best = d;
                        writer = Some(k);
                    }
                }
                if let Some(k) = writer {
                    st.pool.insert(
                        t,
                        &st.in_cache[k * in_dim..(k + 1) * in_dim],
                        &st.out_cache[k * out_dim..(k + 1) * out_dim],
                    );
                }
            }
        }

        let body = access.body();
        MixedStep {
            base: hierarchy::decision_cost(self.level)
                .add(&body.input_cost(ctx.lanes.len() as u32, ctx.spec))
                .add(&st.pool.search_cost()),
            accurate: body
                .accurate_cost(n_acc.max(1), ctx.spec)
                .add(&st.pool.write_phase_cost(self.lanes_per_table)),
            approx: st
                .pool
                .hit_cost()
                .add(&body.store_cost(n_apx.max(1), ctx.spec)),
        }
        .commit(acc, ctx.warp, n_acc, n_apx);
    }
}
