//! iACT policy: input memoization with warp-shared tables and two-phase
//! (read/write) access.
//!
//! Tables belong to warps (`tables_per_warp` per warp), and a block's warps
//! are private to it, so each block gets a pool of
//! `warps_per_block × tables_per_warp` tables and behaves exactly like the
//! former launch-wide pool. Per-lane probe scratch is sized for the whole
//! block (`warps_per_block × warp_size`, indexed
//! `slice.warp * warp_size + k`) so the block-level tally pass can cache
//! every warp's probes at once and the step pass reuses them un-re-probed.

use crate::exec::body::{BodyAccess, RegionBody};
use crate::exec::charge::MixMemo;
use crate::exec::policy::{TechniquePolicy, WarpCtx};
use crate::exec::walk::{Geom, WarpSlice};
use crate::hierarchy::{self, HierarchyLevel, WarpDecision};
use crate::iact::IactPool;
use crate::params::IactParams;
use gpu_sim::BlockAccumulator;

pub(crate) struct IactPolicy {
    pub params: IactParams,
    pub level: HierarchyLevel,
    pub tables_per_warp: u32,
    pub lanes_per_table: u32,
}

pub(crate) struct IactState {
    pool: IactPool,
    /// Lanes of scratch below (`warps_per_block × warp_size`).
    warp_size: usize,
    // Per-lane scratch, indexed `warp * warp_size + k`; refreshed by
    // `vote_slice` in the read phase and consumed by `warp_step`.
    in_cache: Vec<f64>,
    out_cache: Vec<f64>,
    probe_slot: Vec<Option<usize>>,
    probe_dist: Vec<f64>,
    out: Vec<f64>,
    // Per-step writer election scratch, one cell per table of the current
    // warp: the accurate lane with the largest probe distance seen so far
    // (`usize::MAX` = no accurate lane touched the table yet).
    writer_kg: Vec<usize>,
    writer_dist: Vec<f64>,
}

impl IactPolicy {
    /// Table of slice lane `k` of warp `warp`, relative to the block's pool.
    fn table(&self, warp: u32, k: usize) -> usize {
        (warp * self.tables_per_warp) as usize + k / self.lanes_per_table as usize
    }
}

impl TechniquePolicy for IactPolicy {
    type State = IactState;

    fn level(&self) -> HierarchyLevel {
        self.level
    }

    fn block_state(&self, geom: &Geom, _block: u32, body: &dyn RegionBody) -> IactState {
        let ws = geom.spec.warp_size as usize;
        let lanes = geom.warps_per_block as usize * ws;
        let in_dim = body.in_dim();
        let out_dim = body.out_dim();
        let n_tables = geom.warps_per_block as usize * self.tables_per_warp as usize;
        IactState {
            pool: IactPool::new(n_tables, in_dim, out_dim, self.params),
            warp_size: ws,
            in_cache: vec![0.0; lanes * in_dim],
            out_cache: vec![0.0; lanes * out_dim],
            probe_slot: vec![None; lanes],
            probe_dist: vec![f64::INFINITY; lanes],
            out: vec![0.0; out_dim],
            writer_kg: vec![usize::MAX; self.tables_per_warp as usize],
            writer_dist: vec![f64::NEG_INFINITY; self.tables_per_warp as usize],
        }
    }

    /// Read phase for the slice: gather each lane's region inputs, probe
    /// its table, cache the probe, vote on the hit.
    fn vote_slice(
        &self,
        st: &mut IactState,
        slice: &WarpSlice,
        votes: &mut [bool],
        body: &dyn RegionBody,
    ) {
        let in_dim = st.pool.in_dim();
        let base = slice.warp as usize * st.warp_size;
        for (k, v) in votes.iter_mut().enumerate() {
            let kg = base + k;
            let t = self.table(slice.warp, k);
            body.inputs(
                slice.item_base + k,
                &mut st.in_cache[kg * in_dim..(kg + 1) * in_dim],
            );
            let probe = st
                .pool
                .probe(t, &st.in_cache[kg * in_dim..(kg + 1) * in_dim]);
            st.probe_slot[kg] = probe.slot;
            st.probe_dist[kg] = probe.distance;
            *v = probe.hit(self.params.threshold);
        }
    }

    fn warp_step<A: BodyAccess>(
        &self,
        st: &mut IactState,
        ctx: &WarpCtx<'_>,
        access: &mut A,
        memo: &mut MixMemo,
        acc: &mut BlockAccumulator,
    ) {
        let in_dim = st.pool.in_dim();
        let out_dim = st.out.len();
        let n = ctx.slice.n as usize;
        let base = ctx.slice.warp as usize * st.warp_size;

        // Writer election happens inline with the lane pass: per table, the
        // accurate lane with the largest probe distance (first such lane
        // wins ties, matching a k-ascending scan). One pass over the lanes
        // replaces the former `tables_per_warp × n` rescan.
        let tables_touched = (n as u32).div_ceil(self.lanes_per_table) as usize;
        st.writer_kg[..tables_touched].fill(usize::MAX);
        st.writer_dist[..tables_touched].fill(f64::NEG_INFINITY);

        let mut n_acc = 0u32;
        let mut n_apx = 0u32;
        for k in 0..n {
            let kg = base + k;
            let item = ctx.slice.item_base + k;
            let t = self.table(ctx.slice.warp, k);
            let approx = match ctx.decision {
                WarpDecision::PerLane => ctx.votes[k],
                // A forced lane returns its *nearest* entry even beyond the
                // threshold; with an empty table it must execute accurately.
                WarpDecision::GroupApprox => st.probe_slot[kg].is_some(),
                WarpDecision::GroupAccurate => false,
            };
            if approx {
                let slot = st.probe_slot[kg].expect("approx lane must have an entry");
                st.out.copy_from_slice(st.pool.output(t, slot));
                st.pool.touch(t, slot);
                access.store(item, &st.out);
                n_apx += 1;
            } else {
                access.compute(item, &mut st.out);
                st.out_cache[kg * out_dim..(kg + 1) * out_dim].copy_from_slice(&st.out);
                access.store(item, &st.out);
                n_acc += 1;
                let table_off = k / self.lanes_per_table as usize;
                if st.probe_dist[kg] > st.writer_dist[table_off] {
                    st.writer_dist[table_off] = st.probe_dist[kg];
                    st.writer_kg[table_off] = kg;
                }
            }
        }

        // Write phase: one writer per table — the accurate lane whose
        // inputs were farthest from any cached entry (most novel).
        if n_acc > 0 {
            for table_off in 0..tables_touched {
                let kg = st.writer_kg[table_off];
                if kg == usize::MAX {
                    continue;
                }
                let t = (ctx.slice.warp * self.tables_per_warp) as usize + table_off;
                st.pool.insert(
                    t,
                    &st.in_cache[kg * in_dim..(kg + 1) * in_dim],
                    &st.out_cache[kg * out_dim..(kg + 1) * out_dim],
                );
            }
        }

        // The slice is fully partitioned (n = n_acc + n_apx), so the mix
        // key also determines the input-gather width below.
        let cost = memo.get_or(n_acc, n_apx, || {
            let body = access.body();
            let mut cost = hierarchy::decision_cost(self.level)
                .add(&body.input_cost(n as u32, ctx.spec))
                .add(&st.pool.search_cost());
            if n_acc > 0 {
                cost = cost.add(
                    &body
                        .accurate_cost(n_acc, ctx.spec)
                        .add(&st.pool.write_phase_cost(self.lanes_per_table)),
                );
            }
            if n_apx > 0 {
                cost = cost.add(&st.pool.hit_cost().add(&body.store_cost(n_apx, ctx.spec)));
            }
            cost
        });
        acc.charge_precomposed(ctx.slice.warp, &cost);
        acc.note_step(n_acc, n_apx, 0, n_acc > 0 && n_apx > 0);
    }
}
