//! # hpac-bench — figure/table regeneration binaries and Criterion benches.
//!
//! Binaries (`cargo run --release -p hpac-bench --bin <name>`):
//! `table1`, `table2`, `fig03`, `fig06`, `fig07`, `fig08`, `fig09`,
//! `fig10`, `fig11`, `fig12`, `ablations`. Pass `--full` for the paper's
//! complete Table 2 grids (hours); the default quick grids subsample each
//! axis. CSV copies land in `target/figures/`.

use hpac_harness::Scale;

/// Parse the common `--full` flag.
pub fn scale_from_args() -> Scale {
    if std::env::args().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    }
}

/// Output directory for CSV copies of figure data.
pub fn figures_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("target/figures")
}

/// Print and persist a batch of figure tables.
pub fn emit(figs: &[hpac_harness::figures::FigureData]) {
    let dir = figures_dir();
    for fig in figs {
        println!("{}", fig.render());
        if let Err(e) = fig.save_csv(&dir) {
            eprintln!("warning: could not save {}: {e}", fig.id);
        }
    }
}
