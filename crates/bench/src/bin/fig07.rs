//! Regenerate Figure 7: LULESH speedup-vs-MAPE clouds for perforation,
//! TAF, and iACT on both platforms.
use gpu_sim::DeviceSpec;
use hpac_apps::lulesh::Lulesh;
use hpac_harness::{figures, runner, ResultsDb};

fn main() {
    let scale = hpac_bench::scale_from_args();
    let bench = Lulesh::default();
    let mut db = ResultsDb::new();
    for spec in DeviceSpec::evaluation_platforms() {
        let outcome = runner::run_sweep(&bench, &spec, scale);
        eprintln!(
            "{}: {} rows, {} rejected",
            spec.name,
            outcome.rows.len(),
            outcome.rejected.len()
        );
        db.extend(outcome.rows);
    }
    hpac_bench::emit(&figures::fig07(&db));
}
