//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. relaxed-locality TAF (Fig 4d) vs the serialized "semantically
//!    equivalent" GPU TAF (Fig 4c);
//! 2. herded vs naive (item-indexed) small/large perforation;
//! 3. iACT round-robin vs CLOCK replacement (paper footnote 3: no effect);
//! 4. iACT table-sharing degree (memory vs synchronization vs hit rate);
//! 5. shared-memory AC state vs the per-thread global-memory design (Fig 3).
use gpu_sim::DeviceSpec;
use hpac_apps::blackscholes::Blackscholes;
use hpac_apps::common::{Benchmark, LaunchParams};
use hpac_apps::lavamd::LavaMd;
use hpac_apps::lulesh::Lulesh;
use hpac_core::params::{PerfoKind, Replacement};
use hpac_core::region::ApproxRegion;
use hpac_harness::figures::FigureData;
use hpac_harness::runner;

fn f(v: f64) -> String {
    format!("{v:.3}")
}

fn main() {
    let v100 = DeviceSpec::v100();

    // 1. Relaxed vs serialized TAF on Blackscholes.
    let bs = Blackscholes::default();
    let base = runner::select_baseline(&bs, &v100);
    let lp = LaunchParams::new(64, 256);
    let region = ApproxRegion::memo_out(3, 64, 1.5);
    let relaxed = bs.run(&v100, Some(&region), &lp).unwrap();
    // The serialized variant is exposed through hpac-core's ExecOptions; the
    // Blackscholes app uses the default path, so drive the region directly.
    let mut fig1 = FigureData::new(
        "ablation_taf_serialization",
        "TAF algorithm: relaxed grid-stride locality (Fig 4d) vs serialized (Fig 4c)",
        &["variant", "kernel_seconds", "speedup_vs_baseline"],
    );
    fig1.push_row(vec![
        "relaxed (hpac-offload)".into(),
        format!("{:.3e}", relaxed.kernel_seconds),
        f(base.result.kernel_seconds / relaxed.kernel_seconds),
    ]);
    {
        use gpu_sim::LaunchConfig;
        use gpu_sim::{AccessPattern, CostProfile};
        use hpac_core::exec::{approx_parallel_for_opts, ExecOptions, RegionBody};
        struct Body<'a> {
            opts: &'a [f64],
            out: Vec<f64>,
        }
        impl RegionBody for Body<'_> {
            fn out_dim(&self) -> usize {
                1
            }
            fn compute(&self, i: usize, out: &mut [f64]) {
                let o = &self.opts[i * 5..(i + 1) * 5];
                out[0] = hpac_apps::blackscholes::price_call(o[0], o[1], o[2], o[3], o[4]);
            }
            fn store(&mut self, i: usize, out: &[f64]) {
                self.out[i] = out[0];
            }
            fn accurate_cost(&self, lanes: u32, _s: &DeviceSpec) -> CostProfile {
                CostProfile::new()
                    .flops(30.0)
                    .sfu(6.0)
                    .global_read(lanes, 40, AccessPattern::Coalesced)
                    .global_write(lanes, 8, AccessPattern::Coalesced)
            }
        }
        let data = bs.generate();
        let mut body = Body {
            opts: &data,
            out: vec![0.0; bs.n_options],
        };
        let launch = LaunchConfig::for_items_per_thread(bs.n_options, 256, 64);
        let rec = approx_parallel_for_opts(
            &v100,
            &launch,
            Some(&region),
            &mut body,
            &ExecOptions {
                serialized_taf: true,
                ..ExecOptions::default()
            },
        )
        .unwrap();
        fig1.push_row(vec![
            "serialized (Fig 4c)".into(),
            format!("{:.3e}", rec.timing.seconds),
            f(base.result.kernel_seconds / rec.timing.seconds),
        ]);
    }

    // 2. Herded vs naive perforation on LULESH.
    let lu = Lulesh::default();
    let lu_base = runner::select_baseline(&lu, &v100);
    let mut fig2 = FigureData::new(
        "ablation_herded_perfo",
        "LULESH large:8 perforation: herded vs naive (item-indexed)",
        &["variant", "speedup", "error_pct", "divergent_fraction"],
    );
    for (name, herded) in [("herded", true), ("naive", false)] {
        let region = ApproxRegion::perfo(PerfoKind::Large { m: 8 }).herded(herded);
        let res = lu
            .run(&v100, Some(&region), &LaunchParams::new(4, 64))
            .unwrap();
        fig2.push_row(vec![
            name.into(),
            f(lu_base.seconds / res.end_to_end_seconds()),
            f(res.qoi.error_vs(&lu_base.result.qoi) * 100.0),
            f(res.stats.divergence_fraction()),
        ]);
    }

    // 3. Round-robin vs CLOCK replacement on LavaMD iACT.
    let lava = LavaMd::default();
    let lava_base = runner::select_baseline(&lava, &v100);
    let mut fig3 = FigureData::new(
        "ablation_replacement",
        "LavaMD iACT: round-robin vs CLOCK replacement (paper fn.3: no effect)",
        &["policy", "speedup", "error_pct", "approx_fraction"],
    );
    for (name, policy) in [
        ("round-robin", Replacement::RoundRobin),
        ("CLOCK", Replacement::Clock),
    ] {
        let region = ApproxRegion::memo_in(4, 0.3)
            .tables_per_warp(16)
            .replacement(policy);
        let res = lava
            .run(&v100, Some(&region), &LaunchParams::new(64, 256))
            .unwrap();
        fig3.push_row(vec![
            name.into(),
            f(lava_base.seconds / res.end_to_end_seconds()),
            f(res.qoi.error_vs(&lava_base.result.qoi) * 100.0),
            f(res.stats.approx_fraction()),
        ]);
    }

    // 4. iACT sharing degree on LavaMD.
    let mut fig4 = FigureData::new(
        "ablation_table_sharing",
        "LavaMD iACT: tables per warp (sharing degree)",
        &["tables_per_warp", "speedup", "error_pct", "approx_fraction"],
    );
    for tpw in [1u32, 2, 16, 32] {
        let region = ApproxRegion::memo_in(4, 0.3).tables_per_warp(tpw);
        let res = lava
            .run(&v100, Some(&region), &LaunchParams::new(64, 256))
            .unwrap();
        fig4.push_row(vec![
            tpw.to_string(),
            f(lava_base.seconds / res.end_to_end_seconds()),
            f(res.qoi.error_vs(&lava_base.result.qoi) * 100.0),
            f(res.stats.approx_fraction()),
        ]);
    }

    // 5. Shared-memory AC state: launches that exceed the budget fail.
    let mut fig5 = FigureData::new(
        "ablation_shared_state",
        "AC state placement: per-block shared-memory budget enforcement",
        &["config", "outcome"],
    );
    let huge = ApproxRegion::memo_in(64, 0.5).tables_per_warp(32);
    match bs.run(&v100, Some(&huge), &LaunchParams::new(64, 1024)) {
        Err(e) => fig5.push_row(vec![
            "iACT ts=64 tpw=32 block=1024".into(),
            format!("rejected: {e}"),
        ]),
        Ok(_) => fig5.push_row(vec!["iACT ts=64 tpw=32 block=1024".into(), "ran".into()]),
    }
    let ok = ApproxRegion::memo_in(8, 0.5).tables_per_warp(2);
    match bs.run(&v100, Some(&ok), &LaunchParams::new(64, 1024)) {
        Ok(_) => fig5.push_row(vec!["iACT ts=8 tpw=2 block=1024".into(), "ran".into()]),
        Err(e) => fig5.push_row(vec![
            "iACT ts=8 tpw=2 block=1024".into(),
            format!("rejected: {e}"),
        ]),
    }

    hpac_bench::emit(&[fig1, fig2, fig3, fig4, fig5]);
}
