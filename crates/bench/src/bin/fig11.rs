//! Regenerate Figure 11: LavaMD TAF/iACT clouds (AMD) and the paired
//! thread-vs-warp hierarchy comparison.
use gpu_sim::DeviceSpec;
use hpac_apps::lavamd::LavaMd;
use hpac_harness::{figures, runner, ResultsDb};

fn main() {
    let scale = hpac_bench::scale_from_args();
    let bench = LavaMd::default();
    let mut db = ResultsDb::new();
    db.extend(runner::run_sweep(&bench, &DeviceSpec::mi250x(), scale).rows);
    hpac_bench::emit(&figures::fig11ab(&db));
    hpac_bench::emit(&[figures::fig11c(&bench, scale)]);
}
