//! Regenerate Figure 8: Binomial Options TAF/iACT clouds (NVIDIA) and the
//! parallelism-vs-approximation tradeoff (items per thread, both devices).
use gpu_sim::DeviceSpec;
use hpac_apps::binomial::BinomialOptions;
use hpac_harness::{figures, runner, ResultsDb};

fn main() {
    let scale = hpac_bench::scale_from_args();
    let bench = BinomialOptions::default();
    let mut db = ResultsDb::new();
    let outcome = runner::run_sweep(&bench, &DeviceSpec::v100(), scale);
    db.extend(outcome.rows);
    hpac_bench::emit(&figures::fig08ab(&db));
    hpac_bench::emit(&[figures::fig08c(&bench, scale)]);
}
