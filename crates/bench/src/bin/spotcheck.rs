use gpu_sim::DeviceSpec;
use hpac_apps::common::{Benchmark, LaunchParams};
use hpac_apps::{blackscholes::Blackscholes, lavamd::LavaMd};
use hpac_core::region::ApproxRegion;

fn main() {
    let amd = DeviceSpec::mi250x();
    let bs = Blackscholes::default();
    let base = bs.run(&amd, None, &LaunchParams::new(1, 256)).unwrap();
    for ipt in [8usize, 64] {
        let r = bs
            .run(
                &amd,
                Some(&ApproxRegion::memo_out(2, 64, 1.5)),
                &LaunchParams::new(ipt, 256),
            )
            .unwrap();
        println!(
            "BS taf ipt={ipt}: speedup={:.2} err={:.3}% af={:.2}",
            base.kernel_seconds / r.kernel_seconds,
            r.qoi.error_vs(&base.qoi) * 100.0,
            r.stats.approx_fraction()
        );
    }
    let lava = LavaMd::default();
    let lbase = lava.run(&amd, None, &LaunchParams::new(1, 256)).unwrap();
    for (h, p, t, ipt) in [
        (2usize, 32usize, 0.9, 8usize),
        (1, 512, 1.5, 8),
        (2, 64, 1.5, 64),
    ] {
        let r = lava
            .run(
                &amd,
                Some(&ApproxRegion::memo_out(h, p, t)),
                &LaunchParams::new(ipt, 256),
            )
            .unwrap();
        println!(
            "LavaMD taf h{h} p{p} t{t} ipt{ipt}: speedup={:.2} err={:.3}% af={:.2}",
            lbase.end_to_end_seconds() / r.end_to_end_seconds(),
            r.qoi.error_vs(&lbase.qoi) * 100.0,
            r.stats.approx_fraction()
        );
    }
}
