//! Regenerate Figure 3: per-thread memoization tables vs global memory.
fn main() {
    hpac_bench::emit(&[hpac_harness::figures::fig03()]);
}
