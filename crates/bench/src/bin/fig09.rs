//! Regenerate Figure 9: Leukocyte TAF/iACT (NVIDIA), MiniFE TAF, and the
//! MiniFE iACT-inapplicability result.
use gpu_sim::DeviceSpec;
use hpac_apps::common::{Benchmark, LaunchParams};
use hpac_apps::leukocyte::Leukocyte;
use hpac_apps::minife::MiniFe;
use hpac_core::region::ApproxRegion;
use hpac_harness::{figures, runner, ResultsDb};

fn main() {
    let scale = hpac_bench::scale_from_args();
    let spec = DeviceSpec::v100();
    let mut db = ResultsDb::new();
    let leuk = Leukocyte::default();
    db.extend(runner::run_sweep(&leuk, &spec, scale).rows);
    let fe = MiniFe::default();
    db.extend(runner::run_sweep(&fe, &spec, scale).rows);

    // Demonstrate the paper's iACT inapplicability for MiniFE.
    let rejection = match fe.run(
        &spec,
        Some(&ApproxRegion::memo_in(4, 0.5)),
        &LaunchParams::new(8, 256),
    ) {
        Err(e) => format!("rejected as in the paper: {e}"),
        Ok(_) => "UNEXPECTED: iACT ran on MiniFE".to_string(),
    };
    hpac_bench::emit(&figures::fig09(&db, &rejection));
}
