//! Quality-constrained autotuning across the full evaluation matrix: all
//! seven benchmarks × both device specs, via the `hpac-service` front end.
//!
//! Run with: `cargo run --release -p hpac-bench --bin tune`
//!
//! For each (benchmark, device) the service answers "fastest configuration
//! with ≤ 5% error" while evaluating well under 10% of the benchmark's full
//! Table 2 space, and persists the answer (plan + Pareto frontier) to the
//! sharded cache under `target/tuner-cache/`. A second invocation is served
//! entirely from the cache — the `source` column flips from `search` to
//! `cache`.
//!
//! Flags: `--bound <pct>` changes the error bound; `--fresh` clears the
//! cache first. `HPAC_TRACE=<path>[:jsonl|chrome]` records the tuner's
//! search trajectory (spans per service request and grid, Pareto/cache
//! counters) and prints a metrics summary at the end.

use gpu_sim::DeviceSpec;
use hpac_apps::common::Benchmark;
use hpac_apps::{
    binomial::BinomialOptions, blackscholes::Blackscholes, kmeans::KMeans, lavamd::LavaMd,
    leukocyte::Leukocyte, lulesh::Lulesh, minife::MiniFe,
};
use hpac_core::metrics::geomean;
use hpac_service::{Source, TuneRequest, TuningService};
use hpac_tuner::{QualityBound, TuningCache};

/// Laptop-scale configurations of all seven applications (Table 1 order) —
/// the same sizes the Criterion benches exercise.
fn suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Lulesh {
            edge: 12,
            steps: 8,
            dt: 1e-4,
            ..Lulesh::default()
        }),
        Box::new(Leukocyte {
            n_cells: 8,
            grid: 16,
            iterations: 24,
            ..Leukocyte::default()
        }),
        Box::new(BinomialOptions {
            n_options: 1024,
            tree_steps: 96,
            ..BinomialOptions::default()
        }),
        Box::new(MiniFe {
            nx: 10,
            max_iters: 25,
            ..MiniFe::default()
        }),
        Box::new(Blackscholes::default()),
        Box::new(LavaMd {
            boxes_per_dim: 4,
            par_per_box: 16,
            ..LavaMd::default()
        }),
        Box::new(KMeans {
            n_points: 2048,
            max_iters: 40,
            ..KMeans::default()
        }),
    ]
}

fn source_label(source: Source) -> &'static str {
    match source {
        Source::CacheHit => "cache",
        Source::Coalesced => "coalesced",
        Source::Searched { warm_seeds: 0 } => "search",
        Source::Searched { .. } => "warm",
    }
}

fn main() {
    hpac_core::env::init_trace_from_env();
    let traced = hpac_obs::sink_config().is_some();
    let args: Vec<String> = std::env::args().collect();
    let bound_pct = args
        .iter()
        .position(|a| a == "--bound")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(5.0);
    let cache = TuningCache::new(TuningCache::default_dir());
    if args.iter().any(|a| a == "--fresh") {
        if let Err(e) = cache.clear() {
            eprintln!("warning: could not clear cache: {e}");
        }
    }
    let service = TuningService::new().with_cache(cache.clone());
    let bound = QualityBound::percent(bound_pct);

    println!("hpac-service: fastest configuration with <= {bound_pct}% error");
    println!("cache: {}\n", cache.dir().display());

    for device in DeviceSpec::evaluation_platforms() {
        println!("== {} ({}) ==", device.name, device.vendor);
        println!(
            "{:<16} {:<9} {:<34} {:>8} {:>7} {:>6} {:>7}  source",
            "benchmark", "technique", "config", "speedup", "err%", "evals", "%full"
        );
        let mut speedups = Vec::new();
        for bench in suite() {
            let resp = service.submit(TuneRequest::new(bench.as_ref(), &device, bound));
            if traced {
                // Drain per request so a cold full-matrix search cannot
                // wrap the ring buffers.
                hpac_obs::flush().expect("flush trace sink");
            }
            let plan = &resp.plan;
            assert!(
                plan.respects_bound(),
                "{} on {} violates the bound",
                plan.benchmark,
                plan.device
            );
            assert!(
                !resp.source.is_searched() || plan.budget_fraction_used() < 0.10,
                "{} on {} overspent: {} of {} configs",
                plan.benchmark,
                plan.device,
                plan.evaluations,
                plan.full_space
            );
            speedups.push(plan.predicted_speedup);
            println!(
                "{:<16} {:<9} {:<34} {:>7.2}x {:>7.3} {:>6} {:>6.1}%  {}",
                plan.benchmark,
                plan.technique,
                plan.config,
                plan.predicted_speedup,
                plan.measured_error_pct,
                resp.evals_spent,
                plan.budget_fraction_used() * 100.0,
                source_label(resp.source),
            );
        }
        println!(
            "geomean speedup under the bound: {:.2}x\n",
            geomean(&speedups)
        );
    }
    let stats = service.stats();
    println!(
        "{} tuned by search, {} served from the persistent cache{}",
        stats.searches,
        stats.cache_hits,
        if stats.cache_hits == 0 {
            " (run again to see every row hit the cache)"
        } else {
            ""
        }
    );
    if hpac_obs::enabled() {
        println!("\nobs metrics:");
        print!("{}", hpac_obs::snapshot().render_table());
        let cfg = hpac_obs::sink_config().expect("sink installed");
        hpac_obs::finish().expect("finalize trace sink");
        println!("wrote trace to {} ({:?})", cfg.path.display(), cfg.format);
    }
}
