//! Regenerate Figure 6: highest speedup with error < 10% per benchmark,
//! technique, and platform, plus the paper's headline aggregates. Runs the
//! Table 2 sweep over all seven benchmarks on both device models — the
//! heaviest binary here (use the default quick grids unless you have time
//! for `--full`).
use hpac_harness::figures;

fn main() {
    let scale = hpac_bench::scale_from_args();
    let benches = hpac_apps::all_benchmarks();
    let refs: Vec<&dyn hpac_apps::Benchmark> = benches.iter().map(|b| b.as_ref()).collect();
    let (db, rejected) = figures::full_sweep(&refs, scale);
    eprintln!(
        "swept {} configurations ({} rejected at launch)",
        db.len() + rejected.len(),
        rejected.len()
    );
    let dir = hpac_bench::figures_dir();
    if let Err(e) = db.save(&dir.join("fig06_sweep.csv")) {
        eprintln!("warning: could not save sweep database: {e}");
    }
    hpac_bench::emit(&figures::fig06(&db));
}
