//! Service-throughput benchmark: the tuning-as-a-service front end under a
//! request stream — cold searches, cache-served repeats, coalesced
//! concurrent duplicates, and a warm-started neighboring bound.
//!
//! Run with: `cargo run --release -p hpac-bench --bin servebench`
//!
//! Methodology, against a fresh sharded cache under `target/`:
//!
//! 1. **cold** — the seven-app suite is submitted as one batch; every
//!    request runs a quick-grid search.
//! 2. **warm** — the identical batch again; every request must be a cache
//!    hit. The headline number is warm requests/sec over cold requests/sec
//!    (asserted ≥ 5×; in practice it is orders of magnitude).
//! 3. **coalesce** — [`FANOUT`] identical requests for a fresh bound are
//!    submitted concurrently; exactly one search may run.
//! 4. **warm-start** — a third bound on one (benchmark, device) seeds from
//!    the cached neighbors' frontiers instead of searching cold.
//!
//! Every cold plan is checked bit-identical to a serial `Tuner::tune` of
//! the same request — the concurrent front end must not change answers.
//! Per-request provenance comes from the responses themselves; per-phase
//! provenance is cross-checked against `hpac_obs::snapshot()` counter
//! deltas, and the run asserts zero dropped obs events. Results land in
//! `BENCH_serve.json`.
//!
//! Flags: `--full` uses the paper's complete Table 2 grids;
//! `HPAC_THREADS=<n>` sets the engine width; `HPAC_SERVICE_QUEUE=<n>` caps
//! batch admission; `HPAC_TRACE=<path>[:jsonl|chrome]` streams the event
//! trace.

use gpu_sim::DeviceSpec;
use hpac_apps::common::Benchmark;
use hpac_apps::{
    binomial::BinomialOptions, blackscholes::Blackscholes, kmeans::KMeans, lavamd::LavaMd,
    leukocyte::Leukocyte, lulesh::Lulesh, minife::MiniFe,
};
use hpac_obs::CounterId;
use hpac_service::{Source, TuneRequest, TuneResponse, TuningService, WarmStart};
use hpac_tuner::{QualityBound, Tuner, TuningCache};
use std::fmt::Write as _;
use std::time::Instant;

/// Identical concurrent requests in the coalescing phase.
const FANOUT: usize = 8;

/// Laptop-scale configurations of all seven applications (Table 1 order) —
/// the same sizes the `tune` driver exercises.
fn suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Lulesh {
            edge: 12,
            steps: 8,
            dt: 1e-4,
            ..Lulesh::default()
        }),
        Box::new(Leukocyte {
            n_cells: 8,
            grid: 16,
            iterations: 24,
            ..Leukocyte::default()
        }),
        Box::new(BinomialOptions {
            n_options: 1024,
            tree_steps: 96,
            ..BinomialOptions::default()
        }),
        Box::new(MiniFe {
            nx: 10,
            max_iters: 25,
            ..MiniFe::default()
        }),
        Box::new(Blackscholes::default()),
        Box::new(LavaMd {
            boxes_per_dim: 4,
            par_per_box: 16,
            ..LavaMd::default()
        }),
        Box::new(KMeans {
            n_points: 2048,
            max_iters: 40,
            ..KMeans::default()
        }),
    ]
}

/// Short commit hash of the tree being benchmarked, so BENCH_serve.json
/// numbers stay attributable. "unknown" outside a git checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn source_label(source: Source) -> String {
    match source {
        Source::CacheHit => "cache_hit".into(),
        Source::Coalesced => "coalesced".into(),
        Source::Searched { warm_seeds: 0 } => "searched_cold".into(),
        Source::Searched { warm_seeds } => format!("searched_warm:{warm_seeds}"),
    }
}

/// One phase's aggregate: wall time, per-request responses, and the obs
/// counter deltas accumulated while it ran.
struct Phase {
    name: &'static str,
    seconds: f64,
    responses: Vec<TuneResponse>,
    obs: hpac_obs::MetricsSnapshot,
}

impl Phase {
    fn requests_per_second(&self) -> f64 {
        self.responses.len() as f64 / self.seconds
    }

    fn dropped_events(&self) -> u64 {
        self.obs.workers.iter().map(|w| w.dropped).sum()
    }
}

fn run_phase(name: &'static str, traced: bool, f: impl FnOnce() -> Vec<TuneResponse>) -> Phase {
    // The obs gate stays on for every phase so provenance deltas are always
    // available; with a sink attached we also drain between phases so one
    // phase's events cannot wrap the ring buffers.
    hpac_obs::set_enabled(true);
    let before = hpac_obs::snapshot();
    let t = Instant::now();
    let responses = f();
    let seconds = t.elapsed().as_secs_f64();
    let obs = hpac_obs::snapshot().delta_since(&before);
    if traced {
        hpac_obs::flush().expect("flush trace sink");
    }
    Phase {
        name,
        seconds,
        responses,
        obs,
    }
}

fn main() {
    hpac_core::env::init_trace_from_env();
    let traced = hpac_obs::sink_config().is_some();
    let scale = hpac_bench::scale_from_args();
    let commit = git_commit();
    let device = DeviceSpec::v100();
    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);

    let cache = TuningCache::new("target/servebench-cache");
    cache.clear().expect("clear servebench cache");
    let service = TuningService::new()
        .with_cache(cache.clone())
        .with_tuner(Tuner::new().with_scale(scale));
    let batch_width = service.batch_width();
    let apps = suite();
    let bound = QualityBound::percent(5.0);

    println!(
        "servebench: {} apps on {}, scale {scale:?}, batch width {batch_width}, \
         {host_cores}-core host, commit {commit}",
        apps.len(),
        device.name
    );

    // Phase 1: cold — every request searches.
    let reqs: Vec<TuneRequest> = apps
        .iter()
        .map(|b| TuneRequest::new(b.as_ref(), &device, bound))
        .collect();
    let cold = run_phase("cold", traced, || service.submit_batch(&reqs));
    for resp in &cold.responses {
        assert_eq!(
            resp.source,
            Source::Searched { warm_seeds: 0 },
            "{}: cold phase must search",
            resp.plan.benchmark
        );
        assert!(resp.plan.respects_bound());
    }

    // Bit-identity: the concurrent front end must return exactly the plans
    // a serial deprecated-path tune produces.
    #[allow(deprecated)]
    {
        let tuner = Tuner::new().with_scale(scale);
        for (bench, resp) in apps.iter().zip(&cold.responses) {
            let serial = tuner.tune(bench.as_ref(), &device, bound);
            assert_eq!(serial.config, resp.plan.config, "{}", resp.plan.benchmark);
            assert_eq!(
                serial.predicted_speedup.to_bits(),
                resp.plan.predicted_speedup.to_bits(),
                "{}: speedup diverged between serial and service paths",
                resp.plan.benchmark
            );
            assert_eq!(
                serial.measured_error_pct.to_bits(),
                resp.plan.measured_error_pct.to_bits(),
                "{}: error diverged between serial and service paths",
                resp.plan.benchmark
            );
        }
    }
    println!("cold plans bit-identical to serial Tuner::tune: ok");

    // Phase 2: warm — the identical batch is served from the cache.
    let warm = run_phase("warm", traced, || service.submit_batch(&reqs));
    for resp in &warm.responses {
        assert_eq!(
            resp.source,
            Source::CacheHit,
            "{}: warm phase must hit the cache",
            resp.plan.benchmark
        );
        assert_eq!(resp.evals_spent, 0);
    }
    let warm_vs_cold = warm.requests_per_second() / cold.requests_per_second();
    assert!(
        warm_vs_cold >= 5.0,
        "warm phase only {warm_vs_cold:.1}x cold requests/sec"
    );
    let warm_hit_rate = warm
        .obs
        .tuner_cache_hit_rate()
        .expect("warm phase made cache lookups");
    assert!(warm_hit_rate > 0.0, "warm hit rate must be > 0");

    // Phase 3: coalesce — FANOUT identical requests for a fresh bound, one
    // search total.
    let coalesce_bound = QualityBound::percent(8.0);
    let subject = &apps[4]; // Blackscholes: ample feasible speedup at this scale
    let searches_before = service.stats().searches;
    let dup_reqs: Vec<TuneRequest> = (0..FANOUT)
        .map(|_| {
            TuneRequest::new(subject.as_ref(), &device, coalesce_bound).warm_start(WarmStart::Never)
        })
        .collect();
    let coalesce = run_phase("coalesce", traced, || service.submit_batch(&dup_reqs));
    let coalesce_searches = service.stats().searches - searches_before;
    assert_eq!(
        coalesce_searches, 1,
        "{FANOUT} identical concurrent requests must run exactly one search"
    );
    let first = &coalesce.responses[0];
    for resp in &coalesce.responses {
        assert_eq!(resp.plan.config, first.plan.config);
        assert_eq!(
            resp.plan.predicted_speedup.to_bits(),
            first.plan.predicted_speedup.to_bits(),
            "coalesced waiters must receive the leader's exact plan"
        );
    }

    // Phase 4: warm-start — a third bound on the subject app seeds from
    // the cached 5% and 8% frontiers. A 6% bound sits between them, so the
    // 5% winner is already feasible and the seed fast path short-circuits
    // the grid walk entirely.
    let warm_start_bound = QualityBound::percent(6.0);
    let ws_req = TuneRequest::new(subject.as_ref(), &device, warm_start_bound);
    let warm_start = run_phase("warm_start", traced, || vec![service.submit(ws_req)]);
    let ws_resp = &warm_start.responses[0];
    let ws_seeds = match ws_resp.source {
        Source::Searched { warm_seeds } => {
            assert!(warm_seeds > 0, "warm-start phase found no seeds");
            warm_seeds
        }
        other => panic!("expected a search, got {other:?}"),
    };
    assert!(ws_resp.plan.respects_bound());
    let cold_subject_evals = cold.responses[4].evals_spent;
    assert!(
        ws_resp.evals_spent < cold_subject_evals,
        "warm-started search spent {} evals, cold spent {cold_subject_evals}",
        ws_resp.evals_spent
    );

    // Zero dropped obs events across every phase.
    let phases = [&cold, &warm, &coalesce, &warm_start];
    let dropped: u64 = phases.iter().map(|p| p.dropped_events()).sum();
    assert_eq!(dropped, 0, "obs rings dropped {dropped} events");

    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>10} {:>10} {:>9} {:>8}",
        "phase", "requests", "seconds", "req/s", "searches", "coalesced", "hits", "dropped"
    );
    for p in &phases {
        println!(
            "{:<12} {:>9} {:>12.4} {:>12.1} {:>10} {:>10} {:>9} {:>8}",
            p.name,
            p.responses.len(),
            p.seconds,
            p.requests_per_second(),
            p.obs.counter(CounterId::ServiceRequests)
                - p.obs.counter(CounterId::ServiceCoalesced)
                - p.obs.counter(CounterId::TunerCacheHits),
            p.obs.counter(CounterId::ServiceCoalesced),
            p.obs.counter(CounterId::TunerCacheHits),
            p.dropped_events(),
        );
    }
    println!(
        "warm {:.0}x cold requests/sec; warm-start used {ws_seeds} seeds \
         ({} evals vs {cold_subject_evals} cold)",
        warm_vs_cold, ws_resp.evals_spent
    );

    let stats = service.stats();
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"commit\": \"{commit}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"batch_width\": {batch_width},");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(json, "  \"device\": \"{}\",", device.name);
    let _ = writeln!(json, "  \"phases\": [");
    for (i, p) in phases.iter().enumerate() {
        let comma = if i + 1 < phases.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"phase\": \"{}\", \"requests\": {}, \"seconds\": {:.6}, \
             \"requests_per_second\": {:.4}, \"service_requests\": {}, \
             \"coalesced\": {}, \"cache_hits\": {}, \"warm_starts\": {}, \
             \"dropped_events\": {}}}{}",
            p.name,
            p.responses.len(),
            p.seconds,
            p.requests_per_second(),
            p.obs.counter(CounterId::ServiceRequests),
            p.obs.counter(CounterId::ServiceCoalesced),
            p.obs.counter(CounterId::TunerCacheHits),
            p.obs.counter(CounterId::ServiceWarmStarts),
            p.dropped_events(),
            comma
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"requests\": [");
    let all: Vec<&TuneResponse> = phases.iter().flat_map(|p| p.responses.iter()).collect();
    for (i, r) in all.iter().enumerate() {
        let comma = if i + 1 < all.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"benchmark\": \"{}\", \"bound_pct\": {}, \"source\": \"{}\", \
             \"evals_spent\": {}, \"wall_ns\": {}, \"speedup\": {:.4}, \
             \"error_pct\": {:.4}}}{}",
            r.plan.benchmark,
            r.plan.bound_pct,
            source_label(r.source),
            r.evals_spent,
            r.wall_ns,
            r.plan.predicted_speedup,
            r.plan.measured_error_pct,
            comma
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"warm_vs_cold_rps\": {warm_vs_cold:.4},");
    let _ = writeln!(json, "  \"warm_hit_rate\": {warm_hit_rate:.4},");
    let _ = writeln!(json, "  \"coalesce_fanout\": {FANOUT},");
    let _ = writeln!(json, "  \"coalesce_searches\": {coalesce_searches},");
    let _ = writeln!(json, "  \"warm_start_seeds\": {ws_seeds},");
    let _ = writeln!(json, "  \"bit_identical_to_serial\": true,");
    let _ = writeln!(json, "  \"dropped_events\": {dropped},");
    let _ = writeln!(
        json,
        "  \"totals\": {{\"requests\": {}, \"cache_hits\": {}, \"coalesced\": {}, \
         \"searches\": {}, \"warm_starts\": {}}}",
        stats.requests, stats.cache_hits, stats.coalesced, stats.searches, stats.warm_starts
    );
    let _ = writeln!(json, "}}");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");

    println!("\nobs metrics (cumulative):");
    print!("{}", hpac_obs::snapshot().render_table());
    if traced {
        let cfg = hpac_obs::sink_config().expect("sink installed");
        hpac_obs::finish().expect("finalize trace sink");
        println!("wrote trace to {} ({:?})", cfg.path.display(), cfg.format);
    }
    cache.clear().expect("clear servebench cache");
}
