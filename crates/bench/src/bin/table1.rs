//! Regenerate Table 1: the benchmark suite.
fn main() {
    let benches = hpac_apps::all_benchmarks();
    let refs: Vec<&dyn hpac_apps::Benchmark> = benches.iter().map(|b| b.as_ref()).collect();
    hpac_bench::emit(&[hpac_harness::figures::table1(&refs)]);
}
