//! Regenerate Figure 10: Blackscholes TAF/iACT clouds (AMD) and the output
//! price distribution vs RSD threshold (the unintuitive-threshold result).
use gpu_sim::DeviceSpec;
use hpac_apps::blackscholes::Blackscholes;
use hpac_harness::{figures, runner, ResultsDb};

fn main() {
    let scale = hpac_bench::scale_from_args();
    let bench = Blackscholes::default();
    let mut db = ResultsDb::new();
    db.extend(runner::run_sweep(&bench, &DeviceSpec::mi250x(), scale).rows);
    hpac_bench::emit(&figures::fig10ab(&db));
    hpac_bench::emit(&[figures::fig10c(&bench, scale)]);
}
