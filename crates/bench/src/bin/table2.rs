//! Regenerate Table 2: the design-space parameter grids.
fn main() {
    let scale = hpac_bench::scale_from_args();
    hpac_bench::emit(&[hpac_harness::figures::table2(scale)]);
}
