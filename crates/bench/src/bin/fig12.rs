//! Regenerate Figure 12: K-Means TAF/iACT clouds (AMD, MCR metric) and the
//! convergence-speedup vs time-speedup correlation.
use gpu_sim::DeviceSpec;
use hpac_apps::kmeans::KMeans;
use hpac_harness::{figures, runner, ResultsDb};

fn main() {
    let scale = hpac_bench::scale_from_args();
    let bench = KMeans::default();
    let spec = DeviceSpec::mi250x();
    let outcome = runner::run_sweep(&bench, &spec, scale);
    let mut db = ResultsDb::new();
    db.extend(outcome.rows.clone());
    hpac_bench::emit(&figures::fig12ab(&db));
    let (fig, r2) = figures::fig12c(&bench, &outcome);
    hpac_bench::emit(&[fig]);
    eprintln!("convergence/time speedup R2 = {r2:.3} (paper: 0.95)");
}
