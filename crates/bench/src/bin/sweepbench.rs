//! Sweep-throughput benchmark: one quick-grid sweep per application under
//! both kernel executors, timed wall-clock.
//!
//! Run with: `cargo run --release -p hpac-bench --bin sweepbench`
//!
//! Each sweep executes its configurations *serially*
//! (`hpac_harness::runner::run_sweep_serial`), so the only parallelism in
//! play is the engine's block executor — exactly the speedup the
//! `ExecOptions::executor` knob buys on a multicore host.
//!
//! Methodology: per (application, executor) the sweep runs once as a
//! warmup (engine workers spawned, caches hot) and then [`REPS`] timed
//! repetitions; the reported number is the median. Results land in
//! `BENCH_sweep.json`: per-app sequential/parallel wall-clock seconds and
//! speedup, the aggregate, and the effective engine worker width the
//! parallel executor actually resolved (not just the host core count).
//!
//! Flags: `--full` uses the paper's complete Table 2 grids;
//! `--app <name>` restricts the run to applications whose name contains
//! `<name>` (case-insensitive); `HPAC_THREADS=<n>` sets the engine width
//! (`0` = all cores); `HPAC_TRACE=<path>[:jsonl|chrome]` additionally
//! streams the full event trace to a sink.
//!
//! Observability: each app's parallel warmup pass runs with `hpac-obs`
//! enabled and its [`hpac_obs::MetricsSnapshot`] delta — memo hit rates and
//! per-worker utilization — lands in `BENCH_sweep.json` next to the timing
//! numbers. The timed repetitions run untraced unless `HPAC_TRACE` is set,
//! so published wall-clocks never include tracing overhead by surprise.

use gpu_sim::DeviceSpec;
use hpac_apps::common::Benchmark;
use hpac_apps::{
    binomial::BinomialOptions, blackscholes::Blackscholes, kmeans::KMeans, lavamd::LavaMd,
    leukocyte::Leukocyte, lulesh::Lulesh, minife::MiniFe,
};
use hpac_core::exec::{engine, ExecOptions, Executor};
use hpac_harness::runner;
use hpac_harness::space::Scale;
use std::fmt::Write as _;
use std::time::Instant;

/// Timed repetitions per (application, executor) after the warmup pass.
const REPS: usize = 3;

/// Laptop-scale configurations of all seven applications (Table 1 order) —
/// the same sizes the `tune` driver exercises.
fn suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Lulesh {
            edge: 12,
            steps: 8,
            dt: 1e-4,
            ..Lulesh::default()
        }),
        Box::new(Leukocyte {
            n_cells: 8,
            grid: 16,
            iterations: 24,
            ..Leukocyte::default()
        }),
        Box::new(BinomialOptions {
            n_options: 1024,
            tree_steps: 96,
            ..BinomialOptions::default()
        }),
        Box::new(MiniFe {
            nx: 10,
            max_iters: 25,
            ..MiniFe::default()
        }),
        Box::new(Blackscholes::default()),
        Box::new(LavaMd {
            boxes_per_dim: 4,
            par_per_box: 16,
            ..LavaMd::default()
        }),
        Box::new(KMeans {
            n_points: 2048,
            max_iters: 40,
            ..KMeans::default()
        }),
    ]
}

struct AppTiming {
    name: &'static str,
    rows: usize,
    seq_seconds: f64,
    par_seconds: f64,
    /// `MixMemo` hit rate over the parallel warmup pass; `None` if the app
    /// made no lookups.
    mix_memo_hit_rate: Option<f64>,
    /// `ComputeMemo` hit rate over the parallel warmup pass.
    compute_memo_hit_rate: Option<f64>,
    /// Sweep-scoped `EvalMemo` hit rate over the parallel warmup pass.
    eval_memo_hit_rate: Option<f64>,
    /// Output-fingerprint quality-cache hit rate over the parallel warmup
    /// pass.
    quality_cache_hit_rate: Option<f64>,
    /// Configurations elided as canonical duplicates in the warmup pass.
    configs_deduped: u64,
    /// Configurations abandoned at the cost ceiling in the warmup pass
    /// (always 0 for sweeps — only the tuner sets a ceiling).
    early_aborts: u64,
    /// Fraction of the effective engine width kept busy during the parallel
    /// warmup pass.
    workers_utilization: f64,
}

impl AppTiming {
    fn speedup(&self) -> f64 {
        self.seq_seconds / self.par_seconds
    }

    /// Sweep throughput under the parallel executor — the headline number
    /// for "how fast can we walk the design space on this host".
    fn configs_per_second(&self) -> f64 {
        self.rows as f64 / self.par_seconds
    }
}

/// `--app <name>` filter: case-insensitive substring match on the
/// benchmark name, or `None` to run the whole suite.
fn app_filter_from_args() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--app" {
            let name = args.next().unwrap_or_else(|| {
                eprintln!("--app requires a benchmark name");
                std::process::exit(2);
            });
            return Some(name.to_lowercase());
        }
    }
    None
}

/// `--baseline <path>`: compare this run's per-app throughput against a
/// previously recorded `BENCH_sweep.json` and exit non-zero on a >10%
/// regression (the CI perf gate).
fn baseline_path_from_args() -> Option<std::path::PathBuf> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--baseline" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("--baseline requires a path to a BENCH_sweep.json");
                std::process::exit(2);
            });
            return Some(path.into());
        }
    }
    None
}

/// Extract `(benchmark, configs_per_second)` pairs from a previously
/// written `BENCH_sweep.json`. The file is our own hand-rolled format with
/// one app object per line, so a line scan is exact.
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(bpos) = line.find("\"benchmark\": \"") else {
            continue;
        };
        let rest = &line[bpos + "\"benchmark\": \"".len()..];
        let Some(endq) = rest.find('"') else { continue };
        let name = rest[..endq].to_string();
        let Some(cpos) = line.find("\"configs_per_second\": ") else {
            continue;
        };
        let rest = &line[cpos + "\"configs_per_second\": ".len()..];
        let num: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-' || *c == 'e')
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.push((name, v));
        }
    }
    out
}

/// Short commit hash of the tree being benchmarked, so BENCH_sweep.json
/// numbers stay attributable. "unknown" outside a git checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Median of the timed repetitions (REPS is small; sort is fine).
fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        0.5 * (xs[n / 2 - 1] + xs[n / 2])
    }
}

/// One executor's measurement: the timed median plus the warmup pass's
/// outcome and metrics delta.
struct ExecutorRun {
    median_seconds: f64,
    outcome: runner::SweepOutcome,
    warmup_seconds: f64,
    /// Counters accumulated over the warmup pass only.
    metrics: hpac_obs::MetricsSnapshot,
}

/// Warmup + `REPS` timed sweeps. The warmup pass always runs with obs
/// enabled so its `MetricsSnapshot` delta is available; when no trace sink
/// is active (`traced == false`) the gate is switched back off for the
/// timed repetitions, keeping the published medians untraced.
fn bench_executor(
    bench: &dyn Benchmark,
    spec: &DeviceSpec,
    scale: Scale,
    opts: &ExecOptions,
    traced: bool,
) -> ExecutorRun {
    hpac_obs::set_enabled(true);
    let before = hpac_obs::snapshot();
    let t = Instant::now();
    let outcome = runner::run_sweep_serial(bench, spec, scale, opts);
    let warmup_seconds = t.elapsed().as_secs_f64();
    let metrics = hpac_obs::snapshot().delta_since(&before);
    hpac_obs::set_enabled(traced);
    if traced {
        // Drain between passes (outside the timed window) so a single
        // pass's events cannot wrap the ring buffers.
        hpac_obs::flush().expect("flush trace sink");
    }

    let mut secs = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        let _ = runner::run_sweep_serial(bench, spec, scale, opts);
        secs.push(t.elapsed().as_secs_f64());
        if traced {
            hpac_obs::flush().expect("flush trace sink");
        }
    }
    ExecutorRun {
        median_seconds: median(secs),
        outcome,
        warmup_seconds,
        metrics,
    }
}

fn main() {
    hpac_core::env::init_trace_from_env();
    let traced = hpac_obs::sink_config().is_some();
    let scale = hpac_bench::scale_from_args();
    let filter = app_filter_from_args();
    // Read the baseline *now*, before this run overwrites BENCH_sweep.json:
    // the gate must compare against the previously recorded numbers.
    let baseline_text = baseline_path_from_args().map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
        (path, text)
    });
    let commit = git_commit();
    let spec = DeviceSpec::v100();
    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);

    let seq_opts = ExecOptions {
        executor: Executor::Sequential,
        ..ExecOptions::default()
    };
    let par_opts = ExecOptions {
        executor: Executor::ParallelBlocks,
        ..ExecOptions::default()
    };
    // The worker width the parallel executor actually resolves
    // (ExecOptions::threads > HPAC_THREADS > cores) — what the engine will
    // use, as opposed to the raw host core count.
    let workers = engine().width_for(&par_opts);

    println!(
        "sweepbench: serial config sweeps, {host_cores}-core host, \
         engine width {workers}, scale {scale:?}, median of {REPS} reps, \
         commit {commit}"
    );
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>9} {:>10} {:>8} {:>8}",
        "benchmark", "configs", "seq [s]", "par [s]", "speedup", "cfg/s", "util", "memohit"
    );

    let apps: Vec<Box<dyn Benchmark>> = suite()
        .into_iter()
        .filter(|b| match &filter {
            Some(f) => b.name().to_lowercase().contains(f),
            None => true,
        })
        .collect();
    if apps.is_empty() {
        eprintln!(
            "--app {:?} matches no benchmark; suite: {:?}",
            filter.as_deref().unwrap_or(""),
            suite().iter().map(|b| b.name()).collect::<Vec<_>>()
        );
        std::process::exit(2);
    }

    let mut timings: Vec<AppTiming> = Vec::new();
    for bench in apps {
        let seq = bench_executor(bench.as_ref(), &spec, scale, &seq_opts, traced);
        let par = bench_executor(bench.as_ref(), &spec, scale, &par_opts, traced);

        // The executors must agree on what they computed, not just be fast.
        assert_eq!(
            seq.outcome.rows.len(),
            par.outcome.rows.len(),
            "row count diverged"
        );
        for (a, b) in seq.outcome.rows.iter().zip(&par.outcome.rows) {
            assert_eq!(a.config, b.config);
            assert_eq!(
                a.speedup.to_bits(),
                b.speedup.to_bits(),
                "{}: modeled speedup diverged between executors for {}",
                bench.name(),
                a.config
            );
        }

        let warmup_wall_ns = (par.warmup_seconds * 1e9) as u64;
        let t = AppTiming {
            name: bench.name(),
            rows: seq.outcome.rows.len(),
            seq_seconds: seq.median_seconds,
            par_seconds: par.median_seconds,
            mix_memo_hit_rate: par.metrics.mix_memo_hit_rate(),
            compute_memo_hit_rate: par.metrics.compute_memo_hit_rate(),
            eval_memo_hit_rate: par.metrics.eval_memo_hit_rate(),
            quality_cache_hit_rate: par.metrics.quality_cache_hit_rate(),
            configs_deduped: par.metrics.counter(hpac_obs::CounterId::ConfigsDeduped),
            early_aborts: par.metrics.counter(hpac_obs::CounterId::EarlyAborts),
            workers_utilization: par.metrics.utilization(warmup_wall_ns, workers),
        };
        println!(
            "{:<18} {:>8} {:>12.3} {:>12.3} {:>8.2}x {:>10.1} {:>7.1}% {:>7}",
            t.name,
            t.rows,
            t.seq_seconds,
            t.par_seconds,
            t.speedup(),
            t.configs_per_second(),
            t.workers_utilization * 100.0,
            t.mix_memo_hit_rate
                .map(|r| format!("{:.1}%", r * 100.0))
                .unwrap_or_else(|| "-".into()),
        );
        timings.push(t);
    }

    let total_seq: f64 = timings.iter().map(|t| t.seq_seconds).sum();
    let total_par: f64 = timings.iter().map(|t| t.par_seconds).sum();
    let overall = total_seq / total_par;
    println!(
        "{:<18} {:>8} {:>12.3} {:>12.3} {:>8.2}x",
        "TOTAL",
        timings.iter().map(|t| t.rows).sum::<usize>(),
        total_seq,
        total_par,
        overall
    );
    if workers < 4 {
        println!("note: engine width is {workers}; block-parallel speedup needs >= 4");
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"commit\": \"{commit}\",");
    let _ = writeln!(json, "  \"host_cores\": {host_cores},");
    let _ = writeln!(json, "  \"workers_effective\": {workers},");
    let _ = writeln!(json, "  \"reps\": {REPS},");
    let _ = writeln!(json, "  \"scale\": \"{scale:?}\",");
    let _ = writeln!(json, "  \"device\": \"{}\",", spec.name);
    let _ = writeln!(json, "  \"apps\": [");
    let fmt_rate = |r: Option<f64>| r.map_or("null".to_string(), |r| format!("{r:.4}"));
    for (i, t) in timings.iter().enumerate() {
        let comma = if i + 1 < timings.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"benchmark\": \"{}\", \"configs\": {}, \"sequential_seconds\": {:.6}, \
             \"parallel_seconds\": {:.6}, \"speedup\": {:.4}, \
             \"configs_per_second\": {:.4}, \"mix_memo_hit_rate\": {}, \
             \"compute_memo_hit_rate\": {}, \"eval_memo_hit_rate\": {}, \
             \"quality_cache_hit_rate\": {}, \"configs_deduped\": {}, \
             \"early_aborts\": {}, \"workers_utilization\": {:.4}}}{}",
            t.name,
            t.rows,
            t.seq_seconds,
            t.par_seconds,
            t.speedup(),
            t.configs_per_second(),
            fmt_rate(t.mix_memo_hit_rate),
            fmt_rate(t.compute_memo_hit_rate),
            fmt_rate(t.eval_memo_hit_rate),
            fmt_rate(t.quality_cache_hit_rate),
            t.configs_deduped,
            t.early_aborts,
            t.workers_utilization,
            comma
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"total_sequential_seconds\": {total_seq:.6},");
    let _ = writeln!(json, "  \"total_parallel_seconds\": {total_par:.6},");
    let _ = writeln!(json, "  \"speedup\": {overall:.4}");
    let _ = writeln!(json, "}}");
    if filter.is_some() {
        // A filtered run is a spot measurement; don't clobber the
        // full-suite record.
        println!("--app filter active: not overwriting BENCH_sweep.json");
    } else {
        std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
        println!("wrote BENCH_sweep.json");
    }

    // Process-lifetime metrics summary (warmup passes, plus the timed reps
    // when HPAC_TRACE kept tracing on throughout).
    println!("\nobs metrics (cumulative):");
    print!("{}", hpac_obs::snapshot().render_table());
    if traced {
        let cfg = hpac_obs::sink_config().expect("sink installed");
        hpac_obs::finish().expect("finalize trace sink");
        println!("wrote trace to {} ({:?})", cfg.path.display(), cfg.format);
    }

    // Perf gate: compare per-app throughput against the recorded baseline.
    if let Some((path, text)) = baseline_text {
        let base = parse_baseline(&text);
        let mut regressed = false;
        println!("\nbaseline comparison vs {}:", path.display());
        println!(
            "{:<18} {:>12} {:>12} {:>8}",
            "benchmark", "base cfg/s", "now cfg/s", "delta"
        );
        for t in &timings {
            match base.iter().find(|(n, _)| n == t.name) {
                Some((_, b)) => {
                    let now = t.configs_per_second();
                    let delta = (now - b) / b * 100.0;
                    let flag = if delta < -10.0 {
                        regressed = true;
                        "  REGRESSION"
                    } else {
                        ""
                    };
                    println!(
                        "{:<18} {:>12.1} {:>12.1} {:>+7.1}%{}",
                        t.name, b, now, delta, flag
                    );
                }
                None => println!("{:<18} not present in baseline", t.name),
            }
        }
        if regressed {
            eprintln!(
                "sweepbench: throughput regressed >10% vs {}",
                path.display()
            );
            std::process::exit(1);
        }
    }
}
