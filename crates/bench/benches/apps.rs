//! Criterion wall-clock benches: the functional simulator genuinely skips
//! work on the approximate path, so host-side wall time also improves.
//! One group per benchmark application (accurate vs TAF vs iACT vs perfo),
//! plus microbenches of the runtime primitives. These guard the framework's
//! own performance; modeled-GPU numbers come from the fig* binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::DeviceSpec;
use hpac_apps::common::{Benchmark, LaunchParams};
use hpac_apps::{
    binomial::BinomialOptions, blackscholes::Blackscholes, kmeans::KMeans, lavamd::LavaMd,
    leukocyte::Leukocyte, lulesh::Lulesh, minife::MiniFe,
};
use hpac_core::params::PerfoKind;
use hpac_core::region::ApproxRegion;
use hpac_core::HierarchyLevel;
use std::hint::black_box;

fn bench_app(c: &mut Criterion, name: &str, bench: &dyn Benchmark, block_level: bool) {
    let spec = DeviceSpec::v100();
    let lp = LaunchParams::new(16, if block_level { 128 } else { 256 });
    let level = if block_level {
        HierarchyLevel::Block
    } else {
        HierarchyLevel::Thread
    };
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    group.bench_function("accurate", |b| {
        b.iter(|| black_box(bench.run(&spec, None, &lp).unwrap()))
    });
    let taf = ApproxRegion::memo_out(2, 64, 5.0).level(level);
    group.bench_function("taf", |b| {
        b.iter(|| black_box(bench.run(&spec, Some(&taf), &lp).unwrap()))
    });
    let iact = ApproxRegion::memo_in(4, 0.5)
        .tables_per_warp(16)
        .level(level);
    if bench.name() != "MiniFE" {
        group.bench_function("iact", |b| {
            b.iter(|| black_box(bench.run(&spec, Some(&iact), &lp).unwrap()))
        });
    }
    if !block_level {
        let perfo = ApproxRegion::perfo(PerfoKind::Large { m: 8 });
        group.bench_function("perfo_large8", |b| {
            b.iter(|| black_box(bench.run(&spec, Some(&perfo), &lp).unwrap()))
        });
    }
    group.finish();
}

fn apps(c: &mut Criterion) {
    bench_app(
        c,
        "lulesh",
        &Lulesh {
            edge: 12,
            steps: 8,
            dt: 1e-4,
            ..Lulesh::default()
        },
        false,
    );
    bench_app(
        c,
        "leukocyte",
        &Leukocyte {
            n_cells: 8,
            grid: 16,
            iterations: 24,
            ..Leukocyte::default()
        },
        false,
    );
    bench_app(
        c,
        "binomial_options",
        &BinomialOptions {
            n_options: 1024,
            tree_steps: 96,
            ..BinomialOptions::default()
        },
        true,
    );
    bench_app(
        c,
        "minife",
        &MiniFe {
            nx: 10,
            max_iters: 25,
            ..MiniFe::default()
        },
        false,
    );
    bench_app(
        c,
        "blackscholes",
        &Blackscholes {
            n_options: 8192,
            ..Blackscholes::default()
        },
        false,
    );
    bench_app(
        c,
        "lavamd",
        &LavaMd {
            boxes_per_dim: 4,
            par_per_box: 16,
            ..LavaMd::default()
        },
        false,
    );
    bench_app(
        c,
        "kmeans",
        &KMeans {
            n_points: 2048,
            max_iters: 40,
            ..KMeans::default()
        },
        false,
    );
}

fn primitives(c: &mut Criterion) {
    use hpac_core::iact::IactPool;
    use hpac_core::metrics::RsdWindow;
    use hpac_core::params::{IactParams, TafParams};
    use hpac_core::taf::TafPool;

    c.bench_function("taf_observe", |b| {
        let mut pool = TafPool::new(1024, 4, TafParams::new(5, 32, 0.5));
        let out = [1.0, 2.0, 3.0, 4.0];
        let mut i = 0usize;
        b.iter(|| {
            pool.observe(i % 1024, black_box(&out));
            i += 1;
        })
    });
    c.bench_function("iact_probe_t8_d5", |b| {
        let mut pool = IactPool::new(1, 5, 1, IactParams::new(8, 0.5));
        for k in 0..8 {
            pool.insert(0, &[k as f64; 5], &[k as f64]);
        }
        b.iter(|| black_box(pool.probe(0, black_box(&[3.3; 5]))))
    });
    c.bench_function("rsd_window_push", |b| {
        let mut w = RsdWindow::new(5);
        let mut x = 0.0f64;
        b.iter(|| {
            w.push(black_box(x));
            x += 1.0;
            black_box(w.rsd())
        })
    });
}

criterion_group!(benches, apps, primitives);
criterion_main!(benches);
