//! Microbenchmarks of the slice-wise kernel walk itself — one `walk_block`
//! workload per technique policy (accurate, perforation, TAF, serialized
//! TAF, iACT), driven through the public `approx_parallel_for_opts` entry
//! so dispatch + walk + accounting are all on the measured path. These
//! guard the hot loop the sweep throughput depends on; `cargo bench
//! --no-run` in CI keeps them compiling.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, LaunchConfig};
use hpac_core::exec::{approx_parallel_for_opts, ExecOptions, RegionBody};
use hpac_core::params::PerfoKind;
use hpac_core::region::ApproxRegion;
use std::hint::black_box;

const N_ITEMS: usize = 1 << 14;
const BLOCK_SIZE: u32 = 256;

/// A small plateau-structured body: cheap enough that walk overhead (slice
/// assembly, voting, cost charging) dominates, redundant enough that the
/// memoization techniques actually take their approximate paths.
struct WalkBody {
    input: Vec<f64>,
    output: Vec<f64>,
}

impl WalkBody {
    fn new() -> Self {
        let input: Vec<f64> = (0..N_ITEMS)
            .map(|i| ((i >> 6) as f64) + 0.25 * ((i % 3) as f64))
            .collect();
        WalkBody {
            input,
            output: vec![0.0; N_ITEMS],
        }
    }
}

impl RegionBody for WalkBody {
    fn in_dim(&self) -> usize {
        1
    }

    fn out_dim(&self) -> usize {
        1
    }

    fn inputs(&self, i: usize, buf: &mut [f64]) {
        buf[0] = self.input[i];
    }

    fn compute(&self, i: usize, out: &mut [f64]) {
        let x = self.input[i];
        out[0] = (x + 1.0).sqrt() + (x + 2.0).ln();
    }

    fn store(&mut self, i: usize, out: &[f64]) {
        self.output[i] = out[0];
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new()
            .flops(20.0)
            .sfu(2.0)
            .global_read(lanes, 8, AccessPattern::Coalesced)
            .global_write(lanes, 8, AccessPattern::Coalesced)
    }
}

fn bench_walk(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let launch = LaunchConfig::one_item_per_thread(N_ITEMS, BLOCK_SIZE);
    let opts = ExecOptions::default();
    let serialized = ExecOptions {
        serialized_taf: true,
        ..ExecOptions::default()
    };

    let cases: [(&str, Option<ApproxRegion>, &ExecOptions); 5] = [
        ("accurate", None, &opts),
        (
            "perfo_large8",
            Some(ApproxRegion::perfo(PerfoKind::Large { m: 8 })),
            &opts,
        ),
        ("taf", Some(ApproxRegion::memo_out(2, 64, 0.5)), &opts),
        (
            "taf_serialized",
            Some(ApproxRegion::memo_out(2, 64, 0.5)),
            &serialized,
        ),
        (
            "iact",
            Some(ApproxRegion::memo_in(4, 0.5).tables_per_warp(16)),
            &opts,
        ),
    ];

    let mut group = c.benchmark_group("walk_block");
    group.sample_size(20);
    for (name, region, o) in &cases {
        group.bench_function(name, |b| {
            let mut body = WalkBody::new();
            b.iter(|| {
                black_box(
                    approx_parallel_for_opts(&spec, &launch, region.as_ref(), &mut body, o)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walk);
criterion_main!(benches);
