//! Overhead of the `hpac-obs` instrumentation, both sides of the gate.
//!
//! The contract the disabled numbers guard: with tracing off, every
//! instrumentation site is one relaxed atomic load plus a branch, so an
//! instrumented walk must stay within noise (<1%) of the pre-obs baseline
//! recorded in `benches/walk.rs`. The enabled cases quantify what flipping
//! `HPAC_TRACE` on actually costs — per-event ring-buffer recording, not a
//! global lock. `cargo bench --no-run` in CI keeps these compiling.

use criterion::{criterion_group, criterion_main, Criterion};
use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, LaunchConfig};
use hpac_core::exec::{approx_parallel_for_opts, ExecOptions, RegionBody};
use hpac_core::region::ApproxRegion;
use std::hint::black_box;

const N_ITEMS: usize = 1 << 14;
const BLOCK_SIZE: u32 = 256;

/// Same plateau-structured body as `benches/walk.rs`, so the traced-walk
/// numbers compare directly against the untraced walk bench.
struct WalkBody {
    input: Vec<f64>,
    output: Vec<f64>,
}

impl WalkBody {
    fn new() -> Self {
        let input: Vec<f64> = (0..N_ITEMS)
            .map(|i| ((i >> 6) as f64) + 0.25 * ((i % 3) as f64))
            .collect();
        WalkBody {
            input,
            output: vec![0.0; N_ITEMS],
        }
    }
}

impl RegionBody for WalkBody {
    fn in_dim(&self) -> usize {
        1
    }

    fn out_dim(&self) -> usize {
        1
    }

    fn inputs(&self, i: usize, buf: &mut [f64]) {
        buf[0] = self.input[i];
    }

    fn compute(&self, i: usize, out: &mut [f64]) {
        let x = self.input[i];
        out[0] = (x + 1.0).sqrt() + (x + 2.0).ln();
    }

    fn store(&mut self, i: usize, out: &[f64]) {
        self.output[i] = out[0];
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new()
            .flops(20.0)
            .sfu(2.0)
            .global_read(lanes, 8, AccessPattern::Coalesced)
            .global_write(lanes, 8, AccessPattern::Coalesced)
    }
}

fn bench_disabled_primitives(c: &mut Criterion) {
    hpac_obs::set_enabled(false);
    let mut group = c.benchmark_group("obs_disabled");
    group.sample_size(20);
    group.bench_function("span", |b| {
        b.iter(|| black_box(hpac_obs::span(hpac_obs::SpanId::KernelWalk, 1, 2)))
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| hpac_obs::add(black_box(hpac_obs::CounterId::WarpSteps), black_box(3)))
    });
    group.bench_function("mark", |b| {
        b.iter(|| hpac_obs::mark(black_box(hpac_obs::Mark::QueueDepth), 1, 2))
    });
    group.finish();
}

fn bench_enabled_primitives(c: &mut Criterion) {
    hpac_obs::set_enabled(true);
    let mut group = c.benchmark_group("obs_enabled");
    group.sample_size(20);
    group.bench_function("span", |b| {
        b.iter(|| black_box(hpac_obs::span(hpac_obs::SpanId::KernelWalk, 1, 2)))
    });
    group.bench_function("counter_add", |b| {
        b.iter(|| hpac_obs::add(black_box(hpac_obs::CounterId::WarpSteps), black_box(3)))
    });
    group.finish();
    hpac_obs::set_enabled(false);
}

fn bench_walk_both_sides(c: &mut Criterion) {
    let spec = DeviceSpec::v100();
    let launch = LaunchConfig::one_item_per_thread(N_ITEMS, BLOCK_SIZE);
    let opts = ExecOptions::default();
    let region = ApproxRegion::memo_out(2, 64, 0.5);

    let mut group = c.benchmark_group("walk_traced");
    group.sample_size(20);
    for (name, traced) in [("taf_untraced", false), ("taf_traced", true)] {
        group.bench_function(name, |b| {
            hpac_obs::set_enabled(traced);
            let mut body = WalkBody::new();
            b.iter(|| {
                black_box(
                    approx_parallel_for_opts(&spec, &launch, Some(&region), &mut body, &opts)
                        .unwrap(),
                )
            });
            hpac_obs::set_enabled(false);
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_disabled_primitives,
    bench_enabled_primitives,
    bench_walk_both_sides
);
criterion_main!(benches);
