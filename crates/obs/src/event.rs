//! Event vocabulary: span/counter identities, instant-event marks, and the
//! string interner backing dynamic names (benchmark names, log messages).
//!
//! Identities are fixed enums rather than free-form strings so a recorded
//! event is four `u64` stores on the hot path; anything dynamic goes through
//! [`intern`] once at the call site (always behind the enabled gate).

use std::sync::{Mutex, OnceLock};

/// Identity of a timed region. `name()` is the stable label used by both
/// sinks; `arg_keys()` documents what the two payload words mean.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanId {
    /// One `ExecEngine::run` submission. a = tasks, b = width.
    EngineBatch = 0,
    /// One task executed by a pool worker (or inline). a = task index, b = batch tasks.
    EngineTask = 1,
    /// One kernel grid walk (`exec::walk`). a = blocks, b = modeled warp-steps.
    KernelWalk = 2,
    /// One block-task kernel (`exec::block_tasks`). a = blocks, b = tasks per block.
    BlockTasks = 3,
    /// Baseline (accurate) run selection in the harness. a = interned app name, b = 0.
    BaselineSelect = 4,
    /// One approximate config evaluation. a = interned app name, b = config ordinal.
    ConfigEval = 5,
    /// One full per-app sweep. a = interned app name, b = configs in plan.
    SweepApp = 6,
    /// One `Tuner::tune` request. a = interned app name, b = error bound in basis points.
    TunerTune = 7,
    /// One technique grid searched within a tune request. a = grid index, b = grid size.
    TunerSearchGrid = 8,
    /// One `TuningService` request, cache lookup through response.
    /// a = interned app name, b = error bound in basis points.
    ServiceRequest = 9,
}

impl SpanId {
    pub const ALL: [SpanId; 10] = [
        SpanId::EngineBatch,
        SpanId::EngineTask,
        SpanId::KernelWalk,
        SpanId::BlockTasks,
        SpanId::BaselineSelect,
        SpanId::ConfigEval,
        SpanId::SweepApp,
        SpanId::TunerTune,
        SpanId::TunerSearchGrid,
        SpanId::ServiceRequest,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SpanId::EngineBatch => "engine_batch",
            SpanId::EngineTask => "engine_task",
            SpanId::KernelWalk => "kernel_walk",
            SpanId::BlockTasks => "block_tasks",
            SpanId::BaselineSelect => "baseline_select",
            SpanId::ConfigEval => "config_eval",
            SpanId::SweepApp => "sweep_app",
            SpanId::TunerTune => "tuner_tune",
            SpanId::TunerSearchGrid => "tuner_search_grid",
            SpanId::ServiceRequest => "service_request",
        }
    }

    /// Keys for the two payload words, and whether `a` is an interned string.
    pub fn arg_keys(self) -> (&'static str, &'static str, bool) {
        match self {
            SpanId::EngineBatch => ("tasks", "width", false),
            SpanId::EngineTask => ("task", "of", false),
            SpanId::KernelWalk => ("blocks", "warp_steps", false),
            SpanId::BlockTasks => ("blocks", "tasks_per_block", false),
            SpanId::BaselineSelect => ("app", "b", true),
            SpanId::ConfigEval => ("app", "config", true),
            SpanId::SweepApp => ("app", "configs", true),
            SpanId::TunerTune => ("app", "bound_bp", true),
            SpanId::TunerSearchGrid => ("grid", "size", false),
            SpanId::ServiceRequest => ("app", "bound_bp", true),
        }
    }

    fn from_u8(v: u8) -> Option<SpanId> {
        SpanId::ALL.get(v as usize).copied()
    }
}

/// Identity of an instant (point-in-time) event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Mark {
    /// Engine queue pressure at submit time. a = busy workers, b = batch tasks.
    QueueDepth = 0,
    /// Tuner search trajectory sample. a = total evaluations, b = frontier size.
    SearchPoint = 1,
    /// Warning routed through [`crate::log_warn`]. a = interned message, b = 0.
    LogWarn = 2,
}

impl Mark {
    pub const ALL: [Mark; 3] = [Mark::QueueDepth, Mark::SearchPoint, Mark::LogWarn];

    pub fn name(self) -> &'static str {
        match self {
            Mark::QueueDepth => "queue_depth",
            Mark::SearchPoint => "search_point",
            Mark::LogWarn => "warning",
        }
    }

    /// Keys for the two payload words, and whether `a` is an interned string.
    pub fn arg_keys(self) -> (&'static str, &'static str, bool) {
        match self {
            Mark::QueueDepth => ("busy_workers", "tasks", false),
            Mark::SearchPoint => ("evaluations", "frontier", false),
            Mark::LogWarn => ("message", "b", true),
        }
    }

    fn from_u8(v: u8) -> Option<Mark> {
        Mark::ALL.get(v as usize).copied()
    }
}

/// Monotonic counters, one cell per id per worker ring. Totals are summed
/// across rings by [`crate::snapshot`]; per-ring values attribute work to
/// specific workers (e.g. `EngineBusyNs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum CounterId {
    /// `ExecEngine::run` submissions (nested inline calls excluded).
    EngineBatches = 0,
    /// Tasks executed on behalf of the engine, attributed to the executing worker.
    EngineTasks,
    /// Nanoseconds spent inside engine tasks, attributed to the executing worker.
    EngineBusyNs,
    /// Submissions that ran inline because the caller was already a pool task.
    EngineNestedInline,
    /// Phases executed by `ExecEngine::run_phases`.
    EnginePhases,
    /// Nanoseconds the `run_phases` submitter spent blocked on phase barriers.
    EngineBarrierWaitNs,
    /// Kernel launches finishing through `KernelExec::finish`.
    KernelLaunches,
    /// Modeled warp-steps (slice iterations) across all kernels.
    WarpSteps,
    /// Warp-steps with intra-warp technique divergence.
    DivergentSteps,
    /// Lanes that took an approximate path.
    ApproxLanes,
    /// Lanes that executed accurately.
    AccurateLanes,
    /// Lanes skipped entirely (perforation).
    SkippedLanes,
    /// Modeled global memory transactions.
    GlobalTxns,
    /// `Executor::Auto` decisions that fanned out to the pool.
    AutoFanOut,
    /// `Executor::Auto` decisions that stayed sequential.
    AutoInline,
    /// Chunks produced by oversplitting parallel block walks.
    WalkChunks,
    /// `MixMemo` lane-mix cost lookups served from cache.
    MixMemoHits,
    /// `MixMemo` lookups that had to precompose costs.
    MixMemoMisses,
    /// `ComputeMemo` input-row lookups served from cache.
    ComputeMemoHits,
    /// `ComputeMemo` lookups that computed and stored a fresh row.
    ComputeMemoMisses,
    /// Approximate configs fully evaluated by the harness.
    ConfigsEvaluated,
    /// Approximate configs rejected at launch (e.g. shared memory overflow).
    ConfigsRejected,
    /// Nanoseconds spent evaluating configs, attributed to the evaluating worker.
    ConfigEvalNs,
    /// `Tuner::tune` requests.
    TunerRequests,
    /// Tune requests answered from the persistent cache.
    TunerCacheHits,
    /// Tune requests that missed the persistent cache and searched.
    TunerCacheMisses,
    /// Fresh evaluator runs during tuner search.
    TunerEvals,
    /// Evaluator requests served from the in-process memo or dropped by budget.
    TunerEvalsSkipped,
    /// Pareto frontier insertions that succeeded.
    ParetoInserts,
    /// Candidate points dominated on arrival.
    ParetoRejects,
    /// Frontier points pruned by a newly inserted dominator.
    ParetoPrunes,
    /// Warnings emitted through `log_warn`.
    LogWarnings,
    /// `TuningService` requests accepted (all provenances).
    ServiceRequests,
    /// Service requests that joined an identical in-flight search.
    ServiceCoalesced,
    /// Service searches warm-started from a neighboring bound's frontier.
    ServiceWarmStarts,
    /// Sweep-scoped `EvalMemo` lookups served from the shared store.
    EvalMemoHits,
    /// `EvalMemo` lookups that built a fresh entry.
    EvalMemoMisses,
    /// Quality-score computations skipped via the output-fingerprint cache.
    QualityCacheHits,
    /// Configs that canonicalized onto an already-submitted evaluation.
    ConfigsDeduped,
    /// Config evaluations aborted once they provably missed the frontier.
    EarlyAborts,
}

pub const N_COUNTERS: usize = 40;

impl CounterId {
    pub const ALL: [CounterId; N_COUNTERS] = [
        CounterId::EngineBatches,
        CounterId::EngineTasks,
        CounterId::EngineBusyNs,
        CounterId::EngineNestedInline,
        CounterId::EnginePhases,
        CounterId::EngineBarrierWaitNs,
        CounterId::KernelLaunches,
        CounterId::WarpSteps,
        CounterId::DivergentSteps,
        CounterId::ApproxLanes,
        CounterId::AccurateLanes,
        CounterId::SkippedLanes,
        CounterId::GlobalTxns,
        CounterId::AutoFanOut,
        CounterId::AutoInline,
        CounterId::WalkChunks,
        CounterId::MixMemoHits,
        CounterId::MixMemoMisses,
        CounterId::ComputeMemoHits,
        CounterId::ComputeMemoMisses,
        CounterId::ConfigsEvaluated,
        CounterId::ConfigsRejected,
        CounterId::ConfigEvalNs,
        CounterId::TunerRequests,
        CounterId::TunerCacheHits,
        CounterId::TunerCacheMisses,
        CounterId::TunerEvals,
        CounterId::TunerEvalsSkipped,
        CounterId::ParetoInserts,
        CounterId::ParetoRejects,
        CounterId::ParetoPrunes,
        CounterId::LogWarnings,
        CounterId::ServiceRequests,
        CounterId::ServiceCoalesced,
        CounterId::ServiceWarmStarts,
        CounterId::EvalMemoHits,
        CounterId::EvalMemoMisses,
        CounterId::QualityCacheHits,
        CounterId::ConfigsDeduped,
        CounterId::EarlyAborts,
    ];

    pub fn name(self) -> &'static str {
        match self {
            CounterId::EngineBatches => "engine_batches",
            CounterId::EngineTasks => "engine_tasks",
            CounterId::EngineBusyNs => "engine_busy_ns",
            CounterId::EngineNestedInline => "engine_nested_inline",
            CounterId::EnginePhases => "engine_phases",
            CounterId::EngineBarrierWaitNs => "engine_barrier_wait_ns",
            CounterId::KernelLaunches => "kernel_launches",
            CounterId::WarpSteps => "warp_steps",
            CounterId::DivergentSteps => "divergent_steps",
            CounterId::ApproxLanes => "approx_lanes",
            CounterId::AccurateLanes => "accurate_lanes",
            CounterId::SkippedLanes => "skipped_lanes",
            CounterId::GlobalTxns => "global_txns",
            CounterId::AutoFanOut => "auto_fan_out",
            CounterId::AutoInline => "auto_inline",
            CounterId::WalkChunks => "walk_chunks",
            CounterId::MixMemoHits => "mix_memo_hits",
            CounterId::MixMemoMisses => "mix_memo_misses",
            CounterId::ComputeMemoHits => "compute_memo_hits",
            CounterId::ComputeMemoMisses => "compute_memo_misses",
            CounterId::ConfigsEvaluated => "configs_evaluated",
            CounterId::ConfigsRejected => "configs_rejected",
            CounterId::ConfigEvalNs => "config_eval_ns",
            CounterId::TunerRequests => "tuner_requests",
            CounterId::TunerCacheHits => "tuner_cache_hits",
            CounterId::TunerCacheMisses => "tuner_cache_misses",
            CounterId::TunerEvals => "tuner_evals",
            CounterId::TunerEvalsSkipped => "tuner_evals_skipped",
            CounterId::ParetoInserts => "pareto_inserts",
            CounterId::ParetoRejects => "pareto_rejects",
            CounterId::ParetoPrunes => "pareto_prunes",
            CounterId::LogWarnings => "log_warnings",
            CounterId::ServiceRequests => "service_requests",
            CounterId::ServiceCoalesced => "service_coalesced",
            CounterId::ServiceWarmStarts => "service_warm_starts",
            CounterId::EvalMemoHits => "eval_memo_hits",
            CounterId::EvalMemoMisses => "eval_memo_misses",
            CounterId::QualityCacheHits => "quality_cache_hits",
            CounterId::ConfigsDeduped => "configs_deduped",
            CounterId::EarlyAborts => "early_aborts",
        }
    }
}

/// Event kind tag packed into the ring slot's meta word.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Kind {
    Span = 0,
    Instant = 1,
}

/// A decoded event drained out of a ring, safe to hold after the ring moves on.
#[derive(Clone, Debug)]
pub struct OwnedEvent {
    /// Ring-local sequence number (monotone per worker).
    pub seq: u64,
    /// Worker id of the ring this event was recorded on.
    pub worker: u32,
    pub payload: Payload,
    /// Start timestamp, ns since the process trace epoch.
    pub t0_ns: u64,
    /// End timestamp; equals `t0_ns` for instants.
    pub t1_ns: u64,
    pub a: u64,
    pub b: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Payload {
    Span(SpanId),
    Instant(Mark),
}

impl Payload {
    pub fn name(self) -> &'static str {
        match self {
            Payload::Span(s) => s.name(),
            Payload::Instant(m) => m.name(),
        }
    }

    pub fn arg_keys(self) -> (&'static str, &'static str, bool) {
        match self {
            Payload::Span(s) => s.arg_keys(),
            Payload::Instant(m) => m.arg_keys(),
        }
    }
}

pub(crate) fn pack_meta(kind: Kind, id: u8) -> u64 {
    ((kind as u64) << 8) | id as u64
}

pub(crate) fn unpack_meta(meta: u64) -> Option<Payload> {
    let id = (meta & 0xff) as u8;
    match meta >> 8 {
        0 => SpanId::from_u8(id).map(Payload::Span),
        1 => Mark::from_u8(id).map(Payload::Instant),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// String interner
// ---------------------------------------------------------------------------

struct Interner {
    strings: Vec<String>,
}

static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();

fn interner() -> &'static Mutex<Interner> {
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            strings: Vec::new(),
        })
    })
}

/// Intern a string, returning a stable id usable as an event payload word.
/// Takes a global lock — call only behind the enabled gate, and only for
/// low-frequency names (apps, grids, log messages), never per warp-step.
pub fn intern(s: &str) -> u64 {
    let mut g = interner().lock().unwrap();
    if let Some(i) = g.strings.iter().position(|x| x == s) {
        return i as u64;
    }
    g.strings.push(s.to_string());
    (g.strings.len() - 1) as u64
}

/// Resolve an interned id back to its string, if it exists.
pub fn resolve(id: u64) -> Option<String> {
    let g = interner().lock().unwrap();
    g.strings.get(id as usize).cloned()
}
