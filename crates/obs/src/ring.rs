//! Per-worker event rings and the process-wide ring registry.
//!
//! Each thread that records events owns exactly one ring, reached through a
//! thread-local pointer, so the hot path takes no locks: a record is a
//! handful of relaxed/release stores into slots the owning thread alone
//! writes. Readers (snapshot/flush) run on other threads, so every slot
//! field is an atomic and each slot carries a seqlock-style sequence word —
//! a torn read is detected and discarded, never undefined behavior.
//!
//! The ring keeps the newest [`RING_CAP`] events; when a writer laps the
//! flush cursor the oldest unflushed events are overwritten and counted as
//! dropped rather than blocking the worker.

use crate::event::{pack_meta, unpack_meta, CounterId, Kind, OwnedEvent, N_COUNTERS};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Events retained per worker. Power of two so the slot index is a mask.
pub const RING_CAP: usize = 1 << 14;

/// Sequence value a slot holds while its owner is mid-write.
const SEQ_BUSY: u64 = u64::MAX;

struct Slot {
    /// `index + 1` once the slot holds event `index`; [`SEQ_BUSY`] mid-write.
    seq: AtomicU64,
    meta: AtomicU64,
    t0: AtomicU64,
    t1: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            t0: AtomicU64::new(0),
            t1: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

pub struct WorkerRing {
    /// Registration order; stable for the process lifetime.
    pub(crate) worker: u32,
    /// Whether the owning thread is an engine pool worker (`hpac-pool-*`).
    pub(crate) pool_worker: bool,
    /// Next event index; only the owning thread stores.
    head: AtomicU64,
    /// Index up to which events have been drained to a sink.
    flushed: AtomicU64,
    /// Events overwritten before any drain saw them.
    dropped: AtomicU64,
    counters: [AtomicU64; N_COUNTERS],
    slots: Vec<Slot>,
}

impl WorkerRing {
    fn new(worker: u32, pool_worker: bool) -> WorkerRing {
        WorkerRing {
            worker,
            pool_worker,
            head: AtomicU64::new(0),
            flushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            slots: (0..RING_CAP).map(|_| Slot::new()).collect(),
        }
    }

    /// Record one event. Owner thread only.
    pub(crate) fn record(&self, kind: Kind, id: u8, t0: u64, t1: u64, a: u64, b: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) & (RING_CAP - 1)];
        // Mark busy so a concurrent reader rejects the slot while fields are
        // in flux, publish fields, then publish the new sequence.
        slot.seq.store(SEQ_BUSY, Ordering::Release);
        slot.meta.store(pack_meta(kind, id), Ordering::Relaxed);
        slot.t0.store(t0, Ordering::Relaxed);
        slot.t1.store(t1, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.seq.store(h + 1, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    pub(crate) fn add(&self, c: CounterId, n: u64) {
        self.counters[c as usize].fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn counter(&self, c: CounterId) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    pub(crate) fn head_seq(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events lost to ring wrap: those a drain already accounted, plus the
    /// backlog the writer has overwritten since the last drain (so a
    /// snapshot reports honest losses even before any sink flush).
    pub(crate) fn dropped(&self) -> u64 {
        let accounted = self.dropped.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let flushed = self.flushed.load(Ordering::Acquire);
        accounted + head.saturating_sub(RING_CAP as u64).saturating_sub(flushed)
    }

    /// Drain every event recorded since the last drain. Events the writer
    /// overwrote before this drain (writer lapped the cursor) are accounted
    /// in `dropped`; events caught mid-write are skipped this round and
    /// picked up by the next drain.
    pub(crate) fn drain(&self, out: &mut Vec<OwnedEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let mut from = self.flushed.load(Ordering::Acquire);
        let oldest = head.saturating_sub(RING_CAP as u64);
        if from < oldest {
            self.dropped.fetch_add(oldest - from, Ordering::Relaxed);
            from = oldest;
        }
        let mut drained_to = from;
        for idx in from..head {
            let slot = &self.slots[(idx as usize) & (RING_CAP - 1)];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 != idx + 1 {
                // Overwritten (newer seq) or mid-write: stop at the first
                // unreadable event so the cursor never skips past data the
                // writer is still publishing.
                if s1 != SEQ_BUSY && s1 > idx + 1 {
                    // Lapped mid-drain; the events are gone.
                    self.dropped.fetch_add(1, Ordering::Relaxed);
                    drained_to = idx + 1;
                    continue;
                }
                break;
            }
            let meta = slot.meta.load(Ordering::Relaxed);
            let t0 = slot.t0.load(Ordering::Relaxed);
            let t1 = slot.t1.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            // Re-validate: if the writer wrapped around and reused the slot
            // while we read, the sequence moved and the fields are torn.
            if slot.seq.load(Ordering::Acquire) != idx + 1 {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                drained_to = idx + 1;
                continue;
            }
            if let Some(payload) = unpack_meta(meta) {
                out.push(OwnedEvent {
                    seq: idx,
                    worker: self.worker,
                    payload,
                    t0_ns: t0,
                    t1_ns: t1,
                    a,
                    b,
                });
            }
            drained_to = idx + 1;
        }
        self.flushed.fetch_max(drained_to, Ordering::AcqRel);
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

static REGISTRY: OnceLock<Mutex<Vec<&'static WorkerRing>>> = OnceLock::new();

fn registry() -> &'static Mutex<Vec<&'static WorkerRing>> {
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static TL_RING: Cell<Option<&'static WorkerRing>> = const { Cell::new(None) };
}

/// The calling thread's ring, created and registered on first use. Rings are
/// leaked intentionally: they must outlive the worker threads that own them
/// so late drains stay safe, and the set is bounded by the pool size.
pub(crate) fn ring() -> &'static WorkerRing {
    TL_RING.with(|tl| {
        if let Some(r) = tl.get() {
            return r;
        }
        let pool_worker = std::thread::current()
            .name()
            .is_some_and(|n| n.starts_with("hpac-pool-"));
        let mut reg = registry().lock().unwrap();
        let r: &'static WorkerRing =
            Box::leak(Box::new(WorkerRing::new(reg.len() as u32, pool_worker)));
        reg.push(r);
        tl.set(Some(r));
        r
    })
}

/// Snapshot of the registered rings (order = registration order).
pub(crate) fn all_rings() -> Vec<&'static WorkerRing> {
    registry().lock().unwrap().clone()
}

/// Drain all rings into a single list ordered by start timestamp.
pub fn drain_events() -> Vec<OwnedEvent> {
    let mut out = Vec::new();
    for r in all_rings() {
        r.drain(&mut out);
    }
    out.sort_by_key(|e| (e.t0_ns, e.worker, e.seq));
    out
}
