//! `hpac-obs` — structured tracing and metrics for the HPAC stack.
//!
//! Dependency-free, in the spirit of the shim crates. The design contract:
//!
//! - **Disabled is free.** Every recording entry point starts with a branch
//!   on one static `AtomicBool` loaded `Relaxed` ([`enabled`]); nothing else
//!   happens when tracing is off, so instrumented hot paths (the walk
//!   benches) stay within noise of uninstrumented ones.
//! - **No locks on the hot path.** Each recording thread owns a private
//!   ring buffer ([`ring`] module) reached via a thread-local; records are
//!   plain atomic stores, counters are relaxed `fetch_add`s on per-worker
//!   cells. Locks exist only at the edges: first-use ring registration,
//!   string interning (low-frequency names), and sink flushes.
//! - **One diagnostics path.** Library crates report problems through
//!   [`log_warn`], which lands in the trace *and* on stderr; ad-hoc
//!   `eprintln!`/`println!` in library code is a CI failure.
//!
//! Activation: bins call `hpac_core::env::init_trace_from_env`, which reads
//! `HPAC_TRACE=<path>[:jsonl|chrome]` through the stack's one strict
//! env-var helper and, when set, calls [`install_sink`] and flips the gate
//! via [`set_enabled`]. This crate owns only the pure parser
//! ([`parse_hpac_trace`]); the read-validate-abort glue lives in
//! `hpac-core` with every other `HPAC_*` variable. Tests and embedders can
//! flip the gate directly with [`set_enabled`] and inspect metrics
//! in-process via [`snapshot`] without any sink.

mod event;
mod ring;
mod sink;
mod snapshot;

pub use event::{intern, resolve, CounterId, Mark, OwnedEvent, Payload, SpanId, N_COUNTERS};
pub use ring::{drain_events, RING_CAP};
pub use sink::{
    finish, flush, install_sink, parse_hpac_trace, sink_config, FlushStats, SinkConfig, TraceFormat,
};
pub use snapshot::{snapshot, MetricsSnapshot, WorkerMetrics};

use event::Kind;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is on. The one branch every instrumentation site pays
/// when tracing is off.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Flip the recording gate. Spans already open keep their start timestamp
/// and record on drop regardless, so toggling mid-span loses nothing.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process trace epoch (first use).
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Recording API
// ---------------------------------------------------------------------------

/// RAII guard for a timed region; records on drop. Inert (a `None` payload)
/// when tracing was off at creation.
pub struct Span {
    live: Option<(SpanId, u64, u64, u64)>,
}

impl Span {
    /// An inert span, for call sites that need an explicit "off" value.
    pub fn none() -> Span {
        Span { live: None }
    }

    /// Update the payload words of a live span (e.g. a count known only at
    /// region end). No-op on an inert span.
    pub fn set_args(&mut self, a: u64, b: u64) {
        if let Some((_, _, la, lb)) = self.live.as_mut() {
            *la = a;
            *lb = b;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((id, t0, a, b)) = self.live.take() {
            ring::ring().record(Kind::Span, id as u8, t0, now_ns(), a, b);
        }
    }
}

/// Open a timed span. Free when disabled (one relaxed load + branch).
#[inline]
pub fn span(id: SpanId, a: u64, b: u64) -> Span {
    if !enabled() {
        return Span::none();
    }
    Span {
        live: Some((id, now_ns(), a, b)),
    }
}

/// Open a timed span whose `a` payload is an interned string (app names and
/// the like). The interner lock is only taken when tracing is on.
#[inline]
pub fn span_named(id: SpanId, name: &str, b: u64) -> Span {
    if !enabled() {
        return Span::none();
    }
    Span {
        live: Some((id, now_ns(), intern(name), b)),
    }
}

/// Record an instant event. Free when disabled.
#[inline]
pub fn mark(m: Mark, a: u64, b: u64) {
    if enabled() {
        let t = now_ns();
        ring::ring().record(Kind::Instant, m as u8, t, t, a, b);
    }
}

/// Add to a counter on the calling worker's ring. Free when disabled.
#[inline]
pub fn add(c: CounterId, n: u64) {
    if enabled() {
        ring::ring().add(c, n);
    }
}

/// Increment a counter by one. Free when disabled.
#[inline]
pub fn inc(c: CounterId) {
    add(c, 1);
}

/// The single diagnostics path for library crates: the warning always
/// reaches stderr, and when tracing is on it is also recorded as an
/// instant event with the message interned.
pub fn log_warn(msg: &str) {
    if enabled() {
        let t = now_ns();
        ring::ring().record(Kind::Instant, Mark::LogWarn as u8, t, t, intern(msg), 0);
        ring::ring().add(CounterId::LogWarnings, 1);
    }
    eprintln!("warning: {msg}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Obs state is process-global; unit tests touching it serialize here.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        set_enabled(false);
        let before = snapshot();
        inc(CounterId::KernelLaunches);
        drop(span(SpanId::KernelWalk, 1, 2));
        mark(Mark::QueueDepth, 3, 4);
        let delta = snapshot().delta_since(&before);
        assert_eq!(delta.counter(CounterId::KernelLaunches), 0);
        assert!(delta.workers.iter().all(|w| w.events == 0));
    }

    #[test]
    fn enabled_round_trips_span_and_counter() {
        let _g = locked();
        set_enabled(true);
        let before = snapshot();
        let _ = drain_events();
        add(CounterId::WarpSteps, 7);
        drop(span(SpanId::KernelWalk, 11, 22));
        mark(Mark::SearchPoint, 5, 6);
        set_enabled(false);
        let delta = snapshot().delta_since(&before);
        assert_eq!(delta.counter(CounterId::WarpSteps), 7);
        let events = drain_events();
        let walk = events
            .iter()
            .find(|e| e.payload == Payload::Span(SpanId::KernelWalk))
            .expect("walk span drained");
        assert_eq!((walk.a, walk.b), (11, 22));
        assert!(walk.t1_ns >= walk.t0_ns);
        assert!(events
            .iter()
            .any(|e| e.payload == Payload::Instant(Mark::SearchPoint) && e.a == 5 && e.b == 6));
    }

    #[test]
    fn ring_wrap_keeps_newest_and_counts_dropped() {
        let _g = locked();
        set_enabled(true);
        let before = snapshot();
        let _ = drain_events();
        let n = RING_CAP + 123;
        for i in 0..n {
            mark(Mark::QueueDepth, i as u64, 0);
        }
        set_enabled(false);
        let events: Vec<_> = drain_events()
            .into_iter()
            .filter(|e| e.payload == Payload::Instant(Mark::QueueDepth))
            .collect();
        assert!(events.len() <= RING_CAP);
        // The newest event always survives.
        assert!(events.iter().any(|e| e.a == (n - 1) as u64));
        let delta = snapshot().delta_since(&before);
        assert!(delta.workers.iter().map(|w| w.dropped).sum::<u64>() >= 123);
    }

    #[test]
    fn interner_round_trips() {
        let a = intern("lulesh");
        let b = intern("lulesh");
        assert_eq!(a, b);
        assert_eq!(resolve(a).as_deref(), Some("lulesh"));
        assert_ne!(intern("kmeans"), a);
    }

    #[test]
    fn parse_hpac_trace_accepts_valid_forms() {
        assert_eq!(parse_hpac_trace("").unwrap(), None);
        assert_eq!(parse_hpac_trace("   ").unwrap(), None);
        let c = parse_hpac_trace("trace.jsonl").unwrap().unwrap();
        assert_eq!(c.format, TraceFormat::Jsonl);
        let c = parse_hpac_trace("trace.json").unwrap().unwrap();
        assert_eq!(c.format, TraceFormat::Chrome);
        let c = parse_hpac_trace("out/trace.bin:chrome").unwrap().unwrap();
        assert_eq!(c.format, TraceFormat::Chrome);
        assert_eq!(c.path, std::path::PathBuf::from("out/trace.bin"));
        let c = parse_hpac_trace("x.json:jsonl").unwrap().unwrap();
        assert_eq!(c.format, TraceFormat::Jsonl);
    }

    #[test]
    fn parse_hpac_trace_rejects_garbage() {
        assert!(parse_hpac_trace("trace.json:protobuf").is_err());
        assert!(parse_hpac_trace(":chrome").is_err());
        assert!(
            parse_hpac_trace("a:b:chrome").is_ok(),
            "path may contain colons"
        );
        assert!(
            parse_hpac_trace("a:b").is_err(),
            "last segment must be a format"
        );
    }

    #[test]
    fn span_set_args_updates_payload() {
        let _g = locked();
        set_enabled(true);
        let _ = drain_events();
        let mut s = span(SpanId::EngineBatch, 0, 0);
        s.set_args(9, 10);
        drop(s);
        set_enabled(false);
        let events = drain_events();
        assert!(events
            .iter()
            .any(|e| e.payload == Payload::Span(SpanId::EngineBatch) && e.a == 9 && e.b == 10));
    }
}
