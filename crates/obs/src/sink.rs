//! Trace sinks: JSONL event logs and Chrome trace-event files.
//!
//! Sink selection follows the `HPAC_THREADS` pattern: a strictly-validated
//! environment variable (`HPAC_TRACE=<path>[:jsonl|chrome]`) parsed once at
//! process start; malformed values are a hard error, never silently
//! ignored. Flushing drains every worker ring under a single sink lock, so
//! drains never race each other.

use crate::event::{resolve, OwnedEvent, Payload};
use crate::ring::all_rings;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line; greppable, streams.
    Jsonl,
    /// Chrome trace-event JSON array, loadable in `chrome://tracing` /
    /// `ui.perfetto.dev`.
    Chrome,
}

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SinkConfig {
    pub path: PathBuf,
    pub format: TraceFormat,
}

/// Parse an `HPAC_TRACE` value: `<path>[:jsonl|chrome]`.
///
/// - empty / whitespace-only → `None` (tracing stays off);
/// - a `:` suffix must name a known format — anything else is an error, so
///   typos fail loudly instead of silently writing the wrong format;
/// - without a suffix, a `.json` extension selects Chrome (the format
///   `chrome://tracing` expects of `.json` files), anything else JSONL.
pub fn parse_hpac_trace(raw: &str) -> Result<Option<SinkConfig>, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(None);
    }
    let (path, format) = match raw.rsplit_once(':') {
        Some((path, suffix)) => {
            let format = match suffix {
                "jsonl" => TraceFormat::Jsonl,
                "chrome" => TraceFormat::Chrome,
                other => {
                    return Err(format!(
                        "HPAC_TRACE format suffix must be `jsonl` or `chrome`, got `{other}` \
                         (expected `<path>[:jsonl|chrome]`)"
                    ))
                }
            };
            (path.trim(), format)
        }
        None => {
            let format = if raw.ends_with(".json") {
                TraceFormat::Chrome
            } else {
                TraceFormat::Jsonl
            };
            (raw, format)
        }
    };
    if path.is_empty() {
        return Err("HPAC_TRACE has a format suffix but an empty path".to_string());
    }
    Ok(Some(SinkConfig {
        path: PathBuf::from(path),
        format,
    }))
}

struct Sink {
    cfg: SinkConfig,
    file: std::fs::File,
    /// Chrome only: whether any event has been written (comma placement).
    wrote_event: bool,
    finished: bool,
}

static SINK: OnceLock<Mutex<Option<Sink>>> = OnceLock::new();

fn sink() -> &'static Mutex<Option<Sink>> {
    SINK.get_or_init(|| Mutex::new(None))
}

/// Open the trace file and install it as the process sink. A Chrome sink
/// starts its JSON array immediately: even if the process aborts before
/// [`finish`], the unterminated array is still loadable by
/// `chrome://tracing`.
pub fn install_sink(cfg: SinkConfig) -> std::io::Result<()> {
    let mut file = std::fs::File::create(&cfg.path)?;
    if cfg.format == TraceFormat::Chrome {
        file.write_all(b"[\n")?;
    }
    *sink().lock().unwrap() = Some(Sink {
        cfg,
        file,
        wrote_event: false,
        finished: false,
    });
    Ok(())
}

/// The installed sink's configuration, if any.
pub fn sink_config() -> Option<SinkConfig> {
    sink().lock().unwrap().as_ref().map(|s| s.cfg.clone())
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_args(out: &mut String, e: &OwnedEvent) {
    let (ka, kb, a_interned) = e.payload.arg_keys();
    out.push_str("{\"");
    out.push_str(ka);
    out.push_str("\": ");
    if a_interned {
        out.push('"');
        match resolve(e.a) {
            Some(s) => escape_into(out, &s),
            None => {
                let _ = write!(out, "#{}", e.a);
            }
        }
        out.push('"');
    } else {
        let _ = write!(out, "{}", e.a);
    }
    let _ = write!(out, ", \"{}\": {}}}", kb, e.b);
}

fn render_jsonl(e: &OwnedEvent) -> String {
    let mut line = String::with_capacity(160);
    let kind = match e.payload {
        Payload::Span(_) => "span",
        Payload::Instant(_) => "instant",
    };
    let _ = write!(
        line,
        "{{\"type\": \"{kind}\", \"name\": \"{}\", \"worker\": {}, \"seq\": {}, \
         \"t0_ns\": {}, \"t1_ns\": {}, \"args\": ",
        e.payload.name(),
        e.worker,
        e.seq,
        e.t0_ns,
        e.t1_ns
    );
    write_args(&mut line, e);
    line.push('}');
    line
}

fn render_chrome(e: &OwnedEvent) -> String {
    let mut line = String::with_capacity(160);
    let ts = e.t0_ns as f64 / 1e3;
    match e.payload {
        Payload::Span(_) => {
            let dur = e.t1_ns.saturating_sub(e.t0_ns) as f64 / 1e3;
            let _ = write!(
                line,
                "{{\"name\": \"{}\", \"cat\": \"hpac\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"args\": ",
                e.payload.name(),
                e.worker
            );
        }
        Payload::Instant(_) => {
            let _ = write!(
                line,
                "{{\"name\": \"{}\", \"cat\": \"hpac\", \"ph\": \"i\", \"s\": \"t\", \
                 \"pid\": 1, \"tid\": {}, \"ts\": {ts:.3}, \"args\": ",
                e.payload.name(),
                e.worker
            );
        }
    }
    write_args(&mut line, e);
    line.push('}');
    line
}

/// Outcome of a [`flush`]: how many events went to the sink.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlushStats {
    pub events: u64,
}

/// Drain all rings and append the events to the installed sink. A no-op
/// returning zero events when no sink is installed (counters and
/// [`crate::snapshot`] still work without one). Call at quiescent points —
/// between sweeps, after a tune — not from inside the hot path.
pub fn flush() -> std::io::Result<FlushStats> {
    let mut guard = sink().lock().unwrap();
    let Some(s) = guard.as_mut() else {
        return Ok(FlushStats::default());
    };
    if s.finished {
        return Ok(FlushStats::default());
    }
    let mut events = Vec::new();
    for r in all_rings() {
        r.drain(&mut events);
    }
    events.sort_by_key(|e| (e.t0_ns, e.worker, e.seq));
    let mut buf = String::with_capacity(events.len() * 160 + 16);
    for e in &events {
        match s.cfg.format {
            TraceFormat::Jsonl => {
                buf.push_str(&render_jsonl(e));
                buf.push('\n');
            }
            TraceFormat::Chrome => {
                if s.wrote_event {
                    buf.push_str(",\n");
                }
                buf.push_str(&render_chrome(e));
                s.wrote_event = true;
            }
        }
    }
    s.file.write_all(buf.as_bytes())?;
    s.file.flush()?;
    Ok(FlushStats {
        events: events.len() as u64,
    })
}

/// Final flush, then (for Chrome) append thread-name metadata and close the
/// JSON array. The sink stays installed but ignores further flushes.
pub fn finish() -> std::io::Result<FlushStats> {
    let stats = flush()?;
    let mut guard = sink().lock().unwrap();
    let Some(s) = guard.as_mut() else {
        return Ok(stats);
    };
    if s.finished {
        return Ok(stats);
    }
    if s.cfg.format == TraceFormat::Chrome {
        let mut buf = String::new();
        for r in all_rings() {
            if s.wrote_event {
                buf.push_str(",\n");
            }
            let name = if r.pool_worker {
                format!("hpac-pool-{}", r.worker)
            } else {
                format!("submitter-{}", r.worker)
            };
            let _ = write!(
                buf,
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \
                 \"args\": {{\"name\": \"{name}\"}}}}",
                r.worker
            );
            s.wrote_event = true;
        }
        buf.push_str("\n]\n");
        s.file.write_all(buf.as_bytes())?;
    }
    s.file.flush()?;
    s.finished = true;
    Ok(stats)
}
