//! Point-in-time metrics: aggregated counters plus per-worker attribution,
//! with delta arithmetic and a human-readable summary table.

use crate::event::{CounterId, N_COUNTERS};
use crate::ring::all_rings;

/// Per-worker counter values at snapshot time.
#[derive(Clone, Debug)]
pub struct WorkerMetrics {
    /// Ring registration index; stable for the process lifetime.
    pub worker: u32,
    /// True for engine pool workers (`hpac-pool-*` threads).
    pub pool_worker: bool,
    /// Events recorded on this ring so far.
    pub events: u64,
    /// Events overwritten before any sink drained them.
    pub dropped: u64,
    counters: Vec<u64>,
}

impl WorkerMetrics {
    pub fn counter(&self, c: CounterId) -> u64 {
        self.counters[c as usize]
    }

    /// Nanoseconds this worker spent doing attributable work: engine tasks
    /// for pool workers, config evaluations for submitter threads (whose
    /// own pool participation is already inside the eval wall-clock).
    pub fn busy_ns(&self) -> u64 {
        if self.pool_worker {
            self.counter(CounterId::EngineBusyNs)
        } else {
            self.counter(CounterId::ConfigEvalNs)
                .max(self.counter(CounterId::EngineBusyNs))
        }
    }
}

/// Aggregated + per-worker counter values at a point in time.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// Nanoseconds since the trace epoch when this snapshot was taken.
    pub taken_ns: u64,
    totals: Vec<u64>,
    pub workers: Vec<WorkerMetrics>,
}

/// Capture current counter values across all registered rings. Relaxed
/// reads: values are monotone and may trail in-flight increments by a few
/// counts, which delta arithmetic tolerates.
pub fn snapshot() -> MetricsSnapshot {
    let mut totals = vec![0u64; N_COUNTERS];
    let mut workers = Vec::new();
    for r in all_rings() {
        let counters: Vec<u64> = CounterId::ALL.iter().map(|&c| r.counter(c)).collect();
        for (t, v) in totals.iter_mut().zip(&counters) {
            *t += v;
        }
        workers.push(WorkerMetrics {
            worker: r.worker,
            pool_worker: r.pool_worker,
            events: r.head_seq(),
            dropped: r.dropped(),
            counters,
        });
    }
    MetricsSnapshot {
        taken_ns: crate::now_ns(),
        totals,
        workers,
    }
}

fn rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| hits as f64 / total as f64)
}

impl MetricsSnapshot {
    pub fn counter(&self, c: CounterId) -> u64 {
        self.totals[c as usize]
    }

    /// Counters accumulated since `earlier` (saturating; workers registered
    /// after `earlier` contribute their full value).
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut totals = self.totals.clone();
        for (t, e) in totals.iter_mut().zip(&earlier.totals) {
            *t = t.saturating_sub(*e);
        }
        let workers = self
            .workers
            .iter()
            .map(|w| {
                let base = earlier.workers.iter().find(|e| e.worker == w.worker);
                let counters = w
                    .counters
                    .iter()
                    .enumerate()
                    .map(|(i, v)| v.saturating_sub(base.map_or(0, |b| b.counters[i])))
                    .collect();
                WorkerMetrics {
                    worker: w.worker,
                    pool_worker: w.pool_worker,
                    events: w.events.saturating_sub(base.map_or(0, |b| b.events)),
                    dropped: w.dropped.saturating_sub(base.map_or(0, |b| b.dropped)),
                    counters,
                }
            })
            .collect();
        MetricsSnapshot {
            taken_ns: self.taken_ns,
            totals,
            workers,
        }
    }

    /// `MixMemo` hit rate, or `None` if no lookups happened.
    pub fn mix_memo_hit_rate(&self) -> Option<f64> {
        rate(
            self.counter(CounterId::MixMemoHits),
            self.counter(CounterId::MixMemoMisses),
        )
    }

    /// `ComputeMemo` hit rate, or `None` if no lookups happened.
    pub fn compute_memo_hit_rate(&self) -> Option<f64> {
        rate(
            self.counter(CounterId::ComputeMemoHits),
            self.counter(CounterId::ComputeMemoMisses),
        )
    }

    /// Tuner persistent-cache hit rate, or `None` if no requests happened.
    pub fn tuner_cache_hit_rate(&self) -> Option<f64> {
        rate(
            self.counter(CounterId::TunerCacheHits),
            self.counter(CounterId::TunerCacheMisses),
        )
    }

    /// Sweep-scoped `EvalMemo` hit rate, or `None` if no lookups happened.
    pub fn eval_memo_hit_rate(&self) -> Option<f64> {
        rate(
            self.counter(CounterId::EvalMemoHits),
            self.counter(CounterId::EvalMemoMisses),
        )
    }

    /// Output-fingerprint quality-cache hit rate: fraction of config
    /// evaluations whose error metric was served from the cache. `None`
    /// before any config was scored.
    pub fn quality_cache_hit_rate(&self) -> Option<f64> {
        rate(
            self.counter(CounterId::QualityCacheHits),
            self.counter(CounterId::ConfigsEvaluated)
                .saturating_sub(self.counter(CounterId::QualityCacheHits)),
        )
    }

    /// Total attributable busy nanoseconds across workers.
    pub fn busy_ns_total(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_ns()).sum()
    }

    /// Fraction of `width` workers kept busy over `wall_ns` of wall-clock,
    /// clamped to 1.0 (attribution overlaps when a submitter also executes
    /// pool tasks).
    pub fn utilization(&self, wall_ns: u64, width: usize) -> f64 {
        if wall_ns == 0 || width == 0 {
            return 0.0;
        }
        (self.busy_ns_total() as f64 / (wall_ns as f64 * width as f64)).min(1.0)
    }

    /// Human-readable summary: non-zero counters plus one row per worker.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<24} {:>16}", "metric", "value");
        for &c in CounterId::ALL.iter() {
            let v = self.counter(c);
            if v > 0 {
                let _ = writeln!(out, "{:<24} {:>16}", c.name(), v);
            }
        }
        for (label, r) in [
            ("mix_memo_hit_rate", self.mix_memo_hit_rate()),
            ("compute_memo_hit_rate", self.compute_memo_hit_rate()),
            ("tuner_cache_hit_rate", self.tuner_cache_hit_rate()),
            ("eval_memo_hit_rate", self.eval_memo_hit_rate()),
            ("quality_cache_hit_rate", self.quality_cache_hit_rate()),
        ] {
            if let Some(r) = r {
                let _ = writeln!(out, "{:<24} {:>15.1}%", label, r * 100.0);
            }
        }
        if !self.workers.is_empty() {
            let _ = writeln!(
                out,
                "{:<8} {:>6} {:>10} {:>14} {:>10} {:>8}",
                "worker", "pool", "tasks", "busy_ms", "events", "dropped"
            );
            for w in &self.workers {
                let _ = writeln!(
                    out,
                    "{:<8} {:>6} {:>10} {:>14.3} {:>10} {:>8}",
                    w.worker,
                    if w.pool_worker { "yes" } else { "no" },
                    w.counter(CounterId::EngineTasks),
                    w.busy_ns() as f64 / 1e6,
                    w.events,
                    w.dropped
                );
            }
        }
        out
    }
}
