//! Kernel execution bookkeeping.
//!
//! [`KernelExec`] is the handle a runtime (HPAC-Offload's, in `hpac-core`)
//! drives while functionally executing a kernel. The runtime walks the launch
//! geometry (blocks → grid-stride steps → warps), runs real Rust closures for
//! the lanes, and charges [`CostProfile`]s here; `finish()` folds the
//! accumulated per-warp cycles through the SM scheduling model into a
//! [`KernelRecord`].

use crate::cost::{CostProfile, PrecomposedCost, WarpCycles};
use crate::dim::LaunchConfig;
use crate::spec::{CostParams, DeviceSpec};
use crate::stats::KernelStats;
use crate::timing::{self, TimingBreakdown};
use std::cell::Cell;

thread_local! {
    /// Modeled kernel seconds accumulated on this thread since the last
    /// [`reset_modeled_seconds`]. Each finished kernel adds its duration,
    /// giving runtimes that evaluate one configuration per thread a running
    /// total to compare against an abort ceiling. Kernel-only by design —
    /// transfers and host time are nonnegative, so the total is a lower
    /// bound of any end-to-end basis.
    static MODELED_SECONDS: Cell<f64> = const { Cell::new(0.0) };
}

/// Zero this thread's modeled-seconds meter (call at the start of a
/// configuration evaluation).
pub fn reset_modeled_seconds() {
    MODELED_SECONDS.with(|m| m.set(0.0));
}

/// Modeled kernel seconds finished on this thread since the last reset.
pub fn modeled_seconds() -> f64 {
    MODELED_SECONDS.with(|m| m.get())
}

/// Errors rejecting a kernel launch.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// Block size or grid shape exceeds device limits.
    InvalidGeometry(String),
    /// Per-block shared memory (including AC state) exceeds the device limit.
    SharedMemExceeded { requested: usize, limit: usize },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::InvalidGeometry(msg) => write!(f, "invalid launch geometry: {msg}"),
            LaunchError::SharedMemExceeded { requested, limit } => write!(
                f,
                "shared memory request of {requested} bytes exceeds per-block limit of {limit} bytes"
            ),
        }
    }
}

impl std::error::Error for LaunchError {}

/// The result of one kernel execution: modeled timing plus statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelRecord {
    pub timing: TimingBreakdown,
    pub stats: KernelStats,
}

impl KernelRecord {
    /// Kernel time in seconds (convenience accessor).
    pub fn seconds(&self) -> f64 {
        self.timing.seconds
    }
}

/// Accounting for one block's execution, independent of every other block.
///
/// A runtime that executes blocks on separate threads gives each block its
/// own accumulator, charges costs and step outcomes into it, and folds the
/// finished accumulators back with [`KernelExec::merge_block`]. Each
/// accumulator is deterministic given the block's work, and the fold visits
/// blocks in ascending index order, so the resulting [`KernelRecord`] is
/// bit-identical to a sequential walk that used the same per-block
/// accumulators — regardless of which thread finished first.
#[derive(Debug, Clone)]
pub struct BlockAccumulator {
    costs: CostParams,
    warps: Vec<WarpCycles>,
    stats: KernelStats,
}

impl BlockAccumulator {
    /// An empty accumulator for a block of `warps` warps.
    pub fn new(warps: usize, costs: CostParams) -> Self {
        BlockAccumulator {
            costs,
            warps: vec![WarpCycles::default(); warps],
            stats: KernelStats::default(),
        }
    }

    /// Charge one warp-step's cost to warp `warp` of this block.
    pub fn charge(&mut self, warp: u32, profile: &CostProfile) {
        self.charge_precomposed(warp, &profile.precompose(&self.costs));
    }

    /// Charge a cost already resolved against this device's parameters
    /// (see [`CostProfile::precompose`]). This is the hot-path entry: the
    /// memoized walk resolves each distinct lane-mix once and replays the
    /// cached cycle sums here.
    pub fn charge_precomposed(&mut self, warp: u32, cost: &PrecomposedCost) {
        self.stats.total_issue_cycles += cost.issue;
        self.stats.total_latency_cycles += cost.latency;
        self.stats.global_txns += cost.global_txns as u64;
        let w = &mut self.warps[warp as usize];
        w.issue += cost.issue;
        w.latency += cost.latency;
    }

    /// The device cost parameters this accumulator charges against.
    pub fn params(&self) -> &CostParams {
        &self.costs
    }

    /// Clear accumulated cycles and statistics so the allocation can be
    /// reused for another block of the same geometry.
    pub fn reset(&mut self) {
        for w in &mut self.warps {
            *w = WarpCycles::default();
        }
        self.stats = KernelStats::default();
    }

    /// Record the outcome of one warp step (see [`KernelExec::note_step`]).
    pub fn note_step(&mut self, accurate: u32, approx: u32, skipped: u32, divergent: bool) {
        self.stats.warp_steps += 1;
        self.stats.accurate_lanes += accurate as u64;
        self.stats.approx_lanes += approx as u64;
        self.stats.skipped_lanes += skipped as u64;
        if divergent {
            self.stats.divergent_steps += 1;
        }
    }

    /// Statistics accumulated so far (tests and diagnostics).
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }
}

/// In-flight kernel execution state.
#[derive(Debug)]
pub struct KernelExec {
    spec: DeviceSpec,
    launch: LaunchConfig,
    shared_bytes_per_block: usize,
    /// blocks[b][w] = accumulated cycles of warp w in block b.
    blocks: Vec<Vec<WarpCycles>>,
    stats: KernelStats,
}

impl KernelExec {
    /// Validate the launch and create the execution record.
    pub fn new(
        spec: &DeviceSpec,
        launch: &LaunchConfig,
        shared_bytes_per_block: usize,
    ) -> Result<Self, LaunchError> {
        launch
            .validate(spec)
            .map_err(LaunchError::InvalidGeometry)?;
        if shared_bytes_per_block > spec.shared_mem_per_block {
            return Err(LaunchError::SharedMemExceeded {
                requested: shared_bytes_per_block,
                limit: spec.shared_mem_per_block,
            });
        }
        let warps = launch.warps_per_block(spec) as usize;
        Ok(KernelExec {
            spec: *spec,
            launch: *launch,
            shared_bytes_per_block,
            blocks: vec![vec![WarpCycles::default(); warps]; launch.n_blocks as usize],
            stats: KernelStats::default(),
        })
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    pub fn launch(&self) -> &LaunchConfig {
        &self.launch
    }

    /// Charge one warp-step's cost to warp `warp` of block `block` and
    /// update aggregate statistics.
    pub fn charge(&mut self, block: u32, warp: u32, profile: &CostProfile) {
        let params = self.spec.costs;
        self.stats.total_issue_cycles += profile.issue_cycles(&params);
        self.stats.total_latency_cycles += profile.latency_cycles(&params);
        self.stats.global_txns += profile.global_txns as u64;
        self.blocks[block as usize][warp as usize].charge(profile, &params);
    }

    /// Record the outcome of one warp step for statistics.
    ///
    /// `accurate`/`approx`/`skipped` are lane counts; `divergent` marks that
    /// the warp serialized both execution paths this step.
    pub fn note_step(&mut self, accurate: u32, approx: u32, skipped: u32, divergent: bool) {
        self.stats.warp_steps += 1;
        self.stats.accurate_lanes += accurate as u64;
        self.stats.approx_lanes += approx as u64;
        self.stats.skipped_lanes += skipped as u64;
        if divergent {
            self.stats.divergent_steps += 1;
        }
    }

    /// Fold one block's finished accumulator into the kernel record.
    ///
    /// Call once per block, in ascending block order: the u64 counters are
    /// order-independent, and the fixed order makes the f64 cycle totals
    /// bit-deterministic as well.
    pub fn merge_block(&mut self, block: u32, acc: &BlockAccumulator) {
        let warps = &mut self.blocks[block as usize];
        debug_assert_eq!(warps.len(), acc.warps.len());
        for (w, cycles) in warps.iter_mut().zip(&acc.warps) {
            w.issue += cycles.issue;
            w.latency += cycles.latency;
        }
        self.stats.merge(&acc.stats);
    }

    /// A provable lower bound on this kernel's final modeled duration,
    /// given the work merged so far: the accumulated issue cycles spread
    /// perfectly over every SM. The busiest SM's modeled cycles are at
    /// least the mean issue load (waves time `max(Σ issue, ...)` per SM),
    /// further work only adds cycles, and `finish()` adds nonnegative
    /// launch overhead — so the final [`KernelRecord::seconds`] can never
    /// be below this value.
    pub fn lower_bound_seconds(&self) -> f64 {
        self.spec
            .cycles_to_seconds(self.stats.total_issue_cycles / self.spec.sm_count as f64)
    }

    /// Finish execution: run the SM scheduling model over the accumulated
    /// per-warp cycles.
    pub fn finish(self) -> KernelRecord {
        let timing = timing::kernel_time(
            &self.spec,
            &self.launch,
            self.shared_bytes_per_block,
            &self.blocks,
        );
        MODELED_SECONDS.with(|m| m.set(m.get() + timing.seconds));
        // Every kernel — slice walk, block tasks, uniform charge — funnels
        // through here, so this is the one place modeled execution stats
        // feed the obs counters.
        if hpac_obs::enabled() {
            use hpac_obs::CounterId as C;
            hpac_obs::inc(C::KernelLaunches);
            hpac_obs::add(C::WarpSteps, self.stats.warp_steps);
            hpac_obs::add(C::DivergentSteps, self.stats.divergent_steps);
            hpac_obs::add(C::ApproxLanes, self.stats.approx_lanes);
            hpac_obs::add(C::AccurateLanes, self.stats.accurate_lanes);
            hpac_obs::add(C::SkippedLanes, self.stats.skipped_lanes);
            hpac_obs::add(C::GlobalTxns, self.stats.global_txns);
        }
        KernelRecord {
            timing,
            stats: self.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::AccessPattern;
    use crate::dim::Schedule;

    fn spec() -> DeviceSpec {
        DeviceSpec::v100()
    }

    fn small_launch() -> LaunchConfig {
        LaunchConfig::one_item_per_thread(1024, 128)
    }

    #[test]
    fn rejects_shared_mem_overflow() {
        let err = KernelExec::new(&spec(), &small_launch(), 49 * 1024).unwrap_err();
        assert!(matches!(err, LaunchError::SharedMemExceeded { .. }));
        assert!(err.to_string().contains("49152"));
    }

    #[test]
    fn rejects_bad_geometry() {
        let lc = LaunchConfig {
            n_items: 10,
            block_size: 4096,
            n_blocks: 1,
            schedule: Schedule::GridStride,
        };
        let err = KernelExec::new(&spec(), &lc, 0).unwrap_err();
        assert!(matches!(err, LaunchError::InvalidGeometry(_)));
    }

    #[test]
    fn charge_accumulates_per_warp() {
        let mut k = KernelExec::new(&spec(), &small_launch(), 0).unwrap();
        let c = CostProfile::new()
            .flops(10.0)
            .global_read(32, 8, AccessPattern::Coalesced);
        k.charge(0, 0, &c);
        k.charge(0, 0, &c);
        k.charge(1, 3, &c);
        let rec = k.finish();
        assert_eq!(rec.stats.global_txns, 6); // 2 txns per charge
        assert!(rec.stats.total_issue_cycles > 0.0);
        assert!(rec.timing.cycles > 0.0);
    }

    #[test]
    fn note_step_updates_stats() {
        let mut k = KernelExec::new(&spec(), &small_launch(), 0).unwrap();
        k.note_step(20, 12, 0, true);
        k.note_step(32, 0, 0, false);
        let rec = k.finish();
        assert_eq!(rec.stats.warp_steps, 2);
        assert_eq!(rec.stats.divergent_steps, 1);
        assert_eq!(rec.stats.accurate_lanes, 52);
        assert_eq!(rec.stats.approx_lanes, 12);
        assert!((rec.stats.approx_fraction() - 12.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn empty_kernel_still_times() {
        let k = KernelExec::new(&spec(), &small_launch(), 0).unwrap();
        let rec = k.finish();
        assert!(rec.seconds() > 0.0); // launch overhead
        assert_eq!(rec.stats.warp_steps, 0);
    }

    #[test]
    fn lower_bound_never_exceeds_final_seconds() {
        let mut k = KernelExec::new(&spec(), &small_launch(), 0).unwrap();
        let c = CostProfile::new()
            .flops(1000.0)
            .global_read(32, 8, AccessPattern::Coalesced);
        for b in 0..8 {
            k.charge(b, 0, &c);
        }
        let lb = k.lower_bound_seconds();
        assert!(lb > 0.0);
        let rec = k.finish();
        assert!(lb <= rec.seconds(), "{lb} > {}", rec.seconds());
    }

    #[test]
    fn modeled_seconds_meter_tracks_finished_kernels() {
        // Each #[test] runs on its own thread, so the thread-local meter
        // sees only this test's kernels.
        reset_modeled_seconds();
        assert_eq!(modeled_seconds(), 0.0);
        let mut total = 0.0;
        for _ in 0..2 {
            let mut k = KernelExec::new(&spec(), &small_launch(), 0).unwrap();
            k.charge(0, 0, &CostProfile::new().flops(50.0));
            total += k.finish().seconds();
        }
        assert_eq!(modeled_seconds(), total);
        reset_modeled_seconds();
        assert_eq!(modeled_seconds(), 0.0);
    }

    #[test]
    fn divergent_charge_costs_more() {
        let acc = CostProfile::new().flops(100.0);
        let apx = CostProfile::new().flops(10.0);

        let mut k1 = KernelExec::new(&spec(), &small_launch(), 0).unwrap();
        k1.charge(0, 0, &acc);
        let uniform = k1.finish();

        let mut k2 = KernelExec::new(&spec(), &small_launch(), 0).unwrap();
        k2.charge(0, 0, &acc.add(&apx)); // both paths serialized
        let divergent = k2.finish();

        assert!(divergent.stats.total_issue_cycles > uniform.stats.total_issue_cycles);
    }
}
