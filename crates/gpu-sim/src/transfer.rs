//! Host<->device transfer model and end-to-end time assembly.
//!
//! The paper measures "end-to-end application runtime, including time
//! transferring data between the CPU and GPU" (§4) — except for Blackscholes,
//! where 99% of time is allocation/transfer and kernel time is reported
//! instead. This module provides the transfer-time model and a small
//! accumulator apps use to assemble their end-to-end figure.

use crate::spec::DeviceSpec;

/// Transfer direction (costs are symmetric in this model but directions are
/// tracked for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    HostToDevice,
    DeviceToHost,
}

/// Time in seconds to move `bytes` across the host-device link.
pub fn transfer_seconds(spec: &DeviceSpec, bytes: u64) -> f64 {
    let bw = spec.costs.xfer_bandwidth_gbs * 1e9;
    spec.costs.xfer_latency_us * 1e-6 + bytes as f64 / bw
}

/// Accumulator for an application's end-to-end modeled runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct EndToEnd {
    pub kernel_seconds: f64,
    pub transfer_seconds: f64,
    pub host_seconds: f64,
    pub h2d_bytes: u64,
    pub d2h_bytes: u64,
}

impl EndToEnd {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a host->device or device->host copy.
    pub fn transfer(&mut self, spec: &DeviceSpec, bytes: u64, dir: Direction) {
        self.transfer_seconds += transfer_seconds(spec, bytes);
        match dir {
            Direction::HostToDevice => self.h2d_bytes += bytes,
            Direction::DeviceToHost => self.d2h_bytes += bytes,
        }
    }

    /// Record a kernel execution's modeled duration.
    pub fn kernel(&mut self, seconds: f64) {
        self.kernel_seconds += seconds;
    }

    /// Record host-side (CPU) time, e.g. allocation or setup.
    pub fn host(&mut self, seconds: f64) {
        self.host_seconds += seconds;
    }

    /// Total end-to-end seconds.
    pub fn total(&self) -> f64 {
        self.kernel_seconds + self.transfer_seconds + self.host_seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let spec = DeviceSpec::v100();
        let t1 = transfer_seconds(&spec, 1 << 20);
        let t2 = transfer_seconds(&spec, 1 << 30);
        assert!(t2 > t1);
        // 1 GiB at 40 GB/s ~ 27 ms
        assert!((0.02..0.04).contains(&t2), "t2 = {t2}");
    }

    #[test]
    fn small_transfer_dominated_by_latency() {
        let spec = DeviceSpec::v100();
        let t = transfer_seconds(&spec, 64);
        assert!((t - spec.costs.xfer_latency_us * 1e-6).abs() < 1e-6);
    }

    #[test]
    fn end_to_end_accumulates() {
        let spec = DeviceSpec::v100();
        let mut e = EndToEnd::new();
        e.transfer(&spec, 1 << 20, Direction::HostToDevice);
        e.transfer(&spec, 1 << 10, Direction::DeviceToHost);
        e.kernel(0.5);
        e.host(0.1);
        assert_eq!(e.h2d_bytes, 1 << 20);
        assert_eq!(e.d2h_bytes, 1 << 10);
        assert!(e.total() > 0.6);
        assert!(
            (e.total() - (e.kernel_seconds + e.transfer_seconds + e.host_seconds)).abs() < 1e-15
        );
    }
}
