//! # gpu-sim — a functional + cycle-cost simulator of the GPU execution model
//!
//! This crate is the hardware substrate for the HPAC-Offload reproduction.
//! It models the pieces of the GPU SPMD execution model that the paper's
//! results hinge on, without requiring a physical GPU:
//!
//! * **Hierarchy** — a kernel launch is a grid of thread *blocks*, each block
//!   is a set of *warps* of `warp_size` lanes executing in SIMD lockstep
//!   ([`dim`], [`warp`]).
//! * **Divergence** — when lanes of a warp take different execution paths the
//!   warp serializes both paths; the cost model charges both ([`cost`],
//!   [`engine`]).
//! * **Memory coalescing** — a warp's global-memory accesses are grouped into
//!   128-byte segment transactions ([`coalesce`]).
//! * **Shared memory** — per-block scratch with a hard capacity limit that
//!   also constrains how many blocks can be resident on an SM ([`memory`]).
//! * **Latency hiding** — an SM interleaves its resident warps; with few
//!   resident warps, global-memory latency is exposed ([`timing`]).
//! * **Host/device transfers** — HtoD/DtoH transfer time for end-to-end
//!   runtime accounting ([`transfer`]).
//!
//! Execution is *functional*: kernel bodies actually run and produce real
//! outputs, so downstream quality-of-result comparisons measure genuine
//! numerical error. Timing is *modeled*: bodies declare a [`cost::CostProfile`]
//! and the engine accumulates per-warp issue/latency cycles which
//! [`timing::kernel_time`] converts into a kernel runtime for a given
//! [`spec::DeviceSpec`].

pub mod coalesce;
pub mod cost;
pub mod dim;
pub mod engine;
pub mod memory;
pub mod spec;
pub mod stats;
pub mod timing;
pub mod transfer;
pub mod warp;

pub use coalesce::AccessPattern;
pub use cost::{CostProfile, PrecomposedCost};
pub use dim::{LaunchConfig, Schedule};
pub use engine::{
    modeled_seconds, reset_modeled_seconds, BlockAccumulator, KernelExec, KernelRecord, LaunchError,
};
pub use spec::{CostParams, DeviceSpec, Vendor};
pub use stats::KernelStats;
pub use warp::{lane_mask_ballot, popcount, WarpVote};
