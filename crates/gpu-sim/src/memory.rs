//! Device memory accounting: global-memory capacity and per-block shared
//! memory.
//!
//! The paper's Figure 3 argument — per-thread memoization tables exhaust a
//! V100's 16 GB long before the 2^72-thread limit — is a *capacity* argument,
//! and HPAC-Offload's answer is to place AC state in block shared memory.
//! This module provides both sides: a global-memory budget checker and a
//! shared-memory allocator with the device's hard per-block limit.

use crate::spec::DeviceSpec;

/// Outcome of asking whether a per-thread global-memory AC state fits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlobalFit {
    pub required_bytes: u128,
    pub capacity_bytes: u64,
    /// Fraction of device memory consumed (can exceed 1).
    pub fraction: f64,
}

impl GlobalFit {
    pub fn fits(&self) -> bool {
        self.required_bytes <= self.capacity_bytes as u128
    }
}

/// Global-memory footprint of replicating `bytes_per_thread` of AC state for
/// `n_threads` software threads (the CPU-HPAC design transplanted to GPU;
/// Fig 3's y-axis).
pub fn per_thread_state_fit(
    spec: &DeviceSpec,
    n_threads: u128,
    bytes_per_thread: u64,
) -> GlobalFit {
    let required = n_threads * bytes_per_thread as u128;
    GlobalFit {
        required_bytes: required,
        capacity_bytes: spec.global_mem_bytes,
        fraction: required as f64 / spec.global_mem_bytes as f64,
    }
}

/// A bump allocator over one block's shared memory, with the device's
/// per-block capacity as a hard limit.
///
/// HPAC-Offload reserves part of shared memory for AC state at kernel build
/// time (§3.3); allocation failures here are the moment a configuration is
/// rejected.
#[derive(Debug, Clone)]
pub struct SharedMemLayout {
    capacity: usize,
    used: usize,
    allocations: Vec<(String, usize)>,
}

/// Error returned when shared memory is exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedMemExhausted {
    pub requested: usize,
    pub used: usize,
    pub capacity: usize,
    pub label: String,
}

impl std::fmt::Display for SharedMemExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared memory exhausted allocating {} bytes for '{}': {}/{} bytes already in use",
            self.requested, self.label, self.used, self.capacity
        )
    }
}

impl std::error::Error for SharedMemExhausted {}

impl SharedMemLayout {
    /// A layout covering the whole per-block shared memory of `spec`.
    pub fn for_device(spec: &DeviceSpec) -> Self {
        SharedMemLayout {
            capacity: spec.shared_mem_per_block,
            used: 0,
            allocations: Vec::new(),
        }
    }

    /// A layout with an explicit capacity (for tests and sub-budgets).
    pub fn with_capacity(capacity: usize) -> Self {
        SharedMemLayout {
            capacity,
            used: 0,
            allocations: Vec::new(),
        }
    }

    /// Reserve `bytes` of shared memory under `label`; returns the offset.
    pub fn alloc(&mut self, label: &str, bytes: usize) -> Result<usize, SharedMemExhausted> {
        if self.used + bytes > self.capacity {
            return Err(SharedMemExhausted {
                requested: bytes,
                used: self.used,
                capacity: self.capacity,
                label: label.to_string(),
            });
        }
        let offset = self.used;
        self.used += bytes;
        self.allocations.push((label.to_string(), bytes));
        Ok(offset)
    }

    pub fn used(&self) -> usize {
        self.used
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn remaining(&self) -> usize {
        self.capacity - self.used
    }

    /// Labelled allocations in order, for diagnostics.
    pub fn allocations(&self) -> &[(String, usize)] {
        &self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_scenario_exhausts_v100() {
        // Paper Fig 3: 5-entry tables of 36-byte entries, per thread.
        let spec = DeviceSpec::v100();
        let fit_small = per_thread_state_fit(&spec, 1 << 14, 5 * 36);
        assert!(fit_small.fits());
        let fit_large = per_thread_state_fit(&spec, 1 << 27, 5 * 36);
        assert!(!fit_large.fits(), "2^27 threads must exceed 16 GB");
        assert!(fit_large.fraction > 1.0);
    }

    #[test]
    fn fig3_crossover_near_2_pow_26() {
        let spec = DeviceSpec::v100();
        // 16 GiB / 180 B ~= 95.4e6 threads; 2^26 = 67.1e6 fits, 2^27 doesn't.
        assert!(per_thread_state_fit(&spec, 1 << 26, 180).fits());
        assert!(!per_thread_state_fit(&spec, 1 << 27, 180).fits());
    }

    #[test]
    fn shared_alloc_bump_offsets() {
        let mut l = SharedMemLayout::with_capacity(100);
        assert_eq!(l.alloc("a", 40).unwrap(), 0);
        assert_eq!(l.alloc("b", 60).unwrap(), 40);
        assert_eq!(l.remaining(), 0);
    }

    #[test]
    fn shared_alloc_rejects_overflow() {
        let mut l = SharedMemLayout::with_capacity(100);
        l.alloc("a", 90).unwrap();
        let err = l.alloc("big", 20).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.used, 90);
        assert!(err.to_string().contains("big"));
        // Failed alloc must not change state.
        assert_eq!(l.used(), 90);
    }

    #[test]
    fn device_layout_uses_block_limit() {
        let spec = DeviceSpec::v100();
        let l = SharedMemLayout::for_device(&spec);
        assert_eq!(l.capacity(), 48 * 1024);
    }

    #[test]
    fn allocations_are_recorded() {
        let mut l = SharedMemLayout::with_capacity(64);
        l.alloc("taf", 16).unwrap();
        l.alloc("iact", 32).unwrap();
        assert_eq!(
            l.allocations(),
            &[("taf".to_string(), 16), ("iact".to_string(), 32)]
        );
    }
}
