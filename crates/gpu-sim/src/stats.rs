//! Execution statistics gathered during a kernel run.
//!
//! These feed the paper's analyses: percent of calculations approximated
//! (Fig 8c's color scale), divergence counts (Fig 11c's motivation), and
//! the cycle breakdown used to explain where speedup comes from.

/// Counters accumulated over one kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStats {
    /// Warp-steps executed (a warp processing one grid-stride step).
    pub warp_steps: u64,
    /// Warp-steps where lanes took *both* execution paths (divergent).
    pub divergent_steps: u64,
    /// Lane-level region executions that took the approximate path.
    pub approx_lanes: u64,
    /// Lane-level region executions that took the accurate path.
    pub accurate_lanes: u64,
    /// Lane-level region executions skipped entirely (perforation).
    pub skipped_lanes: u64,
    /// Total 128-byte global-memory transactions charged.
    pub global_txns: u64,
    /// Total issue cycles across all warps (before scheduling).
    pub total_issue_cycles: f64,
    /// Total latency cycles across all warps (before hiding).
    pub total_latency_cycles: f64,
}

impl KernelStats {
    /// Fraction of region executions that were approximated (0..=1).
    /// Skipped (perforated) lanes count as approximated, matching the
    /// paper's "percent of total price calculations that are approximated".
    pub fn approx_fraction(&self) -> f64 {
        let total = self.approx_lanes + self.accurate_lanes + self.skipped_lanes;
        if total == 0 {
            0.0
        } else {
            (self.approx_lanes + self.skipped_lanes) as f64 / total as f64
        }
    }

    /// Fraction of warp-steps that diverged.
    pub fn divergence_fraction(&self) -> f64 {
        if self.warp_steps == 0 {
            0.0
        } else {
            self.divergent_steps as f64 / self.warp_steps as f64
        }
    }

    /// Merge another kernel's stats into this one (multi-kernel apps).
    pub fn merge(&mut self, other: &KernelStats) {
        self.warp_steps += other.warp_steps;
        self.divergent_steps += other.divergent_steps;
        self.approx_lanes += other.approx_lanes;
        self.accurate_lanes += other.accurate_lanes;
        self.skipped_lanes += other.skipped_lanes;
        self.global_txns += other.global_txns;
        self.total_issue_cycles += other.total_issue_cycles;
        self.total_latency_cycles += other.total_latency_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_fraction_counts_skips() {
        let s = KernelStats {
            approx_lanes: 30,
            accurate_lanes: 50,
            skipped_lanes: 20,
            ..Default::default()
        };
        assert!((s.approx_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_fractions() {
        let s = KernelStats::default();
        assert_eq!(s.approx_fraction(), 0.0);
        assert_eq!(s.divergence_fraction(), 0.0);
    }

    #[test]
    fn divergence_fraction() {
        let s = KernelStats {
            warp_steps: 100,
            divergent_steps: 25,
            ..Default::default()
        };
        assert!((s.divergence_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = KernelStats {
            warp_steps: 10,
            approx_lanes: 5,
            total_issue_cycles: 100.0,
            ..Default::default()
        };
        let b = KernelStats {
            warp_steps: 7,
            approx_lanes: 2,
            total_issue_cycles: 50.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.warp_steps, 17);
        assert_eq!(a.approx_lanes, 7);
        assert!((a.total_issue_cycles - 150.0).abs() < 1e-12);
    }
}
