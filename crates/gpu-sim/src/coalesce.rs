//! Memory-coalescing model: how a warp's per-lane global accesses combine
//! into 128-byte memory transactions.
//!
//! The paper's herded perforation and warp-shared iACT designs are motivated
//! by keeping warp accesses aligned so that "memory transactions are aligned
//! and less fragmented" (§3.1.5). This module supplies the transaction count
//! the cost model charges for a warp-wide access.

/// Spatial pattern of one warp-wide global-memory access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// All active lanes access consecutive elements of `elem_bytes` each
    /// (perfectly coalesced, the `output[i] = f(input[i])` pattern).
    Coalesced,
    /// Lanes access elements separated by a fixed stride of `stride_bytes`
    /// (e.g. column-major multi-dimensional inputs, Fig 5's `input[i*5:5:N]`
    /// strided array section).
    Strided { stride_bytes: u32 },
    /// Every lane hits an unrelated cache segment (worst case).
    Scattered,
    /// All lanes read the same address (broadcast, one transaction).
    Broadcast,
}

/// DRAM transaction segment size in bytes (NVIDIA/AMD both coalesce into
/// 128-byte segments at the L1/L2 boundary).
pub const SEGMENT_BYTES: u32 = 128;

/// Number of 128-byte transactions needed for `active_lanes` lanes each
/// accessing `elem_bytes` bytes in the given pattern.
///
/// Returns at least 1 when any lane is active.
pub fn transactions(active_lanes: u32, elem_bytes: u32, pattern: AccessPattern) -> u32 {
    if active_lanes == 0 || elem_bytes == 0 {
        return 0;
    }
    match pattern {
        AccessPattern::Coalesced => (active_lanes * elem_bytes).div_ceil(SEGMENT_BYTES),
        AccessPattern::Strided { stride_bytes } => {
            if stride_bytes <= elem_bytes {
                // Overlapping or dense stride degenerates to coalesced.
                (active_lanes * elem_bytes).div_ceil(SEGMENT_BYTES)
            } else if stride_bytes >= SEGMENT_BYTES {
                // Each lane touches its own segment(s).
                active_lanes * elem_bytes.div_ceil(SEGMENT_BYTES).max(1)
            } else {
                // Lanes share segments at a density of stride/segment.
                let span = active_lanes * stride_bytes;
                span.div_ceil(SEGMENT_BYTES)
            }
        }
        AccessPattern::Scattered => active_lanes * elem_bytes.div_ceil(SEGMENT_BYTES).max(1),
        AccessPattern::Broadcast => elem_bytes.div_ceil(SEGMENT_BYTES).max(1),
    }
}

/// Bytes actually moved over the memory bus for the access (transactions
/// times segment size); used for bandwidth accounting in [`crate::stats`].
pub fn bus_bytes(active_lanes: u32, elem_bytes: u32, pattern: AccessPattern) -> u64 {
    transactions(active_lanes, elem_bytes, pattern) as u64 * SEGMENT_BYTES as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_warp_f32_coalesced_is_one_txn() {
        assert_eq!(transactions(32, 4, AccessPattern::Coalesced), 1);
    }

    #[test]
    fn full_warp_f64_coalesced_is_two_txn() {
        assert_eq!(transactions(32, 8, AccessPattern::Coalesced), 2);
    }

    #[test]
    fn amd_wavefront_f64_coalesced_is_four_txn() {
        assert_eq!(transactions(64, 8, AccessPattern::Coalesced), 4);
    }

    #[test]
    fn scattered_pays_per_lane() {
        assert_eq!(transactions(32, 4, AccessPattern::Scattered), 32);
        assert_eq!(transactions(7, 8, AccessPattern::Scattered), 7);
    }

    #[test]
    fn broadcast_is_single_txn() {
        assert_eq!(transactions(32, 8, AccessPattern::Broadcast), 1);
        assert_eq!(transactions(64, 4, AccessPattern::Broadcast), 1);
    }

    #[test]
    fn wide_stride_is_per_lane() {
        let p = AccessPattern::Strided { stride_bytes: 256 };
        assert_eq!(transactions(32, 8, p), 32);
    }

    #[test]
    fn dense_stride_matches_coalesced() {
        let p = AccessPattern::Strided { stride_bytes: 8 };
        assert_eq!(
            transactions(32, 8, p),
            transactions(32, 8, AccessPattern::Coalesced)
        );
    }

    #[test]
    fn medium_stride_shares_segments() {
        // stride 32B: 4 lanes per 128B segment -> 32 lanes span 8 segments
        let p = AccessPattern::Strided { stride_bytes: 32 };
        assert_eq!(transactions(32, 8, p), 8);
    }

    #[test]
    fn zero_lanes_zero_txns() {
        assert_eq!(transactions(0, 8, AccessPattern::Coalesced), 0);
        assert_eq!(transactions(0, 8, AccessPattern::Scattered), 0);
    }

    #[test]
    fn partial_warp_fewer_txns_than_full() {
        let partial = transactions(4, 8, AccessPattern::Coalesced);
        let full = transactions(32, 8, AccessPattern::Coalesced);
        assert!(partial < full);
        assert_eq!(partial, 1);
    }

    #[test]
    fn bus_bytes_are_segment_multiples() {
        let b = bus_bytes(13, 8, AccessPattern::Coalesced);
        assert_eq!(b % SEGMENT_BYTES as u64, 0);
        assert!(b >= 13 * 8);
    }
}
