//! SM-level scheduling and latency-hiding model.
//!
//! The central question the paper's Fig 8c poses — how does approximation
//! interact with the GPU's ability to hide memory latency? — is answered
//! here with a Hong–Kim-style analytical occupancy model:
//!
//! * Blocks are distributed round-robin over SMs and executed in *waves* of
//!   at most `blocks_per_sm` resident blocks (limited by the device's block,
//!   warp, and shared-memory budgets — so large AC state lowers occupancy).
//! * A wave's duration is `max(Σ issue cycles, max_w(issue_w + latency_w))`:
//!   with many resident warps the SM is issue-throughput-bound and latency is
//!   hidden; with few it is latency-bound.
//!
//! This single mechanism yields the paper's observations that speedup
//! declines once items-per-thread grows past the point where too few blocks
//! exist to hide latency, and that the decline starts *earlier on AMD*
//! because the MI250X has more SMs to keep fed.

use crate::cost::WarpCycles;
use crate::dim::LaunchConfig;
use crate::spec::DeviceSpec;

/// Why block residency was limited.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidencyLimiter {
    BlocksPerSm,
    WarpsPerSm,
    SharedMemory,
}

/// How many blocks can be resident on one SM for this launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Residency {
    pub blocks_per_sm: u32,
    pub limiter: ResidencyLimiter,
}

/// Compute block residency given per-block shared-memory use.
pub fn residency(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    shared_bytes_per_block: usize,
) -> Residency {
    let warps_per_block = launch.warps_per_block(spec).max(1);
    let by_blocks = spec.max_blocks_per_sm;
    let by_warps = (spec.max_warps_per_sm / warps_per_block).max(1);
    let by_shared = spec
        .shared_mem_per_sm
        .checked_div(shared_bytes_per_block)
        .map_or(u32::MAX, |b| (b as u32).max(1));
    let blocks = by_blocks.min(by_warps).min(by_shared).max(1);
    let limiter = if blocks == by_shared && by_shared <= by_blocks && by_shared <= by_warps {
        ResidencyLimiter::SharedMemory
    } else if blocks == by_warps && by_warps <= by_blocks {
        ResidencyLimiter::WarpsPerSm
    } else {
        ResidencyLimiter::BlocksPerSm
    };
    Residency {
        blocks_per_sm: blocks,
        limiter,
    }
}

/// Timing breakdown of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingBreakdown {
    /// Modeled kernel duration in device cycles (excluding launch overhead).
    pub cycles: f64,
    /// Kernel duration in seconds including launch overhead.
    pub seconds: f64,
    /// Number of scheduling waves on the busiest SM.
    pub waves: u32,
    /// Blocks resident per SM.
    pub residency: Residency,
    /// Fraction of the busiest SM's time that was exposed (unhidden) latency.
    pub exposed_latency_fraction: f64,
}

/// Model the kernel duration for per-block warp cycle totals.
///
/// `blocks[b]` holds the accumulated [`WarpCycles`] of every warp in block
/// `b`. Blocks are assigned `block -> SM (block % sm_count)` and executed in
/// waves of `residency.blocks_per_sm`.
pub fn kernel_time(
    spec: &DeviceSpec,
    launch: &LaunchConfig,
    shared_bytes_per_block: usize,
    blocks: &[Vec<WarpCycles>],
) -> TimingBreakdown {
    let res = residency(spec, launch, shared_bytes_per_block);
    let sm_count = spec.sm_count as usize;
    let r = res.blocks_per_sm as usize;

    // Per-SM block queues (round-robin assignment).
    let mut sm_cycles = vec![0.0f64; sm_count];
    let mut sm_issue_only = vec![0.0f64; sm_count];
    let mut max_waves = 0u32;

    for (sm, sm_total) in sm_cycles.iter_mut().enumerate() {
        let queue: Vec<&Vec<WarpCycles>> = blocks
            .iter()
            .enumerate()
            .filter(|(b, _)| b % sm_count == sm)
            .map(|(_, w)| w)
            .collect();
        let mut waves = 0u32;
        let mut issue_total = 0.0f64;
        for wave in queue.chunks(r) {
            waves += 1;
            let mut wave_issue = 0.0f64;
            let mut wave_longest = 0.0f64;
            for block in wave {
                for w in block.iter() {
                    wave_issue += w.issue;
                    wave_longest = wave_longest.max(w.issue + w.latency);
                }
                wave_issue += spec.costs.block_overhead_cycles;
            }
            *sm_total += wave_issue.max(wave_longest);
            issue_total += wave_issue;
        }
        sm_issue_only[sm] = issue_total;
        max_waves = max_waves.max(waves);
    }

    let (busiest, &cycles) = sm_cycles
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap_or((0, &0.0));
    let exposed = if cycles > 0.0 {
        ((cycles - sm_issue_only[busiest]) / cycles).max(0.0)
    } else {
        0.0
    };

    let seconds = spec.cycles_to_seconds(cycles) + spec.costs.kernel_launch_us * 1e-6;
    TimingBreakdown {
        cycles,
        seconds,
        waves: max_waves,
        residency: res,
        exposed_latency_fraction: exposed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dim::Schedule;

    fn launch(n_blocks: u32, block_size: u32) -> LaunchConfig {
        LaunchConfig {
            n_items: (n_blocks * block_size) as usize,
            schedule: Schedule::GridStride,
            block_size,
            n_blocks,
        }
    }

    fn uniform_blocks(
        n_blocks: usize,
        warps: usize,
        issue: f64,
        latency: f64,
    ) -> Vec<Vec<WarpCycles>> {
        vec![vec![WarpCycles { issue, latency }; warps]; n_blocks]
    }

    #[test]
    fn residency_limited_by_warps() {
        let spec = DeviceSpec::v100(); // 64 warps/SM
        let lc = launch(1000, 1024); // 32 warps per block
        let r = residency(&spec, &lc, 0);
        assert_eq!(r.blocks_per_sm, 2);
        assert_eq!(r.limiter, ResidencyLimiter::WarpsPerSm);
    }

    #[test]
    fn residency_limited_by_shared_memory() {
        let spec = DeviceSpec::v100(); // 96 KiB shared per SM
        let lc = launch(1000, 64);
        let r = residency(&spec, &lc, 40 * 1024);
        assert_eq!(r.blocks_per_sm, 2);
        assert_eq!(r.limiter, ResidencyLimiter::SharedMemory);
    }

    #[test]
    fn few_warps_expose_latency() {
        let spec = DeviceSpec::v100();
        // One block on one SM, one warp: latency cannot be hidden.
        let lc = launch(1, 32);
        let blocks = uniform_blocks(1, 1, 100.0, 4000.0);
        let t = kernel_time(&spec, &lc, 0, &blocks);
        assert!(t.cycles >= 4100.0, "cycles = {}", t.cycles);
        assert!(t.exposed_latency_fraction > 0.9);
    }

    #[test]
    fn many_warps_hide_latency() {
        let spec = DeviceSpec::v100();
        // 80 SMs * 8 resident blocks (warp-limited) of 8 warps each,
        // issue-dominated.
        let n_blocks = 80 * 8;
        let lc = launch(n_blocks as u32, 256);
        let blocks = uniform_blocks(n_blocks, 8, 100.0, 400.0);
        let t = kernel_time(&spec, &lc, 0, &blocks);
        // Each SM: one wave, 8 blocks * 8 warps * 100 cycles issue
        // = 6400 >> 500 max latency path.
        assert!(t.exposed_latency_fraction < 0.25);
        assert_eq!(t.waves, 1);
    }

    #[test]
    fn time_monotone_in_work() {
        let spec = DeviceSpec::v100();
        let lc = launch(160, 256);
        let small = kernel_time(&spec, &lc, 0, &uniform_blocks(160, 8, 100.0, 400.0));
        let big = kernel_time(&spec, &lc, 0, &uniform_blocks(160, 8, 200.0, 800.0));
        assert!(big.cycles > small.cycles);
    }

    #[test]
    fn more_blocks_more_waves() {
        let spec = DeviceSpec::v100();
        let few = kernel_time(
            &spec,
            &launch(80, 256),
            0,
            &uniform_blocks(80, 8, 100.0, 0.0),
        );
        let many_blocks = 80 * 33; // one more than a full wave of 32 per SM
        let many = kernel_time(
            &spec,
            &launch(many_blocks as u32, 256),
            0,
            &uniform_blocks(many_blocks, 8, 100.0, 0.0),
        );
        assert_eq!(few.waves, 1);
        assert!(many.waves >= 2);
        assert!(many.cycles > few.cycles);
    }

    #[test]
    fn same_total_work_fewer_threads_is_slower_when_latency_bound() {
        let spec = DeviceSpec::v100();
        // Total work fixed: W warps' worth of issue+latency.
        // Spread over 1 block/SM-queue vs 80 blocks.
        let spread = kernel_time(
            &spec,
            &launch(80, 256),
            0,
            &uniform_blocks(80, 8, 100.0, 400.0),
        );
        let packed = kernel_time(
            &spec,
            &launch(1, 256),
            0,
            &uniform_blocks(1, 8, 100.0 * 80.0, 400.0 * 80.0),
        );
        assert!(
            packed.cycles > spread.cycles,
            "packed {} <= spread {}",
            packed.cycles,
            spread.cycles
        );
    }

    #[test]
    fn launch_overhead_in_seconds() {
        let spec = DeviceSpec::v100();
        let t = kernel_time(&spec, &launch(1, 32), 0, &uniform_blocks(1, 1, 0.0, 0.0));
        assert!(t.seconds >= spec.costs.kernel_launch_us * 1e-6);
    }
}
