//! Per-warp-step cost accounting.
//!
//! Kernel bodies describe the work of one region execution as a
//! [`CostProfile`]; the engine converts it into issue cycles (occupying the
//! SM's instruction pipeline) and latency cycles (hideable global-memory
//! waits) using the device's [`crate::spec::CostParams`].
//!
//! Costs are charged **warp-wide**: arithmetic costs do not scale with the
//! number of active lanes (SIMD executes the instruction for the whole warp),
//! while memory transaction counts do (coalescing over active lanes only).

use crate::coalesce::{self, AccessPattern};
use crate::spec::CostParams;

/// Work performed by one warp executing one region step.
///
/// Arithmetic fields (`flops`, `sfu`) are per-lane instruction counts of the
/// region body — since SIMD issues one instruction for all lanes, they are
/// charged once per warp. Memory is described as access events so the
/// coalescing model can convert them to transactions based on the active
/// lane count.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostProfile {
    /// FP instructions in the region body (per lane; charged warp-wide).
    pub flops: f64,
    /// Special-function instructions (exp/log/sqrt/div; per lane).
    pub sfu: f64,
    /// Warp-wide shared-memory accesses (already warp-aggregated).
    pub shared_ops: f64,
    /// Block barriers executed.
    pub barriers: f64,
    /// Warp-wide atomic operations.
    pub atomics: f64,
    /// Total 128-byte global transactions (use the `global_*` builders).
    pub global_txns: f64,
    /// Dependent global-memory round trips (latency periods exposed when
    /// too few warps are resident to hide them).
    pub mem_rounds: f64,
}

impl CostProfile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-lane floating-point instruction count.
    pub fn flops(mut self, n: f64) -> Self {
        self.flops += n;
        self
    }

    /// Per-lane special-function instruction count.
    pub fn sfu(mut self, n: f64) -> Self {
        self.sfu += n;
        self
    }

    /// Warp-wide shared memory accesses.
    pub fn shared_ops(mut self, n: f64) -> Self {
        self.shared_ops += n;
        self
    }

    pub fn barriers(mut self, n: f64) -> Self {
        self.barriers += n;
        self
    }

    pub fn atomics(mut self, n: f64) -> Self {
        self.atomics += n;
        self
    }

    /// A warp-wide global read: each of `lanes` active lanes reads
    /// `bytes_per_lane` bytes in `pattern`. Adds one dependent latency round.
    pub fn global_read(mut self, lanes: u32, bytes_per_lane: u32, pattern: AccessPattern) -> Self {
        self.global_txns += coalesce::transactions(lanes, bytes_per_lane, pattern) as f64;
        if lanes > 0 && bytes_per_lane > 0 {
            self.mem_rounds += 1.0;
        }
        self
    }

    /// A warp-wide global write (writes are fire-and-forget: they cost
    /// bandwidth but add no dependent latency round).
    pub fn global_write(mut self, lanes: u32, bytes_per_lane: u32, pattern: AccessPattern) -> Self {
        self.global_txns += coalesce::transactions(lanes, bytes_per_lane, pattern) as f64;
        self
    }

    /// Component-wise sum (used when a warp serializes both execution paths).
    pub fn add(&self, other: &CostProfile) -> CostProfile {
        CostProfile {
            flops: self.flops + other.flops,
            sfu: self.sfu + other.sfu,
            shared_ops: self.shared_ops + other.shared_ops,
            barriers: self.barriers + other.barriers,
            atomics: self.atomics + other.atomics,
            global_txns: self.global_txns + other.global_txns,
            mem_rounds: self.mem_rounds + other.mem_rounds,
        }
    }

    /// Scale all components (e.g. a body executed `k` times per step).
    pub fn scale(&self, k: f64) -> CostProfile {
        CostProfile {
            flops: self.flops * k,
            sfu: self.sfu * k,
            shared_ops: self.shared_ops * k,
            barriers: self.barriers * k,
            atomics: self.atomics * k,
            global_txns: self.global_txns * k,
            mem_rounds: self.mem_rounds * k,
        }
    }

    /// Issue cycles: time this warp occupies its SM's pipelines.
    pub fn issue_cycles(&self, p: &CostParams) -> f64 {
        self.flops * p.flop_cycles
            + self.sfu * p.sfu_cycles
            + self.shared_ops * p.shared_cycles
            + self.barriers * p.barrier_cycles
            + self.atomics * p.atomic_cycles
            + self.global_txns * p.global_txn_cycles
    }

    /// Latency cycles: dependent memory waits, hideable by other warps.
    pub fn latency_cycles(&self, p: &CostParams) -> f64 {
        self.mem_rounds * p.global_latency_cycles
    }

    pub fn is_zero(&self) -> bool {
        *self == CostProfile::default()
    }

    /// Resolve this profile against a device's cost parameters once, so the
    /// result can be charged repeatedly without re-deriving the cycle sums.
    ///
    /// `charge_precomposed` with the result adds bit-identical values to what
    /// [`crate::engine::BlockAccumulator::charge`] would compute from the
    /// profile itself: `issue_cycles`/`latency_cycles` are deterministic pure
    /// functions of (profile, params), evaluated here exactly once.
    pub fn precompose(&self, p: &CostParams) -> PrecomposedCost {
        PrecomposedCost {
            issue: self.issue_cycles(p),
            latency: self.latency_cycles(p),
            global_txns: self.global_txns,
        }
    }
}

/// A [`CostProfile`] already folded through a device's [`CostParams`]:
/// the per-charge work is two f64 adds per accumulator field instead of a
/// seven-term dot product. Produced by [`CostProfile::precompose`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrecomposedCost {
    /// Issue cycles this cost occupies on the SM pipelines.
    pub issue: f64,
    /// Dependent (hideable) memory latency cycles.
    pub latency: f64,
    /// Total 128-byte global transactions (kept for the stats counters).
    pub global_txns: f64,
}

/// Accumulated cycles for one warp over a whole kernel.
#[derive(Debug, Clone, Copy, Default)]
pub struct WarpCycles {
    pub issue: f64,
    pub latency: f64,
}

impl WarpCycles {
    pub fn charge(&mut self, profile: &CostProfile, params: &CostParams) {
        self.issue += profile.issue_cycles(params);
        self.latency += profile.latency_cycles(params);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DeviceSpec;

    fn params() -> CostParams {
        DeviceSpec::v100().costs
    }

    #[test]
    fn builder_accumulates() {
        let c =
            CostProfile::new()
                .flops(10.0)
                .sfu(2.0)
                .global_read(32, 8, AccessPattern::Coalesced);
        assert_eq!(c.flops, 10.0);
        assert_eq!(c.sfu, 2.0);
        assert_eq!(c.global_txns, 2.0);
        assert_eq!(c.mem_rounds, 1.0);
    }

    #[test]
    fn writes_add_no_latency_round() {
        let c = CostProfile::new().global_write(32, 8, AccessPattern::Coalesced);
        assert_eq!(c.mem_rounds, 0.0);
        assert!(c.global_txns > 0.0);
    }

    #[test]
    fn issue_cycles_linear_in_flops() {
        let p = params();
        let a = CostProfile::new().flops(100.0).issue_cycles(&p);
        let b = CostProfile::new().flops(200.0).issue_cycles(&p);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    fn add_is_componentwise() {
        let a = CostProfile::new().flops(1.0).barriers(1.0);
        let b = CostProfile::new().flops(2.0).atomics(3.0);
        let s = a.add(&b);
        assert_eq!(s.flops, 3.0);
        assert_eq!(s.barriers, 1.0);
        assert_eq!(s.atomics, 3.0);
    }

    #[test]
    fn scale_scales_everything() {
        let c = CostProfile::new()
            .flops(2.0)
            .global_read(32, 4, AccessPattern::Coalesced)
            .scale(3.0);
        assert_eq!(c.flops, 6.0);
        assert_eq!(c.global_txns, 3.0);
        assert_eq!(c.mem_rounds, 3.0);
    }

    #[test]
    fn warp_cycles_accumulate() {
        let p = params();
        let mut w = WarpCycles::default();
        let c = CostProfile::new()
            .flops(10.0)
            .global_read(32, 8, AccessPattern::Coalesced);
        w.charge(&c, &p);
        w.charge(&c, &p);
        assert!((w.issue - 2.0 * c.issue_cycles(&p)).abs() < 1e-9);
        assert!((w.latency - 2.0 * p.global_latency_cycles).abs() < 1e-9);
    }

    #[test]
    fn is_zero_detects_empty() {
        assert!(CostProfile::new().is_zero());
        assert!(!CostProfile::new().flops(1.0).is_zero());
    }
}
