//! Launch geometry: grid/block dimensions and grid-stride item assignment.
//!
//! HPAC-Offload explores the interaction between parallelism and
//! approximation through the `num_teams` clause: assigning more loop
//! iterations ("items") to each thread increases approximation potential but
//! reduces the parallelism available for latency hiding (paper §4, Fig 8c).
//! [`LaunchConfig::for_items_per_thread`] is that knob.

use crate::spec::DeviceSpec;

/// How loop items map onto threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Schedule {
    /// The canonical grid-stride loop: thread `tid` executes items
    /// `tid, tid + T, tid + 2T, ...` for total thread count `T` — what
    /// `#pragma omp target teams distribute parallel for` lowers to.
    #[default]
    GridStride,
    /// Each block owns a contiguous range of `ceil(n_items / n_blocks)`
    /// items and strides through it with its own threads. This is the
    /// Rodinia block-per-task pattern (e.g. Leukocyte's one block per cell
    /// iterating an in-kernel solver); dependencies between steps are legal
    /// *within* a block but not across blocks.
    BlockLocal,
}

/// A 1-D kernel launch configuration over `n_items` loop items.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Loop trip count distributed over the grid.
    pub n_items: usize,
    /// Threads per block.
    pub block_size: u32,
    /// Number of blocks (OpenMP teams).
    pub n_blocks: u32,
    /// Item-to-thread mapping.
    pub schedule: Schedule,
}

impl LaunchConfig {
    /// A launch where every item gets its own thread (maximum parallelism).
    pub fn one_item_per_thread(n_items: usize, block_size: u32) -> Self {
        Self::for_items_per_thread(n_items, block_size, 1)
    }

    /// A launch sized so each thread processes about `items_per_thread`
    /// consecutive grid-stride steps. This is the paper's
    /// `num_teams`-derived "Items per Thread" design-space parameter.
    pub fn for_items_per_thread(n_items: usize, block_size: u32, items_per_thread: usize) -> Self {
        assert!(n_items > 0, "empty launch");
        assert!(block_size > 0, "zero block size");
        assert!(items_per_thread > 0, "zero items per thread");
        let threads = n_items.div_ceil(items_per_thread);
        let n_blocks = threads.div_ceil(block_size as usize).max(1) as u32;
        LaunchConfig {
            n_items,
            block_size,
            n_blocks,
            schedule: Schedule::GridStride,
        }
    }

    /// A block-local launch: `n_blocks` blocks each own a contiguous slice
    /// of the item space (see [`Schedule::BlockLocal`]).
    pub fn block_local(n_items: usize, block_size: u32, n_blocks: u32) -> Self {
        assert!(n_items > 0, "empty launch");
        assert!(block_size > 0 && n_blocks > 0, "empty grid");
        LaunchConfig {
            n_items,
            block_size,
            n_blocks,
            schedule: Schedule::BlockLocal,
        }
    }

    /// Total threads in the grid.
    pub fn total_threads(&self) -> usize {
        self.n_blocks as usize * self.block_size as usize
    }

    /// Number of stride steps: the maximum number of items any thread
    /// executes.
    pub fn steps(&self) -> usize {
        match self.schedule {
            Schedule::GridStride => self.n_items.div_ceil(self.total_threads()),
            Schedule::BlockLocal => self.items_per_block().div_ceil(self.block_size as usize),
        }
    }

    /// Items owned by each block under [`Schedule::BlockLocal`].
    pub fn items_per_block(&self) -> usize {
        self.n_items.div_ceil(self.n_blocks as usize)
    }

    /// Warps per block for the given device.
    pub fn warps_per_block(&self, spec: &DeviceSpec) -> u32 {
        self.block_size.div_ceil(spec.warp_size)
    }

    /// Global thread id for (block, warp, lane).
    pub fn tid(&self, spec: &DeviceSpec, block: u32, warp: u32, lane: u32) -> usize {
        self.block_size as usize * block as usize + (warp * spec.warp_size + lane) as usize
    }

    /// The item executed by (block, warp, lane) at stride `step`, or `None`
    /// if that lane is inactive (past the end of the iteration space or
    /// beyond `block_size`).
    pub fn item_for(
        &self,
        spec: &DeviceSpec,
        block: u32,
        warp: u32,
        lane: u32,
        step: usize,
    ) -> Option<usize> {
        let t_in_block = warp * spec.warp_size + lane;
        if t_in_block >= self.block_size {
            return None;
        }
        match self.schedule {
            Schedule::GridStride => {
                let tid = self.tid(spec, block, warp, lane);
                let item = tid + step * self.total_threads();
                (item < self.n_items).then_some(item)
            }
            Schedule::BlockLocal => {
                let ipb = self.items_per_block();
                let local = t_in_block as usize + step * self.block_size as usize;
                if local >= ipb {
                    return None;
                }
                let item = block as usize * ipb + local;
                (item < self.n_items).then_some(item)
            }
        }
    }

    /// Validate against device limits.
    pub fn validate(&self, spec: &DeviceSpec) -> Result<(), String> {
        if self.block_size > spec.max_threads_per_block {
            return Err(format!(
                "block size {} exceeds device limit {}",
                self.block_size, spec.max_threads_per_block
            ));
        }
        if self.n_blocks == 0 {
            return Err("zero blocks".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100() -> DeviceSpec {
        DeviceSpec::v100()
    }

    #[test]
    fn ipt_launch_math() {
        let lc = LaunchConfig::for_items_per_thread(10_000, 256, 8);
        // ceil(10000/8) = 1250 threads -> ceil(1250/256) = 5 blocks
        assert_eq!(lc.n_blocks, 5);
        assert_eq!(lc.total_threads(), 1280);
        assert_eq!(lc.steps(), 8); // ceil(10000/1280)
    }

    #[test]
    fn one_item_per_thread_has_one_step() {
        let lc = LaunchConfig::one_item_per_thread(4096, 128);
        assert_eq!(lc.steps(), 1);
        assert_eq!(lc.n_blocks, 32);
    }

    #[test]
    fn grid_stride_partitions_items_exactly() {
        let spec = v100();
        let lc = LaunchConfig::for_items_per_thread(1000, 64, 4);
        let mut seen = vec![false; lc.n_items];
        for b in 0..lc.n_blocks {
            for w in 0..lc.warps_per_block(&spec) {
                for l in 0..spec.warp_size {
                    for s in 0..lc.steps() {
                        if let Some(i) = lc.item_for(&spec, b, w, l, s) {
                            assert!(!seen[i], "item {i} executed twice");
                            seen[i] = true;
                        }
                    }
                }
            }
        }
        assert!(seen.iter().all(|&x| x), "some items never executed");
    }

    #[test]
    fn lanes_beyond_block_size_inactive() {
        let spec = v100();
        // block_size 48 -> warp 1 has lanes 16..31 inactive
        let lc = LaunchConfig {
            n_items: 96,
            block_size: 48,
            n_blocks: 2,
            schedule: Schedule::GridStride,
        };
        assert_eq!(lc.item_for(&spec, 0, 1, 15, 0), Some(47));
        assert_eq!(lc.item_for(&spec, 0, 1, 16, 0), None);
    }

    #[test]
    fn validate_rejects_oversized_block() {
        let spec = v100();
        let lc = LaunchConfig {
            n_items: 10,
            block_size: 2048,
            n_blocks: 1,
            schedule: Schedule::GridStride,
        };
        assert!(lc.validate(&spec).is_err());
    }

    #[test]
    fn more_items_per_thread_means_fewer_blocks() {
        let a = LaunchConfig::for_items_per_thread(1 << 20, 256, 1);
        let b = LaunchConfig::for_items_per_thread(1 << 20, 256, 64);
        assert!(b.n_blocks < a.n_blocks);
        assert!(b.steps() > a.steps());
    }
}
