//! Device specifications and per-operation cost parameters.
//!
//! Two presets mirror the paper's evaluation platforms: an NVIDIA V100
//! ([`DeviceSpec::v100`]) and an AMD Instinct MI250X ([`DeviceSpec::mi250x`]).
//! The numbers are public datasheet values where available; the cycle costs
//! are order-of-magnitude calibrations chosen so that aggregate quantities
//! (arithmetic throughput, memory bandwidth, memory latency) land near the
//! published figures for each device.

/// GPU vendor, used where the paper distinguishes platform behaviour
/// (e.g. only the AMD platform supports 64 iACT tables per warp).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vendor {
    Nvidia,
    Amd,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Vendor::Nvidia => write!(f, "NVIDIA"),
            Vendor::Amd => write!(f, "AMD"),
        }
    }
}

/// Cycle costs for each operation class the engine charges.
///
/// All costs are **per warp instruction**: a warp-wide FLOP costs
/// `flop_cycles` regardless of how many lanes are active, which is exactly
/// what makes divergence expensive — a warp with one accurate lane still pays
/// the full accurate path.
#[derive(Debug, Clone, Copy)]
pub struct CostParams {
    /// Issue cycles for one warp-wide floating-point instruction.
    pub flop_cycles: f64,
    /// Issue cycles for one warp-wide special-function op (exp, log, sqrt, ...).
    pub sfu_cycles: f64,
    /// Issue cycles for one warp-wide shared-memory access (conflict-free).
    pub shared_cycles: f64,
    /// Issue (throughput) cycles per 128-byte global-memory transaction.
    /// This encodes DRAM bandwidth: `sm_count * 128 B / (txn_cycles / clock)`
    /// approximates the device bandwidth.
    pub global_txn_cycles: f64,
    /// Latency of a dependent global-memory round trip, hideable by
    /// switching to other resident warps.
    pub global_latency_cycles: f64,
    /// Cycles for a block-wide barrier (`__syncthreads` analogue).
    pub barrier_cycles: f64,
    /// Cycles for one warp-wide atomic operation on shared memory.
    pub atomic_cycles: f64,
    /// Fixed per-block scheduling overhead in cycles.
    pub block_overhead_cycles: f64,
    /// Core clock in GHz, to convert cycles into seconds.
    pub clock_ghz: f64,
    /// Host<->device bandwidth in GB/s for the transfer model.
    pub xfer_bandwidth_gbs: f64,
    /// Fixed per-transfer latency in microseconds.
    pub xfer_latency_us: f64,
    /// Fixed kernel launch overhead in microseconds.
    pub kernel_launch_us: f64,
}

/// A GPU device description: geometry limits plus cost parameters.
#[derive(Debug, Clone, Copy)]
pub struct DeviceSpec {
    pub name: &'static str,
    pub vendor: Vendor,
    /// Number of streaming multiprocessors (NVIDIA SMs / AMD CUs).
    pub sm_count: u32,
    /// SIMD width: threads per warp (NVIDIA) / wavefront (AMD).
    pub warp_size: u32,
    /// Maximum threads per block.
    pub max_threads_per_block: u32,
    /// Maximum warps resident on one SM.
    pub max_warps_per_sm: u32,
    /// Maximum blocks resident on one SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory available to one block, in bytes.
    pub shared_mem_per_block: usize,
    /// Total shared memory per SM, in bytes (limits block residency).
    pub shared_mem_per_sm: usize,
    /// Global (device) memory capacity in bytes.
    pub global_mem_bytes: u64,
    pub costs: CostParams,
}

impl DeviceSpec {
    /// NVIDIA Tesla V100 (16 GB), as in the paper's IBM Power9 platform.
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100",
            vendor: Vendor::Nvidia,
            sm_count: 80,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_warps_per_sm: 64,
            max_blocks_per_sm: 32,
            shared_mem_per_block: 48 * 1024,
            shared_mem_per_sm: 96 * 1024,
            global_mem_bytes: 16 * 1024 * 1024 * 1024,
            costs: CostParams {
                flop_cycles: 1.0,
                sfu_cycles: 4.0,
                shared_cycles: 2.0,
                // 80 SMs * 128 B / (16 cyc / 1.38 GHz) ~= 880 GB/s (HBM2).
                global_txn_cycles: 16.0,
                global_latency_cycles: 400.0,
                barrier_cycles: 12.0,
                atomic_cycles: 20.0,
                block_overhead_cycles: 200.0,
                clock_ghz: 1.38,
                xfer_bandwidth_gbs: 40.0, // NVLink2 to Power9
                xfer_latency_us: 10.0,
                kernel_launch_us: 5.0,
            },
        }
    }

    /// AMD Instinct MI250X (both GCDs, 220 CUs), as in the paper's
    /// AMD Epyc platform.
    pub fn mi250x() -> Self {
        DeviceSpec {
            name: "MI250X",
            vendor: Vendor::Amd,
            sm_count: 220,
            warp_size: 64,
            max_threads_per_block: 1024,
            max_warps_per_sm: 32,
            max_blocks_per_sm: 32,
            shared_mem_per_block: 64 * 1024,
            shared_mem_per_sm: 64 * 1024,
            global_mem_bytes: 128 * 1024 * 1024 * 1024,
            costs: CostParams {
                flop_cycles: 1.0,
                sfu_cycles: 6.0,
                shared_cycles: 2.0,
                // 220 CUs * 128 B / (15 cyc / 1.7 GHz) ~= 3.2 TB/s (HBM2e).
                global_txn_cycles: 15.0,
                global_latency_cycles: 500.0,
                barrier_cycles: 14.0,
                atomic_cycles: 24.0,
                block_overhead_cycles: 220.0,
                clock_ghz: 1.7,
                xfer_bandwidth_gbs: 50.0, // Infinity Fabric to Epyc
                xfer_latency_us: 10.0,
                kernel_launch_us: 6.0,
            },
        }
    }

    /// Both evaluation platforms, NVIDIA first (paper figure order).
    pub fn evaluation_platforms() -> [DeviceSpec; 2] {
        [DeviceSpec::v100(), DeviceSpec::mi250x()]
    }

    /// Effective memory bandwidth implied by the cost parameters, in GB/s.
    /// Exposed so tests can check the calibration stays near datasheet values.
    pub fn implied_bandwidth_gbs(&self) -> f64 {
        let txn_time_s = self.costs.global_txn_cycles / (self.costs.clock_ghz * 1e9);
        self.sm_count as f64 * 128.0 / txn_time_s / 1e9
    }

    /// Convert device cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.costs.clock_ghz * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_geometry_matches_datasheet() {
        let d = DeviceSpec::v100();
        assert_eq!(d.sm_count, 80);
        assert_eq!(d.warp_size, 32);
        assert_eq!(d.global_mem_bytes, 16 << 30);
        assert_eq!(d.vendor, Vendor::Nvidia);
    }

    #[test]
    fn mi250x_geometry_matches_datasheet() {
        let d = DeviceSpec::mi250x();
        assert_eq!(d.sm_count, 220);
        assert_eq!(d.warp_size, 64);
        assert_eq!(d.vendor, Vendor::Amd);
    }

    #[test]
    fn v100_bandwidth_near_900_gbs() {
        let bw = DeviceSpec::v100().implied_bandwidth_gbs();
        assert!((700.0..1100.0).contains(&bw), "bw = {bw}");
    }

    #[test]
    fn mi250x_bandwidth_near_3200_gbs() {
        let bw = DeviceSpec::mi250x().implied_bandwidth_gbs();
        assert!((2500.0..4000.0).contains(&bw), "bw = {bw}");
    }

    #[test]
    fn amd_has_more_sms_than_nvidia() {
        // The paper's Fig 8c explanation relies on this ordering.
        assert!(DeviceSpec::mi250x().sm_count > DeviceSpec::v100().sm_count);
    }

    #[test]
    fn cycles_to_seconds_roundtrip() {
        let d = DeviceSpec::v100();
        let s = d.cycles_to_seconds(1.38e9);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_vendor() {
        assert_eq!(Vendor::Nvidia.to_string(), "NVIDIA");
        assert_eq!(Vendor::Amd.to_string(), "AMD");
    }
}
