//! Warp-level collective primitives: ballot, popcount, and majority voting.
//!
//! HPAC-Offload's hierarchical decision-making is built on these intrinsics
//! (§3.3): "For warp-level decision-making, the ballot intrinsic identifies
//! threads that will approximate; popcount counts these threads." Warps here
//! support up to 64 lanes (AMD wavefronts), so ballots are `u64` masks.

/// Build a ballot mask from per-lane predicate votes.
///
/// `votes[i]` is lane `i`'s predicate; lanes beyond `votes.len()` are
/// inactive and contribute 0, exactly like inactive lanes in a hardware
/// ballot.
pub fn lane_mask_ballot(votes: &[bool]) -> u64 {
    assert!(votes.len() <= 64, "warp wider than 64 lanes");
    votes
        .iter()
        .enumerate()
        .fold(0u64, |m, (i, &v)| if v { m | (1u64 << i) } else { m })
}

/// Population count of a ballot mask (the `__popc` intrinsic).
pub fn popcount(mask: u64) -> u32 {
    mask.count_ones()
}

/// Result of a warp-wide collective vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpVote {
    /// Ballot mask of lanes voting "yes".
    pub mask: u64,
    /// Number of active lanes that participated.
    pub active: u32,
    /// Number of "yes" votes.
    pub yes: u32,
}

impl WarpVote {
    /// Collect a vote over the active lanes' predicates.
    pub fn collect(votes: &[bool]) -> Self {
        let mask = lane_mask_ballot(votes);
        WarpVote {
            mask,
            active: votes.len() as u32,
            yes: popcount(mask),
        }
    }

    /// Majority-rules outcome (strict majority, as in the paper's
    /// "majority-rules" scheme: the group approximates if *most* of its
    /// threads meet the activation criteria).
    pub fn majority(&self) -> bool {
        2 * self.yes > self.active
    }

    /// All lanes voted yes.
    pub fn unanimous(&self) -> bool {
        self.active > 0 && self.yes == self.active
    }

    /// Any lane voted yes.
    pub fn any(&self) -> bool {
        self.yes > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ballot_sets_expected_bits() {
        let m = lane_mask_ballot(&[true, false, true, true]);
        assert_eq!(m, 0b1101);
    }

    #[test]
    fn ballot_empty_is_zero() {
        assert_eq!(lane_mask_ballot(&[]), 0);
    }

    #[test]
    fn ballot_supports_64_lanes() {
        let votes = vec![true; 64];
        assert_eq!(lane_mask_ballot(&votes), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "warp wider than 64")]
    fn ballot_rejects_wider_warps() {
        let votes = vec![true; 65];
        lane_mask_ballot(&votes);
    }

    #[test]
    fn popcount_counts() {
        assert_eq!(popcount(0), 0);
        assert_eq!(popcount(0b1011), 3);
        assert_eq!(popcount(u64::MAX), 64);
    }

    #[test]
    fn majority_is_strict() {
        // 16 of 32 is NOT a majority
        let half = WarpVote {
            mask: 0,
            active: 32,
            yes: 16,
        };
        assert!(!half.majority());
        let over = WarpVote {
            mask: 0,
            active: 32,
            yes: 17,
        };
        assert!(over.majority());
    }

    #[test]
    fn collect_vote_counts() {
        let v = WarpVote::collect(&[true, true, false, true]);
        assert_eq!(v.active, 4);
        assert_eq!(v.yes, 3);
        assert!(v.majority());
        assert!(!v.unanimous());
        assert!(v.any());
    }

    #[test]
    fn unanimous_requires_participants() {
        let v = WarpVote::collect(&[]);
        assert!(!v.unanimous());
        assert!(!v.any());
    }
}
