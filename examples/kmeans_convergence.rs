//! K-Means: speedup comes from early convergence (the paper's Fig 12c).
//!
//! Approximating the distance kernel "herds" observations into staying in
//! their clusters, so the convergence criterion (few membership changes)
//! fires earlier. Time speedup tracks convergence speedup almost exactly
//! because the per-iteration host round trip dominates runtime.
//!
//! Run with: `cargo run --release --example kmeans_convergence`

use gpu_sim::DeviceSpec;
use hpac_offload::apps::common::{Benchmark, LaunchParams};
use hpac_offload::apps::kmeans::KMeans;
use hpac_offload::core::ApproxRegion;
use hpac_offload::harness::analyze::linear_fit;

fn main() {
    let spec = DeviceSpec::mi250x();
    let bench = KMeans::default();
    let lp = LaunchParams::new(8, 256);
    let accurate = bench.run(&spec, None, &lp).unwrap();
    let base_iters = accurate.iterations.unwrap();
    let base_s = accurate.end_to_end_seconds();
    println!(
        "K-Means: {} points, {} clusters on {}: accurate converges in {} iterations\n",
        bench.n_points, bench.k, spec.name, base_iters
    );
    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>8}",
        "TAF config", "iters", "conv spdup", "time spdup", "MCR %"
    );

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (h, p, t) in [
        (1usize, 16usize, 0.9),
        (1, 64, 0.9),
        (2, 8, 0.9),
        (2, 64, 1.5),
        (3, 32, 0.9),
        (5, 4, 0.3),
        (5, 512, 1.5),
    ] {
        for ipt in [8usize, 64] {
            let region = ApproxRegion::memo_out(h, p, t);
            let res = bench
                .run(&spec, Some(&region), &LaunchParams::new(ipt, 256))
                .unwrap();
            let iters = res.iterations.unwrap();
            let conv = base_iters as f64 / iters as f64;
            let time = base_s / res.end_to_end_seconds();
            let mcr = res.qoi.error_vs(&accurate.qoi) * 100.0;
            xs.push(conv);
            ys.push(time);
            println!(
                "{:<28} {:>6} {:>11.2}x {:>11.2}x {:>8.2}",
                format!("h={h} p={p} t={t} ipt={ipt}"),
                iters,
                conv,
                time,
                mcr
            );
        }
    }
    let (slope, intercept, r2) = linear_fit(&xs, &ys);
    println!(
        "\ntime_speedup ≈ {slope:.2}·conv_speedup + {intercept:.2}, R² = {r2:.3} (paper: 0.95)"
    );
}
