//! Autotuning quickstart: submit a typed request to the tuning service for
//! the fastest Blackscholes configuration with at most 5% error on a V100,
//! inspect the Pareto frontier it discovered, re-execute the plan, and
//! watch a repeat request hit the persistent cache and a neighboring bound
//! warm-start from it.
//!
//! Run with: `cargo run --release --example autotune`

use gpu_sim::DeviceSpec;
use hpac_offload::apps::blackscholes::Blackscholes;
use hpac_offload::service::{TuneRequest, TuningService};
use hpac_offload::tuner::{QualityBound, TuningCache};

fn main() {
    let bench = Blackscholes::default();
    let device = DeviceSpec::v100();
    let service = TuningService::new().with_cache(TuningCache::new(TuningCache::default_dir()));
    let bound = QualityBound::percent(5.0);

    // First request: adaptive search over the Table 2 grids (or a cache
    // hit, if you have run this example before — delete the cache dir to
    // watch the search again).
    let resp = service.submit(TuneRequest::new(&bench, &device, bound));
    let plan = &resp.plan;
    println!(
        "tuned {} on {}: {} [{}] -> {:.2}x speedup at {:.3}% error",
        plan.benchmark,
        plan.device,
        plan.technique,
        plan.config,
        plan.predicted_speedup,
        plan.measured_error_pct,
    );
    println!(
        "source: {:?}, {} fresh evaluations of {} configurations, {:.2} ms in submit",
        resp.source,
        resp.evals_spent,
        plan.full_space,
        resp.wall_ns as f64 / 1e6,
    );

    println!("\nPareto frontier (error% -> speedup):");
    for p in plan.frontier.points() {
        println!(
            "  {:>8.3}% -> {:>5.2}x  {} [{}]",
            p.error_pct, p.speedup, p.technique, p.config
        );
    }

    // The plan re-executes through the apps layer.
    let report = plan.execute(&bench, &device).expect("plan executes");
    println!(
        "\nre-executed: {:.2}x speedup at {:.3}% error ({:.3} ms end-to-end)",
        report.speedup,
        report.error_pct,
        report.end_to_end_seconds * 1e3,
    );

    // Second request: served from the persistent cache, zero evaluations.
    let warm = service.submit(TuneRequest::new(&bench, &device, bound));
    println!(
        "\nsecond request: source {:?}, {} evaluations (config {})",
        warm.source, warm.evals_spent, warm.plan.config
    );

    // A different bound on the same (benchmark, device) warm-starts from
    // the cached frontier instead of searching cold.
    let neighbor = service.submit(TuneRequest::new(
        &bench,
        &device,
        QualityBound::percent(2.0),
    ));
    println!(
        "2% bound: source {:?}, {} evaluations -> {:.2}x at {:.3}% error",
        neighbor.source,
        neighbor.evals_spent,
        neighbor.plan.predicted_speedup,
        neighbor.plan.measured_error_pct,
    );
}
