//! Autotuning quickstart: ask the tuner for the fastest Blackscholes
//! configuration with at most 5% error on a V100, inspect the Pareto
//! frontier it discovered, re-execute the plan, and watch the second
//! request hit the persistent cache.
//!
//! Run with: `cargo run --release --example autotune`

use gpu_sim::DeviceSpec;
use hpac_offload::apps::blackscholes::Blackscholes;
use hpac_offload::tuner::{QualityBound, Tuner, TuningCache};

fn main() {
    let bench = Blackscholes::default();
    let device = DeviceSpec::v100();
    let cache = TuningCache::new(TuningCache::default_dir());
    let tuner = Tuner::new().with_cache(cache);
    let bound = QualityBound::percent(5.0);

    // First request: adaptive search over the Table 2 grids.
    let plan = tuner.tune(&bench, &device, bound);
    println!(
        "tuned {} on {}: {} [{}] -> {:.2}x speedup at {:.3}% error",
        plan.benchmark,
        plan.device,
        plan.technique,
        plan.config,
        plan.predicted_speedup,
        plan.measured_error_pct,
    );
    println!(
        "evaluated {} of {} configurations ({:.1}% of the full sweep), source: {}",
        plan.evaluations,
        plan.full_space,
        plan.budget_fraction_used() * 100.0,
        if plan.from_cache { "cache" } else { "search" },
    );

    println!("\nPareto frontier (error% -> speedup):");
    for p in plan.frontier.points() {
        println!(
            "  {:>8.3}% -> {:>5.2}x  {} [{}]",
            p.error_pct, p.speedup, p.technique, p.config
        );
    }

    // The plan re-executes through the apps layer.
    let report = plan.execute(&bench, &device).expect("plan executes");
    println!(
        "\nre-executed: {:.2}x speedup at {:.3}% error ({:.3} ms end-to-end)",
        report.speedup,
        report.error_pct,
        report.end_to_end_seconds * 1e3,
    );

    // Second request: served from the persistent cache.
    let warm = tuner.tune(&bench, &device, bound);
    println!(
        "\nsecond request served from cache: {} (config {})",
        warm.from_cache, warm.config
    );
}
