//! Quickstart: approximate an expensive function with TAF on a simulated
//! GPU and compare speed and quality against the accurate run.
//!
//! Run with: `cargo run --release --example quickstart`

use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, LaunchConfig};
use hpac_offload::core::exec::{approx_parallel_for, RegionBody};
use hpac_offload::core::metrics::mape;
use hpac_offload::core::ApproxRegion;

/// The "expensive device function" of the paper's Figure 1: here a little
/// iterative kernel (a few Newton steps) over a slowly varying input.
struct Foo {
    input: Vec<f64>,
    output: Vec<f64>,
}

impl RegionBody for Foo {
    fn out_dim(&self) -> usize {
        1
    }

    fn compute(&self, i: usize, out: &mut [f64]) {
        // Newton iteration for cbrt(x + 2): deliberately compute-heavy.
        let x = self.input[i] + 2.0;
        let mut y = 1.0;
        for _ in 0..16 {
            y = (2.0 * y + x / (y * y)) / 3.0;
        }
        out[0] = y;
    }

    fn store(&mut self, i: usize, out: &[f64]) {
        self.output[i] = out[0];
    }

    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new()
            .flops(16.0 * 6.0)
            .global_read(lanes, 8, AccessPattern::Coalesced)
            .global_write(lanes, 8, AccessPattern::Coalesced)
    }
}

fn main() {
    let spec = DeviceSpec::v100();
    let n = 1 << 18;
    // A plateau-structured signal (realistic dataset redundancy): a
    // thread's successive grid-stride samples mostly repeat, which is the
    // temporal output locality TAF exploits.
    let input: Vec<f64> = (0..n)
        .map(|i| 1.0 + ((i >> 15) as f64) * 0.37 + (i as f64 / 40960.0).sin() * 1e-4)
        .collect();

    // 128 loop items per thread (the paper's num_teams knob): approximation
    // potential needs repeated region executions per thread.
    let launch = LaunchConfig::for_items_per_thread(n, 256, 128);

    // Accurate baseline.
    let mut accurate = Foo {
        input: input.clone(),
        output: vec![0.0; n],
    };
    let base = approx_parallel_for(&spec, &launch, None, &mut accurate).unwrap();

    // #pragma approx memo(out : 3 : 64 : 0.05)
    let region = ApproxRegion::memo_out(3, 16, 0.05);
    let mut approx = Foo {
        input,
        output: vec![0.0; n],
    };
    let rec = approx_parallel_for(&spec, &launch, Some(&region), &mut approx).unwrap();

    let err = mape(&accurate.output, &approx.output) * 100.0;
    println!("device               : {}", spec.name);
    println!("items                : {n}");
    println!(
        "accurate kernel time : {:.3} ms (modeled)",
        base.seconds() * 1e3
    );
    println!(
        "approx   kernel time : {:.3} ms (modeled)",
        rec.seconds() * 1e3
    );
    println!(
        "speedup              : {:.2}x",
        base.seconds() / rec.seconds()
    );
    println!(
        "approximated         : {:.1}% of region executions",
        rec.stats.approx_fraction() * 100.0
    );
    println!("quality loss (MAPE)  : {err:.4}%");
}
