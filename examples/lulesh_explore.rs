//! Explore accuracy/performance trade-offs on the LULESH proxy — a small
//! version of the paper's Figure 7 study: perforation, TAF, and iACT on the
//! Sedov blast's hourglass kernels.
//!
//! Run with: `cargo run --release --example lulesh_explore`

use gpu_sim::DeviceSpec;
use hpac_offload::apps::common::{Benchmark, LaunchParams};
use hpac_offload::apps::lulesh::Lulesh;
use hpac_offload::core::params::PerfoKind;
use hpac_offload::core::ApproxRegion;
use hpac_offload::core::HierarchyLevel;

fn main() {
    let spec = DeviceSpec::v100();
    let bench = Lulesh::default();
    let lp_base = LaunchParams::new(1, 64);
    let accurate = bench.run(&spec, None, &lp_base).unwrap();
    let base_s = accurate.end_to_end_seconds();
    println!(
        "LULESH {}^3 Sedov blast on {}: accurate end-to-end {:.3} ms\n",
        bench.edge,
        spec.name,
        base_s * 1e3
    );
    println!(
        "{:<34} {:>8} {:>10} {:>8}",
        "configuration", "speedup", "error %", "approx%"
    );

    let configs: Vec<(&str, ApproxRegion, usize)> = vec![
        (
            "perfo small:4 (herded)",
            ApproxRegion::perfo(PerfoKind::Small { m: 4 }),
            1,
        ),
        (
            "perfo large:8 (herded)",
            ApproxRegion::perfo(PerfoKind::Large { m: 8 }),
            1,
        ),
        (
            "perfo fini:30%",
            ApproxRegion::perfo(PerfoKind::Fini { fraction: 0.3 }),
            1,
        ),
        (
            "perfo ini:30%",
            ApproxRegion::perfo(PerfoKind::Ini { fraction: 0.3 }),
            1,
        ),
        ("TAF h=2 p=32 t=0.9", ApproxRegion::memo_out(2, 32, 0.9), 8),
        (
            "TAF h=5 p=512 t=1.5",
            ApproxRegion::memo_out(5, 512, 1.5),
            8,
        ),
        (
            "TAF h=2 p=32 t=0.9 level(warp)",
            ApproxRegion::memo_out(2, 32, 0.9).level(HierarchyLevel::Warp),
            8,
        ),
        (
            "iACT ts=4 t=0.5 tpw=16",
            ApproxRegion::memo_in(4, 0.5).tables_per_warp(16),
            8,
        ),
    ];

    for (name, region, ipt) in configs {
        let lp = LaunchParams::new(ipt, 64);
        match bench.run(&spec, Some(&region), &lp) {
            Ok(res) => {
                let err = res.qoi.error_vs(&accurate.qoi) * 100.0;
                println!(
                    "{:<34} {:>7.2}x {:>10.4} {:>7.1}%",
                    name,
                    base_s / res.end_to_end_seconds(),
                    err,
                    res.stats.approx_fraction() * 100.0
                );
            }
            Err(e) => println!("{name:<34} rejected: {e}"),
        }
    }
    println!(
        "\nNote: fini perforation (dropping trailing elements, far from the\n\
         blast) hurts the origin-energy QoI less than ini (dropping the\n\
         origin region) — the paper's Figure 7 observation."
    );
}
