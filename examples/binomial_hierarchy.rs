//! Block-level decision-making and the parallelism-vs-approximation
//! tradeoff on Binomial Options (the paper's Fig 8 study).
//!
//! One thread block cooperatively prices one option, so approximation
//! decisions are block-scoped. Assigning more options to each block raises
//! the approximation potential (TAF state warms up and stays warm) but
//! starves the GPU of blocks for latency hiding — speedup rises, peaks, and
//! collapses.
//!
//! Run with: `cargo run --release --example binomial_hierarchy`

use gpu_sim::DeviceSpec;
use hpac_offload::apps::binomial::BinomialOptions;
use hpac_offload::apps::common::{Benchmark, LaunchParams};
use hpac_offload::core::{ApproxRegion, HierarchyLevel};

fn main() {
    let bench = BinomialOptions::default();
    println!(
        "Binomial Options: {} American puts, {}-step lattice, one block per option\n",
        bench.n_options, bench.tree_steps
    );

    for spec in DeviceSpec::evaluation_platforms() {
        let baseline = bench.run(&spec, None, &LaunchParams::new(1, 128)).unwrap();
        let base_s = baseline.end_to_end_seconds();
        println!(
            "{} ({} SMs): accurate end-to-end {:.3} ms",
            spec.name,
            spec.sm_count,
            base_s * 1e3
        );
        println!(
            "  {:>16} {:>9} {:>12} {:>10}",
            "options/block", "speedup", "approximated", "error %"
        );
        for opb in [1usize, 4, 16, 64, 256, 1024, 4096] {
            let region = ApproxRegion::memo_out(1, 64, 5.0).level(HierarchyLevel::Block);
            let res = bench
                .run(&spec, Some(&region), &LaunchParams::new(opb, 128))
                .unwrap();
            let err = res.qoi.error_vs(&baseline.qoi) * 100.0;
            println!(
                "  {:>16} {:>8.2}x {:>11.1}% {:>10.2}",
                opb,
                base_s / res.end_to_end_seconds(),
                res.stats.approx_fraction() * 100.0,
                err
            );
        }
        println!();
    }
    println!(
        "Both platforms peak and then collapse once too few blocks remain to\n\
         hide memory latency; the MI250X (more SMs to feed) collapses earlier\n\
         — the paper's Figure 8c."
    );
}
