//! Portability: the same annotated application runs unchanged on both
//! modeled platforms (NVIDIA V100, AMD MI250X), the way HPAC-Offload's
//! OpenMP-offload runtime is portable across vendors.
//!
//! Run with: `cargo run --release --example portability`

use gpu_sim::DeviceSpec;
use hpac_offload::apps::blackscholes::Blackscholes;
use hpac_offload::apps::common::{Benchmark, LaunchParams};
use hpac_offload::core::ApproxRegion;

fn main() {
    let bench = Blackscholes::default();
    println!(
        "Blackscholes: {} European options; TAF h=1 p=512 on the price kernel\n\
         (kernel-only timing, as the paper reports for this benchmark)\n",
        bench.n_options
    );
    println!(
        "{:<10} {:>6} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "device", "warp", "SMs", "base µs", "approx µs", "speedup", "error %"
    );
    for spec in DeviceSpec::evaluation_platforms() {
        // 8 options per thread: the grid (16384 threads) is a multiple of
        // the dataset period, so every thread's output stream is constant —
        // the dataset redundancy TAF exploits.
        let lp = LaunchParams::new(8, 256);
        let accurate = bench.run(&spec, None, &lp).unwrap();
        // The identical pragma works on both platforms; the warp-level vote
        // uses a 32-lane ballot on NVIDIA and a 64-lane one on AMD.
        let region = ApproxRegion::memo_out(1, 512, 20.0);
        let approx = bench.run(&spec, Some(&region), &lp).unwrap();
        println!(
            "{:<10} {:>6} {:>10} {:>12.1} {:>12.1} {:>9.2}x {:>10.4}",
            spec.name,
            spec.warp_size,
            spec.sm_count,
            accurate.kernel_seconds * 1e6,
            approx.kernel_seconds * 1e6,
            accurate.kernel_seconds / approx.kernel_seconds,
            approx.qoi.error_vs(&accurate.qoi) * 100.0,
        );
    }
    println!(
        "\nThe same region annotation produced approximation on both devices;\n\
         only the modeled hardware (SM count, wavefront width, bandwidth)\n\
         changed — the portability HPAC-Offload gets from OpenMP offload.\n\
         The MI250X gains less at this launch shape: its 220 CUs need more\n\
         blocks than the reduced-parallelism launch provides (paper Fig 8c)."
    );
}
