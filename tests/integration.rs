//! Cross-crate integration tests: every benchmark application driven through
//! the HPAC-Offload runtime on both modeled platforms, checking the paper's
//! qualitative results end to end.

use gpu_sim::DeviceSpec;
use hpac_offload::apps::common::{Benchmark, LaunchParams};
use hpac_offload::apps::{
    binomial::BinomialOptions, blackscholes::Blackscholes, kmeans::KMeans, lavamd::LavaMd,
    leukocyte::Leukocyte, lulesh::Lulesh, minife::MiniFe,
};
use hpac_offload::core::params::PerfoKind;
use hpac_offload::core::region::RegionError;
use hpac_offload::core::{ApproxRegion, HierarchyLevel};

fn small_suite() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(Lulesh {
            edge: 8,
            steps: 8,
            dt: 1e-4,
            ..Lulesh::default()
        }),
        Box::new(Leukocyte {
            n_cells: 4,
            grid: 16,
            iterations: 16,
            ..Leukocyte::default()
        }),
        Box::new(BinomialOptions {
            n_options: 256,
            tree_steps: 64,
            ..BinomialOptions::default()
        }),
        Box::new(MiniFe {
            nx: 8,
            max_iters: 30,
            ..MiniFe::default()
        }),
        Box::new(Blackscholes {
            n_options: 2048,
            ..Blackscholes::default()
        }),
        Box::new(LavaMd {
            boxes_per_dim: 3,
            par_per_box: 8,
            ..LavaMd::default()
        }),
        Box::new(KMeans {
            n_points: 1024,
            max_iters: 30,
            ..KMeans::default()
        }),
    ]
}

fn region_for(bench: &dyn Benchmark, technique: &str) -> ApproxRegion {
    let level = if bench.block_level_only() {
        HierarchyLevel::Block
    } else {
        HierarchyLevel::Thread
    };
    match technique {
        "TAF" => ApproxRegion::memo_out(2, 8, 0.0).level(level),
        "iACT" => ApproxRegion::memo_in(4, 0.0).level(level),
        _ => unreachable!(),
    }
}

/// Zero-threshold memoization must be bit-identical to the accurate run for
/// every application: TAF only predicts after an exactly-constant window
/// and repeats that exact value; iACT only returns exact input matches.
#[test]
fn zero_threshold_is_exact_everywhere() {
    let spec = DeviceSpec::v100();
    let lp = LaunchParams::new(8, 128);
    for bench in small_suite() {
        let accurate = bench.run(&spec, None, &lp).unwrap();
        for technique in ["TAF", "iACT"] {
            let region = region_for(bench.as_ref(), technique);
            match bench.run(&spec, Some(&region), &lp) {
                Ok(approx) => {
                    let err = approx.qoi.error_vs(&accurate.qoi);
                    assert!(
                        err < 1e-9,
                        "{} with zero-threshold {technique} drifted: {err}",
                        bench.name()
                    );
                }
                Err(RegionError::Invalid(_)) if bench.name() == "MiniFE" => {
                    // iACT is not applicable to MiniFE (varying CSR rows).
                    assert_eq!(technique, "iACT");
                }
                Err(e) => panic!("{} {technique} failed: {e}", bench.name()),
            }
        }
    }
}

/// Every application runs on both platforms and is deterministic.
#[test]
fn portable_and_deterministic() {
    let lp = LaunchParams::new(8, 128);
    for spec in DeviceSpec::evaluation_platforms() {
        for bench in small_suite() {
            let a = bench.run(&spec, None, &lp).unwrap();
            let b = bench.run(&spec, None, &lp).unwrap();
            assert_eq!(a.qoi, b.qoi, "{} on {}", bench.name(), spec.name);
            assert!(a.end_to_end_seconds() > 0.0);
        }
    }
}

/// TAF amortizes its decision cost while iACT pays a search every
/// invocation: with a generous threshold, TAF's modeled time must not be
/// worse than iACT's on the compute-heavy benchmarks (paper insight 4).
#[test]
fn taf_not_slower_than_iact_on_heavy_kernels() {
    let spec = DeviceSpec::v100();
    let lp = LaunchParams::new(32, 128);
    for bench in small_suite() {
        if matches!(bench.name(), "MiniFE" | "K-Means") {
            continue; // iACT inapplicable / convergence-dominated
        }
        let level = if bench.block_level_only() {
            HierarchyLevel::Block
        } else {
            HierarchyLevel::Thread
        };
        let taf = bench
            .run(
                &spec,
                Some(&ApproxRegion::memo_out(2, 64, 5.0).level(level)),
                &lp,
            )
            .unwrap();
        let iact = bench
            .run(
                &spec,
                Some(
                    &ApproxRegion::memo_in(4, 0.5)
                        .tables_per_warp(16)
                        .level(level),
                ),
                &lp,
            )
            .unwrap();
        assert!(
            taf.kernel_seconds <= iact.kernel_seconds * 1.05,
            "{}: TAF {} vs iACT {}",
            bench.name(),
            taf.kernel_seconds,
            iact.kernel_seconds
        );
    }
}

/// MiniFE error blow-up: approximating SpMV corrupts CG (paper Fig 9c).
#[test]
fn minife_blows_up_under_taf() {
    let spec = DeviceSpec::v100();
    let bench = MiniFe {
        nx: 8,
        max_iters: 40,
        ..MiniFe::default()
    };
    let lp = LaunchParams::new(16, 128);
    let accurate = bench.run(&spec, None, &lp).unwrap();
    let region = ApproxRegion::memo_out(1, 32, 20.0);
    let approx = bench.run(&spec, Some(&region), &lp).unwrap();
    let err = approx.qoi.error_vs(&accurate.qoi);
    assert!(err > 1.0, "expected runaway residual, err = {err}");
}

/// Shared-memory budget enforcement ends oversized configurations at launch
/// on every benchmark that accepts iACT.
#[test]
fn oversized_tables_rejected_everywhere() {
    let spec = DeviceSpec::v100();
    let lp = LaunchParams::new(8, 1024);
    let region = ApproxRegion::memo_in(512, 0.5); // 512-entry private tables
    let mut rejections = 0;
    for bench in small_suite() {
        if let Err(RegionError::Launch(gpu_sim::LaunchError::SharedMemExceeded { .. })) =
            bench.run(&spec, Some(&region), &lp)
        {
            rejections += 1;
        }
    }
    assert!(rejections >= 3, "only {rejections} benchmarks rejected");
}

/// Perforation on LULESH: fini must not hurt the QoI more than ini
/// (paper: early timesteps matter more than late ones).
#[test]
fn lulesh_fini_beats_ini() {
    let spec = DeviceSpec::v100();
    let bench = Lulesh {
        edge: 8,
        steps: 12,
        dt: 1e-4,
        ..Lulesh::default()
    };
    let lp = LaunchParams::new(1, 64);
    let accurate = bench.run(&spec, None, &lp).unwrap();
    let e_ini = bench
        .run(
            &spec,
            Some(&ApproxRegion::perfo(PerfoKind::Ini { fraction: 0.4 })),
            &lp,
        )
        .unwrap()
        .qoi
        .error_vs(&accurate.qoi);
    let e_fini = bench
        .run(
            &spec,
            Some(&ApproxRegion::perfo(PerfoKind::Fini { fraction: 0.4 })),
            &lp,
        )
        .unwrap()
        .qoi
        .error_vs(&accurate.qoi);
    assert!(
        e_fini <= e_ini + 1e-12,
        "fini ({e_fini}) should not exceed ini ({e_ini})"
    );
}

/// K-Means approximation cannot slow convergence in iteration terms beyond
/// its max-iteration cap, and iterations drive time.
#[test]
fn kmeans_iterations_drive_time() {
    let spec = DeviceSpec::mi250x();
    let bench = KMeans::default();
    let lp = LaunchParams::new(8, 256);
    let accurate = bench.run(&spec, None, &lp).unwrap();
    let region = ApproxRegion::memo_out(1, 64, 0.9);
    let approx = bench.run(&spec, Some(&region), &lp).unwrap();
    let conv = accurate.iterations.unwrap() as f64 / approx.iterations.unwrap() as f64;
    let time = accurate.end_to_end_seconds() / approx.end_to_end_seconds();
    // Time and convergence speedups agree within 40% (the paper's R²=0.95
    // cloud at single-point granularity).
    assert!(
        (time / conv - 1.0).abs() < 0.4,
        "time {time:.2} vs convergence {conv:.2}"
    );
}

/// The full design-space harness produces a populated database on a tiny
/// benchmark, with every row carrying finite timings.
#[test]
fn harness_sweep_roundtrip() {
    use hpac_offload::harness::{run_sweep, Scale};
    let spec = DeviceSpec::v100();
    let bench = Blackscholes {
        n_options: 2048,
        ..Blackscholes::default()
    };
    let outcome = run_sweep(&bench, &spec, Scale::Quick);
    assert!(outcome.rows.len() > 100);
    for row in &outcome.rows {
        assert!(row.speedup > 0.0, "non-positive speedup in {}", row.config);
        assert!(row.kernel_seconds > 0.0);
        assert!(row.approx_fraction >= 0.0 && row.approx_fraction <= 1.0);
    }
    // The database round-trips through CSV.
    let mut db = hpac_offload::harness::ResultsDb::new();
    db.extend(outcome.rows.clone());
    let path = std::env::temp_dir().join("hpac_integration_db.csv");
    db.save(&path).unwrap();
    let loaded = hpac_offload::harness::ResultsDb::load(&path).unwrap();
    assert_eq!(loaded.len(), db.len());
    let _ = std::fs::remove_file(&path);
}
