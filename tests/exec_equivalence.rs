//! Property tests: the `ParallelBlocks` executor is observationally
//! indistinguishable from the `Sequential` reference.
//!
//! For random launch configurations × all three techniques × all hierarchy
//! levels, both executors must produce bitwise-identical region outputs and
//! an identical `KernelRecord` (timing, statistics, residency). This is the
//! contract that makes intra-kernel parallelism safe to enable anywhere:
//! it is an implementation detail of the walk, never a semantic change.

use gpu_sim::{AccessPattern, CostProfile, DeviceSpec, KernelRecord, LaunchConfig};
use hpac_offload::core::exec::{
    approx_block_tasks_opts, approx_parallel_for_opts, engine, BlockTaskBody, ExecOptions,
    Executor, RegionBody,
};
use hpac_offload::core::params::PerfoKind;
use hpac_offload::core::{ApproxRegion, HierarchyLevel};
use proptest::prelude::*;

/// A deterministic region body whose input stream mixes plateaus (so TAF
/// and iACT genuinely approximate) with varying stretches (so decisions
/// differ across lanes and hierarchy levels matter).
struct MixBody {
    input: Vec<f64>,
    output: Vec<f64>,
}

impl MixBody {
    fn new(n: usize, seed: u64) -> Self {
        let input = (0..n)
            .map(|i| {
                let plateau = (i >> 5) as f64;
                let wiggle = (((i as u64).wrapping_mul(seed | 1) >> 7) % 13) as f64;
                plateau + if i % 3 == 0 { 0.0 } else { wiggle * 0.25 }
            })
            .collect();
        MixBody {
            input,
            output: vec![-1.0; n],
        }
    }
}

impl RegionBody for MixBody {
    fn in_dim(&self) -> usize {
        1
    }
    fn out_dim(&self) -> usize {
        2
    }
    fn inputs(&self, i: usize, buf: &mut [f64]) {
        buf[0] = self.input[i];
    }
    fn compute(&self, i: usize, out: &mut [f64]) {
        let x = self.input[i] + 1.0;
        out[0] = x.sqrt();
        out[1] = x.ln();
    }
    fn store(&mut self, i: usize, out: &[f64]) {
        self.output[i] = out[0] + 0.5 * out[1];
    }
    fn accurate_cost(&self, lanes: u32, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new()
            .flops(8.0)
            .sfu(2.0)
            .global_read(lanes, 8, AccessPattern::Coalesced)
            .global_write(lanes, 16, AccessPattern::Coalesced)
    }
}

fn level_of(idx: usize) -> HierarchyLevel {
    match idx % 3 {
        0 => HierarchyLevel::Thread,
        1 => HierarchyLevel::Warp,
        _ => HierarchyLevel::Block,
    }
}

/// Every technique × hierarchy-level combination the runtime accepts.
fn regions(level_idx: usize, tsize: usize, threshold: f64) -> Vec<Option<ApproxRegion>> {
    let level = level_of(level_idx);
    vec![
        None,
        Some(ApproxRegion::memo_out(2, 16, threshold).level(level)),
        Some(
            ApproxRegion::memo_in(tsize, threshold)
                .tables_per_warp(8)
                .level(level),
        ),
        Some(ApproxRegion::perfo(PerfoKind::Small { m: 4 })),
        Some(ApproxRegion::perfo(PerfoKind::Large { m: 8 }).herded(false)),
        Some(ApproxRegion::perfo(PerfoKind::Ini { fraction: 0.25 })),
    ]
}

/// One executor's observable result: the kernel record and the outputs.
type RunResult = (KernelRecord, Vec<f64>);

fn run_both(
    lc: &LaunchConfig,
    region: Option<&ApproxRegion>,
    n: usize,
    seed: u64,
    threads: usize,
) -> Option<(RunResult, RunResult)> {
    let spec = DeviceSpec::v100();
    let seq_opts = ExecOptions {
        executor: Executor::Sequential,
        ..ExecOptions::default()
    };
    let par_opts = ExecOptions {
        executor: Executor::ParallelBlocks,
        threads: Some(threads),
        ..ExecOptions::default()
    };
    let mut seq = MixBody::new(n, seed);
    let r_seq = approx_parallel_for_opts(&spec, lc, region, &mut seq, &seq_opts).ok()?;
    let mut par = MixBody::new(n, seed);
    let r_par = approx_parallel_for_opts(&spec, lc, region, &mut par, &par_opts)
        .expect("parallel executor rejected a launch the sequential one accepted");
    Some(((r_seq, seq.output), (r_par, par.output)))
}

proptest! {
    /// Bitwise executor equivalence over random launches, techniques, and
    /// hierarchy levels.
    #[test]
    fn parallel_blocks_bit_identical_to_sequential(
        n in 32usize..6_000,
        warps in 1u32..5,
        ipt in 1usize..40,
        seed in 1u64..1_000_000,
        threads in 2usize..5,
        level_idx in 0usize..3,
    ) {
        let lc = LaunchConfig::for_items_per_thread(n, warps * 32, ipt);
        for region in regions(level_idx, 4, 0.3) {
            let Some(((r_seq, out_seq), (r_par, out_par))) =
                run_both(&lc, region.as_ref(), n, seed, threads)
            else {
                continue; // launch legitimately rejected by both executors
            };
            prop_assert_eq!(r_seq, r_par);
            for (a, b) in out_seq.iter().zip(&out_par) {
                prop_assert!(
                    a.to_bits() == b.to_bits(),
                    "output diverged under {:?}", region
                );
            }
        }
    }

    /// Block-local scheduling (contiguous per-block item ranges) preserves
    /// equivalence too.
    #[test]
    fn block_local_schedule_equivalent(
        n in 64usize..4_000,
        blocks in 2u32..7,
        seed in 1u64..1_000_000,
    ) {
        let lc = LaunchConfig::block_local(n, 64, blocks);
        for region in regions(1, 4, 0.3) {
            let Some(((r_seq, out_seq), (r_par, out_par))) =
                run_both(&lc, region.as_ref(), n, seed, 3)
            else {
                continue;
            };
            prop_assert_eq!(r_seq, r_par);
            for (a, b) in out_seq.iter().zip(&out_par) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }
    }
}

proptest! {
    /// The two granularities nest: configuration tasks fan out on the
    /// engine, and each one launches `ParallelBlocks` kernels from inside
    /// its task. The depth guard must run those nested block fan-outs
    /// inline, and the whole composition must stay bit-identical to a
    /// plain sequential loop over sequential launches.
    #[test]
    fn nested_config_tasks_bit_identical_to_sequential(
        n in 64usize..3_000,
        warps in 1u32..4,
        ipt in 1usize..24,
        seed in 1u64..1_000_000,
        workers in 2usize..6,
        level_idx in 0usize..3,
    ) {
        let spec = DeviceSpec::v100();
        let lc = LaunchConfig::for_items_per_thread(n, warps * 32, ipt);
        let configs = regions(level_idx, 4, 0.3);

        // Reference: every config sequential, one after another.
        let seq_opts = ExecOptions {
            executor: Executor::Sequential,
            ..ExecOptions::default()
        };
        let reference: Vec<Option<RunResult>> = configs
            .iter()
            .map(|region| {
                let mut body = MixBody::new(n, seed);
                approx_parallel_for_opts(&spec, &lc, region.as_ref(), &mut body, &seq_opts)
                    .ok()
                    .map(|rec| (rec, body.output))
            })
            .collect();

        // Config tasks on the engine, each launching ParallelBlocks.
        let par_opts = ExecOptions {
            executor: Executor::ParallelBlocks,
            threads: Some(workers),
            ..ExecOptions::default()
        };
        let nested: Vec<Option<RunResult>> = engine().run(configs.len(), workers, |i| {
            let mut body = MixBody::new(n, seed);
            approx_parallel_for_opts(&spec, &lc, configs[i].as_ref(), &mut body, &par_opts)
                .ok()
                .map(|rec| (rec, body.output))
        });

        for (k, (a, b)) in reference.iter().zip(&nested).enumerate() {
            match (a, b) {
                (None, None) => {}
                (Some((r_seq, out_seq)), Some((r_par, out_par))) => {
                    prop_assert_eq!(r_seq, r_par, "record diverged for config {}", k);
                    for (x, y) in out_seq.iter().zip(out_par) {
                        prop_assert!(
                            x.to_bits() == y.to_bits(),
                            "output diverged under {:?}", configs[k]
                        );
                    }
                }
                _ => prop_assert!(false, "acceptance diverged for config {}", k),
            }
        }
    }
}

// --- block tasks -----------------------------------------------------------

struct PriceBody {
    params: Vec<f64>,
    prices: Vec<f64>,
}

impl BlockTaskBody for PriceBody {
    fn in_dim(&self) -> usize {
        1
    }
    fn out_dim(&self) -> usize {
        1
    }
    fn inputs(&self, task: usize, buf: &mut [f64]) {
        buf[0] = self.params[task];
    }
    fn compute(&self, task: usize, out: &mut [f64]) {
        out[0] = (self.params[task] * 2.0 + 1.0).sqrt();
    }
    fn store(&mut self, task: usize, out: &[f64]) {
        self.prices[task] = out[0];
    }
    fn task_cost_per_warp(&self, _spec: &DeviceSpec) -> CostProfile {
        CostProfile::new().flops(500.0)
    }
}

proptest! {
    /// Executor equivalence for the cooperative block-task pipeline.
    #[test]
    fn block_tasks_bit_identical(
        n_tasks in 8usize..3_000,
        n_blocks in 2u32..80,
        modulus in 2usize..16,
        threads in 2usize..5,
    ) {
        let spec = DeviceSpec::v100();
        let regions = [
            None,
            Some(ApproxRegion::memo_out(2, 8, 0.05).level(HierarchyLevel::Block)),
            Some(ApproxRegion::memo_in(4, 1e-9).level(HierarchyLevel::Block)),
            Some(ApproxRegion::perfo(PerfoKind::Small { m: 3 })),
        ];
        for region in &regions {
            let mk = || PriceBody {
                params: (0..n_tasks).map(|i| (i % modulus) as f64).collect(),
                prices: vec![0.0; n_tasks],
            };
            let seq_opts = ExecOptions {
                executor: Executor::Sequential,
                ..ExecOptions::default()
            };
            let par_opts = ExecOptions {
                executor: Executor::ParallelBlocks,
                threads: Some(threads),
                ..ExecOptions::default()
            };
            let mut seq = mk();
            let r_seq =
                approx_block_tasks_opts(&spec, n_tasks, 128, n_blocks, region.as_ref(), &mut seq, &seq_opts)
                    .unwrap();
            let mut par = mk();
            let r_par =
                approx_block_tasks_opts(&spec, n_tasks, 128, n_blocks, region.as_ref(), &mut par, &par_opts)
                    .unwrap();
            prop_assert_eq!(r_seq, r_par);
            for (a, b) in seq.prices.iter().zip(&par.prices) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }
    }
}
