//! Integration tests for the `hpac-obs` tracing layer.
//!
//! Covers the concurrency contract (per-worker rings lose nothing and never
//! interleave under an `HPAC_THREADS=4`-style engine width), the
//! no-observer-effect contract (tracing cannot change sweep outputs by a
//! bit), the sink schemas (JSONL lines and Chrome trace arrays parse and
//! carry the required fields — validated with the tuner's own JSON parser),
//! and the one-diagnostics-path hygiene gate (no stray `println!` /
//! `eprintln!` in library crates).
//!
//! Obs state is process-global, so every test that flips the gate holds
//! [`obs_lock`]; the other root suites never enable tracing and cannot
//! interfere.

use gpu_sim::DeviceSpec;
use hpac_offload::apps::blackscholes::Blackscholes;
use hpac_offload::core::exec::{engine, ExecOptions, Executor};
use hpac_offload::harness::runner;
use hpac_offload::harness::space::Scale;
use hpac_offload::obs;
use hpac_offload::tuner::json::Json;
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A unique temp path per call (no wall-clock dependence; PID + counter).
fn temp_path(tag: &str, ext: &str) -> std::path::PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hpac-obs-test-{}-{tag}-{n}.{ext}",
        std::process::id()
    ))
}

fn tiny_bs() -> Blackscholes {
    Blackscholes {
        n_options: 2048,
        distinct: 16,
        run_len: 16,
        seed: 1,
    }
}

/// Tag in the `b` payload word marking spans recorded by this suite, so
/// drained instrumentation events from the code under test never collide.
const TAG: u64 = 0xC0FFEE;

proptest! {
    /// With four threads working one engine batch (the `HPAC_THREADS=4` CI
    /// shape), every task's span is drained exactly once (nothing lost),
    /// and within each worker's ring the spans appear in recording order
    /// with disjoint time ranges (nothing interleaved).
    #[test]
    fn four_worker_rings_neither_lose_nor_interleave(n in 64usize..384, spin in 1u64..48) {
        let _g = obs_lock();
        obs::set_enabled(true);
        let _ = obs::drain_events();
        engine().run(n, 4, |i| {
            let _s = obs::span(obs::SpanId::TunerSearchGrid, i as u64, TAG);
            let mut acc = 0u64;
            for k in 0..(spin * 97) {
                acc = acc.wrapping_add(k ^ i as u64);
            }
            std::hint::black_box(acc);
        });
        obs::set_enabled(false);
        let tagged: Vec<obs::OwnedEvent> = obs::drain_events()
            .into_iter()
            .filter(|e| {
                e.payload == obs::Payload::Span(obs::SpanId::TunerSearchGrid) && e.b == TAG
            })
            .collect();

        // Nothing lost, nothing duplicated.
        prop_assert_eq!(tagged.len(), n);
        let mut seen = vec![false; n];
        for e in &tagged {
            let i = e.a as usize;
            prop_assert!(i < n, "unknown task tag {}", i);
            prop_assert!(!seen[i], "task {} drained twice", i);
            seen[i] = true;
        }

        // Nothing interleaved: a worker finishes (and records) one task's
        // span before opening the next, so per ring the spans are disjoint
        // and ordered.
        let mut by_worker: HashMap<u32, Vec<&obs::OwnedEvent>> = HashMap::new();
        for e in &tagged {
            by_worker.entry(e.worker).or_default().push(e);
        }
        for (worker, mut evs) in by_worker {
            evs.sort_by_key(|e| e.seq);
            for pair in evs.windows(2) {
                prop_assert!(
                    pair[0].seq < pair[1].seq,
                    "worker {}: duplicate ring sequence",
                    worker
                );
                prop_assert!(
                    pair[0].t1_ns <= pair[1].t0_ns,
                    "worker {}: span [{}, {}] interleaves with [{}, {}]",
                    worker,
                    pair[0].t0_ns,
                    pair[0].t1_ns,
                    pair[1].t0_ns,
                    pair[1].t1_ns
                );
            }
            for e in evs {
                prop_assert!(e.t0_ns <= e.t1_ns);
            }
        }
    }
}

/// Enabling tracing must not change what a sweep computes — not by a bit.
#[test]
fn tracing_leaves_sweep_outputs_bit_identical() {
    let _g = obs_lock();
    let bench = tiny_bs();
    let spec = DeviceSpec::v100();
    let opts = ExecOptions {
        executor: Executor::ParallelBlocks,
        ..ExecOptions::default()
    };

    obs::set_enabled(false);
    let untraced = runner::run_sweep_serial(&bench, &spec, Scale::Quick, &opts);
    obs::set_enabled(true);
    let traced = runner::run_sweep_serial(&bench, &spec, Scale::Quick, &opts);
    obs::set_enabled(false);
    let _ = obs::drain_events();

    assert_eq!(
        untraced.baseline.seconds.to_bits(),
        traced.baseline.seconds.to_bits()
    );
    assert_eq!(untraced.rows.len(), traced.rows.len());
    assert!(!untraced.rows.is_empty());
    for (a, b) in untraced.rows.iter().zip(&traced.rows) {
        assert_eq!(a.config, b.config);
        assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "{}", a.config);
        assert_eq!(a.error_pct.to_bits(), b.error_pct.to_bits(), "{}", a.config);
        assert_eq!(
            a.kernel_seconds.to_bits(),
            b.kernel_seconds.to_bits(),
            "{}",
            a.config
        );
    }
}

/// A traced sweep yields non-zero memo hit rates, engine activity, and
/// per-worker attribution in the `MetricsSnapshot` — the in-process surface
/// `sweepbench` publishes.
#[test]
fn traced_sweep_produces_metrics() {
    let _g = obs_lock();
    let bench = tiny_bs();
    let spec = DeviceSpec::v100();
    let opts = ExecOptions {
        executor: Executor::ParallelBlocks,
        threads: Some(4),
        ..ExecOptions::default()
    };
    obs::set_enabled(true);
    let before = obs::snapshot();
    let _ = runner::run_sweep_serial(&bench, &spec, Scale::Quick, &opts);
    obs::set_enabled(false);
    let _ = obs::drain_events();
    let delta = obs::snapshot().delta_since(&before);

    assert!(delta.counter(obs::CounterId::KernelLaunches) > 0);
    assert!(delta.counter(obs::CounterId::WarpSteps) > 0);
    assert!(delta.counter(obs::CounterId::ConfigsEvaluated) > 0);
    let mix = delta.mix_memo_hit_rate().expect("MixMemo was exercised");
    assert!(mix > 0.0, "mix memo hit rate {mix}");
    assert!(delta.busy_ns_total() > 0);
    assert!(delta.utilization(delta.taken_ns.max(1), 4) > 0.0);
    let table = delta.render_table();
    assert!(table.contains("kernel_launches"));
    assert!(table.contains("mix_memo_hit_rate"));
}

/// The JSONL sink writes one parseable object per line with the documented
/// fields (validated with the tuner's JSON parser — no external deps).
#[test]
fn jsonl_sink_emits_schema_valid_lines() {
    let _g = obs_lock();
    let path = temp_path("events", "jsonl");
    let cfg = obs::parse_hpac_trace(path.to_str().unwrap())
        .unwrap()
        .unwrap();
    assert_eq!(cfg.format, obs::TraceFormat::Jsonl);
    obs::install_sink(cfg).unwrap();
    let _ = obs::drain_events();

    obs::set_enabled(true);
    let bench = tiny_bs();
    let spec = DeviceSpec::v100();
    let _ = runner::run_sweep_serial(&bench, &spec, Scale::Quick, &ExecOptions::default());
    obs::set_enabled(false);
    let stats = obs::finish().unwrap();
    assert!(stats.events > 0, "sweep recorded no events");

    let text = std::fs::read_to_string(&path).unwrap();
    let mut config_evals = 0usize;
    let mut lines = 0usize;
    for line in text.lines() {
        let v = Json::parse(line).unwrap_or_else(|e| panic!("bad JSONL line {line:?}: {e}"));
        let ty = v.get("type").and_then(Json::as_str).expect("type field");
        assert!(ty == "span" || ty == "instant", "unknown type {ty}");
        assert!(v.get("name").and_then(Json::as_str).is_some());
        assert!(v.get("worker").and_then(Json::as_f64).is_some());
        assert!(v.get("seq").and_then(Json::as_f64).is_some());
        let t0 = v.get("t0_ns").and_then(Json::as_f64).expect("t0_ns");
        let t1 = v.get("t1_ns").and_then(Json::as_f64).expect("t1_ns");
        assert!(t1 >= t0);
        assert!(matches!(v.get("args"), Some(Json::Obj(_))), "args object");
        if v.get("name").and_then(Json::as_str) == Some("config_eval") {
            // Interned app names resolve back to strings in the sink.
            let app = v
                .get("args")
                .and_then(|a| a.get("app"))
                .and_then(Json::as_str)
                .expect("config_eval carries the app name");
            assert_eq!(app, "Blackscholes");
            config_evals += 1;
        }
        lines += 1;
    }
    assert_eq!(lines as u64, stats.events);
    assert!(config_evals > 0, "no config_eval spans in the trace");
    let _ = std::fs::remove_file(&path);
}

/// The Chrome sink writes a `chrome://tracing`-loadable JSON array: every
/// element has name/ph/pid/tid/ts, spans are `ph: "X"` with a duration, and
/// thread-name metadata closes the file.
#[test]
fn chrome_sink_emits_loadable_trace() {
    let _g = obs_lock();
    let path = temp_path("trace", "json");
    let raw = format!("{}:chrome", path.display());
    let cfg = obs::parse_hpac_trace(&raw).unwrap().unwrap();
    assert_eq!(cfg.format, obs::TraceFormat::Chrome);
    obs::install_sink(cfg).unwrap();
    let _ = obs::drain_events();

    obs::set_enabled(true);
    let bench = tiny_bs();
    let spec = DeviceSpec::v100();
    let _ = runner::run_sweep_serial(&bench, &spec, Scale::Quick, &ExecOptions::default());
    obs::set_enabled(false);
    obs::finish().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let v = Json::parse(&text).unwrap_or_else(|e| panic!("trace is not valid JSON: {e}"));
    let Json::Arr(events) = v else {
        panic!("chrome trace must be a JSON array");
    };
    assert!(!events.is_empty());
    let mut complete = 0usize;
    let mut metadata = 0usize;
    for e in &events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph field");
        assert!(e.get("name").and_then(Json::as_str).is_some());
        assert!(e.get("pid").and_then(Json::as_f64).is_some());
        assert!(e.get("tid").and_then(Json::as_f64).is_some());
        match ph {
            "X" => {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
                assert!(e.get("dur").and_then(Json::as_f64).unwrap_or(-1.0) >= 0.0);
                complete += 1;
            }
            "i" => {
                assert!(e.get("ts").and_then(Json::as_f64).is_some());
            }
            "M" => metadata += 1,
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(complete > 0, "no complete (span) events");
    assert!(metadata > 0, "no thread-name metadata");
    let _ = std::fs::remove_file(&path);
}

/// Exactly one diagnostics path: library crates must not grow ad-hoc
/// `println!` / `eprintln!` calls — warnings go through `obs::log_warn`,
/// whose stderr write in `crates/obs/src/lib.rs` is the single allowed
/// site. Bins, benches, shims, and tests are exempt (printing is their
/// job); comments don't count.
#[test]
fn library_crates_have_no_adhoc_print_macros() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let library_src = [
        "crates/core/src",
        "crates/gpu-sim/src",
        "crates/apps/src",
        "crates/harness/src",
        "crates/tuner/src",
        "crates/obs/src",
        "src",
    ];
    let allowed = root.join("crates/obs/src/lib.rs");

    fn scan(dir: &std::path::Path, allowed: &std::path::Path, offenders: &mut Vec<String>) {
        for entry in std::fs::read_dir(dir).expect("readable source dir") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                scan(&path, allowed, offenders);
                continue;
            }
            if path.extension().and_then(|e| e.to_str()) != Some("rs") || path == allowed {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("readable source file");
            for (i, line) in text.lines().enumerate() {
                let trimmed = line.trim_start();
                if trimmed.starts_with("//") || trimmed.starts_with('*') {
                    continue;
                }
                if trimmed.contains("println!(") || trimmed.contains("eprintln!(") {
                    offenders.push(format!("{}:{}: {}", path.display(), i + 1, line.trim()));
                }
            }
        }
    }

    let mut offenders = Vec::new();
    for dir in library_src {
        scan(&root.join(dir), &allowed, &mut offenders);
    }
    assert!(
        offenders.is_empty(),
        "ad-hoc print macros in library crates (route them through hpac_obs::log_warn):\n{}",
        offenders.join("\n")
    );
}
