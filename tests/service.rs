//! Cross-crate tests of the tuning service: request coalescing under real
//! thread concurrency, warm-start bound/budget guarantees, and
//! crash-atomicity of the sharded cache's write-replace protocol.

use gpu_sim::DeviceSpec;
use hpac_offload::apps::blackscholes::Blackscholes;
use hpac_offload::apps::common::LaunchParams;
use hpac_offload::core::region::ApproxRegion;
use hpac_offload::service::{Source, TuneRequest, TuningService, WarmStart};
use hpac_offload::tuner::{
    device_fingerprint, ParetoFrontier, ParetoPoint, QualityBound, TunedPlan, Tuner, TuningCache,
};
use proptest::prelude::*;
use std::sync::{Barrier, OnceLock};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("hpac_service_it_{tag}_{}", std::process::id()))
}

/// A quick-scale service over a fresh cache, with a small search budget so
/// property cases stay fast.
fn small_budget_service(tag: &str) -> (TuningService, TuningCache) {
    let cache = TuningCache::new(temp_dir(tag));
    let _ = cache.clear();
    let mut tuner = Tuner::new().with_scale(hpac_offload::harness::Scale::Quick);
    tuner.budget_fraction = 0.001;
    let svc = TuningService::new()
        .with_tuner(tuner)
        .with_cache(cache.clone());
    (svc, cache)
}

proptest! {
    /// N concurrent identical requests run exactly one search, and every
    /// caller receives a bit-identical plan.
    #[test]
    fn concurrent_identical_requests_search_once(n in 2usize..8, bound_off in 0.0f64..40.0) {
        static SHARED: OnceLock<TuningService> = OnceLock::new();
        let svc = SHARED.get_or_init(|| small_budget_service("coalesce").0);
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        // A distinct bound per case makes the key fresh, forcing a search;
        // duplicate bounds across cases just turn into cache hits, which
        // the assertions below tolerate.
        let bound = QualityBound::percent(30.0 + bound_off);

        let searches_before = svc.stats().searches;
        let barrier = Barrier::new(n);
        let responses: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..n)
                .map(|_| {
                    let barrier = &barrier;
                    let bench = &bench;
                    let device = &device;
                    s.spawn(move || {
                        let req = TuneRequest::new(bench, device, bound)
                            .warm_start(WarmStart::Never);
                        barrier.wait();
                        svc.submit(req)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let searches = svc.stats().searches - searches_before;
        prop_assert!(
            searches <= 1,
            "{n} concurrent identical requests ran {searches} searches"
        );
        let first = &responses[0];
        for resp in &responses {
            prop_assert_eq!(&resp.plan.config, &first.plan.config);
            prop_assert_eq!(
                resp.plan.predicted_speedup.to_bits(),
                first.plan.predicted_speedup.to_bits()
            );
            prop_assert_eq!(
                resp.plan.measured_error_pct.to_bits(),
                first.plan.measured_error_pct.to_bits()
            );
            prop_assert!(resp.plan.respects_bound());
            match resp.source {
                // The one leader (when the key was fresh) searched cold.
                Source::Searched { warm_seeds } => prop_assert_eq!(warm_seeds, 0),
                Source::Coalesced | Source::CacheHit => {
                    prop_assert_eq!(resp.evals_spent, 0);
                }
            }
        }
    }

    /// A warm-started search never violates the quality bound and — when
    /// its seeds contain a feasible winner, i.e. the bound is at or above a
    /// cached neighbor's — never spends more evaluations than the cold
    /// search that produced the neighbor.
    #[test]
    fn warm_start_respects_bound_and_budget(bound_off in 0.001f64..20.0) {
        static SHARED: OnceLock<(TuningService, usize)> = OnceLock::new();
        let (svc, cold_evals) = SHARED.get_or_init(|| {
            // A budget large enough to find a feasible winner (the 0.001
            // coalescing budget is not); only the first case pays for the
            // one cold search — every later case rides the seed fast path.
            let cache = TuningCache::new(temp_dir("warm"));
            let _ = cache.clear();
            let mut tuner = Tuner::new().with_scale(hpac_offload::harness::Scale::Quick);
            tuner.budget_fraction = 0.01;
            let svc = TuningService::new().with_tuner(tuner).with_cache(cache);
            let bench = Blackscholes::default();
            let device = DeviceSpec::v100();
            let cold = svc.submit(
                TuneRequest::new(&bench, &device, QualityBound::percent(5.0))
                    .warm_start(WarmStart::Never),
            );
            assert!(
                cold.plan.predicted_speedup > 1.0,
                "test needs a feasible cold winner"
            );
            let evals = cold.evals_spent;
            (svc, evals)
        });
        let bench = Blackscholes::default();
        let device = DeviceSpec::v100();
        // Bounds looser than the cached 5% neighbor: its winner is already
        // feasible, so the seed fast path must fire.
        let bound = QualityBound::percent(5.0 + bound_off);

        let resp = svc.submit(TuneRequest::new(&bench, &device, bound));
        prop_assert!(
            resp.plan.respects_bound(),
            "warm plan at {}% measured {}%",
            bound.max_error_pct,
            resp.plan.measured_error_pct
        );
        match resp.source {
            Source::Searched { warm_seeds } => {
                prop_assert!(warm_seeds > 0, "seeds existed but were not used");
                prop_assert!(
                    resp.evals_spent <= *cold_evals,
                    "warm spent {} evals, cold spent {cold_evals}",
                    resp.evals_spent
                );
            }
            // A repeated bound value across cases is just a cache hit.
            Source::CacheHit | Source::Coalesced => prop_assert_eq!(resp.evals_spent, 0),
        }
    }
}

/// A plan with a deliberately wide frontier, so its JSON entry is large
/// enough that a mid-write kill has a real window to tear it.
fn bulky_plan(bound_pct: f64) -> TunedPlan {
    let region = ApproxRegion::memo_out(2, 32, 0.9);
    let lp = LaunchParams::new(16, 256);
    let mut frontier = ParetoFrontier::new();
    for i in 0..512 {
        frontier.insert(ParetoPoint {
            speedup: 1.0 + (i + 1) as f64 * 0.01,
            error_pct: (i + 1) as f64 * 0.01,
            technique: "TAF".into(),
            config: format!("h=2 p=32 thr=0.9 lvl=warp ipt=16 variant={i}"),
            items_per_thread: 16,
            region: Some(region),
            lp: Some(lp),
        });
    }
    assert_eq!(frontier.len(), 512);
    TunedPlan {
        benchmark: "Blackscholes".into(),
        device: "V100".into(),
        bound_pct,
        region: Some(region),
        lp,
        technique: "TAF".into(),
        config: "h=2 p=32 thr=0.9 lvl=warp ipt=16".into(),
        predicted_speedup: 2.0,
        measured_error_pct: 1.0,
        baseline_lp: LaunchParams::new(8, 256),
        evaluations: 100,
        full_space: 7854,
        from_cache: false,
        frontier,
    }
}

const TORN_DIR_VAR: &str = "HPAC_TORN_WRITE_DIR";

/// Helper process body for `store_survives_mid_write_kill`: hammer the
/// cache with stores until killed. Ignored in normal runs; the parent test
/// re-executes this binary with `--ignored --exact` and the env var set.
#[test]
#[ignore = "child process body for store_survives_mid_write_kill"]
fn torn_write_child_worker() {
    let Ok(dir) = std::env::var(TORN_DIR_VAR) else {
        return; // invoked directly (e.g. `cargo test -- --ignored`): no-op
    };
    let cache = TuningCache::new(&dir);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    let mut bound = 0usize;
    while std::time::Instant::now() < deadline {
        // Cycle a handful of keys so loads race replacements, not just
        // first writes.
        let plan = bulky_plan((bound % 8 + 1) as f64);
        cache.store(&plan, 42).expect("store");
        bound += 1;
    }
}

/// Kill a writer process mid-store, repeatedly, then verify the cache never
/// exposes a torn entry: every `.json` file present must load as a complete,
/// valid plan. (With plain `fs::write` instead of write-replace, this test
/// reliably finds truncated entries.)
#[test]
fn store_survives_mid_write_kill() {
    let dir = temp_dir("torn");
    let cache = TuningCache::new(&dir);
    let _ = cache.clear();
    let exe = std::env::current_exe().expect("current test binary");

    for round in 0..6 {
        let mut child = std::process::Command::new(&exe)
            .args(["torn_write_child_worker", "--exact", "--ignored"])
            .env(TORN_DIR_VAR, &dir)
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn writer child");
        // Let it get into the write loop, then kill it mid-flight. Vary the
        // delay so the kill lands at different write offsets.
        std::thread::sleep(std::time::Duration::from_millis(120 + 37 * round));
        child.kill().expect("kill writer child");
        let _ = child.wait();
    }

    // Every surviving .json entry must be complete and loadable. A torn
    // write would fail the parse, making load() return None (and delete
    // the file) — caught here because the file existed a moment before.
    let mut entries = 0usize;
    for shard in std::fs::read_dir(&dir).expect("cache dir exists").flatten() {
        if !shard.path().is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(shard.path())
            .expect("shard dir")
            .flatten()
        {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(stem) = name.strip_suffix("bp.json") else {
                continue; // .tmp debris from killed writers is expected
            };
            let bound_bp: i64 = stem
                .rsplit("__")
                .next()
                .and_then(|s| s.parse().ok())
                .expect("entry name encodes the bound");
            let plan = cache
                .load("Blackscholes", "V100", bound_bp as f64 / 100.0, 42)
                .unwrap_or_else(|| panic!("torn or unloadable entry: {name}"));
            assert_eq!(plan.frontier.len(), 512, "partial frontier in {name}");
            entries += 1;
        }
    }
    assert!(entries > 0, "kill test never observed a completed store");
    let _ = cache.clear();
}

/// The fingerprint in a stored entry is the device's, end to end: a service
/// answer cached on one device spec is never served for a recalibrated one.
#[test]
fn service_cache_keys_on_device_fingerprint() {
    let (svc, cache) = small_budget_service("fingerprint");
    let bench = Blackscholes::default();
    let device = DeviceSpec::v100();
    let bound = QualityBound::percent(5.0);
    let first = svc.submit(TuneRequest::new(&bench, &device, bound));
    assert!(first.source.is_searched());

    let mut recalibrated = device;
    recalibrated.costs.global_txn_cycles *= 1.5;
    assert_ne!(
        device_fingerprint(&device),
        device_fingerprint(&recalibrated)
    );
    let second = svc.submit(TuneRequest::new(&bench, &recalibrated, bound));
    assert!(
        second.source.is_searched(),
        "recalibrated device must not be served the stale entry"
    );
    let _ = cache.clear();
}
