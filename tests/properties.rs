//! Property-based tests (proptest) on the core data structures and
//! invariants of the HPAC-Offload stack.

use gpu_sim::{AccessPattern, DeviceSpec, LaunchConfig};
use hpac_offload::core::iact::IactPool;
use hpac_offload::core::metrics::{geomean, mape, mcr, rsd, RsdWindow};
use hpac_offload::core::params::{IactParams, PerfoKind, PerfoParams, TafParams};
use hpac_offload::core::perfo;
use hpac_offload::core::taf::TafPool;
use proptest::prelude::*;

proptest! {
    /// Grid-stride item assignment partitions [0, n) exactly: every item
    /// executed once, by exactly one (block, warp, lane, step).
    #[test]
    fn grid_stride_partitions(n in 1usize..20_000, block in 1u32..9, ipt in 1usize..70) {
        let spec = DeviceSpec::v100();
        let lc = LaunchConfig::for_items_per_thread(n, block * 32, ipt);
        let mut seen = vec![false; n];
        for b in 0..lc.n_blocks {
            for w in 0..lc.warps_per_block(&spec) {
                for l in 0..spec.warp_size {
                    for s in 0..lc.steps() {
                        if let Some(i) = lc.item_for(&spec, b, w, l, s) {
                            prop_assert!(!seen[i], "item {i} twice");
                            seen[i] = true;
                        }
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    /// Block-local scheduling also partitions the item space exactly.
    #[test]
    fn block_local_partitions(n in 1usize..8_000, blocks in 1u32..7, bs in 1u32..5) {
        let spec = DeviceSpec::v100();
        let lc = LaunchConfig::block_local(n, bs * 32, blocks);
        let mut seen = vec![false; n];
        for b in 0..lc.n_blocks {
            for w in 0..lc.warps_per_block(&spec) {
                for l in 0..spec.warp_size {
                    for s in 0..lc.steps() {
                        if let Some(i) = lc.item_for(&spec, b, w, l, s) {
                            prop_assert!(!seen[i]);
                            seen[i] = true;
                        }
                    }
                }
            }
        }
        prop_assert!(seen.iter().all(|&x| x));
    }

    /// Coalescing: transactions are monotone in active lanes and bytes, and
    /// scattered access never beats coalesced.
    #[test]
    fn coalescing_monotone(lanes in 1u32..64, bytes in 1u32..64) {
        use gpu_sim::coalesce::transactions;
        let c = transactions(lanes, bytes, AccessPattern::Coalesced);
        let c_more = transactions(lanes + 1, bytes, AccessPattern::Coalesced);
        let s = transactions(lanes, bytes, AccessPattern::Scattered);
        prop_assert!(c_more >= c);
        prop_assert!(s >= c);
        prop_assert!(c >= 1);
    }

    /// TAF can never approximate more than `psize` invocations per stable
    /// regime and never before observing `hsize` outputs.
    #[test]
    fn taf_regime_bounds(hsize in 1usize..6, psize in 1usize..20, n_obs in 0usize..40) {
        let mut pool = TafPool::new(1, 1, TafParams::new(hsize, psize, 1e9));
        let mut consecutive = 0usize;
        let mut total_approx = 0usize;
        let mut total_accurate = 0usize;
        for i in 0..n_obs {
            if pool.wants_approx(0) {
                pool.note_approx(0);
                consecutive += 1;
                total_approx += 1;
                prop_assert!(consecutive <= psize, "regime exceeded psize");
            } else {
                pool.observe(0, &[i as f64 * 0.0]);
                consecutive = 0;
                total_accurate += 1;
            }
        }
        // Warmup of hsize accurate runs precedes every regime.
        if total_approx > 0 {
            prop_assert!(total_accurate >= hsize);
        }
    }

    /// iACT probe results always satisfy the hit threshold, and occupancy
    /// never exceeds the table size.
    #[test]
    fn iact_probe_invariants(
        entries in prop::collection::vec((0.0f64..10.0, 0.0f64..10.0), 0..20),
        q1 in 0.0f64..10.0,
        q2 in 0.0f64..10.0,
        tsize in 1usize..8,
    ) {
        let params = IactParams::new(tsize, 0.75);
        let mut pool = IactPool::new(1, 2, 1, params);
        for (a, b) in &entries {
            pool.insert(0, &[*a, *b], &[a + b]);
            prop_assert!(pool.occupancy(0) <= tsize);
        }
        let probe = pool.probe(0, &[q1, q2]);
        if let Some(slot) = probe.slot {
            // The reported distance matches the stored entry.
            let out = pool.output(0, slot)[0];
            prop_assert!(out.is_finite());
            prop_assert!(probe.distance >= 0.0);
            if probe.hit(params.threshold) {
                prop_assert!(probe.distance <= params.threshold);
            }
        } else {
            prop_assert!(entries.is_empty());
        }
    }

    /// Perforation drop counts match the analytic rate exactly for
    /// item-indexed decisions.
    #[test]
    fn perfo_drop_counts(n in 1usize..5_000, m in 2u32..65) {
        for kind in [PerfoKind::Small { m }, PerfoKind::Large { m }] {
            let params = PerfoParams { kind, herded: false };
            let dropped = (0..n).filter(|&i| perfo::should_skip(&params, i, 0)).count();
            prop_assert_eq!(dropped, perfo::dropped_items(&params, n));
        }
    }

    /// Ini/fini bounds always form a valid non-empty subrange for
    /// fractions below 1.
    #[test]
    fn perfo_bounds_valid(n in 1usize..100_000, frac in 0.01f64..0.95) {
        for kind in [PerfoKind::Ini { fraction: frac }, PerfoKind::Fini { fraction: frac }] {
            let params = PerfoParams { kind, herded: true };
            let (lo, hi) = perfo::bounds(&params, n);
            prop_assert!(lo <= hi);
            prop_assert!(hi <= n);
            let dropped = n - (hi - lo);
            // Rounded drop matches the fraction within one item.
            prop_assert!((dropped as f64 - frac * n as f64).abs() <= 1.0);
        }
    }

    /// MAPE identities: zero on identical inputs, scale-invariant,
    /// symmetric under simultaneous scaling.
    #[test]
    fn mape_identities(v in prop::collection::vec(0.1f64..100.0, 1..50), k in 0.1f64..10.0) {
        prop_assert!(mape(&v, &v) < 1e-12);
        let scaled: Vec<f64> = v.iter().map(|x| x * k).collect();
        let direct = mape(&v, &scaled);
        prop_assert!((direct - (k - 1.0).abs()).abs() < 1e-9);
    }

    /// MCR is a metric on label vectors: zero iff equal, at most 1.
    #[test]
    fn mcr_bounds(a in prop::collection::vec(0u32..5, 1..60)) {
        prop_assert_eq!(mcr(&a, &a), 0.0);
        let flipped: Vec<u32> = a.iter().map(|x| x + 1).collect();
        prop_assert_eq!(mcr(&a, &flipped), 1.0);
    }

    /// RSD is scale-invariant (positive scaling) and zero for constants.
    #[test]
    fn rsd_scale_invariant(v in prop::collection::vec(0.5f64..10.0, 2..20), k in 0.1f64..10.0) {
        let scaled: Vec<f64> = v.iter().map(|x| x * k).collect();
        prop_assert!((rsd(&v) - rsd(&scaled)).abs() < 1e-9);
        let c = vec![v[0]; v.len()];
        prop_assert!(rsd(&c) < 1e-9);
    }

    /// The sliding window reports the RSD of exactly its last `cap` values.
    #[test]
    fn window_matches_direct_rsd(values in prop::collection::vec(0.1f64..10.0, 1..40), cap in 1usize..8) {
        let mut w = RsdWindow::new(cap);
        for &v in &values {
            w.push(v);
        }
        let tail: Vec<f64> = values.iter().rev().take(cap).copied().collect();
        prop_assert!((w.rsd() - rsd(&tail)).abs() < 1e-9);
    }

    /// Geomean lies between min and max.
    #[test]
    fn geomean_bounds(v in prop::collection::vec(0.1f64..10.0, 1..30)) {
        let g = geomean(&v);
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(0.0, f64::max);
        prop_assert!(g >= lo - 1e-9 && g <= hi + 1e-9);
    }

    /// Warp majority voting is monotone: adding yes-votes never flips the
    /// group from approx to accurate.
    #[test]
    fn majority_monotone(votes in prop::collection::vec(any::<bool>(), 1..64)) {
        use hpac_offload::core::hierarchy::{warp_decide, HierarchyLevel, WarpDecision};
        let before = warp_decide(HierarchyLevel::Warp, &votes);
        let mut more = votes.clone();
        if let Some(slot) = more.iter_mut().find(|v| !**v) {
            *slot = true;
            let after = warp_decide(HierarchyLevel::Warp, &more);
            if before == WarpDecision::GroupApprox {
                prop_assert_eq!(after, WarpDecision::GroupApprox);
            }
        }
    }

    /// Kernel timing is monotone in per-warp work.
    #[test]
    fn timing_monotone(issue in 1.0f64..10_000.0, latency in 0.0f64..10_000.0) {
        use gpu_sim::cost::WarpCycles;
        use gpu_sim::timing::kernel_time;
        let spec = DeviceSpec::v100();
        let lc = LaunchConfig::one_item_per_thread(64 * 128, 128);
        let blocks =
            vec![vec![WarpCycles { issue, latency }; 4]; 64];
        let bigger =
            vec![vec![WarpCycles { issue: issue * 2.0, latency: latency * 2.0 }; 4]; 64];
        let t1 = kernel_time(&spec, &lc, 0, &blocks);
        let t2 = kernel_time(&spec, &lc, 0, &bigger);
        prop_assert!(t2.cycles >= t1.cycles);
    }
}

// Whole-stack reuse properties: each case runs real application evaluations
// end to end, so the bodies are kept deliberately small.
proptest! {
    /// Sweep-scoped evaluation reuse is invisible in the results: a config
    /// evaluated under an installed [`EvalMemo`] scope — including a second
    /// evaluation served from a warm memo — produces bit-identical speedup,
    /// error, and kernel seconds to a memo-free evaluation, across
    /// techniques, executors, and worker counts.
    #[test]
    fn sweep_scoped_memo_is_bit_identical(
        tech in 0usize..3,
        ipt_idx in 0usize..3,
        exec_idx in 0usize..3,
        threads_idx in 0usize..2,
    ) {
        use hpac_offload::apps::blackscholes::Blackscholes;
        use hpac_offload::apps::common::{install_eval_memo, LaunchParams};
        use hpac_offload::core::exec::{ExecOptions, Executor};
        use hpac_offload::core::region::ApproxRegion;
        use hpac_offload::harness::runner::{run_config_opts, select_baseline_opts};
        use hpac_offload::harness::SweepConfig;

        let bench = Blackscholes { n_options: 2048, distinct: 16, run_len: 16, seed: 7 };
        let spec = DeviceSpec::v100();
        let region = match tech {
            0 => ApproxRegion::memo_out(2, 32, 0.9),
            1 => ApproxRegion::memo_in(4, 0.5),
            _ => ApproxRegion::perfo(PerfoKind::Small { m: 2 }),
        };
        let executor = [Executor::Sequential, Executor::ParallelBlocks, Executor::Auto][exec_idx];
        let threads = [None, Some(2usize)][threads_idx];
        let opts = ExecOptions { executor, threads, ..ExecOptions::default() };
        let cfg = SweepConfig {
            region,
            lp: LaunchParams::new([4usize, 16, 64][ipt_idx], 256),
            label: "probe".into(),
        };
        let plain = {
            let baseline = select_baseline_opts(&bench, &spec, &opts);
            run_config_opts(&bench, &spec, &baseline, &cfg, &opts).unwrap()
        };
        let scoped = {
            let _scope = install_eval_memo();
            let baseline = select_baseline_opts(&bench, &spec, &opts);
            // First evaluation populates the sweep-scoped memo; the second
            // is served from it. Both must match the memo-free run.
            let warm = run_config_opts(&bench, &spec, &baseline, &cfg, &opts).unwrap();
            let hot = run_config_opts(&bench, &spec, &baseline, &cfg, &opts).unwrap();
            prop_assert_eq!(warm.speedup.to_bits(), hot.speedup.to_bits());
            prop_assert_eq!(warm.error_pct.to_bits(), hot.error_pct.to_bits());
            hot
        };
        prop_assert_eq!(plain.speedup.to_bits(), scoped.speedup.to_bits());
        prop_assert_eq!(plain.error_pct.to_bits(), scoped.error_pct.to_bits());
        prop_assert_eq!(plain.kernel_seconds.to_bits(), scoped.kernel_seconds.to_bits());
    }

    /// Frontier-aware early abort never costs a frontier point: every
    /// configuration the tuner abandoned at the cost ceiling, re-run to
    /// completion without a ceiling, is dominated by (or equal to) the
    /// final frontier — inserting it changes nothing.
    #[test]
    fn aborted_configs_never_enter_frontier(seed in 0u64..1_000) {
        use hpac_offload::apps::blackscholes::Blackscholes;
        use hpac_offload::harness::runner::{run_config, select_baseline};
        use hpac_offload::harness::Scale;
        use hpac_offload::tuner::search::{search_grid, Evaluator, SearchStrategy};
        use hpac_offload::tuner::{Grid, ParetoPoint};

        let bench = Blackscholes { n_options: 2048, distinct: 16, run_len: 16, seed: 1 };
        let spec = DeviceSpec::v100();
        let baseline = select_baseline(&bench, &spec);
        let mut ev = Evaluator::new(&bench, &spec, &baseline, 60);
        let strategy = SearchStrategy::Random { samples: 20 };
        for (i, grid) in Grid::grids_for(&bench, &spec, Scale::Quick).iter().enumerate() {
            search_grid(grid, &mut ev, &strategy, 5.0, seed.wrapping_add(i as u64));
        }
        let mut frontier = ev.frontier.clone();
        for cfg in &ev.aborted {
            let row = run_config(&bench, &spec, &baseline, cfg)
                .expect("aborted configs are launchable");
            let changed = frontier.insert(ParetoPoint {
                speedup: row.speedup,
                error_pct: row.error_pct,
                technique: row.technique.clone(),
                config: format!("reran {}", cfg.label),
                items_per_thread: row.items_per_thread,
                region: None,
                lp: None,
            });
            prop_assert!(
                !changed,
                "aborted config {} would have entered the frontier \
                 (speedup {}, error {}%)",
                cfg.label, row.speedup, row.error_pct
            );
        }
    }
}
