//! Cross-crate tests of the autotuning subsystem: Pareto-frontier
//! invariants (property-based) and end-to-end bound compliance on real
//! applications.

use gpu_sim::DeviceSpec;
use hpac_offload::apps::blackscholes::Blackscholes;
use hpac_offload::apps::kmeans::KMeans;
use hpac_offload::harness::Scale;
use hpac_offload::tuner::{ParetoFrontier, ParetoPoint, QualityBound, Tuner};
use proptest::prelude::*;

fn pt(speedup: f64, error_pct: f64) -> ParetoPoint {
    ParetoPoint {
        speedup,
        error_pct,
        technique: "TAF".into(),
        config: format!("s={speedup} e={error_pct}"),
        items_per_thread: 8,
        region: None,
        lp: None,
    }
}

fn coords(f: &ParetoFrontier) -> Vec<(u64, u64)> {
    // Bit patterns make the set comparable without f64 equality pitfalls.
    f.points()
        .iter()
        .map(|p| (p.speedup.to_bits(), p.error_pct.to_bits()))
        .collect()
}

proptest! {
    /// No frontier point ever dominates another.
    #[test]
    fn frontier_is_mutually_non_dominated(
        points in prop::collection::vec((0.5f64..4.0, 0.0f64..20.0), 1..40),
    ) {
        let mut f = ParetoFrontier::new();
        for (s, e) in &points {
            f.insert(pt(*s, *e));
        }
        let ps = f.points();
        for i in 0..ps.len() {
            for j in 0..ps.len() {
                if i != j {
                    prop_assert!(
                        !ps[i].dominates(&ps[j]),
                        "{} dominates {}", ps[i].config, ps[j].config
                    );
                }
            }
        }
    }

    /// Inserting a point dominated by the frontier is a no-op.
    #[test]
    fn dominated_insert_is_noop(
        points in prop::collection::vec((0.5f64..4.0, 0.0f64..20.0), 1..30),
        pick in 0usize..30,
        ds in 0.0f64..1.0,
        de in 0.0f64..1.0,
    ) {
        let mut f = ParetoFrontier::new();
        for (s, e) in &points {
            f.insert(pt(*s, *e));
        }
        let anchor = &f.points()[pick % f.len()];
        // Slower and less accurate than an existing point.
        let dominated = pt(anchor.speedup - ds.max(1e-6), anchor.error_pct + de.max(1e-6));
        let before = coords(&f);
        prop_assert!(!f.insert(dominated));
        prop_assert_eq!(coords(&f), before);
    }

    /// The frontier is invariant to insertion order.
    #[test]
    fn frontier_is_insertion_order_invariant(
        points in prop::collection::vec((0.5f64..4.0, 0.0f64..20.0), 1..30),
    ) {
        let mut forward = ParetoFrontier::new();
        for (s, e) in &points {
            forward.insert(pt(*s, *e));
        }
        let mut reverse = ParetoFrontier::new();
        for (s, e) in points.iter().rev() {
            reverse.insert(pt(*s, *e));
        }
        // Interleaved: odd indices first, then even.
        let mut interleaved = ParetoFrontier::new();
        for (i, (s, e)) in points.iter().enumerate() {
            if i % 2 == 1 {
                interleaved.insert(pt(*s, *e));
            }
        }
        for (i, (s, e)) in points.iter().enumerate() {
            if i % 2 == 0 {
                interleaved.insert(pt(*s, *e));
            }
        }
        prop_assert_eq!(coords(&forward), coords(&reverse));
        prop_assert_eq!(coords(&forward), coords(&interleaved));
    }

    /// best_under answers: feasible, and no frontier point both feasible
    /// and faster.
    #[test]
    fn best_under_is_the_fastest_feasible(
        points in prop::collection::vec((0.5f64..4.0, 0.0f64..20.0), 1..40),
        bound in 0.5f64..15.0,
    ) {
        let mut f = ParetoFrontier::new();
        for (s, e) in &points {
            f.insert(pt(*s, *e));
        }
        match f.best_under(bound) {
            Some(best) => {
                prop_assert!(best.error_pct <= bound);
                for p in f.points() {
                    if p.error_pct <= bound {
                        prop_assert!(p.speedup <= best.speedup);
                    }
                }
            }
            None => {
                prop_assert!(f.points().iter().all(|p| p.error_pct > bound));
            }
        }
    }
}

/// The tuner's plan respects the 5% quality bound on Blackscholes, and the
/// re-executed plan reproduces the tuned numbers.
#[test]
fn blackscholes_plan_respects_bound() {
    let bench = Blackscholes::default();
    let spec = DeviceSpec::v100();
    let tuner = Tuner::new().with_scale(Scale::Quick);
    let plan = tuner.search_plan(&bench, &spec, QualityBound::percent(5.0), &[]);
    assert!(plan.respects_bound(), "error {}", plan.measured_error_pct);
    assert!(
        plan.budget_fraction_used() < 0.10,
        "evaluated {} of {}",
        plan.evaluations,
        plan.full_space
    );
    assert!(
        plan.predicted_speedup > 1.0,
        "blackscholes has feasible speedup"
    );
    let report = plan.execute(&bench, &spec).unwrap();
    assert!(
        report.error_pct <= 5.0,
        "re-executed error {}",
        report.error_pct
    );
}

/// Same contract on K-Means (the MCR-metric, convergence-driven app) on the
/// AMD device spec.
#[test]
fn kmeans_plan_respects_bound() {
    let bench = KMeans {
        n_points: 1024,
        max_iters: 30,
        ..KMeans::default()
    };
    let spec = DeviceSpec::mi250x();
    let tuner = Tuner::new().with_scale(Scale::Quick);
    let plan = tuner.search_plan(&bench, &spec, QualityBound::percent(5.0), &[]);
    assert!(plan.respects_bound(), "error {}", plan.measured_error_pct);
    assert!(
        plan.budget_fraction_used() < 0.10,
        "evaluated {} of {}",
        plan.evaluations,
        plan.full_space
    );
    let report = plan.execute(&bench, &spec).unwrap();
    assert!(
        report.error_pct <= 5.0 + 1e-9,
        "re-executed error {}",
        report.error_pct
    );
}
